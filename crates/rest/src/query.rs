//! OData query options on GET: `$expand`, `$select`, `$top`, `$skip`.
//!
//! Redfish clients use these to trim payloads: `$select` projects members,
//! `$top`/`$skip` paginate collection `Members`, `$expand` inlines them.
//! Pagination leaves `Members@odata.count` at the TOTAL collection size
//! (DSP0266: the count is unaffected by `$top`/`$skip`) and emits a
//! `Members@odata.nextLink` pointing at the next page when members remain;
//! malformed values are a 400 `QueryParameterValueTypeError`, not silently
//! ignored.

use redfish_model::{RedfishError, RedfishResult};
use serde_json::{Map, Value};

/// Parsed query options.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryOptions {
    /// Inline collection members (`$expand=.` or `$expand=*`).
    pub expand: bool,
    /// Project these top-level members (plus `@odata.*` control data).
    pub select: Option<Vec<String>>,
    /// Return at most this many collection members.
    pub top: Option<usize>,
    /// Skip this many collection members first.
    pub skip: Option<usize>,
}

fn bad_value(parameter: &str, value: &str) -> RedfishError {
    RedfishError::QueryParameterValueTypeError {
        parameter: parameter.to_string(),
        value: value.to_string(),
    }
}

/// Whether `v` is a well-formed DSP0266 `$expand` value: one of the levels
/// `.` (subordinate), `~` (dependent links), or `*` (both), optionally
/// followed by a `($levels=N)` clause with N ≥ 1.
fn valid_expand(v: &str) -> bool {
    let mut chars = v.chars();
    if !matches!(chars.next(), Some('.' | '*' | '~')) {
        return false;
    }
    let rest = chars.as_str();
    rest.is_empty()
        || rest
            .strip_prefix("($levels=")
            .and_then(|s| s.strip_suffix(')'))
            .is_some_and(|n| n.parse::<usize>().is_ok_and(|n| n >= 1))
}

impl QueryOptions {
    /// Parse a raw query string (already stripped of `?`).
    ///
    /// `$expand` accepts the DSP0266 levels `.`, `*`, and `~`, each with an
    /// optional `($levels=N)` clause; this service approximates them all as
    /// one-level member expansion. `$top` and `$skip` must be non-negative
    /// integers. Anything else fails with
    /// [`RedfishError::QueryParameterValueTypeError`] (HTTP 400). Unknown
    /// options are ignored per the spec.
    pub fn parse(raw: &str) -> RedfishResult<QueryOptions> {
        let mut q = QueryOptions::default();
        for pair in raw.split('&') {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            match k {
                "$expand" => {
                    if !valid_expand(v) {
                        return Err(bad_value("$expand", v));
                    }
                    q.expand = true;
                }
                "$select" => {
                    q.select = Some(
                        v.split(',')
                            .map(str::trim)
                            .filter(|s| !s.is_empty())
                            .map(str::to_string)
                            .collect(),
                    )
                }
                "$top" => q.top = Some(v.parse().map_err(|_| bad_value("$top", v))?),
                "$skip" => q.skip = Some(v.parse().map_err(|_| bad_value("$skip", v))?),
                _ => {} // unknown options are ignored per the spec
            }
        }
        Ok(q)
    }

    /// Whether anything must be applied at all.
    pub fn is_noop(&self) -> bool {
        self == &QueryOptions::default()
    }

    /// Apply pagination and projection to a response body, in the spec's
    /// order: paginate `Members` first, then project.
    ///
    /// After pagination, `Members@odata.count` still reports the TOTAL
    /// number of members in the collection (per DSP0266 it is unaffected by
    /// `$top`/`$skip` — nextLink plus total count is how clients size the
    /// collection), and `Members@odata.nextLink` is set when more members
    /// remain beyond this page. An empty page (e.g. `$top=0`) never emits a
    /// nextLink: its paging state would be identical to the request that
    /// produced it, looping link-following clients forever.
    pub fn apply(&self, mut body: Value) -> Value {
        if self.skip.is_some() || self.top.is_some() {
            let self_id = body.get("@odata.id").and_then(Value::as_str).map(str::to_string);
            let mut page_info = None;
            if let Some(members) = body.get_mut("Members").and_then(Value::as_array_mut) {
                let total = members.len();
                let skip = self.skip.unwrap_or(0);
                let top = self.top.unwrap_or(usize::MAX);
                let page: Vec<Value> = members.iter().skip(skip).take(top).cloned().collect();
                let shown = page.len();
                *members = page;
                page_info = Some((shown, shown > 0 && skip.saturating_add(shown) < total));
            }
            if let (Some((shown, more)), Some(obj)) = (page_info, body.as_object_mut()) {
                if more {
                    if let Some(id) = self_id {
                        let skipped = self.skip.unwrap_or(0) + shown;
                        let mut link = format!("{id}?$skip={skipped}");
                        if let Some(t) = self.top {
                            link.push_str(&format!("&$top={t}"));
                        }
                        obj.insert("Members@odata.nextLink".to_string(), Value::String(link));
                    }
                }
            }
        }
        if let Some(select) = &self.select {
            if let Value::Object(obj) = body {
                let mut out = Map::new();
                for (k, v) in obj {
                    if k.starts_with("@odata.") || select.iter().any(|s| s == &k) {
                        out.insert(k, v);
                    }
                }
                body = Value::Object(out);
            }
        }
        body
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn parse(raw: &str) -> QueryOptions {
        QueryOptions::parse(raw).expect("valid query")
    }

    #[test]
    fn parses_all_options() {
        let q = parse("$expand=.&$select=Name,Status&$top=5&$skip=10");
        assert!(q.expand);
        assert_eq!(
            q.select.as_deref(),
            Some(&["Name".to_string(), "Status".to_string()][..])
        );
        assert_eq!(q.top, Some(5));
        assert_eq!(q.skip, Some(10));
        assert!(parse("").is_noop());
        assert!(parse("unknown=1").is_noop());
    }

    #[test]
    fn expand_accepts_only_spec_levels() {
        for good in [
            "$expand=*",
            "$expand=.",
            "$expand=~",
            "$expand=.($levels=2)",
            "$expand=*($levels=1)",
        ] {
            assert!(parse(good).expand, "{good}");
        }
        for bad in [
            "$expand",
            "$expand=",
            "$expand=yes",
            "$expand=.($levels=0)",
            "$expand=.($levels=)",
            "$expand=.(levels=2)",
            "$expand=.($levels=2",
        ] {
            let err = QueryOptions::parse(bad).unwrap_err();
            assert!(
                matches!(err, RedfishError::QueryParameterValueTypeError { ref parameter, .. } if parameter == "$expand"),
                "{bad}: {err:?}"
            );
            assert_eq!(err.http_status(), 400);
        }
    }

    #[test]
    fn malformed_top_and_skip_are_rejected() {
        for bad in ["$top=abc", "$top=-1", "$top=", "$skip=1.5", "$skip=x"] {
            let err = QueryOptions::parse(bad).unwrap_err();
            assert_eq!(err.http_status(), 400, "{bad}");
            assert_eq!(err.message_id(), "Base.1.0.QueryParameterValueTypeError");
        }
    }

    #[test]
    fn select_projects_but_keeps_odata_control_data() {
        let q = parse("$select=Name");
        let out = q.apply(json!({
            "@odata.id": "/redfish/v1/Systems/x",
            "@odata.type": "#ComputerSystem.v1.ComputerSystem",
            "Name": "x",
            "Status": {"State": "Enabled"},
            "PowerState": "On",
        }));
        assert_eq!(out["Name"], "x");
        assert_eq!(out["@odata.id"], "/redfish/v1/Systems/x");
        assert!(out.get("Status").is_none());
        assert!(out.get("PowerState").is_none());
    }

    #[test]
    fn pagination_slices_members_and_keeps_total_count() {
        let q = parse("$top=2&$skip=1");
        let out = q.apply(json!({
            "@odata.id": "/redfish/v1/Systems",
            "Members": [{"n": 0}, {"n": 1}, {"n": 2}, {"n": 3}],
            "Members@odata.count": 4,
        }));
        let m = out["Members"].as_array().unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m[0]["n"], 1);
        assert_eq!(m[1]["n"], 2);
        // DSP0266: the count stays at the TOTAL collection size, unaffected
        // by $top/$skip; a nextLink points at the rest.
        assert_eq!(out["Members@odata.count"], 4);
        assert_eq!(out["Members@odata.nextLink"], "/redfish/v1/Systems?$skip=3&$top=2");
    }

    #[test]
    fn last_page_has_no_next_link() {
        let q = parse("$top=2&$skip=2");
        let out = q.apply(json!({
            "@odata.id": "/redfish/v1/Systems",
            "Members": [{"n": 0}, {"n": 1}, {"n": 2}, {"n": 3}],
            "Members@odata.count": 4,
        }));
        assert_eq!(out["Members@odata.count"], 4);
        assert!(out.get("Members@odata.nextLink").is_none());
    }

    #[test]
    fn skip_only_returns_rest_without_next_link() {
        let q = parse("$skip=1");
        let out = q.apply(json!({
            "@odata.id": "/redfish/v1/Systems",
            "Members": [{"n": 0}, {"n": 1}, {"n": 2}],
            "Members@odata.count": 3,
        }));
        // Without $top the rest of the collection is returned; no nextLink.
        assert_eq!(out["Members@odata.count"], 3);
        assert!(out.get("Members@odata.nextLink").is_none());
    }

    #[test]
    fn skip_past_end_is_empty() {
        let q = parse("$skip=99");
        let out = q.apply(json!({"@odata.id": "/x", "Members": [{"n": 0}], "Members@odata.count": 1}));
        assert!(out["Members"].as_array().unwrap().is_empty());
        assert_eq!(out["Members@odata.count"], 1);
        assert!(out.get("Members@odata.nextLink").is_none());
    }

    #[test]
    fn top_zero_never_emits_next_link() {
        // An empty page must not link to itself — a client following
        // nextLink until absent would otherwise loop forever.
        let q = parse("$top=0&$skip=1");
        let out = q.apply(json!({
            "@odata.id": "/redfish/v1/Systems",
            "Members": [{"n": 0}, {"n": 1}, {"n": 2}],
            "Members@odata.count": 3,
        }));
        assert!(out["Members"].as_array().unwrap().is_empty());
        assert_eq!(out["Members@odata.count"], 3);
        assert!(out.get("Members@odata.nextLink").is_none());
    }

    #[test]
    fn noop_passthrough() {
        let q = parse("");
        let body = json!({"a": 1, "Members": [1, 2, 3]});
        assert_eq!(q.apply(body.clone()), body);
    }
}
