//! OData query options on GET: `$expand`, `$select`, `$top`, `$skip`.
//!
//! Redfish clients use these to trim payloads: `$select` projects members,
//! `$top`/`$skip` paginate collection `Members`, `$expand` inlines them.

use serde_json::{Map, Value};

/// Parsed query options.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryOptions {
    /// Inline collection members (`$expand=.` or `$expand=*`).
    pub expand: bool,
    /// Project these top-level members (plus `@odata.*` control data).
    pub select: Option<Vec<String>>,
    /// Return at most this many collection members.
    pub top: Option<usize>,
    /// Skip this many collection members first.
    pub skip: Option<usize>,
}

impl QueryOptions {
    /// Parse a raw query string (already stripped of `?`).
    pub fn parse(raw: &str) -> QueryOptions {
        let mut q = QueryOptions::default();
        for pair in raw.split('&') {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            match k {
                "$expand" => q.expand = true,
                "$select" => {
                    q.select = Some(
                        v.split(',')
                            .map(str::trim)
                            .filter(|s| !s.is_empty())
                            .map(str::to_string)
                            .collect(),
                    )
                }
                "$top" => q.top = v.parse().ok(),
                "$skip" => q.skip = v.parse().ok(),
                _ => {} // unknown options are ignored per the spec
            }
        }
        q
    }

    /// Whether anything must be applied at all.
    pub fn is_noop(&self) -> bool {
        self == &QueryOptions::default()
    }

    /// Apply pagination and projection to a response body, in the spec's
    /// order: paginate `Members` first, then project.
    pub fn apply(&self, mut body: Value) -> Value {
        if self.skip.is_some() || self.top.is_some() {
            if let Some(members) = body.get_mut("Members").and_then(Value::as_array_mut) {
                let skip = self.skip.unwrap_or(0);
                let top = self.top.unwrap_or(usize::MAX);
                let page: Vec<Value> = members.iter().skip(skip).take(top).cloned().collect();
                *members = page;
            }
        }
        if let Some(select) = &self.select {
            if let Value::Object(obj) = body {
                let mut out = Map::new();
                for (k, v) in obj {
                    if k.starts_with("@odata.") || select.iter().any(|s| s == &k) {
                        out.insert(k, v);
                    }
                }
                body = Value::Object(out);
            }
        }
        body
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn parses_all_options() {
        let q = QueryOptions::parse("$expand=.&$select=Name,Status&$top=5&$skip=10");
        assert!(q.expand);
        assert_eq!(
            q.select.as_deref(),
            Some(&["Name".to_string(), "Status".to_string()][..])
        );
        assert_eq!(q.top, Some(5));
        assert_eq!(q.skip, Some(10));
        assert!(QueryOptions::parse("").is_noop());
        assert!(QueryOptions::parse("unknown=1").is_noop());
    }

    #[test]
    fn select_projects_but_keeps_odata_control_data() {
        let q = QueryOptions::parse("$select=Name");
        let out = q.apply(json!({
            "@odata.id": "/redfish/v1/Systems/x",
            "@odata.type": "#ComputerSystem.v1.ComputerSystem",
            "Name": "x",
            "Status": {"State": "Enabled"},
            "PowerState": "On",
        }));
        assert_eq!(out["Name"], "x");
        assert_eq!(out["@odata.id"], "/redfish/v1/Systems/x");
        assert!(out.get("Status").is_none());
        assert!(out.get("PowerState").is_none());
    }

    #[test]
    fn pagination_slices_members() {
        let q = QueryOptions::parse("$top=2&$skip=1");
        let out = q.apply(json!({
            "Members": [{"n": 0}, {"n": 1}, {"n": 2}, {"n": 3}],
            "Members@odata.count": 4,
        }));
        let m = out["Members"].as_array().unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m[0]["n"], 1);
        assert_eq!(m[1]["n"], 2);
        // The total count member is untouched (it reports the full size).
        assert_eq!(out["Members@odata.count"], 4);
    }

    #[test]
    fn skip_past_end_is_empty() {
        let q = QueryOptions::parse("$skip=99");
        let out = q.apply(json!({"Members": [{"n": 0}]}));
        assert!(out["Members"].as_array().unwrap().is_empty());
    }

    #[test]
    fn noop_passthrough() {
        let q = QueryOptions::parse("");
        let body = json!({"a": 1, "Members": [1, 2, 3]});
        assert_eq!(q.apply(body.clone()), body);
    }
}
