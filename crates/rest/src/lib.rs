//! # ofmf-rest
//!
//! The OFMF's RESTful north-bound interface, built from scratch on
//! `std::net` (no async runtime): "a centralized abstract management layer
//! that exposes a RESTful API … transactions are stateless and lightweight,
//! consisting of JSON data carried on OData".
//!
//! * [`http`] — a small, strict HTTP/1.1 request parser and response
//!   serializer (keep-alive aware, bounded bodies).
//! * [`query`] — OData query options: `$expand`, `$select`, `$top`, `$skip`.
//! * [`router`] — maps `GET/POST/PATCH/DELETE` on tree paths to [`ofmf_core::Ofmf`]
//!   operations: session login, event subscriptions with long-poll-style
//!   draining, ETag/If-Match concurrency, Redfish error bodies.
//! * [`server`] — a thread-per-connection server over a bounded worker pool
//!   (idiomatic per *Rust Atomics and Locks*), with graceful shutdown.
//! * [`client`] — a minimal blocking HTTP client used by tests, examples and
//!   benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod http;
mod obs;
pub mod query;
pub mod router;
pub mod server;

pub use client::HttpClient;
pub use router::{ComposeService, Router};
pub use server::RestServer;
