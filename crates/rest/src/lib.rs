//! # ofmf-rest
//!
//! The OFMF's RESTful north-bound interface, built from scratch on
//! `std::net` (no async runtime): "a centralized abstract management layer
//! that exposes a RESTful API … transactions are stateless and lightweight,
//! consisting of JSON data carried on OData".
//!
//! * [`http`] — a small, strict HTTP/1.1 request parser and response
//!   serializer (keep-alive aware, bounded bodies).
//! * [`query`] — OData query options: `$expand`, `$select`, `$top`, `$skip`.
//! * [`router`] — maps `GET/POST/PATCH/DELETE` on tree paths to [`ofmf_core::Ofmf`]
//!   operations: session login, event subscriptions with long-poll-style
//!   draining, ETag/If-Match concurrency, Redfish error bodies.
//! * [`server`] — the server facade: an epoll readiness event loop by
//!   default on Linux (shared acceptor, per-worker event loops,
//!   per-connection state machines, pipelining, connection-cap load
//!   shedding), with the original bounded thread pool kept as the measured
//!   baseline and portability fallback.
//! * [`client`] — a minimal blocking HTTP client used by tests, examples and
//!   benches.
//!
//! `unsafe` is denied crate-wide with exactly one audited exception: the
//! raw `epoll` syscall facade in `event_loop/sys.rs` (the workspace vendors
//! no libc). The `syscall-facade` lint rule pins it there.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
mod event_loop;
pub mod http;
mod obs;
pub mod query;
pub mod router;
pub mod server;

pub use client::HttpClient;
pub use router::{ComposeService, Router};
pub use server::{Backend, RestServer, ServerConfig};
