//! Routing: HTTP requests → OFMF operations → HTTP responses.

use crate::http::{Method, Request, Response};
use crossbeam::channel::Receiver;
use ofmf_core::Ofmf;
use parking_lot::Mutex;
use redfish_model::odata::{ETag, ODataId};
use redfish_model::path::{in_service_tree, top};
use redfish_model::resources::events::{EventEnvelope, EventType};
use redfish_model::RedfishError;
use serde_json::{json, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// South-bound composition hook: the umbrella crate implements this over
/// `composer::Composer` and attaches it with
/// [`Router::with_compose_service`], keeping `ofmf-rest` free of a
/// composer dependency while `CompositionService.Compose` still runs the
/// real allocation + bind pipeline (and its span tree) in-request.
pub trait ComposeService: Send + Sync {
    /// Handle `CompositionService.Compose`: allocate and bind a composed
    /// system described by `body`, returning the new system's id.
    fn compose(&self, body: &Value) -> Result<ODataId, RedfishError>;
}

/// The OFMF request router.
pub struct Router {
    ofmf: Arc<Ofmf>,
    /// Whether requests (other than the service root and session login)
    /// must carry a valid `X-Auth-Token`.
    require_auth: bool,
    /// Optional composition backend for `CompositionService.Compose`.
    compose: Option<Arc<dyn ComposeService>>,
    /// Delivery queues of REST-created subscriptions, drained via
    /// `GET …/Subscriptions/{id}/Events`. Receivers are `Arc`-shared so a
    /// long-polling drain can block on its queue without holding the map
    /// lock (other subscriptions keep draining concurrently).
    sub_queues: Mutex<HashMap<String, Arc<Receiver<EventEnvelope>>>>,
}

impl Router {
    /// New router; `require_auth` gates everything but `GET /redfish/v1`
    /// and session creation.
    pub fn new(ofmf: Arc<Ofmf>, require_auth: bool) -> Self {
        Router {
            ofmf,
            require_auth,
            compose: None,
            sub_queues: Mutex::new(HashMap::new()),
        }
    }

    /// Attach a composition backend serving `CompositionService.Compose`.
    pub fn with_compose_service(mut self, svc: Arc<dyn ComposeService>) -> Self {
        self.compose = Some(svc);
        self
    }

    /// Handle one request. Every request runs under a root span; the
    /// response carries its trace id in `X-OFMF-TraceId`, and a request
    /// with an `x-ofmf-trace` header is force-sampled into the flight
    /// recorder.
    pub fn handle(&self, req: &Request) -> Response {
        let metrics = crate::obs::metrics();
        let method = metrics.method(req.method);
        method.requests.inc();
        let mut span = ofmf_obs::root_span("ofmf.rest.request");
        span.set_route(&route_key(req.method, &req.path));
        if req.header("x-ofmf-trace").is_some() {
            span.force_sample();
        }
        let trace_id = span.trace_id();
        let mut resp = self.dispatch(req);
        if req.method == Method::Head {
            // HEAD advertises the entity's real Content-Length and headers
            // (ETag included) but transmits no body.
            resp = resp.into_head();
        }
        metrics.record_status(resp.status);
        if resp.status >= 500 {
            span.set_error();
            ofmf_obs::global().ring().emit_for_trace(
                ofmf_obs::Severity::Critical,
                "ofmf.rest",
                format!("{:?} {} -> {}", req.method, req.path, resp.status),
                (trace_id != 0).then_some(trace_id),
            );
        }
        span.annotate("status", resp.status.to_string());
        method.latency.record_with_exemplar(span.elapsed_ns(), trace_id);
        drop(span);
        if trace_id != 0 {
            resp = resp.with_header("X-OFMF-TraceId", &trace_id.to_string());
        }
        resp
    }

    fn dispatch(&self, req: &Request) -> Response {
        if !in_service_tree(&req.path) && req.path != "/redfish" {
            return error_response(&RedfishError::NotFound(ODataId::new(req.path.as_str())));
        }
        if req.path == "/redfish" {
            return Response::json(200, &json!({"v1": "/redfish/v1/"}));
        }

        // Authentication.
        let is_login = req.method == Method::Post && req.path.trim_end_matches('/') == top::SESSIONS;
        let is_root = req.method == Method::Get && req.path.trim_end_matches('/') == "/redfish/v1";
        if self.require_auth && !is_login && !is_root {
            let token = req.header("x-auth-token").unwrap_or("");
            if self.ofmf.sessions.authenticate(&self.ofmf.registry, token).is_err() {
                return error_response(&RedfishError::Unauthorized);
            }
        }

        let path = ODataId::new(req.path.as_str());
        match req.method {
            Method::Get | Method::Head => self.get(req, &path),
            Method::Post => self.post(req, &path),
            Method::Patch => self.patch(req, &path),
            Method::Delete => self.delete(req, &path),
        }
    }

    fn get(&self, req: &Request, path: &ODataId) -> Response {
        // Live observability surface (synthesized per GET, never stored).
        if let Some(resp) = crate::obs::handle_get(&self.ofmf, path) {
            return resp;
        }
        // Subscription event drain: GET …/Subscriptions/{id}/Events
        // (`?wait=<ms>` long-polls up to 10 s for the first batch).
        if let Some(parent) = path.parent() {
            if path.leaf() == "Events" && parent.as_str().starts_with(top::SUBSCRIPTIONS) {
                let wait_ms = req
                    .query
                    .as_deref()
                    .unwrap_or("")
                    .split('&')
                    .find_map(|kv| kv.strip_prefix("wait="))
                    .and_then(|v| v.parse::<u64>().ok())
                    .map(|ms| ms.min(10_000));
                return self.drain_subscription(parent.leaf(), wait_ms);
            }
        }
        let opts = match crate::query::QueryOptions::parse(req.query.as_deref().unwrap_or("")) {
            Ok(o) => o,
            Err(e) => return error_response(&e),
        };
        if opts.expand {
            return match self.ofmf.registry.expand(path) {
                Ok(body) => Response::json(200, &opts.apply(body)),
                Err(e) => error_response(&e),
            };
        }
        if opts.is_noop() {
            // Hot path: pre-serialized bytes shared straight from the
            // registry's ETag-keyed wire cache — no clone, no
            // re-serialization; the event loop writes the `Arc<[u8]>`
            // directly to the socket.
            return match self.ofmf.get_raw(path) {
                Ok((bytes, etag)) => Response::json_bytes(200, bytes).with_header("ETag", &etag.to_header()),
                Err(e) => error_response(&e),
            };
        }
        match self.ofmf.get(path) {
            Ok((body, etag)) => Response::json(200, &opts.apply(body)).with_header("ETag", &etag.to_header()),
            Err(e) => error_response(&e),
        }
    }

    fn post(&self, req: &Request, path: &ODataId) -> Response {
        let body: Value = match serde_json::from_slice(&req.body) {
            Ok(v) => v,
            Err(e) => return error_response(&RedfishError::BadRequest(format!("invalid JSON body: {e}"))),
        };
        let normalized = path.as_str().trim_end_matches('/');
        if normalized == top::SESSIONS {
            return self.login(&body);
        }
        if normalized == top::SUBSCRIPTIONS {
            return self.subscribe(&body);
        }
        // Redfish actions: POST …/Actions/CompositionService.Compose
        if normalized == top::COMPOSE_ACTION {
            let Some(svc) = &self.compose else {
                return error_response(&RedfishError::MethodNotAllowed(
                    "no composition service attached to this endpoint".into(),
                ));
            };
            return match svc.compose(&body) {
                Ok(rid) => {
                    let (doc, etag) = match self.ofmf.get(&rid) {
                        Ok(x) => x,
                        Err(e) => return error_response(&e),
                    };
                    Response::json(201, &doc)
                        .with_header("Location", rid.as_str())
                        .with_header("ETag", &etag.to_header())
                }
                Err(e) => error_response(&e),
            };
        }
        // Redfish actions: POST …/Actions/ComputerSystem.Reset
        if normalized.ends_with("/Actions/ComputerSystem.Reset") {
            let system = ODataId::new(normalized.trim_end_matches("/Actions/ComputerSystem.Reset"));
            let reset_type = body
                .get("ResetType")
                .and_then(Value::as_str)
                .unwrap_or("GracefulRestart");
            return match self.ofmf.reset_system(&system, reset_type) {
                Ok(()) => Response::empty(204),
                Err(e) => error_response(&e),
            };
        }
        match self.ofmf.post(path, &body) {
            Ok(rid) => {
                let (doc, etag) = match self.ofmf.get(&rid) {
                    Ok(x) => x,
                    Err(e) => return error_response(&e),
                };
                Response::json(201, &doc)
                    .with_header("Location", rid.as_str())
                    .with_header("ETag", &etag.to_header())
            }
            Err(e) => error_response(&e),
        }
    }

    fn patch(&self, req: &Request, path: &ODataId) -> Response {
        let body: Value = match serde_json::from_slice(&req.body) {
            Ok(v) => v,
            Err(e) => return error_response(&RedfishError::BadRequest(format!("invalid JSON body: {e}"))),
        };
        let if_match = req.header("if-match").and_then(ETag::parse_header);
        if req.header("if-match").is_some() && if_match.is_none() {
            return error_response(&RedfishError::BadRequest("unparseable If-Match".into()));
        }
        match self.ofmf.patch(path, &body, if_match) {
            Ok(etag) => match self.ofmf.get(path) {
                Ok((doc, _)) => Response::json(200, &doc).with_header("ETag", &etag.to_header()),
                Err(e) => error_response(&e),
            },
            Err(e) => error_response(&e),
        }
    }

    fn delete(&self, req: &Request, path: &ODataId) -> Response {
        // Session logout deletes via the session service so the token dies.
        if let Some(parent) = path.parent() {
            if parent.as_str() == top::SESSIONS {
                let token = req.header("x-auth-token").unwrap_or("");
                return match self.ofmf.sessions.logout(&self.ofmf.registry, token) {
                    Ok(()) => Response::empty(204),
                    Err(e) => error_response(&e),
                };
            }
            if parent.as_str() == top::SUBSCRIPTIONS {
                self.sub_queues.lock().remove(path.leaf());
                return match self.ofmf.events.unsubscribe(&self.ofmf.registry, path.leaf()) {
                    Ok(()) => Response::empty(204),
                    Err(e) => error_response(&e),
                };
            }
        }
        match self.ofmf.delete(path) {
            Ok(()) => Response::empty(204),
            Err(e) => error_response(&e),
        }
    }

    fn login(&self, body: &Value) -> Response {
        let user = body.get("UserName").and_then(Value::as_str).unwrap_or("");
        let password = body.get("Password").and_then(Value::as_str).unwrap_or("");
        match self.ofmf.sessions.login(&self.ofmf.registry, user, password) {
            Ok((token, sid)) => {
                let (doc, _) = self.ofmf.get(&sid).unwrap_or((json!({}), ETag::INITIAL));
                Response::json(201, &doc)
                    .with_header("Location", sid.as_str())
                    .with_header("X-Auth-Token", &token)
            }
            Err(e) => error_response(&e),
        }
    }

    fn subscribe(&self, body: &Value) -> Response {
        let destination = body
            .get("Destination")
            .and_then(Value::as_str)
            .unwrap_or("rest-poll://");
        let event_types: Vec<EventType> = body
            .get("EventTypes")
            .and_then(Value::as_array)
            .map(|a| {
                a.iter()
                    .filter_map(|v| serde_json::from_value(v.clone()).ok())
                    .collect()
            })
            .unwrap_or_default();
        let origins: Vec<ODataId> = body
            .get("OriginResources")
            .and_then(Value::as_array)
            .map(|a| {
                a.iter()
                    .filter_map(|v| v.get("@odata.id").and_then(Value::as_str).map(ODataId::new))
                    .collect()
            })
            .unwrap_or_default();
        match self
            .ofmf
            .events
            .subscribe(&self.ofmf.registry, destination, event_types, origins)
        {
            Ok((id, rx)) => {
                self.sub_queues.lock().insert(id.clone(), Arc::new(rx));
                let sid = ODataId::new(top::SUBSCRIPTIONS).child(&id);
                let (doc, _) = self.ofmf.get(&sid).unwrap_or((json!({}), ETag::INITIAL));
                Response::json(201, &doc).with_header("Location", sid.as_str())
            }
            Err(e) => error_response(&e),
        }
    }

    fn drain_subscription(&self, sub_id: &str, wait_ms: Option<u64>) -> Response {
        // Clone the Arc and release the map lock immediately: a long-polling
        // drain must never block other subscriptions (or new subscribes).
        let rx = {
            let queues = self.sub_queues.lock();
            match queues.get(sub_id) {
                Some(rx) => Arc::clone(rx),
                None => {
                    return error_response(&RedfishError::NotFound(
                        ODataId::new(top::SUBSCRIPTIONS).child(sub_id).child("Events"),
                    ))
                }
            }
        };
        // The wire body was serialized once at fan-out; every subscriber of
        // the batch (and every drain of it) splices the same bytes.
        fn push(batches: &mut Vec<String>, sub_id: &str, ev: EventEnvelope) {
            match ev.wire_json() {
                Ok(json) => batches.push(json),
                Err(e) => {
                    // No-panic-at-dispatch: a malformed event is dropped and
                    // counted, never allowed to kill a worker thread.
                    crate::obs::metrics().sub_events_dropped.inc();
                    ofmf_obs::global().ring().emit(
                        ofmf_obs::Severity::Warning,
                        "ofmf.rest",
                        format!("dropped unserializable event for subscription {sub_id}: {e}"),
                    );
                }
            }
        }
        let mut batches: Vec<String> = Vec::new();
        while let Ok(ev) = rx.try_recv() {
            push(&mut batches, sub_id, ev);
        }
        // SSE-style long-poll: nothing queued yet — block (off the map lock)
        // for the first batch, then sweep up whatever arrived with it.
        if batches.is_empty() {
            if let Some(ms) = wait_ms {
                if let Ok(ev) = rx.recv_timeout(std::time::Duration::from_millis(ms)) {
                    push(&mut batches, sub_id, ev);
                    while let Ok(ev) = rx.try_recv() {
                        push(&mut batches, sub_id, ev);
                    }
                }
            }
        }
        // Splice the pre-serialized batches straight into the response body.
        let mut body = Vec::with_capacity(batches.iter().map(String::len).sum::<usize>() + 32);
        body.extend_from_slice(b"{\"Events\":[");
        for (i, b) in batches.iter().enumerate() {
            if i > 0 {
                body.push(b',');
            }
            body.extend_from_slice(b.as_bytes());
        }
        body.extend_from_slice(format!("],\"Count\":{}}}", batches.len()).as_bytes());
        Response::json_bytes(200, body)
    }
}

/// Normalize a request into a bounded route key for the flight recorder's
/// per-route latency state: member ids and deeper segments collapse to `*`
/// so a path-scanning client cannot inflate the route map.
fn route_key(method: Method, path: &str) -> String {
    let mut segs = path.split('/').filter(|s| !s.is_empty());
    let (a, b, c, rest) = (segs.next(), segs.next(), segs.next(), segs.next());
    let key = match (a, b, c, rest) {
        (Some("redfish"), None, _, _) => "/redfish".to_string(),
        (Some("redfish"), Some("v1"), None, _) => "/redfish/v1".to_string(),
        (Some("redfish"), Some("v1"), Some(col), None) => format!("/redfish/v1/{col}"),
        (Some("redfish"), Some("v1"), Some(col), Some(_)) => format!("/redfish/v1/{col}/*"),
        _ => "/*".to_string(),
    };
    format!("{method:?} {key}")
}

/// Render a Redfish error as a response. Availability errors (open circuit
/// breakers, unreachable agents) advertise a `Retry-After` header so clients
/// back off instead of hammering a dead fabric.
pub fn error_response(e: &RedfishError) -> Response {
    let resp = Response::json(e.http_status(), &e.to_body());
    match e.retry_after_secs() {
        Some(secs) => resp.with_header("Retry-After", &secs.to_string()),
        None => resp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn req(method: Method, path: &str, body: &str) -> Request {
        Request {
            method,
            path: path.to_string(),
            query: None,
            headers: BTreeMap::new(),
            body: body.as_bytes().to_vec(),
            version: crate::http::HttpVersion::Http11,
        }
    }

    fn open_router() -> Router {
        Router::new(Ofmf::new("router-test", HashMap::new(), 3), false)
    }

    #[test]
    fn get_service_root() {
        let r = open_router();
        let resp = r.handle(&req(Method::Get, "/redfish/v1", ""));
        assert_eq!(resp.status, 200);
        let v: Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(v["RedfishVersion"], "1.15.0");
        assert!(resp.headers.iter().any(|(k, _)| k == "ETag"));
    }

    #[test]
    fn version_discovery_document() {
        let r = open_router();
        let resp = r.handle(&req(Method::Get, "/redfish", ""));
        assert_eq!(resp.status, 200);
        let v: Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(v["v1"], "/redfish/v1/");
    }

    #[test]
    fn paths_outside_tree_404() {
        let r = open_router();
        assert_eq!(r.handle(&req(Method::Get, "/etc/passwd", "")).status, 404);
        assert_eq!(r.handle(&req(Method::Get, "/redfish/v2/x", "")).status, 404);
    }

    #[test]
    fn post_then_get_then_patch_then_delete() {
        let r = open_router();
        let resp = r.handle(&req(
            Method::Post,
            "/redfish/v1/Systems",
            r#"{"Id":"cn0","Name":"cn0"}"#,
        ));
        assert_eq!(resp.status, 201);
        let loc = resp
            .headers
            .iter()
            .find(|(k, _)| k == "Location")
            .map(|(_, v)| v.clone())
            .unwrap();
        assert_eq!(loc, "/redfish/v1/Systems/cn0");

        let resp = r.handle(&req(Method::Get, &loc, ""));
        assert_eq!(resp.status, 200);

        let resp = r.handle(&req(Method::Patch, &loc, r#"{"Name":"renamed"}"#));
        assert_eq!(resp.status, 200);
        let v: Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(v["Name"], "renamed");

        let resp = r.handle(&req(Method::Delete, &loc, ""));
        assert_eq!(resp.status, 204);
        assert_eq!(r.handle(&req(Method::Get, &loc, "")).status, 404);
    }

    #[test]
    fn invalid_json_is_400_with_redfish_error_body() {
        let r = open_router();
        let resp = r.handle(&req(Method::Post, "/redfish/v1/Systems", "{nope"));
        assert_eq!(resp.status, 400);
        let v: Value = serde_json::from_slice(&resp.body).unwrap();
        assert!(v["error"]["code"].as_str().unwrap().starts_with("Base."));
    }

    #[test]
    fn if_match_enforced() {
        let r = open_router();
        r.handle(&req(Method::Post, "/redfish/v1/Systems", r#"{"Id":"cn0","Name":"a"}"#));
        let mut p = req(Method::Patch, "/redfish/v1/Systems/cn0", r#"{"Name":"b"}"#);
        p.headers.insert("if-match".into(), "W/\"999\"".into());
        assert_eq!(r.handle(&p).status, 412);
        p.headers.insert("if-match".into(), "garbage".into());
        assert_eq!(r.handle(&p).status, 400);
    }

    #[test]
    fn auth_gates_everything_but_root_and_login() {
        let mut creds = HashMap::new();
        creds.insert("admin".to_string(), "pw".to_string());
        let ofmf = Ofmf::new("auth-test", creds, 3);
        let r = Router::new(ofmf, true);

        assert_eq!(r.handle(&req(Method::Get, "/redfish/v1", "")).status, 200, "root open");
        assert_eq!(r.handle(&req(Method::Get, "/redfish/v1/Systems", "")).status, 401);

        let login = r.handle(&req(
            Method::Post,
            "/redfish/v1/SessionService/Sessions",
            r#"{"UserName":"admin","Password":"pw"}"#,
        ));
        assert_eq!(login.status, 201);
        let token = login
            .headers
            .iter()
            .find(|(k, _)| k == "X-Auth-Token")
            .map(|(_, v)| v.clone())
            .unwrap();

        let mut authed = req(Method::Get, "/redfish/v1/Systems", "");
        authed.headers.insert("x-auth-token".into(), token.clone());
        assert_eq!(r.handle(&authed).status, 200);

        // Logout kills the token.
        let mut logout = req(Method::Delete, &format!("{}/1", top::SESSIONS), "");
        logout.headers.insert("x-auth-token".into(), token);
        assert_eq!(r.handle(&logout).status, 204);
        assert_eq!(r.handle(&authed).status, 401);

        let bad = r.handle(&req(
            Method::Post,
            "/redfish/v1/SessionService/Sessions",
            r#"{"UserName":"admin","Password":"wrong"}"#,
        ));
        assert_eq!(bad.status, 401);
    }

    #[test]
    fn subscription_create_and_drain() {
        let r = open_router();
        let resp = r.handle(&req(
            Method::Post,
            "/redfish/v1/EventService/Subscriptions",
            r#"{"Destination":"rest-poll://","EventTypes":["Alert"]}"#,
        ));
        assert_eq!(resp.status, 201);
        let loc = resp
            .headers
            .iter()
            .find(|(k, _)| k == "Location")
            .map(|(_, v)| v.clone())
            .unwrap();

        // Nothing yet.
        let drained = r.handle(&req(Method::Get, &format!("{loc}/Events"), ""));
        let v: Value = serde_json::from_slice(&drained.body).unwrap();
        assert_eq!(v["Count"], 0);

        // Publish an alert; it shows up on the next drain.
        r.ofmf.events.publish(
            EventType::Alert,
            &ODataId::new("/redfish/v1/Chassis/x"),
            "hot",
            "Warning",
        );
        let drained = r.handle(&req(Method::Get, &format!("{loc}/Events"), ""));
        let v: Value = serde_json::from_slice(&drained.body).unwrap();
        assert_eq!(v["Count"], 1);
        assert_eq!(v["Events"][0]["Events"][0]["Severity"], "Warning");

        // Unsubscribe.
        assert_eq!(r.handle(&req(Method::Delete, &loc, "")).status, 204);
        assert_eq!(r.handle(&req(Method::Get, &format!("{loc}/Events"), "")).status, 404);
    }

    #[test]
    fn expand_query_inlines_members() {
        let r = open_router();
        r.handle(&req(Method::Post, "/redfish/v1/Systems", r#"{"Id":"a","Name":"a"}"#));
        r.handle(&req(Method::Post, "/redfish/v1/Systems", r#"{"Id":"b","Name":"b"}"#));
        let mut g = req(Method::Get, "/redfish/v1/Systems", "");
        g.query = Some("$expand=.".to_string());
        let resp = r.handle(&g);
        let v: Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(v["Members"].as_array().unwrap().len(), 2);
        assert_eq!(v["Members"][0]["Name"], "a");
    }

    #[test]
    fn reset_action_toggles_power_state() {
        let r = open_router();
        r.handle(&req(
            Method::Post,
            "/redfish/v1/Systems",
            r##"{"Id":"cn0","Name":"cn0","@odata.type":"#ComputerSystem.v1_20_0.ComputerSystem","PowerState":"On"}"##,
        ));
        let resp = r.handle(&req(
            Method::Post,
            "/redfish/v1/Systems/cn0/Actions/ComputerSystem.Reset",
            r#"{"ResetType":"ForceOff"}"#,
        ));
        assert_eq!(resp.status, 204);
        let got = r.handle(&req(Method::Get, "/redfish/v1/Systems/cn0", ""));
        let v: Value = serde_json::from_slice(&got.body).unwrap();
        assert_eq!(v["PowerState"], "Off");
        // Bad reset type is a 400; unknown system a 404; non-system a 405.
        let resp = r.handle(&req(
            Method::Post,
            "/redfish/v1/Systems/cn0/Actions/ComputerSystem.Reset",
            r#"{"ResetType":"Sideways"}"#,
        ));
        assert_eq!(resp.status, 400);
        let resp = r.handle(&req(
            Method::Post,
            "/redfish/v1/Systems/ghost/Actions/ComputerSystem.Reset",
            r#"{"ResetType":"On"}"#,
        ));
        assert_eq!(resp.status, 404);
        let resp = r.handle(&req(
            Method::Post,
            "/redfish/v1/Chassis/Actions/ComputerSystem.Reset",
            r#"{"ResetType":"On"}"#,
        ));
        assert_eq!(resp.status, 405);
    }

    #[test]
    fn pagination_keeps_total_count_and_adds_next_link() {
        let r = open_router();
        for id in ["a", "b", "c", "d"] {
            r.handle(&req(
                Method::Post,
                "/redfish/v1/Systems",
                &format!(r#"{{"Id":"{id}","Name":"{id}"}}"#),
            ));
        }
        let mut g = req(Method::Get, "/redfish/v1/Systems", "");
        g.query = Some("$top=2&$skip=1".to_string());
        let resp = r.handle(&g);
        assert_eq!(resp.status, 200);
        let v: Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(v["Members"].as_array().unwrap().len(), 2);
        // DSP0266: the count stays at the total collection size so clients
        // can size the collection; nextLink carries the paging state.
        assert_eq!(v["Members@odata.count"], 4);
        assert_eq!(v["Members@odata.nextLink"], "/redfish/v1/Systems?$skip=3&$top=2");

        // Follow the nextLink: the final page has no further link.
        let mut g = req(Method::Get, "/redfish/v1/Systems", "");
        g.query = Some("$skip=3&$top=2".to_string());
        let v: Value = serde_json::from_slice(&r.handle(&g).body).unwrap();
        assert_eq!(v["Members"].as_array().unwrap().len(), 1);
        assert_eq!(v["Members@odata.count"], 4);
        assert!(v.get("Members@odata.nextLink").is_none());
    }

    #[test]
    fn malformed_query_params_are_400() {
        let r = open_router();
        for bad in ["$top=abc", "$skip=-3", "$expand=yes", "$expand="] {
            let mut g = req(Method::Get, "/redfish/v1/Systems", "");
            g.query = Some(bad.to_string());
            let resp = r.handle(&g);
            assert_eq!(resp.status, 400, "{bad}");
            let v: Value = serde_json::from_slice(&resp.body).unwrap();
            assert_eq!(v["error"]["code"], "Base.1.0.QueryParameterValueTypeError", "{bad}");
        }
    }

    #[test]
    fn hot_get_serves_cached_bytes_with_etag() {
        let r = open_router();
        r.handle(&req(Method::Post, "/redfish/v1/Systems", r#"{"Id":"cn0","Name":"a"}"#));
        let first = r.handle(&req(Method::Get, "/redfish/v1/Systems/cn0", ""));
        let second = r.handle(&req(Method::Get, "/redfish/v1/Systems/cn0", ""));
        assert_eq!(first.status, 200);
        assert_eq!(first.body, second.body);
        let etag1 = first.headers.iter().find(|(k, _)| k == "ETag").cloned().unwrap();
        let etag2 = second.headers.iter().find(|(k, _)| k == "ETag").cloned().unwrap();
        assert_eq!(etag1, etag2);
        // Mutation invalidates: body and ETag both change.
        r.handle(&req(Method::Patch, "/redfish/v1/Systems/cn0", r#"{"Name":"b"}"#));
        let third = r.handle(&req(Method::Get, "/redfish/v1/Systems/cn0", ""));
        assert_ne!(third.body, second.body);
        let v: Value = serde_json::from_slice(&third.body).unwrap();
        assert_eq!(v["Name"], "b");
        assert_ne!(third.headers.iter().find(|(k, _)| k == "ETag").cloned().unwrap(), etag2);
    }

    #[test]
    fn head_reports_entity_length_and_etag_without_body() {
        let r = open_router();
        let get = r.handle(&req(Method::Get, "/redfish/v1", ""));
        let head = r.handle(&req(Method::Head, "/redfish/v1", ""));
        assert_eq!(head.status, 200);
        assert!(head.head_only, "HEAD must not transmit a body");
        assert_eq!(head.body.len(), get.body.len(), "HEAD advertises the entity length");
        assert!(head.headers.iter().any(|(k, _)| k == "ETag"), "HEAD keeps the ETag");
        let encoded = head.encode_head(true);
        let text = String::from_utf8(encoded).unwrap();
        assert!(
            text.contains(&format!("Content-Length: {}\r\n", get.body.len())),
            "{text}"
        );
    }
}
