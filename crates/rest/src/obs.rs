//! REST-layer instrumentation and the Redfish-native observability export.
//!
//! Two halves:
//!
//! * [`metrics`] — the REST service's instrument bundle, resolved once from
//!   the global [`ofmf_obs`] registry and cached in a `OnceLock` so the hot
//!   path never performs a name lookup.
//! * [`handle_get`] — materializes the live observability surface under the
//!   OFMF manager: `…/Managers/OFMF` is overlaid with an `Oem.OFMF`
//!   summary, `…/Managers/OFMF/MetricReports/live` renders the current
//!   registry snapshot as a `MetricReport`, and
//!   `…/LogServices/Observability/Entries` exposes the event ring as
//!   `LogEntry` resources. These documents are synthesized per GET — they
//!   are never stored in the tree, so the tree's link-closure invariant
//!   holds while the data stays live.

use crate::http::{Method, Response};
use ofmf_core::Ofmf;
use ofmf_obs::{Counter, Gauge, Histogram, Severity};
use redfish_model::odata::ODataId;
use redfish_model::path::top;
use redfish_model::resources::log::LogEntry;
use redfish_model::resources::telemetry::{MetricReport, MetricValue};
use redfish_model::resources::Resource;
use serde_json::{json, Value};
use std::sync::{Arc, OnceLock};

/// Instruments for one HTTP method.
pub(crate) struct MethodMetrics {
    /// `ofmf.rest.<method>.requests`
    pub requests: Arc<Counter>,
    /// `ofmf.rest.<method>.latency_ns`
    pub latency: Arc<Histogram>,
}

impl MethodMetrics {
    fn new(method: &str) -> MethodMetrics {
        MethodMetrics {
            requests: ofmf_obs::counter(&format!("ofmf.rest.{method}.requests")),
            latency: ofmf_obs::histogram(&format!("ofmf.rest.{method}.latency_ns")),
        }
    }
}

/// The REST service's instrument bundle.
pub(crate) struct RestMetrics {
    /// `ofmf.rest.accepted.total` — connections accepted.
    pub accepted: Arc<Counter>,
    /// `ofmf.rest.accept_queue.depth` — accepted-but-unserved connections.
    pub queue_depth: Arc<Gauge>,
    /// `ofmf.rest.connections.active` — connections currently being served.
    pub connections: Arc<Gauge>,
    /// `ofmf.rest.parse_errors.total` — requests rejected by the parser.
    pub parse_errors: Arc<Counter>,
    /// `ofmf.rest.sub_events.dropped` — subscriber events dropped because
    /// they failed to serialize at drain time (no-panic-at-dispatch).
    pub sub_events_dropped: Arc<Counter>,
    /// `ofmf.rest.pipelined.total` — requests parsed behind another request
    /// in the same readiness tick (HTTP/1.1 pipelining in action).
    pub pipelined: Arc<Counter>,
    /// `ofmf.rest.shed.total` — connections refused with 503 + `Retry-After`
    /// because the event loop was at its connection cap.
    pub shed: Arc<Counter>,
    /// `ofmf.rest.status.<class>` — responses by status class, index 0 = 1xx.
    pub status: [Arc<Counter>; 5],
    pub get: MethodMetrics,
    pub post: MethodMetrics,
    pub patch: MethodMetrics,
    pub delete: MethodMetrics,
}

impl RestMetrics {
    /// The bundle for `method` (HEAD shares GET's instruments).
    pub fn method(&self, m: Method) -> &MethodMetrics {
        match m {
            Method::Get | Method::Head => &self.get,
            Method::Post => &self.post,
            Method::Patch => &self.patch,
            Method::Delete => &self.delete,
        }
    }

    /// Count a response toward its status class.
    pub fn record_status(&self, status: u16) {
        let class = (status / 100).clamp(1, 5) as usize - 1;
        // ofmf-lint: allow(no-panic-path, "class is clamped to 0..=4 and status has 5 slots")
        self.status[class].inc();
    }
}

/// The process-wide REST instrument bundle.
pub(crate) fn metrics() -> &'static RestMetrics {
    static METRICS: OnceLock<RestMetrics> = OnceLock::new();
    METRICS.get_or_init(|| RestMetrics {
        accepted: ofmf_obs::counter("ofmf.rest.accepted.total"),
        queue_depth: ofmf_obs::gauge("ofmf.rest.accept_queue.depth"),
        connections: ofmf_obs::gauge("ofmf.rest.connections.active"),
        parse_errors: ofmf_obs::counter("ofmf.rest.parse_errors.total"),
        sub_events_dropped: ofmf_obs::counter("ofmf.rest.sub_events.dropped"),
        pipelined: ofmf_obs::counter("ofmf.rest.pipelined.total"),
        shed: ofmf_obs::counter("ofmf.rest.shed.total"),
        status: std::array::from_fn(|i| ofmf_obs::counter(&format!("ofmf.rest.status.{}xx", i + 1))),
        get: MethodMetrics::new("get"),
        post: MethodMetrics::new("post"),
        patch: MethodMetrics::new("patch"),
        delete: MethodMetrics::new("delete"),
    })
}

/// The live metric report's URI.
fn live_report_id() -> ODataId {
    ODataId::new(top::OBS_METRIC_REPORTS).child("live")
}

/// Serve the synthesized observability resources. Returns `None` for paths
/// outside the observability surface (the router falls through to the
/// stored tree).
pub(crate) fn handle_get(ofmf: &Ofmf, path: &ODataId) -> Option<Response> {
    let p = path.as_str().trim_end_matches('/');
    match p {
        top::OFMF_MANAGER => Some(manager_overlay(ofmf, path)),
        top::OBS_METRIC_REPORTS => Some(report_collection()),
        _ if p == live_report_id().as_str() => Some(live_report()),
        top::OBS_LOG_ENTRIES => Some(ring_collection()),
        top::OBS_TRACE_ENTRIES => Some(trace_collection()),
        _ => {
            let parent = path.parent()?;
            if parent.as_str() == top::OBS_LOG_ENTRIES {
                Some(ring_entry(path.leaf()))
            } else if parent.as_str() == top::OBS_TRACE_ENTRIES {
                Some(trace_entry(path.leaf()))
            } else {
                None
            }
        }
    }
}

/// `GET …/Managers/OFMF`: the stored manager document plus a live
/// `Oem.OFMF.Observability` summary.
fn manager_overlay(ofmf: &Ofmf, path: &ODataId) -> Response {
    let (mut body, etag) = match ofmf.get(path) {
        Ok(x) => x,
        Err(e) => return crate::router::error_response(&e),
    };
    let reg = ofmf_obs::global();
    let m = metrics();
    let requests: u64 = [&m.get, &m.post, &m.patch, &m.delete]
        .iter()
        .map(|mm| mm.requests.get())
        .sum();
    let exemplar = |mm: &MethodMetrics| match mm.latency.top_exemplar() {
        Some(id) => json!(id),
        None => Value::Null,
    };
    let summary = json!({
        "Enabled": ofmf_obs::enabled(),
        "UptimeMs": reg.uptime_ms(),
        "RestRequests": requests,
        "RingEvents": reg.ring().total_emitted(),
        "RetainedTraces": ofmf_obs::recorder().len(),
        "MetricReports": {"@odata.id": top::OBS_METRIC_REPORTS},
        "Tracing": {"@odata.id": top::OBS_TRACE_ENTRIES},
        "LatencyExemplars": {
            "Get": exemplar(&m.get),
            "Post": exemplar(&m.post),
            "Patch": exemplar(&m.patch),
            "Delete": exemplar(&m.delete),
        },
    });
    if let Value::Object(map) = &mut body {
        let oem = map.entry("Oem".to_string()).or_insert_with(|| json!({}));
        if let Value::Object(oem) = oem {
            #[cfg(feature = "lockcheck")]
            let payload = json!({"Observability": summary, "Lockcheck": lockcheck_summary()});
            #[cfg(not(feature = "lockcheck"))]
            let payload = json!({"Observability": summary});
            oem.insert("OFMF".to_string(), payload);
        }
    }
    Response::json(200, &body).with_header("ETag", &etag.to_header())
}

/// `Oem.OFMF.Lockcheck`: the recording shim's live lock health — hottest
/// hold sites, witnessed blocking-while-locked operations, and the
/// runtime lock-order graph summary. Present only when the server binary
/// was built with `--features lockcheck`.
#[cfg(feature = "lockcheck")]
fn lockcheck_summary() -> Value {
    ofmf_obs::publish_lockcheck();
    let holds = parking_lot::hold_time_report();
    let top: Vec<Value> = holds
        .iter()
        .take(8)
        .map(|h| {
            json!({
                "Site": format!("{}:{}", h.file, h.line),
                "Mode": h.mode,
                "Count": h.count,
                "TotalNs": h.total_ns,
                "MaxNs": h.max_ns,
                "P99Ns": h.p99_ns,
                "Contended": h.contended,
            })
        })
        .collect();
    let blocking: Vec<Value> = parking_lot::blocking_report()
        .iter()
        .map(|v| {
            json!({
                "Kind": v.kind,
                "Site": format!("{}:{}", v.file, v.line),
                "Held": v.held,
            })
        })
        .collect();
    let order = parking_lot::lock_order_report();
    json!({
        "HoldSites": holds.len(),
        "TopHolds": top,
        "BlockingWhileLocked": blocking,
        "OrderEdges": order.edges.len(),
        "OrderCycles": order.cycles.len(),
    })
}

/// `GET …/MetricReports`: the collection, always listing the live report.
fn report_collection() -> Response {
    Response::json(
        200,
        &json!({
            "@odata.id": top::OBS_METRIC_REPORTS,
            "@odata.type": "#MetricReportCollection.MetricReportCollection",
            "Name": "Live Metric Reports",
            "Members": [{"@odata.id": live_report_id().as_str()}],
            "Members@odata.count": 1,
        }),
    )
}

/// `GET …/MetricReports/live`: the registry snapshot as a `MetricReport`.
///
/// Counters and gauges become one `MetricValue` each; histograms expand to
/// `<name>.count/.mean/.p50/.p95/.p99/.max`.
fn live_report() -> Response {
    let reg = ofmf_obs::global();
    #[cfg(feature = "lockcheck")]
    ofmf_obs::publish_lockcheck();
    let snap = reg.snapshot();
    let origin = ODataId::new(top::OFMF_MANAGER);
    let now = ofmf_obs::unix_ms();
    let mut values = Vec::with_capacity(snap.counters.len() + snap.gauges.len() + snap.histograms.len() * 6);
    for (name, v) in &snap.counters {
        values.push(MetricValue::sample(name, *v as f64, &origin, now));
    }
    for (name, v) in &snap.gauges {
        values.push(MetricValue::sample(name, *v as f64, &origin, now));
    }
    for (name, h) in &snap.histograms {
        values.push(MetricValue::sample(
            &format!("{name}.count"),
            h.count as f64,
            &origin,
            now,
        ));
        values.push(MetricValue::sample(&format!("{name}.mean"), h.mean, &origin, now));
        values.push(MetricValue::sample(&format!("{name}.p50"), h.p50 as f64, &origin, now));
        values.push(MetricValue::sample(&format!("{name}.p95"), h.p95 as f64, &origin, now));
        values.push(MetricValue::sample(&format!("{name}.p99"), h.p99 as f64, &origin, now));
        values.push(MetricValue::sample(&format!("{name}.max"), h.max as f64, &origin, now));
    }
    let report = MetricReport::new(&ODataId::new(top::OBS_METRIC_REPORTS), "live", snap.uptime_ms, values);
    Response::json(200, &report.to_value())
}

/// `GET …/LogServices/Observability/Entries`: ring events as a collection.
fn ring_collection() -> Response {
    let events = ofmf_obs::global().ring().recent();
    let members: Vec<Value> = events
        .iter()
        .map(|e| json!({"@odata.id": ODataId::new(top::OBS_LOG_ENTRIES).child(&e.seq.to_string()).as_str()}))
        .collect();
    Response::json(
        200,
        &json!({
            "@odata.id": top::OBS_LOG_ENTRIES,
            "@odata.type": "#LogEntryCollection.LogEntryCollection",
            "Name": "Observability Events",
            "Members": members,
            "Members@odata.count": members.len(),
        }),
    )
}

/// `GET …/Entries/{seq}`: one ring event as a `LogEntry` (404 once
/// evicted).
fn ring_entry(seq: &str) -> Response {
    let collection = ODataId::new(top::OBS_LOG_ENTRIES);
    let Some(ev) = seq
        .parse::<u64>()
        .ok()
        .and_then(|n| ofmf_obs::global().ring().recent().into_iter().find(|e| e.seq == n))
    else {
        return crate::router::error_response(&redfish_model::RedfishError::NotFound(collection.child(seq)));
    };
    let message = match ev.trace_id {
        Some(tid) => format!("{}: {} (trace {tid})", ev.target, ev.message),
        None => format!("{}: {}", ev.target, ev.message),
    };
    let entry = LogEntry::event(
        &collection,
        &ev.seq.to_string(),
        ev.severity.as_str(),
        &message,
        "OFMF.1.0.ObservabilityEvent",
        &ODataId::new(top::OFMF_MANAGER),
        ev.unix_ms,
    );
    let mut body = entry.to_value();
    // Join: when the flight recorder retained the originating trace, the
    // entry links straight to it.
    if let Some(tid) = ev.trace_id {
        if ofmf_obs::recorder().get(tid).is_some() {
            if let Value::Object(map) = &mut body {
                map.insert(
                    "Oem".to_string(),
                    json!({"OFMF": {"Trace": {
                        "TraceId": tid,
                        "@odata.id": ODataId::new(top::OBS_TRACE_ENTRIES).child(&tid.to_string()).as_str(),
                    }}}),
                );
            }
        }
    }
    Response::json(200, &body)
}

/// `GET …/LogServices/Tracing/Entries`: retained flight-recorder traces.
fn trace_collection() -> Response {
    let traces = ofmf_obs::recorder().recent();
    let members: Vec<Value> = traces
        .iter()
        .map(|t| json!({"@odata.id": ODataId::new(top::OBS_TRACE_ENTRIES).child(&t.trace_id.to_string()).as_str()}))
        .collect();
    Response::json(
        200,
        &json!({
            "@odata.id": top::OBS_TRACE_ENTRIES,
            "@odata.type": "#LogEntryCollection.LogEntryCollection",
            "Name": "Flight Recorder Traces",
            "Members": members,
            "Members@odata.count": members.len(),
        }),
    )
}

/// `GET …/Tracing/Entries/{trace_id}`: one retained span tree as a
/// `LogEntry` whose `Oem.OFMF.Trace` carries the full tree (404 once
/// evicted).
fn trace_entry(id: &str) -> Response {
    let collection = ODataId::new(top::OBS_TRACE_ENTRIES);
    let Some(t) = id.parse::<u64>().ok().and_then(|n| ofmf_obs::recorder().get(n)) else {
        return crate::router::error_response(&redfish_model::RedfishError::NotFound(collection.child(id)));
    };
    let message = format!(
        "{}: {:.3} ms, {} spans ({})",
        t.route,
        t.duration_ns as f64 / 1e6,
        t.spans.len(),
        t.reason.as_str()
    );
    let severity = if t.errored { "Critical" } else { "OK" };
    let entry = LogEntry::event(
        &collection,
        id,
        severity,
        &message,
        "OFMF.1.0.TraceRecord",
        &ODataId::new(top::OFMF_MANAGER),
        t.started_unix_ms,
    );
    let mut body = entry.to_value();
    if let Value::Object(map) = &mut body {
        map.insert("Oem".to_string(), json!({"OFMF": {"Trace": trace_json(&t)}}));
    }
    Response::json(200, &body)
}

/// Render a recorded trace as plain JSON (the CLI re-renders this as a
/// tree with self-time and the critical path).
fn trace_json(t: &ofmf_obs::RecordedTrace) -> Value {
    let spans: Vec<Value> = t
        .spans
        .iter()
        .map(|s| {
            let ann: Vec<Value> = s.annotations.iter().map(|(k, v)| json!([k, v])).collect();
            json!({
                "Id": s.id,
                "ParentId": s.parent_id,
                "Name": s.name,
                "StartNs": s.start_ns,
                "DurationNs": s.duration_ns,
                "Status": s.status.as_str(),
                "Annotations": ann,
            })
        })
        .collect();
    json!({
        "TraceId": t.trace_id,
        "Route": t.route,
        "StartedUnixMs": t.started_unix_ms,
        "DurationNs": t.duration_ns,
        "Errored": t.errored,
        "Reason": t.reason.as_str(),
        "SpansDropped": t.spans_dropped,
        "Spans": spans,
    })
}

/// Emit a warning event about a rejected (unparseable) request.
pub(crate) fn note_parse_error(detail: &str) {
    let m = metrics();
    m.parse_errors.inc();
    ofmf_obs::global()
        .ring()
        .emit(Severity::Warning, "ofmf.rest", format!("request rejected: {detail}"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_classes_clamp() {
        let m = metrics();
        let before = m.status[4].get();
        m.record_status(500);
        m.record_status(599);
        m.record_status(999); // clamped into 5xx
        assert_eq!(m.status[4].get(), before + 3);
    }
}
