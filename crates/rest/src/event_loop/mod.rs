//! The epoll readiness event loop behind [`crate::server::RestServer`].
//!
//! Architecture (shared-acceptor / worker-core):
//!
//! * One **acceptor** thread blocks in `accept`, applies the connection cap
//!   (over-cap connections get a canned `503` + `Retry-After` and are
//!   closed — load-shedding, never hangs), and hands each admitted socket
//!   to the least-loaded worker's inbox, then pokes that worker's wake
//!   socket.
//! * N **worker** threads each own one [`sys::Epoll`] instance and a slab
//!   of [`conn::Connection`] state machines. A worker sleeps in
//!   `epoll_wait` until a socket turns readable/writable or the acceptor
//!   wakes it, then drives the affected connections: incremental parse →
//!   route → vectored write, with HTTP/1.1 pipelining.
//!
//! There is no cross-worker migration: a connection lives and dies on the
//! worker that adopted it, so connection state needs no locking at all.
//! The wake channel is a loopback TCP socketpair (the workspace vendors no
//! libc, so `pipe(2)` is out of easy reach; a byte on loopback does the
//! same job).

pub(crate) mod conn;
pub(crate) mod sys;

use crate::http::Response;
use crate::router::Router;
use conn::{Connection, Tick};
use parking_lot::Mutex;
use redfish_model::RedfishError;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use sys::{Epoll, EpollEvent, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};

/// Token reserved for a worker's wake socket.
const WAKE_TOKEN: u64 = u64::MAX;

/// Events drained per `epoll_wait` call.
const MAX_EVENTS: usize = 256;

/// `Retry-After` seconds advertised when shedding load at the cap.
const SHED_RETRY_AFTER_SECS: u64 = 1;

/// State one worker shares with the acceptor.
struct WorkerShared {
    /// Admitted sockets awaiting adoption by the worker.
    inbox: Mutex<VecDeque<TcpStream>>,
    /// Connections assigned to this worker (queued + live); the acceptor
    /// balances on this.
    load: AtomicUsize,
    /// Write half of the worker's wake socketpair.
    waker: Mutex<TcpStream>,
}

impl WorkerShared {
    /// Poke the worker out of `epoll_wait`. A short or failed write is
    /// fine — it means a wake byte is already queued.
    fn wake(&self) {
        let _ = self.waker.lock().write(&[1u8]);
    }
}

/// A running epoll REST server.
pub(crate) struct EventLoopServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<(Arc<WorkerShared>, Option<JoinHandle<()>>)>,
}

impl EventLoopServer {
    /// Bind `bind_addr` and serve `router` on `workers` event-loop threads,
    /// shedding load past `max_connections` concurrently open sockets.
    pub(crate) fn start(
        bind_addr: &str,
        router: Arc<Router>,
        workers: usize,
        max_connections: usize,
    ) -> io::Result<EventLoopServer> {
        let listener = TcpListener::bind(bind_addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicUsize::new(0));
        let max_connections = max_connections.max(1);

        let mut worker_handles = Vec::with_capacity(workers.max(1));
        for i in 0..workers.max(1) {
            let (wake_tx, wake_rx) = wake_pair()?;
            let ep = Epoll::new()?;
            let shared = Arc::new(WorkerShared {
                inbox: Mutex::new(VecDeque::new()),
                load: AtomicUsize::new(0),
                waker: Mutex::new(wake_tx),
            });
            let mut state = WorkerState {
                ep,
                wake_rx,
                shared: Arc::clone(&shared),
                router: Arc::clone(&router),
                shutdown: Arc::clone(&shutdown),
                active: Arc::clone(&active),
                slots: Vec::new(),
                free: Vec::new(),
            };
            let handle = std::thread::Builder::new()
                .name(format!("ofmf-epoll-worker-{i}"))
                .spawn(move || state.run())?;
            worker_handles.push((shared, Some(handle)));
        }

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_workers: Vec<Arc<WorkerShared>> = worker_handles.iter().map(|(s, _)| Arc::clone(s)).collect();
        let canned_503 = shed_response_bytes();
        let acceptor = std::thread::Builder::new()
            .name("ofmf-epoll-acceptor".to_string())
            .spawn(move || {
                let metrics = crate::obs::metrics();
                for stream in listener.incoming() {
                    if accept_shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(s) = stream else { continue };
                    metrics.accepted.inc();
                    if active.load(Ordering::Acquire) >= max_connections {
                        shed(s, &canned_503);
                        continue;
                    }
                    active.fetch_add(1, Ordering::AcqRel);
                    // Least-loaded assignment; ties go to the first worker.
                    let Some(target) = accept_workers.iter().min_by_key(|w| w.load.load(Ordering::Acquire)) else {
                        active.fetch_sub(1, Ordering::AcqRel);
                        continue;
                    };
                    target.load.fetch_add(1, Ordering::AcqRel);
                    metrics.queue_depth.add(1);
                    target.inbox.lock().push_back(s);
                    target.wake();
                }
            })?;

        Ok(EventLoopServer {
            addr,
            shutdown,
            acceptor: Some(acceptor),
            workers: worker_handles,
        })
    }

    /// The bound address.
    pub(crate) fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, close every connection, join all threads.
    pub(crate) fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        // Unblock accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for (shared, _) in &self.workers {
            shared.wake();
        }
        for (_, handle) in self.workers.iter_mut() {
            if let Some(h) = handle.take() {
                let _ = h.join();
            }
        }
    }
}

impl Drop for EventLoopServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The canned load-shed response: `503` + `Retry-After`, `Connection:
/// close`, encoded once at startup and written verbatim past the cap.
fn shed_response_bytes() -> Vec<u8> {
    let resp = crate::router::error_response(&RedfishError::Busy {
        retry_after_secs: SHED_RETRY_AFTER_SECS,
    });
    encode_whole(&resp)
}

/// Serialize head + body into one buffer (startup-time only).
fn encode_whole(resp: &Response) -> Vec<u8> {
    let mut out = resp.encode_head(false);
    out.extend_from_slice(&resp.body);
    out
}

/// Refuse a connection at the cap: best-effort canned 503, then close.
/// The write happens on the acceptor thread, but the response is a single
/// pre-encoded buffer into an empty send buffer — it cannot stall accept.
fn shed(mut stream: TcpStream, canned: &[u8]) {
    let metrics = crate::obs::metrics();
    metrics.shed.inc();
    metrics.record_status(503);
    let _ = stream.set_nodelay(true);
    let _ = stream.write_all(canned);
}

/// A nonblocking loopback socketpair used to wake a worker out of
/// `epoll_wait` (the workspace has no `pipe(2)` wrapper).
fn wake_pair() -> io::Result<(TcpStream, TcpStream)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let tx = TcpStream::connect(listener.local_addr()?)?;
    let local = tx.local_addr()?;
    // Accept until our own connection arrives; a stray connect to the
    // ephemeral port must not be adopted as the waker.
    for _ in 0..16 {
        let (rx, peer) = listener.accept()?;
        if peer == local {
            tx.set_nonblocking(true)?;
            tx.set_nodelay(true)?;
            rx.set_nonblocking(true)?;
            return Ok((tx, rx));
        }
    }
    Err(io::Error::other("wake socketpair: own connection never arrived"))
}

/// One worker's event loop state.
struct WorkerState {
    ep: Epoll,
    wake_rx: TcpStream,
    shared: Arc<WorkerShared>,
    router: Arc<Router>,
    shutdown: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    /// Slab of connections, indexed by epoll token.
    slots: Vec<Option<Connection>>,
    free: Vec<usize>,
}

impl WorkerState {
    fn run(&mut self) {
        if self.ep.add(self.wake_rx.as_raw_fd(), WAKE_TOKEN, EPOLLIN).is_err() {
            return;
        }
        let mut events = vec![EpollEvent::default(); MAX_EVENTS];
        while let Ok(n) = self.ep.wait(&mut events, -1) {
            for ev in events.iter().take(n) {
                let (token, mask) = (ev.token(), ev.mask());
                if token == WAKE_TOKEN {
                    drain_wake(&self.wake_rx);
                    self.adopt();
                } else {
                    self.handle_event(token as usize, mask);
                }
            }
            if self.shutdown.load(Ordering::Acquire) {
                break;
            }
        }
        self.teardown();
    }

    /// Move admitted sockets from the inbox into the slab.
    fn adopt(&mut self) {
        let metrics = crate::obs::metrics();
        loop {
            let stream = self.shared.inbox.lock().pop_front();
            let Some(stream) = stream else { break };
            metrics.queue_depth.sub(1);
            if stream.set_nonblocking(true).is_err() {
                self.unassign();
                continue;
            }
            let _ = stream.set_nodelay(true);
            let idx = self.free.pop().unwrap_or_else(|| {
                self.slots.push(None);
                self.slots.len() - 1
            });
            if self
                .ep
                .add(stream.as_raw_fd(), idx as u64, EPOLLIN | EPOLLRDHUP)
                .is_ok()
            {
                metrics.connections.add(1);
                if let Some(slot) = self.slots.get_mut(idx) {
                    *slot = Some(Connection::new(stream));
                }
            } else {
                self.free.push(idx);
                self.unassign();
            }
        }
    }

    /// Drive one connection through a readiness event.
    fn handle_event(&mut self, idx: usize, mask: u32) {
        // Take the connection out of its slot for the duration of the tick
        // (sidesteps split borrows of the slab vs. the router/epoll).
        let Some(mut c) = self.slots.get_mut(idx).and_then(Option::take) else {
            return;
        };
        let router = Arc::clone(&self.router);
        let mut tick = Tick::Open;
        if mask & (EPOLLIN | EPOLLRDHUP) != 0 {
            tick = c.on_readable(&router);
        }
        if tick == Tick::Open && mask & EPOLLOUT != 0 {
            tick = c.flush();
        }
        if tick == Tick::Open && mask & (EPOLLERR | EPOLLHUP) != 0 && mask & EPOLLIN == 0 {
            tick = Tick::Closed;
        }
        if tick == Tick::Closed {
            self.close_conn(c, idx);
            return;
        }
        // Arm EPOLLOUT only while response bytes remain queued; a
        // permanently-armed EPOLLOUT would spin the level-triggered loop.
        let want_out = c.wants_write();
        if want_out != c.armed_for_write {
            let interest = EPOLLIN | EPOLLRDHUP | if want_out { EPOLLOUT } else { 0 };
            if self.ep.modify(c.stream().as_raw_fd(), idx as u64, interest).is_ok() {
                c.armed_for_write = want_out;
            }
        }
        if let Some(slot) = self.slots.get_mut(idx) {
            *slot = Some(c);
        }
    }

    fn close_conn(&mut self, c: Connection, idx: usize) {
        let _ = self.ep.delete(c.stream().as_raw_fd());
        self.free.push(idx);
        crate::obs::metrics().connections.sub(1);
        self.unassign();
    }

    /// Return one connection's worth of cap + load accounting.
    fn unassign(&self) {
        self.shared.load.fetch_sub(1, Ordering::AcqRel);
        self.active.fetch_sub(1, Ordering::AcqRel);
    }

    /// Shutdown: release every live and queued connection so the gauges and
    /// the global cap return to zero.
    fn teardown(&mut self) {
        let metrics = crate::obs::metrics();
        for slot in std::mem::take(&mut self.slots) {
            if slot.is_some() {
                metrics.connections.sub(1);
                self.unassign();
            }
        }
        loop {
            let stream = self.shared.inbox.lock().pop_front();
            if stream.is_none() {
                break;
            }
            metrics.queue_depth.sub(1);
            self.unassign();
        }
    }
}

/// Swallow queued wake bytes.
fn drain_wake(mut rx: &TcpStream) {
    let mut buf = [0u8; 64];
    while matches!(rx.read(&mut buf), Ok(n) if n > 0) {}
}
