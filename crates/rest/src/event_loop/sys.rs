//! The event loop's syscall facade: raw Linux `epoll` via inline assembly.
//!
//! The workspace vendors no `libc`, and `std` exposes no readiness API, so
//! the four syscalls the event loop needs are issued directly. This file
//! is the **only** place in the production crates where `unsafe` is legal
//! (the `syscall-facade` lint rule enforces that), and the unsafety is
//! tightly scoped: every wrapper passes kernel-owned integers plus
//! pointers derived from live Rust references, and no wrapper retains a
//! pointer past the call.
//!
//! Everything else the server does with sockets — nonblocking accept,
//! reads, vectored writes, `FIONBIO`, `TCP_NODELAY` — goes through safe
//! `std::net` APIs; only readiness *notification* needs the kernel
//! interface `std` does not wrap.

#![allow(unsafe_code)] // the one audited exception to the crate-wide deny

use std::io;

/// Readiness: the fd has bytes to read (or a peer to accept).
pub const EPOLLIN: u32 = 0x001;
/// Readiness: the fd's send buffer has room.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported, never requested).
pub const EPOLLERR: u32 = 0x008;
/// Hangup: the peer closed (always reported, never requested).
pub const EPOLLHUP: u32 = 0x010;
/// The peer shut down its writing half.
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: usize = 1;
const EPOLL_CTL_DEL: usize = 2;
const EPOLL_CTL_MOD: usize = 3;
const EPOLL_CLOEXEC: usize = 0o2000000;

/// One readiness event, kernel ABI layout. x86_64 packs the struct
/// (12 bytes); every other architecture uses natural alignment.
#[cfg(target_arch = "x86_64")]
#[repr(C, packed)]
#[derive(Clone, Copy, Default)]
pub struct EpollEvent {
    /// Ready event mask (`EPOLLIN` | …).
    pub events: u32,
    /// The token registered with the fd.
    pub data: u64,
}

/// One readiness event, kernel ABI layout (naturally aligned variant).
#[cfg(not(target_arch = "x86_64"))]
#[repr(C)]
#[derive(Clone, Copy, Default)]
pub struct EpollEvent {
    /// Ready event mask (`EPOLLIN` | …).
    pub events: u32,
    _pad: u32,
    /// The token registered with the fd.
    pub data: u64,
}

impl EpollEvent {
    /// An event record for registration.
    #[cfg(target_arch = "x86_64")]
    fn with(events: u32, data: u64) -> EpollEvent {
        EpollEvent { events, data }
    }

    /// An event record for registration (padded variant).
    #[cfg(not(target_arch = "x86_64"))]
    fn with(events: u32, data: u64) -> EpollEvent {
        EpollEvent { events, _pad: 0, data }
    }

    /// The registered token, read through an unaligned-safe copy.
    pub fn token(&self) -> u64 {
        let e = *self;
        e.data
    }

    /// The ready mask, read through an unaligned-safe copy.
    pub fn mask(&self) -> u32 {
        let e = *self;
        e.events
    }
}

#[cfg(target_arch = "x86_64")]
mod nr {
    pub const CLOSE: usize = 3;
    pub const EPOLL_WAIT: usize = 232;
    pub const EPOLL_CTL: usize = 233;
    pub const EPOLL_CREATE1: usize = 291;
}

#[cfg(target_arch = "aarch64")]
mod nr {
    pub const CLOSE: usize = 57;
    pub const EPOLL_PWAIT: usize = 22;
    pub const EPOLL_CTL: usize = 21;
    pub const EPOLL_CREATE1: usize = 20;
}

/// Issue a raw syscall with up to five arguments, returning the kernel's
/// raw result (negative errno on failure).
///
/// Safety: the caller must pass argument values that are valid for the
/// specific syscall — for the wrappers below that means live fds and
/// pointers to memory owned by the caller for the duration of the call.
#[cfg(target_arch = "x86_64")]
unsafe fn syscall5(nr: usize, a1: usize, a2: usize, a3: usize, a4: usize, a5: usize) -> isize {
    let ret: isize;
    // SAFETY: `syscall` clobbers rcx/r11 (declared) and returns in rax; all
    // argument registers follow the x86_64 Linux syscall ABI.
    unsafe {
        core::arch::asm!(
            "syscall",
            inlateout("rax") nr as isize => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            in("r8") a5,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    ret
}

/// Issue a raw syscall with up to five arguments (aarch64 `svc 0` ABI).
///
/// Safety: as for the x86_64 variant — arguments must be valid for the
/// syscall being issued.
#[cfg(target_arch = "aarch64")]
unsafe fn syscall5(nr: usize, a1: usize, a2: usize, a3: usize, a4: usize, a5: usize) -> isize {
    let ret: isize;
    // SAFETY: aarch64 Linux syscall ABI: number in x8, args in x0..x4,
    // result in x0.
    unsafe {
        core::arch::asm!(
            "svc 0",
            in("x8") nr,
            inlateout("x0") a1 => ret,
            in("x1") a2,
            in("x2") a3,
            in("x3") a4,
            in("x4") a5,
            options(nostack),
        );
    }
    ret
}

/// Map a raw kernel return into `io::Result<usize>`.
fn check(ret: isize) -> io::Result<usize> {
    if ret < 0 {
        Err(io::Error::from_raw_os_error(-ret as i32))
    } else {
        Ok(ret as usize)
    }
}

/// An owned epoll instance; the fd is closed on drop.
pub struct Epoll {
    fd: i32,
}

impl Epoll {
    /// `epoll_create1(EPOLL_CLOEXEC)`.
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: no pointers; the kernel allocates and returns a fresh fd.
        let fd = check(unsafe { syscall5(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0) })?;
        Ok(Epoll { fd: fd as i32 })
    }

    /// Register `fd` for `interest`, tagging events with `token`.
    pub fn add(&self, fd: i32, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Change the interest mask of an already-registered `fd`.
    pub fn modify(&self, fd: i32, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Deregister `fd`.
    pub fn delete(&self, fd: i32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    fn ctl(&self, op: usize, fd: i32, token: u64, interest: u32) -> io::Result<()> {
        let ev = EpollEvent::with(interest, token);
        // SAFETY: `ev` lives on the stack for the duration of the call; the
        // kernel copies it before returning. DEL ignores the event pointer.
        check(unsafe {
            syscall5(
                nr::EPOLL_CTL,
                self.fd as usize,
                op,
                fd as usize,
                std::ptr::addr_of!(ev) as usize,
                0,
            )
        })?;
        Ok(())
    }

    /// Block until at least one registered fd is ready (or `timeout_ms`
    /// elapses; negative waits forever). Returns the number of events
    /// written into `events`. `EINTR` is reported as zero events.
    #[cfg_attr(feature = "lockcheck", track_caller)]
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        if events.is_empty() {
            return Ok(0);
        }
        #[cfg(feature = "lockcheck")]
        parking_lot::blocking_op("sys.epoll_wait");
        // SAFETY: `events` is a live, writable slice for the duration of
        // the call; `maxevents` is its exact length, so the kernel never
        // writes out of bounds.
        let ret = unsafe {
            #[cfg(target_arch = "x86_64")]
            {
                syscall5(
                    nr::EPOLL_WAIT,
                    self.fd as usize,
                    events.as_mut_ptr() as usize,
                    events.len(),
                    timeout_ms as usize,
                    0,
                )
            }
            #[cfg(target_arch = "aarch64")]
            {
                // epoll_pwait with a null sigmask is epoll_wait.
                syscall5(
                    nr::EPOLL_PWAIT,
                    self.fd as usize,
                    events.as_mut_ptr() as usize,
                    events.len(),
                    timeout_ms as usize,
                    0,
                )
            }
        };
        match check(ret) {
            Ok(n) => Ok(n),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(0),
            Err(e) => Err(e),
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: `self.fd` is the epoll fd this struct owns; nothing else
        // closes it.
        let _ = unsafe { syscall5(nr::CLOSE, self.fd as usize, 0, 0, 0, 0) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn epoll_reports_readable_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut tx = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (rx, _) = listener.accept().unwrap();

        let ep = Epoll::new().unwrap();
        ep.add(rx.as_raw_fd(), 7, EPOLLIN).unwrap();

        let mut events = [EpollEvent::default(); 4];
        // Nothing readable yet.
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);

        tx.write_all(b"x").unwrap();
        tx.flush().unwrap();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 7);
        assert_ne!(events[0].mask() & EPOLLIN, 0);

        // Modify to writable interest; an idle socket is writable.
        ep.modify(rx.as_raw_fd(), 9, EPOLLOUT).unwrap();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 9);
        assert_ne!(events[0].mask() & EPOLLOUT, 0);

        ep.delete(rx.as_raw_fd()).unwrap();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
    }
}
