//! Per-connection state machine: reading → routing → writing.
//!
//! Each connection owns a nonblocking socket, an accumulation buffer of
//! unparsed request bytes, and a queue of encoded responses. Readiness
//! events drive it:
//!
//! * **readable** — drain the socket into the buffer, parse as many
//!   complete requests as arrived (HTTP/1.1 pipelining), route each one,
//!   and append its encoded response to the write queue.
//! * **writable** — flush the queue with vectored writes; response bodies
//!   served from the registry's wire cache are written straight from the
//!   shared `Arc<[u8]>`, never copied.
//!
//! A slow or idle client simply leaves its buffers parked here — no thread
//! is pinned, no timeout polling runs. Bounds are enforced by the parser
//! (`MAX_HEADER_BYTES`/`MAX_BODY`), so a slowloris peer can hold open at
//! most one connection slot and 64 KiB of buffered bytes.

use crate::http::{parse_request, Body, Response};
use crate::router::Router;
use std::collections::VecDeque;
use std::io::{IoSlice, Read, Write};
use std::net::TcpStream;

/// Stop reading more bytes in one tick once this much is buffered; the
/// level-triggered loop re-delivers readiness so pipelining floods cannot
/// starve other connections.
const READ_CAP_PER_TICK: usize = 64 * 1024;

/// Max buffers gathered into one vectored write.
const MAX_IOSLICES: usize = 16;

/// What a readiness tick left behind.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub(crate) enum Tick {
    /// Keep the connection registered.
    Open,
    /// Close and drop the connection.
    Closed,
}

/// One encoded response awaiting transmission.
struct OutBuf {
    head: Vec<u8>,
    /// `None` for empty bodies and HEAD responses (the head still
    /// advertises the entity's real `Content-Length`).
    body: Option<Body>,
}

impl OutBuf {
    fn len(&self) -> usize {
        self.head.len() + self.body.as_deref().map_or(0, <[u8]>::len)
    }
}

/// A connection owned by one event-loop worker.
pub(crate) struct Connection {
    stream: TcpStream,
    read_buf: Vec<u8>,
    out: VecDeque<OutBuf>,
    /// Bytes of the front `OutBuf` already written.
    front_pos: usize,
    /// Close once the write queue drains (Connection: close, parse error,
    /// or peer EOF).
    close_after_flush: bool,
    /// The worker's current epoll interest includes EPOLLOUT.
    pub(crate) armed_for_write: bool,
}

impl Connection {
    pub(crate) fn new(stream: TcpStream) -> Connection {
        Connection {
            stream,
            read_buf: Vec::new(),
            out: VecDeque::new(),
            front_pos: 0,
            close_after_flush: false,
            armed_for_write: false,
        }
    }

    pub(crate) fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Unflushed response bytes remain queued.
    pub(crate) fn wants_write(&self) -> bool {
        !self.out.is_empty()
    }

    /// Readable readiness: drain the socket, parse, route, enqueue, flush.
    pub(crate) fn on_readable(&mut self, router: &Router) -> Tick {
        let mut scratch = [0u8; 16 * 1024];
        let mut peer_closed = false;
        loop {
            match self.stream.read(&mut scratch) {
                Ok(0) => {
                    peer_closed = true;
                    break;
                }
                Ok(n) => {
                    self.read_buf.extend_from_slice(scratch.get(..n).unwrap_or_default());
                    if self.read_buf.len() >= READ_CAP_PER_TICK {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return Tick::Closed,
            }
        }
        let tick = self.process(router, peer_closed);
        if tick == Tick::Closed {
            return Tick::Closed;
        }
        if peer_closed && !self.wants_write() {
            // Clean EOF with nothing left to send.
            return Tick::Closed;
        }
        self.flush()
    }

    /// Parse every complete request buffered so far and route it.
    fn process(&mut self, router: &Router, peer_closed: bool) -> Tick {
        let metrics = crate::obs::metrics();
        let mut consumed_total = 0usize;
        let mut parsed_in_tick = 0usize;
        while !self.close_after_flush {
            match parse_request(self.read_buf.get(consumed_total..).unwrap_or_default()) {
                Ok(Some((req, consumed))) => {
                    consumed_total += consumed;
                    parsed_in_tick += 1;
                    if parsed_in_tick > 1 {
                        metrics.pipelined.inc();
                    }
                    let keep = req.keep_alive();
                    let resp = router.handle(&req);
                    self.enqueue(resp, keep);
                    if !keep {
                        self.close_after_flush = true;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    crate::obs::note_parse_error(&format!("{e:?}"));
                    metrics.record_status(e.status());
                    self.enqueue(e.response(), false);
                    self.close_after_flush = true;
                    break;
                }
            }
        }
        self.read_buf.drain(..consumed_total);
        if peer_closed {
            // Whatever is buffered now is all there will ever be; anything
            // unparsed is an incomplete request the peer abandoned.
            self.close_after_flush = true;
        }
        Tick::Open
    }

    fn enqueue(&mut self, resp: Response, keep_alive: bool) {
        let head = resp.encode_head(keep_alive && !self.close_after_flush);
        let body = if resp.head_only || resp.body.is_empty() {
            None
        } else {
            Some(resp.body)
        };
        self.out.push_back(OutBuf { head, body });
    }

    /// Writable readiness (or post-read): flush queued responses with
    /// vectored writes until the socket is full or the queue is empty.
    pub(crate) fn flush(&mut self) -> Tick {
        loop {
            if self.out.is_empty() {
                return if self.close_after_flush {
                    Tick::Closed
                } else {
                    Tick::Open
                };
            }
            let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(MAX_IOSLICES);
            for (i, buf) in self.out.iter().enumerate() {
                if slices.len() >= MAX_IOSLICES {
                    break;
                }
                let skip = if i == 0 { self.front_pos } else { 0 };
                if let Some(rest) = buf.head.get(skip..) {
                    if !rest.is_empty() {
                        slices.push(IoSlice::new(rest));
                    }
                    if let Some(body) = &buf.body {
                        slices.push(IoSlice::new(body));
                    }
                } else if let Some(body) = buf.body.as_deref().and_then(|b| b.get(skip - buf.head.len()..)) {
                    if !body.is_empty() {
                        slices.push(IoSlice::new(body));
                    }
                }
            }
            match self.stream.write_vectored(&slices) {
                Ok(0) => return Tick::Closed,
                Ok(n) => self.advance(n),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Tick::Open,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                // Mid-response disconnect (EPIPE / reset): drop quietly.
                Err(_) => return Tick::Closed,
            }
        }
    }

    /// Account `n` written bytes against the queue front.
    fn advance(&mut self, mut n: usize) {
        while n > 0 {
            let Some(front) = self.out.front() else { return };
            let remaining = front.len() - self.front_pos;
            if n < remaining {
                self.front_pos += n;
                return;
            }
            n -= remaining;
            self.front_pos = 0;
            self.out.pop_front();
        }
    }
}
