//! The REST server: a bounded worker pool over `std::net::TcpListener`.
//!
//! Connections are accepted on a dedicated thread and handed to workers via
//! a bounded crossbeam channel (back-pressure instead of unbounded thread
//! spawn). Each worker serves its connection's requests until the client
//! closes or asks `Connection: close`. Shutdown is cooperative: a flag plus
//! a self-connection to unblock `accept`.

use crate::http::{read_request, ParseError, Response};
use crate::router::Router;
use crossbeam::channel::{bounded, Receiver, Sender};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Maximum queued-but-unserved connections.
const ACCEPT_BACKLOG: usize = 64;

/// A running REST server.
pub struct RestServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl RestServer {
    /// Bind `bind_addr` (use port 0 for an ephemeral port) and serve
    /// `router` on `workers` worker threads.
    pub fn start(bind_addr: &str, router: Arc<Router>, workers: usize) -> std::io::Result<RestServer> {
        let listener = TcpListener::bind(bind_addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, rx): (Sender<TcpStream>, Receiver<TcpStream>) = bounded(ACCEPT_BACKLOG);

        let mut worker_handles = Vec::with_capacity(workers);
        for i in 0..workers.max(1) {
            let rx = rx.clone();
            let router = Arc::clone(&router);
            let worker_shutdown = Arc::clone(&shutdown);
            let handle = std::thread::Builder::new()
                .name(format!("ofmf-rest-worker-{i}"))
                .spawn(move || {
                    let metrics = crate::obs::metrics();
                    while let Ok(stream) = rx.recv() {
                        metrics.queue_depth.sub(1);
                        metrics.connections.add(1);
                        serve_connection(stream, &router, &worker_shutdown);
                        metrics.connections.sub(1);
                        if worker_shutdown.load(Ordering::Acquire) {
                            break;
                        }
                    }
                })?;
            worker_handles.push(handle);
        }

        let accept_shutdown = Arc::clone(&shutdown);
        let acceptor = std::thread::Builder::new()
            .name("ofmf-rest-acceptor".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    match stream {
                        Ok(s) => {
                            let metrics = crate::obs::metrics();
                            metrics.accepted.inc();
                            metrics.queue_depth.add(1);
                            // Blocking send applies back-pressure when all
                            // workers are busy and the backlog is full.
                            if tx.send(s).is_err() {
                                break;
                            }
                        }
                        Err(_) => continue,
                    }
                }
                // Dropping tx closes the worker channel.
            })?;

        Ok(RestServer {
            addr,
            shutdown,
            acceptor: Some(acceptor),
            workers: worker_handles,
        })
    }

    /// The bound address (for clients when port 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Base URL, e.g. `http://127.0.0.1:8421`.
    pub fn base_url(&self) -> String {
        format!("http://{}", self.addr)
    }

    /// Stop accepting, drain workers, join threads.
    pub fn shutdown(mut self) {
        self.do_shutdown();
    }

    fn do_shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        // Unblock accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for RestServer {
    fn drop(&mut self) {
        self.do_shutdown();
    }
}

fn serve_connection(stream: TcpStream, router: &Router, shutdown: &AtomicBool) {
    // A short read timeout lets idle keep-alive connections observe the
    // shutdown flag instead of pinning a worker forever.
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(200)));
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else { return };
    let mut writer = write_half;
    let mut reader = BufReader::new(stream);
    loop {
        match read_request(&mut reader) {
            Ok(req) => {
                let keep = req.keep_alive();
                let resp = router.handle(&req);
                if resp.write_to(&mut writer, keep).is_err() {
                    return;
                }
                if !keep {
                    return;
                }
            }
            Err(ParseError::ConnectionClosed) => return,
            Err(ParseError::IdleTimeout) => {
                if shutdown.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
            Err(e) => {
                let status = match e {
                    ParseError::TooLarge => 413,
                    ParseError::HeaderTooLarge => 431,
                    ParseError::BadMethod => 405,
                    _ => 400,
                };
                crate::obs::note_parse_error(&format!("{e:?}"));
                crate::obs::metrics().record_status(status);
                let body = serde_json::json!({
                    "error": {"code": "Base.1.0.MalformedJSON", "message": format!("{e:?}")}
                });
                let _ = Response::json(status, &body).write_to(&mut writer, false);
                return;
            }
        }
    }
}
