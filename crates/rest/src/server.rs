//! The REST server facade over two interchangeable wire backends.
//!
//! * [`Backend::Epoll`] (default on Linux) — the readiness event loop in
//!   [`crate::event_loop`]: a shared acceptor, per-worker epoll instances,
//!   per-connection state machines, incremental parsing, pipelining, and a
//!   connection cap with 503 load-shedding. Thousands of idle keep-alive
//!   connections cost nothing but memory.
//! * [`Backend::ThreadPool`] — the original bounded worker pool: one
//!   blocking thread per in-flight connection, a bounded crossbeam channel
//!   for backpressure, and a 200 ms read-timeout poll so idle connections
//!   can observe shutdown. Kept as the measured baseline for
//!   `rest_throughput` and as the fallback on platforms without the raw
//!   epoll facade.
//!
//! Both backends serve the same [`Router`] and record the same metrics, so
//! everything above the socket layer is backend-agnostic.

use crate::http::read_request;
use crate::router::Router;
use crossbeam::channel::{bounded, Receiver, Sender};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
use crate::event_loop::EventLoopServer;

/// Maximum queued-but-unserved connections (thread-pool backend).
const ACCEPT_BACKLOG: usize = 64;

/// Which wire backend serves the sockets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Nonblocking readiness event loop (Linux; falls back to the thread
    /// pool where the raw epoll facade is unavailable).
    Epoll,
    /// Blocking bounded worker pool.
    ThreadPool,
}

/// Server tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads (event-loop workers or pool threads).
    pub workers: usize,
    /// Concurrently open connections before the epoll backend sheds load
    /// with `503` + `Retry-After` (ignored by the thread pool, which
    /// back-pressures through its bounded accept queue instead).
    pub max_connections: usize,
    /// The wire backend.
    pub backend: Backend,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 4,
            max_connections: 4096,
            backend: Backend::Epoll,
        }
    }
}

enum Inner {
    #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
    Epoll(EventLoopServer),
    ThreadPool(ThreadPoolServer),
}

/// A running REST server.
pub struct RestServer {
    inner: Inner,
}

impl RestServer {
    /// Bind `bind_addr` (use port 0 for an ephemeral port) and serve
    /// `router` on `workers` threads over the default (epoll) backend.
    pub fn start(bind_addr: &str, router: Arc<Router>, workers: usize) -> std::io::Result<RestServer> {
        RestServer::start_with(
            bind_addr,
            router,
            ServerConfig {
                workers,
                ..ServerConfig::default()
            },
        )
    }

    /// Bind and serve with explicit backend + tuning.
    pub fn start_with(bind_addr: &str, router: Arc<Router>, config: ServerConfig) -> std::io::Result<RestServer> {
        match config.backend {
            #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
            Backend::Epoll => {
                let s = EventLoopServer::start(bind_addr, router, config.workers, config.max_connections)?;
                Ok(RestServer { inner: Inner::Epoll(s) })
            }
            #[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
            Backend::Epoll => Self::start_pool(bind_addr, router, config.workers),
            Backend::ThreadPool => Self::start_pool(bind_addr, router, config.workers),
        }
    }

    /// Bind and serve over the blocking thread-pool backend (the measured
    /// baseline in `rest_throughput`).
    pub fn start_thread_pool(bind_addr: &str, router: Arc<Router>, workers: usize) -> std::io::Result<RestServer> {
        Self::start_pool(bind_addr, router, workers)
    }

    fn start_pool(bind_addr: &str, router: Arc<Router>, workers: usize) -> std::io::Result<RestServer> {
        let s = ThreadPoolServer::start(bind_addr, router, workers)?;
        Ok(RestServer {
            inner: Inner::ThreadPool(s),
        })
    }

    /// The bound address (for clients when port 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        match &self.inner {
            #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
            Inner::Epoll(s) => s.addr(),
            Inner::ThreadPool(s) => s.addr,
        }
    }

    /// Base URL, e.g. `http://127.0.0.1:8421`.
    pub fn base_url(&self) -> String {
        format!("http://{}", self.addr())
    }

    /// Stop accepting, drain workers, join threads.
    pub fn shutdown(mut self) {
        match &mut self.inner {
            #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
            Inner::Epoll(s) => s.shutdown(),
            Inner::ThreadPool(s) => s.do_shutdown(),
        }
    }
}

/// The blocking bounded-worker-pool backend.
struct ThreadPoolServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    /// Kept so shutdown can drain connections still queued when the
    /// workers exit (each drained stream gives its `queue_depth` increment
    /// back — the gauge must return to zero).
    queue: Receiver<TcpStream>,
}

impl ThreadPoolServer {
    fn start(bind_addr: &str, router: Arc<Router>, workers: usize) -> std::io::Result<ThreadPoolServer> {
        let listener = TcpListener::bind(bind_addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, rx): (Sender<TcpStream>, Receiver<TcpStream>) = bounded(ACCEPT_BACKLOG);

        let mut worker_handles = Vec::with_capacity(workers);
        for i in 0..workers.max(1) {
            let rx = rx.clone();
            let router = Arc::clone(&router);
            let worker_shutdown = Arc::clone(&shutdown);
            let handle = std::thread::Builder::new()
                .name(format!("ofmf-rest-worker-{i}"))
                .spawn(move || {
                    let metrics = crate::obs::metrics();
                    while let Ok(stream) = rx.recv() {
                        metrics.queue_depth.sub(1);
                        metrics.connections.add(1);
                        serve_connection(stream, &router, &worker_shutdown);
                        metrics.connections.sub(1);
                        if worker_shutdown.load(Ordering::Acquire) {
                            break;
                        }
                    }
                })?;
            worker_handles.push(handle);
        }

        let accept_shutdown = Arc::clone(&shutdown);
        let acceptor = std::thread::Builder::new()
            .name("ofmf-rest-acceptor".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    match stream {
                        Ok(s) => {
                            let metrics = crate::obs::metrics();
                            metrics.accepted.inc();
                            metrics.queue_depth.add(1);
                            // Blocking send applies back-pressure when all
                            // workers are busy and the backlog is full. A
                            // failed send drops the connection, so its
                            // gauge increment comes straight back.
                            if tx.send(s).is_err() {
                                metrics.queue_depth.sub(1);
                                break;
                            }
                        }
                        Err(_) => continue,
                    }
                }
                // Dropping tx closes the worker channel.
            })?;

        Ok(ThreadPoolServer {
            addr,
            shutdown,
            acceptor: Some(acceptor),
            workers: worker_handles,
            queue: rx,
        })
    }

    fn do_shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        // Unblock accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Connections accepted but never served: each still carries its
        // `queue_depth` increment, which dropping alone would leak.
        while let Ok(s) = self.queue.try_recv() {
            crate::obs::metrics().queue_depth.sub(1);
            drop(s);
        }
    }
}

impl Drop for ThreadPoolServer {
    fn drop(&mut self) {
        self.do_shutdown();
    }
}

fn serve_connection(stream: TcpStream, router: &Router, shutdown: &AtomicBool) {
    // A short read timeout lets idle keep-alive connections observe the
    // shutdown flag instead of pinning a worker forever.
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(200)));
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else { return };
    let mut writer = write_half;
    let mut reader = BufReader::new(stream);
    loop {
        match read_request(&mut reader) {
            Ok(req) => {
                let keep = req.keep_alive();
                let resp = router.handle(&req);
                if resp.write_to(&mut writer, keep).is_err() {
                    return;
                }
                if !keep {
                    return;
                }
            }
            Err(crate::http::ParseError::ConnectionClosed) => return,
            Err(crate::http::ParseError::IdleTimeout) => {
                if shutdown.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
            Err(e) => {
                crate::obs::note_parse_error(&format!("{e:?}"));
                crate::obs::metrics().record_status(e.status());
                let _ = e.response().write_to(&mut writer, false);
                return;
            }
        }
    }
}
