//! A minimal blocking HTTP/1.1 client for tests, examples and benches.

use serde_json::Value;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};

/// A parsed client-side response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response headers, keys lower-cased.
    pub headers: Vec<(String, String)>,
    /// Raw body.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// Body parsed as JSON.
    pub fn json(&self) -> Option<Value> {
        serde_json::from_slice(&self.body).ok()
    }

    /// First header value with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers.iter().find(|(k, _)| *k == lower).map(|(_, v)| v.as_str())
    }
}

/// A keep-alive HTTP client bound to one server address.
pub struct HttpClient {
    addr: SocketAddr,
    stream: Option<TcpStream>,
    /// Token sent as `X-Auth-Token` on every request when set.
    pub token: Option<String>,
}

impl HttpClient {
    /// Client for `addr`.
    pub fn new(addr: SocketAddr) -> Self {
        HttpClient {
            addr,
            stream: None,
            token: None,
        }
    }

    /// Issue `method path` with an optional JSON body.
    pub fn request(&mut self, method: &str, path: &str, body: Option<&Value>) -> std::io::Result<ClientResponse> {
        // One reconnect attempt covers server-side keep-alive closure.
        match self.request_once(method, path, body) {
            Ok(r) => Ok(r),
            Err(_) => {
                self.stream = None;
                self.request_once(method, path, body)
            }
        }
    }

    fn request_once(&mut self, method: &str, path: &str, body: Option<&Value>) -> std::io::Result<ClientResponse> {
        if self.stream.is_none() {
            let s = TcpStream::connect(self.addr)?;
            // Requests go out in two writes (headers, payload); without
            // NODELAY Nagle + delayed ACK stalls each request ~40 ms.
            s.set_nodelay(true)?;
            self.stream = Some(s);
        }
        // ofmf-lint: allow(no-panic-path, "stream was set to Some three lines up; no await/return between")
        let stream = self.stream.as_mut().expect("just connected");
        let payload = match body {
            Some(b) => Some(serde_json::to_vec(b).map_err(std::io::Error::other)?),
            None => None,
        };
        let mut req = format!("{method} {path} HTTP/1.1\r\nHost: ofmf\r\n");
        if let Some(t) = &self.token {
            req.push_str(&format!("X-Auth-Token: {t}\r\n"));
        }
        if let Some(p) = &payload {
            req.push_str(&format!(
                "Content-Type: application/json\r\nContent-Length: {}\r\n",
                p.len()
            ));
        }
        req.push_str("\r\n");
        stream.write_all(req.as_bytes())?;
        if let Some(p) = &payload {
            stream.write_all(p)?;
        }
        stream.flush()?;

        let mut reader = BufReader::new(stream.try_clone()?);
        let mut status_line = String::new();
        reader.read_line(&mut status_line)?;
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"))?;
        let mut headers = Vec::new();
        let mut content_length = 0usize;
        let mut close = false;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line)?;
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((k, v)) = line.split_once(':') {
                let k = k.trim().to_ascii_lowercase();
                let v = v.trim().to_string();
                if k == "content-length" {
                    content_length = v.parse().unwrap_or(0);
                }
                if k == "connection" && v.eq_ignore_ascii_case("close") {
                    close = true;
                }
                headers.push((k, v));
            }
        }
        // HEAD responses advertise the entity's Content-Length but carry no
        // body bytes.
        let mut body = vec![0u8; if method == "HEAD" { 0 } else { content_length }];
        reader.read_exact(&mut body)?;
        if close {
            self.stream = None;
        }
        Ok(ClientResponse { status, headers, body })
    }

    /// `GET path`.
    pub fn get(&mut self, path: &str) -> std::io::Result<ClientResponse> {
        self.request("GET", path, None)
    }

    /// `HEAD path` — headers only; `content-length` advertises the entity.
    pub fn head(&mut self, path: &str) -> std::io::Result<ClientResponse> {
        self.request("HEAD", path, None)
    }

    /// `POST path` with a JSON body.
    pub fn post(&mut self, path: &str, body: &Value) -> std::io::Result<ClientResponse> {
        self.request("POST", path, Some(body))
    }

    /// `PATCH path` with a JSON body.
    pub fn patch(&mut self, path: &str, body: &Value) -> std::io::Result<ClientResponse> {
        self.request("PATCH", path, Some(body))
    }

    /// `DELETE path`.
    pub fn delete(&mut self, path: &str) -> std::io::Result<ClientResponse> {
        self.request("DELETE", path, None)
    }
}
