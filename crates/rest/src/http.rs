//! Minimal, strict HTTP/1.1 message handling.
//!
//! Only what a Redfish service needs: request-line + headers + optional
//! `Content-Length` body. Bodies are bounded; anything malformed is an
//! explicit parse error that the server answers with the right 4xx.
//!
//! Two parsing front ends share the grammar:
//!
//! * [`read_request`] — blocking, for the thread-pool server and the test
//!   client: pulls bytes from a `BufReader` until one request is complete.
//! * [`parse_request`] — incremental, for the epoll event loop: given the
//!   bytes buffered so far, either yields a complete request plus the
//!   number of bytes it consumed, reports that more bytes are needed, or
//!   rejects the connection — without ever blocking or polling.

use serde_json::json;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, IoSlice, Read, Write};
use std::sync::Arc;

/// Largest accepted request body (1 MiB — Redfish payloads are small).
pub const MAX_BODY: usize = 1 << 20;

/// Largest accepted header section.
pub const MAX_HEADER_BYTES: usize = 64 * 1024;

/// The methods the OFMF serves, for `Allow` headers on 405 responses.
pub const ALLOWED_METHODS: &str = "GET, HEAD, POST, PATCH, DELETE";

/// An HTTP method the OFMF understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Read a resource.
    Get,
    /// Create a member / invoke an action.
    Post,
    /// Merge-update a resource.
    Patch,
    /// Remove a resource.
    Delete,
    /// Headers-only read.
    Head,
}

impl Method {
    /// Parse a method token.
    pub fn parse(s: &str) -> Option<Method> {
        Some(match s {
            "GET" => Method::Get,
            "POST" => Method::Post,
            "PATCH" => Method::Patch,
            "DELETE" => Method::Delete,
            "HEAD" => Method::Head,
            _ => return None,
        })
    }
}

/// The HTTP version a request was sent with. Keep-alive defaults differ:
/// 1.1 connections persist unless `Connection: close`, 1.0 connections
/// close unless `Connection: keep-alive`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HttpVersion {
    /// HTTP/1.0 — close by default.
    Http10,
    /// HTTP/1.1 — persistent by default.
    Http11,
}

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The method.
    pub method: Method,
    /// Path component of the request target (query string stripped).
    pub path: String,
    /// Query string, if any (without `?`).
    pub query: Option<String>,
    /// Headers, keys lower-cased.
    pub headers: BTreeMap<String, String>,
    /// Raw body bytes.
    pub body: Vec<u8>,
    /// Protocol version from the request line.
    pub version: HttpVersion,
}

impl Request {
    /// A header value (key matched case-insensitively).
    pub fn header(&self, key: &str) -> Option<&str> {
        self.headers.get(&key.to_ascii_lowercase()).map(String::as_str)
    }

    /// Whether the connection stays open after this exchange. HTTP/1.1
    /// defaults to keep-alive, HTTP/1.0 to close; an explicit `Connection`
    /// header overrides either default.
    pub fn keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(c) if c.eq_ignore_ascii_case("close") => false,
            Some(c) if c.eq_ignore_ascii_case("keep-alive") => true,
            _ => self.version == HttpVersion::Http11,
        }
    }
}

/// Errors while reading a request.
#[derive(Debug, PartialEq, Eq)]
pub enum ParseError {
    /// Connection closed before a full request arrived.
    ConnectionClosed,
    /// A read timed out while the connection was idle (the server checks
    /// its shutdown flag and resumes or closes).
    IdleTimeout,
    /// The bytes are not valid HTTP.
    Malformed(&'static str),
    /// The body exceeds [`MAX_BODY`].
    TooLarge,
    /// The header section exceeds [`MAX_HEADER_BYTES`].
    HeaderTooLarge,
    /// Unsupported method token.
    BadMethod,
}

impl ParseError {
    /// The HTTP status this parse failure maps to.
    pub fn status(&self) -> u16 {
        match self {
            ParseError::TooLarge => 413,
            ParseError::HeaderTooLarge => 431,
            ParseError::BadMethod => 405,
            _ => 400,
        }
    }

    /// The Redfish-shaped rejection for this parse failure. Each status
    /// carries its own `Base.1.0.*` message id, and 405 advertises the
    /// RFC-required `Allow` header listing the methods the service serves.
    pub fn response(&self) -> Response {
        let (id, message) = match self {
            ParseError::TooLarge => (
                "Base.1.0.PayloadTooLarge",
                format!("request body exceeds {MAX_BODY} bytes"),
            ),
            ParseError::HeaderTooLarge => (
                "Base.1.0.HeaderTooLong",
                format!("header section exceeds {MAX_HEADER_BYTES} bytes"),
            ),
            ParseError::BadMethod => (
                "Base.1.0.OperationNotAllowed",
                format!("method not supported; allowed: {ALLOWED_METHODS}"),
            ),
            other => ("Base.1.0.MalformedJSON", format!("malformed request: {other:?}")),
        };
        let body = json!({
            "error": {
                "code": id,
                "message": message,
                "@Message.ExtendedInfo": [{
                    "MessageId": id,
                    "Message": message,
                    "Severity": "Warning",
                    "Resolution": "Correct the request framing and retry."
                }]
            }
        });
        let resp = Response::json(self.status(), &body);
        match self {
            ParseError::BadMethod => resp.with_header("Allow", ALLOWED_METHODS),
            _ => resp,
        }
    }
}

fn io_err(e: std::io::Error) -> ParseError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => ParseError::IdleTimeout,
        _ => ParseError::ConnectionClosed,
    }
}

/// The pieces of a parsed request head: method, path, query, version,
/// lower-cased headers.
type ParsedHead = (Method, String, Option<String>, HttpVersion, BTreeMap<String, String>);

/// Parse the request line + header block in `head` (terminator excluded).
fn parse_head(head: &str) -> Result<ParsedHead, ParseError> {
    let mut lines = head.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
    let line = lines.next().ok_or(ParseError::Malformed("empty request head"))?;
    let mut parts = line.split(' ');
    let method = Method::parse(parts.next().unwrap_or("")).ok_or(ParseError::BadMethod)?;
    let target = parts.next().ok_or(ParseError::Malformed("missing request target"))?;
    let version = parts.next().ok_or(ParseError::Malformed("missing version"))?;
    let version = match version {
        "HTTP/1.0" => HttpVersion::Http10,
        v if v.starts_with("HTTP/1.") => HttpVersion::Http11,
        _ => return Err(ParseError::Malformed("unsupported HTTP version")),
    };
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target.to_string(), None),
    };
    let mut headers = BTreeMap::new();
    for h in lines {
        if h.is_empty() {
            continue;
        }
        let Some((k, v)) = h.split_once(':') else {
            return Err(ParseError::Malformed("header without colon"));
        };
        headers.insert(k.trim().to_ascii_lowercase(), v.trim().to_string());
    }
    Ok((method, path, query, version, headers))
}

/// Body length declared by the header block (0 when absent).
fn declared_body_len(headers: &BTreeMap<String, String>) -> Result<usize, ParseError> {
    match headers.get("content-length") {
        Some(cl) => {
            let len: usize = cl.parse().map_err(|_| ParseError::Malformed("bad content-length"))?;
            if len > MAX_BODY {
                return Err(ParseError::TooLarge);
            }
            Ok(len)
        }
        None => Ok(0),
    }
}

/// Find the header/body boundary in `buf`: returns `(head_len, body_start)`
/// where `head_len` excludes the blank-line terminator. Accepts `\r\n\r\n`
/// and bare `\n\n` (the blocking parser is equally lenient).
fn find_head_end(buf: &[u8]) -> Option<(usize, usize)> {
    let mut i = 0usize;
    while let Some(rest) = buf.get(i..) {
        let p = rest.iter().position(|&b| b == b'\n')?;
        let nl = i + p;
        match buf.get(nl + 1) {
            Some(b'\n') => return Some((nl, nl + 2)),
            Some(b'\r') if buf.get(nl + 2) == Some(&b'\n') => return Some((nl, nl + 3)),
            _ => i = nl + 1,
        }
    }
    None
}

/// Incrementally parse one request from the buffered bytes of a
/// connection.
///
/// * `Ok(Some((req, consumed)))` — a complete request; the caller drains
///   `consumed` bytes and may find further pipelined requests behind it.
/// * `Ok(None)` — the buffer holds only a request prefix; read more.
/// * `Err(_)` — the bytes can never become a valid request; the caller
///   answers with [`ParseError::response`] and closes.
pub fn parse_request(buf: &[u8]) -> Result<Option<(Request, usize)>, ParseError> {
    let Some((head_len, body_start)) = find_head_end(buf) else {
        if buf.len() > MAX_HEADER_BYTES {
            return Err(ParseError::HeaderTooLarge);
        }
        return Ok(None);
    };
    if head_len > MAX_HEADER_BYTES {
        return Err(ParseError::HeaderTooLarge);
    }
    let head = buf
        .get(..head_len)
        .and_then(|h| std::str::from_utf8(h).ok())
        .ok_or(ParseError::Malformed("non-UTF-8 header section"))?;
    let (method, path, query, version, headers) = parse_head(head)?;
    let body_len = declared_body_len(&headers)?;
    let body_end = body_start + body_len;
    let Some(body) = buf.get(body_start..body_end) else {
        return Ok(None); // body still in flight
    };
    Ok(Some((
        Request {
            method,
            path,
            query,
            headers,
            body: body.to_vec(),
            version,
        },
        body_end,
    )))
}

/// Read one request from `stream` (blocking front end).
pub fn read_request<R: Read>(reader: &mut BufReader<R>) -> Result<Request, ParseError> {
    let mut line = String::new();
    let n = match reader.read_line(&mut line) {
        Ok(n) => n,
        // A timeout with bytes already consumed would desync the stream on
        // retry, so only a clean idle timeout is resumable.
        Err(e) if line.is_empty() => return Err(io_err(e)),
        Err(_) => return Err(ParseError::ConnectionClosed),
    };
    if n == 0 {
        return Err(ParseError::ConnectionClosed);
    }
    let mut head = line;
    let mut header_bytes = 0;
    loop {
        let mut h = String::new();
        let n = reader.read_line(&mut h).map_err(|_| ParseError::ConnectionClosed)?;
        if n == 0 {
            return Err(ParseError::ConnectionClosed);
        }
        header_bytes += n;
        if header_bytes > MAX_HEADER_BYTES {
            return Err(ParseError::HeaderTooLarge);
        }
        let done = h.trim_end().is_empty();
        head.push_str(&h);
        if done {
            break;
        }
    }
    let (method, path, query, version, headers) = parse_head(head.trim_end())?;
    let body_len = declared_body_len(&headers)?;
    let mut body = vec![0u8; body_len];
    reader.read_exact(&mut body).map_err(|_| ParseError::ConnectionClosed)?;
    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
        version,
    })
}

/// A response body: owned bytes, or a zero-copy handle into the registry's
/// ETag-keyed wire cache (the event loop writes these without ever copying
/// the cached serialization).
#[derive(Debug, Clone)]
pub enum Body {
    /// Bytes owned by this response.
    Owned(Vec<u8>),
    /// Bytes shared with the wire cache.
    Shared(Arc<[u8]>),
}

impl std::ops::Deref for Body {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match self {
            Body::Owned(v) => v,
            Body::Shared(a) => a,
        }
    }
}

impl PartialEq for Body {
    fn eq(&self, other: &Body) -> bool {
        **self == **other
    }
}

impl Default for Body {
    fn default() -> Body {
        Body::Owned(Vec::new())
    }
}

impl From<Vec<u8>> for Body {
    fn from(v: Vec<u8>) -> Body {
        Body::Owned(v)
    }
}

impl From<Arc<[u8]>> for Body {
    fn from(a: Arc<[u8]>) -> Body {
        Body::Shared(a)
    }
}

/// A response to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Headers (sent as given).
    pub headers: Vec<(String, String)>,
    /// Body bytes (owned or shared with the wire cache).
    pub body: Body,
    /// HEAD semantics: advertise the entity's real `Content-Length` but
    /// transmit no body bytes.
    pub head_only: bool,
}

impl Response {
    /// A JSON response. Serialization of an in-memory `Value` tree cannot
    /// fail under the vendored serde_json, but rather than panic a worker
    /// thread on a future regression we degrade to a plain 500.
    pub fn json(status: u16, body: &serde_json::Value) -> Response {
        match serde_json::to_vec(body) {
            Ok(body) => Response {
                status,
                headers: vec![("Content-Type".into(), "application/json; charset=utf-8".into())],
                body: Body::Owned(body),
                head_only: false,
            },
            Err(_) => Response {
                status: 500,
                headers: vec![("Content-Type".into(), "text/plain; charset=utf-8".into())],
                body: Body::Owned(b"response serialization failed".to_vec()),
                head_only: false,
            },
        }
    }

    /// A JSON response from pre-serialized bytes (the registry's wire-body
    /// cache hands these out; no re-serialization on the hot GET path).
    pub fn json_bytes(status: u16, body: impl Into<Body>) -> Response {
        Response {
            status,
            headers: vec![("Content-Type".into(), "application/json; charset=utf-8".into())],
            body: body.into(),
            head_only: false,
        }
    }

    /// An empty response.
    pub fn empty(status: u16) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: Body::default(),
            head_only: false,
        }
    }

    /// Add a header (builder style).
    #[must_use]
    pub fn with_header(mut self, k: &str, v: &str) -> Response {
        self.headers.push((k.to_string(), v.to_string()));
        self
    }

    /// Convert to HEAD semantics: the entity's `Content-Length` and headers
    /// (ETag included) are reported unchanged, but no body is transmitted.
    #[must_use]
    pub fn into_head(mut self) -> Response {
        self.head_only = true;
        self
    }

    /// Serialize the status line + headers (body excluded). The event loop
    /// queues this block and the body as separate buffers for one vectored
    /// write; `Content-Length` always reports the entity length, even for
    /// HEAD responses that transmit no body.
    pub fn encode_head(&self, keep_alive: bool) -> Vec<u8> {
        let mut out = Vec::with_capacity(128 + self.headers.len() * 32);
        out.extend_from_slice(format!("HTTP/1.1 {} {}\r\n", self.status, reason_phrase(self.status)).as_bytes());
        for (k, v) in &self.headers {
            out.extend_from_slice(format!("{k}: {v}\r\n").as_bytes());
        }
        out.extend_from_slice(format!("Content-Length: {}\r\n", self.body.len()).as_bytes());
        out.extend_from_slice(if keep_alive {
            b"Connection: keep-alive\r\n".as_slice()
        } else {
            b"Connection: close\r\n".as_slice()
        });
        out.extend_from_slice(b"OData-Version: 4.0\r\n\r\n");
        out
    }

    /// Write the response to `w`. `keep_alive` controls the Connection
    /// header. Head and body go out in one vectored write where possible.
    pub fn write_to<W: Write>(&self, w: &mut W, keep_alive: bool) -> std::io::Result<()> {
        let head = self.encode_head(keep_alive);
        if self.head_only || self.body.is_empty() {
            w.write_all(&head)?;
            return w.flush();
        }
        // One gathered write covers the common case; fall back to write_all
        // for any remainder a short vectored write leaves behind.
        let written = w.write_vectored(&[IoSlice::new(&head), IoSlice::new(&self.body)])?;
        if written < head.len() {
            w.write_all(head.get(written..).unwrap_or_default())?;
            w.write_all(&self.body)?;
        } else {
            let body_written = written - head.len();
            w.write_all(self.body.get(body_written..).unwrap_or_default())?;
        }
        w.flush()
    }
}

/// Standard reason phrase for the codes the OFMF emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        204 => "No Content",
        400 => "Bad Request",
        401 => "Unauthorized",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        412 => "Precondition Failed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        507 => "Insufficient Storage",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str) -> Result<Request, ParseError> {
        read_request(&mut BufReader::new(Cursor::new(raw.as_bytes().to_vec())))
    }

    #[test]
    fn parses_get_with_query() {
        let r = parse("GET /redfish/v1/Systems?$expand=. HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, Method::Get);
        assert_eq!(r.path, "/redfish/v1/Systems");
        assert_eq!(r.query.as_deref(), Some("$expand=."));
        assert_eq!(r.version, HttpVersion::Http11);
        assert!(r.keep_alive());
    }

    #[test]
    fn parses_post_with_body() {
        let body = r#"{"a":1}"#;
        let raw = format!(
            "POST /redfish/v1/Systems HTTP/1.1\r\nContent-Length: {}\r\nX-Auth-Token: t\r\n\r\n{}",
            body.len(),
            body
        );
        let r = parse(&raw).unwrap();
        assert_eq!(r.method, Method::Post);
        assert_eq!(r.header("x-auth-token"), Some("t"));
        assert_eq!(r.body, body.as_bytes());
    }

    #[test]
    fn rejects_bad_method_and_version() {
        assert_eq!(parse("BREW /x HTTP/1.1\r\n\r\n").unwrap_err(), ParseError::BadMethod);
        assert!(matches!(
            parse("GET /x SPDY/3\r\n\r\n").unwrap_err(),
            ParseError::Malformed(_)
        ));
        assert!(matches!(parse("GET\r\n\r\n").unwrap_err(), ParseError::Malformed(_)));
    }

    #[test]
    fn rejects_oversized_body() {
        let raw = format!("POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1);
        assert_eq!(parse(&raw).unwrap_err(), ParseError::TooLarge);
    }

    #[test]
    fn rejects_oversized_header_section() {
        let filler = "a".repeat(8000);
        let mut raw = String::from("GET /x HTTP/1.1\r\n");
        for i in 0..10 {
            raw.push_str(&format!("X-Pad-{i}: {filler}\r\n"));
        }
        raw.push_str("\r\n");
        assert_eq!(parse(&raw).unwrap_err(), ParseError::HeaderTooLarge);
    }

    #[test]
    fn connection_close_detected() {
        let r = parse("GET /x HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!r.keep_alive());
    }

    #[test]
    fn http10_defaults_to_close() {
        let r = parse("GET /x HTTP/1.0\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.version, HttpVersion::Http10);
        assert!(!r.keep_alive(), "HTTP/1.0 without Connection: keep-alive must close");
        let r = parse("GET /x HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(r.keep_alive(), "HTTP/1.0 opts into keep-alive explicitly");
        let r = parse("GET /x HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n").unwrap();
        assert!(r.keep_alive(), "Connection token is case-insensitive");
    }

    #[test]
    fn empty_stream_is_connection_closed() {
        assert_eq!(parse("").unwrap_err(), ParseError::ConnectionClosed);
    }

    #[test]
    fn response_serializes_with_length_and_odata_version() {
        let resp = Response::json(200, &serde_json::json!({"ok": true})).with_header("ETag", "W/\"1\"");
        let mut buf = Vec::new();
        resp.write_to(&mut buf, true).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("ETag: W/\"1\"\r\n"));
        assert!(text.contains("OData-Version: 4.0\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));
    }

    #[test]
    fn head_response_reports_entity_length_without_body() {
        let resp = Response::json(200, &serde_json::json!({"ok": true})).into_head();
        let mut buf = Vec::new();
        resp.write_to(&mut buf, true).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("Content-Length: 11\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n"), "HEAD must transmit no body: {text}");
    }

    #[test]
    fn incremental_parser_waits_for_complete_request() {
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        for cut in 0..raw.len() {
            assert!(
                parse_request(&raw[..cut]).unwrap().is_none(),
                "prefix of {cut} bytes must not parse"
            );
        }
        let (req, consumed) = parse_request(raw).unwrap().unwrap();
        assert_eq!(consumed, raw.len());
        assert_eq!(req.method, Method::Post);
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn incremental_parser_handles_pipelined_requests() {
        let raw = b"GET /a HTTP/1.1\r\nHost: x\r\n\r\nGET /b HTTP/1.1\r\nHost: x\r\n\r\n".to_vec();
        let (first, consumed) = parse_request(&raw).unwrap().unwrap();
        assert_eq!(first.path, "/a");
        let (second, consumed2) = parse_request(&raw[consumed..]).unwrap().unwrap();
        assert_eq!(second.path, "/b");
        assert_eq!(consumed + consumed2, raw.len());
    }

    #[test]
    fn incremental_parser_enforces_limits() {
        let mut huge = b"GET /x HTTP/1.1\r\n".to_vec();
        huge.extend_from_slice("y".repeat(MAX_HEADER_BYTES + 10).as_bytes());
        assert_eq!(parse_request(&huge).unwrap_err(), ParseError::HeaderTooLarge);
        let big_body = format!("POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1);
        assert_eq!(parse_request(big_body.as_bytes()).unwrap_err(), ParseError::TooLarge);
        assert_eq!(
            parse_request(b"BREW /x HTTP/1.1\r\n\r\n").unwrap_err(),
            ParseError::BadMethod
        );
    }

    #[test]
    fn parse_error_responses_carry_specific_ids() {
        let cases = [
            (ParseError::BadMethod, 405, "Base.1.0.OperationNotAllowed"),
            (ParseError::TooLarge, 413, "Base.1.0.PayloadTooLarge"),
            (ParseError::HeaderTooLarge, 431, "Base.1.0.HeaderTooLong"),
            (ParseError::Malformed("x"), 400, "Base.1.0.MalformedJSON"),
        ];
        for (err, status, id) in cases {
            let resp = err.response();
            assert_eq!(resp.status, status);
            let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
            assert_eq!(v["error"]["code"], id, "{err:?}");
        }
        let allow = ParseError::BadMethod.response();
        let allow = allow.headers.iter().find(|(k, _)| k == "Allow").map(|(_, v)| v.clone());
        assert_eq!(allow.as_deref(), Some(ALLOWED_METHODS), "405 must list allowed methods");
    }

    #[test]
    fn shared_and_owned_bodies_compare_by_bytes() {
        let owned = Body::Owned(b"abc".to_vec());
        let shared = Body::Shared(Arc::from(b"abc".as_slice()));
        assert_eq!(owned, shared);
        assert_eq!(shared.len(), 3);
    }
}
