//! Minimal, strict HTTP/1.1 message handling.
//!
//! Only what a Redfish service needs: request-line + headers + optional
//! `Content-Length` body. Bodies are bounded; anything malformed is an
//! explicit parse error that the server answers with `400`.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};

/// Largest accepted request body (1 MiB — Redfish payloads are small).
pub const MAX_BODY: usize = 1 << 20;

/// Largest accepted header section.
pub const MAX_HEADER_BYTES: usize = 64 * 1024;

/// An HTTP method the OFMF understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Read a resource.
    Get,
    /// Create a member / invoke an action.
    Post,
    /// Merge-update a resource.
    Patch,
    /// Remove a resource.
    Delete,
    /// Headers-only read.
    Head,
}

impl Method {
    /// Parse a method token.
    pub fn parse(s: &str) -> Option<Method> {
        Some(match s {
            "GET" => Method::Get,
            "POST" => Method::Post,
            "PATCH" => Method::Patch,
            "DELETE" => Method::Delete,
            "HEAD" => Method::Head,
            _ => return None,
        })
    }
}

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The method.
    pub method: Method,
    /// Path component of the request target (query string stripped).
    pub path: String,
    /// Query string, if any (without `?`).
    pub query: Option<String>,
    /// Headers, keys lower-cased.
    pub headers: BTreeMap<String, String>,
    /// Raw body bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// A header value (key matched case-insensitively).
    pub fn header(&self, key: &str) -> Option<&str> {
        self.headers.get(&key.to_ascii_lowercase()).map(String::as_str)
    }

    /// Whether the client asked to keep the connection open.
    pub fn keep_alive(&self) -> bool {
        !matches!(self.header("connection"), Some(c) if c.eq_ignore_ascii_case("close"))
    }
}

/// Errors while reading a request.
#[derive(Debug, PartialEq, Eq)]
pub enum ParseError {
    /// Connection closed before a full request arrived.
    ConnectionClosed,
    /// A read timed out while the connection was idle (the server checks
    /// its shutdown flag and resumes or closes).
    IdleTimeout,
    /// The bytes are not valid HTTP.
    Malformed(&'static str),
    /// The body exceeds [`MAX_BODY`].
    TooLarge,
    /// The header section exceeds [`MAX_HEADER_BYTES`].
    HeaderTooLarge,
    /// Unsupported method token.
    BadMethod,
}

fn io_err(e: std::io::Error) -> ParseError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => ParseError::IdleTimeout,
        _ => ParseError::ConnectionClosed,
    }
}

/// Read one request from `stream`.
pub fn read_request<R: Read>(reader: &mut BufReader<R>) -> Result<Request, ParseError> {
    let mut line = String::new();
    let n = match reader.read_line(&mut line) {
        Ok(n) => n,
        // A timeout with bytes already consumed would desync the stream on
        // retry, so only a clean idle timeout is resumable.
        Err(e) if line.is_empty() => return Err(io_err(e)),
        Err(_) => return Err(ParseError::ConnectionClosed),
    };
    if n == 0 {
        return Err(ParseError::ConnectionClosed);
    }
    let line = line.trim_end();
    let mut parts = line.split(' ');
    let method = Method::parse(parts.next().unwrap_or("")).ok_or(ParseError::BadMethod)?;
    let target = parts.next().ok_or(ParseError::Malformed("missing request target"))?;
    let version = parts.next().ok_or(ParseError::Malformed("missing version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::Malformed("unsupported HTTP version"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target.to_string(), None),
    };

    let mut headers = BTreeMap::new();
    let mut header_bytes = 0;
    loop {
        let mut h = String::new();
        let n = reader.read_line(&mut h).map_err(|_| ParseError::ConnectionClosed)?;
        if n == 0 {
            return Err(ParseError::ConnectionClosed);
        }
        header_bytes += n;
        if header_bytes > MAX_HEADER_BYTES {
            return Err(ParseError::HeaderTooLarge);
        }
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        let Some((k, v)) = h.split_once(':') else {
            return Err(ParseError::Malformed("header without colon"));
        };
        headers.insert(k.trim().to_ascii_lowercase(), v.trim().to_string());
    }

    let body = match headers.get("content-length") {
        Some(cl) => {
            let len: usize = cl.parse().map_err(|_| ParseError::Malformed("bad content-length"))?;
            if len > MAX_BODY {
                return Err(ParseError::TooLarge);
            }
            let mut buf = vec![0u8; len];
            reader.read_exact(&mut buf).map_err(|_| ParseError::ConnectionClosed)?;
            buf
        }
        None => Vec::new(),
    };

    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
    })
}

/// A response to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Headers (sent as given).
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response. Serialization of an in-memory `Value` tree cannot
    /// fail under the vendored serde_json, but rather than panic a worker
    /// thread on a future regression we degrade to a plain 500.
    pub fn json(status: u16, body: &serde_json::Value) -> Response {
        match serde_json::to_vec(body) {
            Ok(body) => Response {
                status,
                headers: vec![("Content-Type".into(), "application/json; charset=utf-8".into())],
                body,
            },
            Err(_) => Response {
                status: 500,
                headers: vec![("Content-Type".into(), "text/plain; charset=utf-8".into())],
                body: b"response serialization failed".to_vec(),
            },
        }
    }

    /// A JSON response from pre-serialized bytes (the registry's wire-body
    /// cache hands these out; no re-serialization on the hot GET path).
    pub fn json_bytes(status: u16, body: Vec<u8>) -> Response {
        Response {
            status,
            headers: vec![("Content-Type".into(), "application/json; charset=utf-8".into())],
            body,
        }
    }

    /// An empty response.
    pub fn empty(status: u16) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// Add a header (builder style).
    #[must_use]
    pub fn with_header(mut self, k: &str, v: &str) -> Response {
        self.headers.push((k.to_string(), v.to_string()));
        self
    }

    /// Write the response to `w`. `keep_alive` controls the Connection
    /// header.
    pub fn write_to<W: Write>(&self, w: &mut W, keep_alive: bool) -> std::io::Result<()> {
        let reason = reason_phrase(self.status);
        write!(w, "HTTP/1.1 {} {}\r\n", self.status, reason)?;
        for (k, v) in &self.headers {
            write!(w, "{k}: {v}\r\n")?;
        }
        write!(w, "Content-Length: {}\r\n", self.body.len())?;
        write!(w, "Connection: {}\r\n", if keep_alive { "keep-alive" } else { "close" })?;
        write!(w, "OData-Version: 4.0\r\n")?;
        write!(w, "\r\n")?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// Standard reason phrase for the codes the OFMF emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        204 => "No Content",
        400 => "Bad Request",
        401 => "Unauthorized",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        412 => "Precondition Failed",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        507 => "Insufficient Storage",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str) -> Result<Request, ParseError> {
        read_request(&mut BufReader::new(Cursor::new(raw.as_bytes().to_vec())))
    }

    #[test]
    fn parses_get_with_query() {
        let r = parse("GET /redfish/v1/Systems?$expand=. HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, Method::Get);
        assert_eq!(r.path, "/redfish/v1/Systems");
        assert_eq!(r.query.as_deref(), Some("$expand=."));
        assert!(r.keep_alive());
    }

    #[test]
    fn parses_post_with_body() {
        let body = r#"{"a":1}"#;
        let raw = format!(
            "POST /redfish/v1/Systems HTTP/1.1\r\nContent-Length: {}\r\nX-Auth-Token: t\r\n\r\n{}",
            body.len(),
            body
        );
        let r = parse(&raw).unwrap();
        assert_eq!(r.method, Method::Post);
        assert_eq!(r.header("x-auth-token"), Some("t"));
        assert_eq!(r.body, body.as_bytes());
    }

    #[test]
    fn rejects_bad_method_and_version() {
        assert_eq!(parse("BREW /x HTTP/1.1\r\n\r\n").unwrap_err(), ParseError::BadMethod);
        assert!(matches!(
            parse("GET /x SPDY/3\r\n\r\n").unwrap_err(),
            ParseError::Malformed(_)
        ));
        assert!(matches!(parse("GET\r\n\r\n").unwrap_err(), ParseError::Malformed(_)));
    }

    #[test]
    fn rejects_oversized_body() {
        let raw = format!("POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1);
        assert_eq!(parse(&raw).unwrap_err(), ParseError::TooLarge);
    }

    #[test]
    fn rejects_oversized_header_section() {
        let filler = "a".repeat(8000);
        let mut raw = String::from("GET /x HTTP/1.1\r\n");
        for i in 0..10 {
            raw.push_str(&format!("X-Pad-{i}: {filler}\r\n"));
        }
        raw.push_str("\r\n");
        assert_eq!(parse(&raw).unwrap_err(), ParseError::HeaderTooLarge);
    }

    #[test]
    fn connection_close_detected() {
        let r = parse("GET /x HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!r.keep_alive());
    }

    #[test]
    fn empty_stream_is_connection_closed() {
        assert_eq!(parse("").unwrap_err(), ParseError::ConnectionClosed);
    }

    #[test]
    fn response_serializes_with_length_and_odata_version() {
        let resp = Response::json(200, &serde_json::json!({"ok": true})).with_header("ETag", "W/\"1\"");
        let mut buf = Vec::new();
        resp.write_to(&mut buf, true).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("ETag: W/\"1\"\r\n"));
        assert!(text.contains("OData-Version: 4.0\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));
    }
}
