//! Wire-level conformance tests against raw sockets: pipelining, partial
//! reads, abrupt disconnects, HTTP/1.0 defaults, HEAD semantics, parse-error
//! statuses, connection-cap load shedding, and gauge hygiene — run against
//! both wire backends wherever the behavior is backend-agnostic.

use ofmf_agents::flavors::{cxl_agent, RackShape};
use ofmf_core::Ofmf;
use ofmf_rest::{Backend, RestServer, Router, ServerConfig};
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Behaviors shared by both backends get exercised against each.
const BACKENDS: [Backend; 2] = [Backend::Epoll, Backend::ThreadPool];

fn boot(backend: Backend, workers: usize, max_connections: usize) -> RestServer {
    let ofmf = Ofmf::new_wall("wire-it", HashMap::new(), 11);
    ofmf.register_agent(Arc::new(cxl_agent("CXL0", &RackShape::default(), 1 << 20, 4)))
        .unwrap();
    let router = Arc::new(Router::new(ofmf, false));
    RestServer::start_with(
        "127.0.0.1:0",
        router,
        ServerConfig {
            workers,
            max_connections,
            backend,
        },
    )
    .unwrap()
}

/// A raw client connection that parses HTTP responses out of a byte buffer,
/// so pipelined responses on one socket are read back one at a time.
struct Wire {
    stream: TcpStream,
    buf: Vec<u8>,
}

struct Resp {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Resp {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    fn content_length(&self) -> usize {
        self.header("content-length").and_then(|v| v.parse().ok()).unwrap_or(0)
    }

    fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

impl Wire {
    fn connect(server: &RestServer) -> Wire {
        let stream = TcpStream::connect(server.addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        stream.set_nodelay(true).unwrap();
        Wire {
            stream,
            buf: Vec::new(),
        }
    }

    fn send(&mut self, bytes: &[u8]) {
        self.stream.write_all(bytes).unwrap();
    }

    /// Pull more bytes off the socket; `None` on orderly EOF.
    fn fill(&mut self) -> Option<usize> {
        let mut tmp = [0u8; 8192];
        loop {
            match self.stream.read(&mut tmp) {
                Ok(0) => return None,
                Ok(n) => {
                    self.buf.extend_from_slice(&tmp[..n]);
                    return Some(n);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => panic!("socket read failed: {e}"),
            }
        }
    }

    /// Read one full response (headers + Content-Length body).
    fn response(&mut self) -> Resp {
        self.read_one(false)
    }

    /// Read one response whose body is never transmitted (HEAD).
    fn head_response(&mut self) -> Resp {
        self.read_one(true)
    }

    fn read_one(&mut self, head_only: bool) -> Resp {
        let head_end = loop {
            if let Some(p) = find(&self.buf, b"\r\n\r\n") {
                break p + 4;
            }
            assert!(self.fill().is_some(), "connection closed before response headers");
        };
        let head = String::from_utf8_lossy(&self.buf[..head_end]).into_owned();
        let mut lines = head.split("\r\n");
        let status: u16 = lines
            .next()
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad status line in {head:?}"));
        let headers: Vec<(String, String)> = lines
            .filter(|l| !l.is_empty())
            .filter_map(|l| {
                let (k, v) = l.split_once(':')?;
                Some((k.trim().to_string(), v.trim().to_string()))
            })
            .collect();
        let declared: usize = headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(0);
        let body_len = if head_only { 0 } else { declared };
        while self.buf.len() < head_end + body_len {
            assert!(self.fill().is_some(), "connection closed mid-body");
        }
        let body = self.buf[head_end..head_end + body_len].to_vec();
        self.buf.drain(..head_end + body_len);
        Resp { status, headers, body }
    }

    /// Drain the socket to EOF; returns whatever bytes arrived after the
    /// already-parsed responses. Panics if the server never closes.
    fn read_to_eof(&mut self) -> Vec<u8> {
        while self.fill().is_some() {}
        std::mem::take(&mut self.buf)
    }
}

fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

fn get(path: &str) -> String {
    format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n")
}

/// Retry a connect+request until the server answers 200 (used after
/// releasing capacity, where the worker needs a moment to observe the
/// hang-up).
fn eventually_200(server: &RestServer) {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let mut w = Wire::connect(server);
        w.send(get("/redfish/v1").as_bytes());
        let r = w.response();
        if r.status == 200 {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "server never recovered capacity; last status {}",
            r.status
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[test]
fn pipelined_requests_answered_in_order() {
    for backend in BACKENDS {
        let server = boot(backend, 2, 4096);
        let mut w = Wire::connect(&server);
        // Three requests in one segment; responses must come back complete,
        // in order, on the same connection.
        let batch = format!(
            "{}{}{}",
            get("/redfish/v1"),
            get("/redfish/v1/Fabrics"),
            get("/redfish/v1/Systems")
        );
        w.send(batch.as_bytes());
        let first = w.response();
        assert_eq!(first.status, 200, "{backend:?}");
        assert!(first.body_text().contains("\"Fabrics\""), "{backend:?}");
        let second = w.response();
        assert_eq!(second.status, 200, "{backend:?}");
        assert!(second.body_text().contains("FabricCollection"), "{backend:?}");
        let third = w.response();
        assert_eq!(third.status, 200, "{backend:?}");
        assert!(third.body_text().contains("ComputerSystemCollection"), "{backend:?}");
        server.shutdown();
    }
}

#[test]
fn slowloris_partial_request_does_not_block_other_clients() {
    // One event-loop worker: if a stalled partial read blocked the loop,
    // the fast client below could never be served.
    let server = boot(Backend::Epoll, 1, 4096);
    let mut slow = Wire::connect(&server);
    let request = get("/redfish/v1");
    let (left, right) = request.split_at(request.len() / 2);
    slow.send(left.as_bytes());
    std::thread::sleep(Duration::from_millis(50));

    // A fast client completes while the slow request is still in flight.
    let mut fast = Wire::connect(&server);
    fast.send(get("/redfish/v1").as_bytes());
    assert_eq!(fast.response().status, 200);

    // Dribble the rest byte by byte; the request must still complete.
    for b in right.as_bytes() {
        slow.send(std::slice::from_ref(b));
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(slow.response().status, 200);
    server.shutdown();
}

#[test]
fn mid_response_disconnect_leaves_server_healthy() {
    for backend in BACKENDS {
        let server = boot(backend, 2, 4096);
        for _ in 0..3 {
            let mut w = Wire::connect(&server);
            w.send(get("/redfish/v1").as_bytes());
            // Read only the first few bytes of the response, then vanish.
            let mut partial = [0u8; 16];
            let n = w.stream.read(&mut partial).unwrap();
            assert!(n > 0);
            drop(w);
        }
        // The server must still answer new connections.
        let mut w = Wire::connect(&server);
        w.send(get("/redfish/v1").as_bytes());
        assert_eq!(w.response().status, 200, "{backend:?}");
        server.shutdown();
    }
}

#[test]
fn http10_defaults_to_close_on_the_wire() {
    for backend in BACKENDS {
        let server = boot(backend, 2, 4096);
        let mut w = Wire::connect(&server);
        w.send(b"GET /redfish/v1 HTTP/1.0\r\nHost: t\r\n\r\n");
        let r = w.response();
        assert_eq!(r.status, 200, "{backend:?}");
        assert_eq!(
            r.header("connection"),
            Some("close"),
            "{backend:?}: HTTP/1.0 without keep-alive must advertise close"
        );
        assert!(
            w.read_to_eof().is_empty(),
            "{backend:?}: server must close after an HTTP/1.0 exchange"
        );
        server.shutdown();
    }
}

#[test]
fn http10_explicit_keep_alive_persists_the_connection() {
    for backend in BACKENDS {
        let server = boot(backend, 2, 4096);
        let mut w = Wire::connect(&server);
        let req = b"GET /redfish/v1 HTTP/1.0\r\nHost: t\r\nConnection: keep-alive\r\n\r\n";
        w.send(req);
        let r = w.response();
        assert_eq!(r.status, 200, "{backend:?}");
        assert_eq!(r.header("connection"), Some("keep-alive"), "{backend:?}");
        // A second exchange on the same socket must work.
        w.send(req);
        assert_eq!(w.response().status, 200, "{backend:?}");
        server.shutdown();
    }
}

#[test]
fn head_reports_entity_length_and_etag_with_no_body_bytes() {
    for backend in BACKENDS {
        let server = boot(backend, 2, 4096);
        // Reference entity length from a real GET.
        let mut g = Wire::connect(&server);
        g.send(get("/redfish/v1").as_bytes());
        let got = g.response();
        assert_eq!(got.status, 200);
        let entity_len = got.body.len();
        assert!(entity_len > 0);
        drop(g);

        let mut w = Wire::connect(&server);
        w.send(b"HEAD /redfish/v1 HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
        let r = w.head_response();
        assert_eq!(r.status, 200, "{backend:?}");
        assert_eq!(
            r.content_length(),
            entity_len,
            "{backend:?}: HEAD must report the entity's real Content-Length"
        );
        assert!(r.header("etag").is_some(), "{backend:?}: HEAD must keep the ETag");
        assert!(
            w.read_to_eof().is_empty(),
            "{backend:?}: HEAD must transmit no body bytes"
        );
        server.shutdown();
    }
}

#[test]
fn unsupported_method_gets_405_with_allow_header() {
    for backend in BACKENDS {
        let server = boot(backend, 2, 4096);
        let mut w = Wire::connect(&server);
        w.send(b"BREW /redfish/v1 HTTP/1.1\r\nHost: t\r\n\r\n");
        let r = w.response();
        assert_eq!(r.status, 405, "{backend:?}");
        assert_eq!(
            r.header("allow"),
            Some("GET, HEAD, POST, PATCH, DELETE"),
            "{backend:?}: 405 must list the allowed methods"
        );
        assert!(
            r.body_text().contains("Base.1.0.OperationNotAllowed"),
            "{backend:?}: {}",
            r.body_text()
        );
        server.shutdown();
    }
}

#[test]
fn oversized_body_and_headers_get_specific_statuses() {
    for backend in BACKENDS {
        let server = boot(backend, 2, 4096);

        // Declared body over the 1 MiB cap: rejected from the headers alone.
        let mut w = Wire::connect(&server);
        w.send(b"POST /redfish/v1/SessionService/Sessions HTTP/1.1\r\nHost: t\r\nContent-Length: 2000000\r\n\r\n");
        let r = w.response();
        assert_eq!(r.status, 413, "{backend:?}");
        assert!(r.body_text().contains("Base.1.0.PayloadTooLarge"), "{backend:?}");

        // Header section over the 64 KiB cap.
        let mut w = Wire::connect(&server);
        let mut raw = String::from("GET /redfish/v1 HTTP/1.1\r\nHost: t\r\n");
        let filler = "a".repeat(8000);
        for i in 0..10 {
            raw.push_str(&format!("X-Pad-{i}: {filler}\r\n"));
        }
        raw.push_str("\r\n");
        w.send(raw.as_bytes());
        let r = w.response();
        assert_eq!(r.status, 431, "{backend:?}");
        assert!(r.body_text().contains("Base.1.0.HeaderTooLong"), "{backend:?}");

        server.shutdown();
    }
}

#[test]
fn over_cap_connections_are_shed_with_503_retry_after() {
    let server = boot(Backend::Epoll, 1, 2);
    let shed_before = ofmf_obs::counter("ofmf.rest.shed.total").get();

    // Fill the cap with two keep-alive connections; a completed round trip
    // guarantees each was accepted and adopted.
    let mut held = Vec::new();
    for _ in 0..2 {
        let mut w = Wire::connect(&server);
        w.send(get("/redfish/v1").as_bytes());
        assert_eq!(w.response().status, 200);
        held.push(w);
    }

    // The next connection must be answered — not hung — with 503.
    let mut over = Wire::connect(&server);
    let r = over.response();
    assert_eq!(r.status, 503, "over-cap connection must be shed, not queued");
    assert_eq!(
        r.header("retry-after"),
        Some("1"),
        "shed response must say when to retry"
    );
    assert!(r.body_text().contains("Base.1.0.ServiceTemporarilyUnavailable"));
    assert!(over.read_to_eof().is_empty(), "shed connection must be closed");
    assert!(
        ofmf_obs::counter("ofmf.rest.shed.total").get() > shed_before,
        "shedding must be visible in ofmf.rest.shed.total"
    );

    // Releasing one connection restores capacity.
    drop(held.pop());
    eventually_200(&server);
    drop(held);
    server.shutdown();
}

#[test]
fn queue_depth_gauge_settles_at_zero_after_connection_churn() {
    let gauge = ofmf_obs::gauge("ofmf.rest.accept_queue.depth");
    for backend in BACKENDS {
        let server = boot(backend, 1, 4096);
        // Churn: connections that complete a request, connections dropped
        // with a request in flight, and connections dropped while still
        // queued — every accept's gauge increment must come back.
        for _ in 0..4 {
            let mut w = Wire::connect(&server);
            w.send(get("/redfish/v1").as_bytes());
            assert_eq!(w.response().status, 200);
        }
        for _ in 0..4 {
            let mut w = Wire::connect(&server);
            w.send(get("/redfish/v1").as_bytes());
            drop(w);
        }
        for _ in 0..4 {
            drop(Wire::connect(&server));
        }
        server.shutdown();

        // Other tests in this binary may hold transient increments, so wait
        // for the gauge to pass through zero rather than asserting a single
        // sample.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if gauge.get() == 0 {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "{backend:?}: queue_depth stuck at {} after shutdown",
                gauge.get()
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}
