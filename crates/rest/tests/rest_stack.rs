//! Full-stack tests: real sockets, real HTTP, live agents behind the OFMF.

use ofmf_agents::flavors::{cxl_agent, RackShape};
use ofmf_core::Ofmf;
use ofmf_rest::{HttpClient, RestServer, Router};
use serde_json::json;
use std::collections::HashMap;
use std::sync::Arc;

fn boot(require_auth: bool, creds: HashMap<String, String>) -> (RestServer, HttpClient, Arc<Ofmf>) {
    let ofmf = Ofmf::new_wall("rest-it", creds, 11);
    ofmf.register_agent(Arc::new(cxl_agent("CXL0", &RackShape::default(), 1 << 20, 4)))
        .unwrap();
    let router = Arc::new(Router::new(Arc::clone(&ofmf), require_auth));
    let server = RestServer::start("127.0.0.1:0", router, 4).unwrap();
    let client = HttpClient::new(server.addr());
    (server, client, ofmf)
}

#[test]
fn get_tree_over_the_wire() {
    let (server, mut c, _o) = boot(false, HashMap::new());
    let root = c.get("/redfish/v1").unwrap();
    assert_eq!(root.status, 200);
    let v = root.json().unwrap();
    assert_eq!(v["Fabrics"]["@odata.id"], "/redfish/v1/Fabrics");
    assert!(root.header("etag").is_some());

    let fabrics = c.get("/redfish/v1/Fabrics").unwrap().json().unwrap();
    assert_eq!(fabrics["Members@odata.count"], 1);
    let sys = c.get("/redfish/v1/Systems/cn00").unwrap();
    assert_eq!(sys.status, 200);
    assert_eq!(sys.json().unwrap()["ProcessorSummary"]["CoreCount"], 56);
    server.shutdown();
}

#[test]
fn compose_memory_over_the_wire() {
    let (server, mut c, _o) = boot(false, HashMap::new());
    // Zone.
    let zone = c
        .post(
            "/redfish/v1/Fabrics/CXL0/Zones",
            &json!({"Id": "z1", "Links": {"Endpoints": [
                {"@odata.id": "/redfish/v1/Fabrics/CXL0/Endpoints/cn00-ep"},
                {"@odata.id": "/redfish/v1/Fabrics/CXL0/Endpoints/mem00-ep"},
            ]}}),
        )
        .unwrap();
    assert_eq!(zone.status, 201);
    assert_eq!(zone.header("location"), Some("/redfish/v1/Fabrics/CXL0/Zones/z1"));

    // Connection carving 4 GiB.
    let conn = c
        .post(
            "/redfish/v1/Fabrics/CXL0/Connections",
            &json!({
                "Id": "c1",
                "Zone": {"@odata.id": "/redfish/v1/Fabrics/CXL0/Zones/z1"},
                "Size": 4096,
                "Links": {
                    "InitiatorEndpoints": [{"@odata.id": "/redfish/v1/Fabrics/CXL0/Endpoints/cn00-ep"}],
                    "TargetEndpoints": [{"@odata.id": "/redfish/v1/Fabrics/CXL0/Endpoints/mem00-ep"}],
                }
            }),
        )
        .unwrap();
    assert_eq!(conn.status, 201);

    // The chunk is GETtable.
    let chunks = c
        .get("/redfish/v1/Chassis/mem00/MemoryDomains/dom0/MemoryChunks")
        .unwrap()
        .json()
        .unwrap();
    assert_eq!(chunks["Members@odata.count"], 1);

    // Tear down over the wire.
    assert_eq!(c.delete("/redfish/v1/Fabrics/CXL0/Connections/c1").unwrap().status, 204);
    assert_eq!(c.delete("/redfish/v1/Fabrics/CXL0/Zones/z1").unwrap().status, 204);
    let chunks = c
        .get("/redfish/v1/Chassis/mem00/MemoryDomains/dom0/MemoryChunks")
        .unwrap()
        .json()
        .unwrap();
    assert_eq!(chunks["Members@odata.count"], 0);
    server.shutdown();
}

#[test]
fn auth_flow_over_the_wire() {
    let mut creds = HashMap::new();
    creds.insert("admin".to_string(), "secret".to_string());
    let (server, mut c, _o) = boot(true, creds);

    assert_eq!(c.get("/redfish/v1").unwrap().status, 200, "root open");
    assert_eq!(c.get("/redfish/v1/Systems").unwrap().status, 401);

    let login = c
        .post(
            "/redfish/v1/SessionService/Sessions",
            &json!({"UserName": "admin", "Password": "secret"}),
        )
        .unwrap();
    assert_eq!(login.status, 201);
    let token = login.header("x-auth-token").unwrap().to_string();
    c.token = Some(token);
    assert_eq!(c.get("/redfish/v1/Systems").unwrap().status, 200);
    server.shutdown();
}

#[test]
fn event_subscription_over_the_wire() {
    let (server, mut c, ofmf) = boot(false, HashMap::new());
    let sub = c
        .post(
            "/redfish/v1/EventService/Subscriptions",
            &json!({"Destination": "rest-poll://it", "EventTypes": ["Alert"]}),
        )
        .unwrap();
    assert_eq!(sub.status, 201);
    let loc = sub.header("location").unwrap().to_string();

    ofmf.events.publish(
        redfish_model::resources::events::EventType::Alert,
        &redfish_model::odata::ODataId::new("/redfish/v1/Fabrics/CXL0"),
        "synthetic alert",
        "Critical",
    );
    let drained = c.get(&format!("{loc}/Events")).unwrap().json().unwrap();
    assert_eq!(drained["Count"], 1);
    assert_eq!(drained["Events"][0]["Events"][0]["Message"], "synthetic alert");
    server.shutdown();
}

#[test]
fn odata_query_options_over_the_wire() {
    let (server, mut c, _o) = boot(false, HashMap::new());
    // $select trims the payload but keeps control data.
    let r = c.get("/redfish/v1/Systems/cn00?$select=Name").unwrap().json().unwrap();
    assert_eq!(r["Name"], "cn00");
    assert!(r.get("ProcessorSummary").is_none());
    assert!(r["@odata.id"].is_string());
    // $top/$skip paginate collections; per DSP0266 Members@odata.count
    // stays at the TOTAL collection size and a nextLink points at the
    // remainder.
    let total = c.get("/redfish/v1/Systems").unwrap().json().unwrap()["Members@odata.count"].clone();
    let page = c.get("/redfish/v1/Systems?$top=2&$skip=1").unwrap().json().unwrap();
    assert_eq!(page["Members"].as_array().unwrap().len(), 2);
    assert_eq!(page["Members@odata.count"], total);
    assert_eq!(page["Members@odata.nextLink"], "/redfish/v1/Systems?$skip=3&$top=2");
    // Combined with $expand the members are full documents.
    let expanded = c
        .get("/redfish/v1/Systems?$expand=.&$top=1&$select=Members")
        .unwrap()
        .json()
        .unwrap();
    let members = expanded["Members"].as_array().unwrap();
    assert_eq!(members.len(), 1);
    assert_eq!(members[0]["ProcessorSummary"]["CoreCount"], 56);
    server.shutdown();
}

#[test]
fn qos_connection_over_the_wire() {
    let (server, mut c, _o) = boot(false, HashMap::new());
    c.post(
        "/redfish/v1/Fabrics/CXL0/Zones",
        &json!({"Id": "qz", "Links": {"Endpoints": [
            {"@odata.id": "/redfish/v1/Fabrics/CXL0/Endpoints/cn00-ep"},
            {"@odata.id": "/redfish/v1/Fabrics/CXL0/Endpoints/mem00-ep"},
        ]}}),
    )
    .unwrap();
    let mk = |id: &str, gbps: f64| {
        json!({
            "Id": id,
            "Zone": {"@odata.id": "/redfish/v1/Fabrics/CXL0/Zones/qz"},
            "Size": 64,
            "BandwidthGbps": gbps,
            "Links": {
                "InitiatorEndpoints": [{"@odata.id": "/redfish/v1/Fabrics/CXL0/Endpoints/cn00-ep"}],
                "TargetEndpoints": [{"@odata.id": "/redfish/v1/Fabrics/CXL0/Endpoints/mem00-ep"}],
            }
        })
    };
    // The CXL access link is 256 G: 200 G is admitted, the next 200 G is not.
    assert_eq!(
        c.post("/redfish/v1/Fabrics/CXL0/Connections", &mk("q1", 200.0))
            .unwrap()
            .status,
        201
    );
    let denied = c
        .post("/redfish/v1/Fabrics/CXL0/Connections", &mk("q2", 200.0))
        .unwrap();
    assert_eq!(denied.status, 409, "admission control over the wire");
    // Negative bandwidth is a 400.
    let bad = c.post("/redfish/v1/Fabrics/CXL0/Connections", &mk("q3", -5.0)).unwrap();
    assert_eq!(bad.status, 400);
    server.shutdown();
}

#[test]
fn event_log_over_the_wire() {
    let (server, mut c, ofmf) = boot(false, HashMap::new());
    ofmf.poll(); // flush registration events into the log
    let entries = c
        .get("/redfish/v1/Managers/OFMF/LogServices/EventLog/Entries?$expand=.")
        .unwrap()
        .json()
        .unwrap();
    let members = entries["Members"].as_array().unwrap();
    assert!(!members.is_empty());
    assert!(members
        .iter()
        .any(|e| e["Message"].as_str().unwrap_or("").contains("registered")));
    server.shutdown();
}

#[test]
fn malformed_requests_get_clean_errors() {
    use std::io::{Read, Write};
    let (server, _c, _o) = boot(false, HashMap::new());
    let mut raw = std::net::TcpStream::connect(server.addr()).unwrap();
    raw.write_all(b"BREW /coffee HTTP/1.1\r\n\r\n").unwrap();
    let mut buf = String::new();
    raw.read_to_string(&mut buf).unwrap();
    assert!(buf.starts_with("HTTP/1.1 405"), "{buf}");
    server.shutdown();
}

#[test]
fn concurrent_clients_share_the_tree() {
    let (server, _c, _o) = boot(false, HashMap::new());
    let addr = server.addr();
    let mut handles = Vec::new();
    for i in 0..8 {
        handles.push(std::thread::spawn(move || {
            let mut c = HttpClient::new(addr);
            let resp = c
                .post(
                    "/redfish/v1/Systems",
                    &json!({"Id": format!("t{i}"), "Name": format!("t{i}")}),
                )
                .unwrap();
            assert_eq!(resp.status, 201);
            for _ in 0..20 {
                assert_eq!(c.get("/redfish/v1/Systems").unwrap().status, 200);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let mut c = HttpClient::new(addr);
    let systems = c.get("/redfish/v1/Systems").unwrap().json().unwrap();
    // 4 discovered nodes + 8 test-created.
    assert_eq!(systems["Members@odata.count"], 12);
    server.shutdown();
}

/// Raw-socket exchange: send `bytes`, read the full response text.
fn raw_roundtrip(addr: std::net::SocketAddr, bytes: &[u8]) -> String {
    use std::io::{Read, Write};
    let mut raw = std::net::TcpStream::connect(addr).unwrap();
    raw.write_all(bytes).unwrap();
    let mut buf = String::new();
    raw.read_to_string(&mut buf).unwrap();
    buf
}

#[test]
fn garbled_request_line_is_a_400_and_counted() {
    let (server, _c, _o) = boot(false, HashMap::new());
    let errors = ofmf_obs::counter("ofmf.rest.parse_errors.total");
    let c4xx = ofmf_obs::counter("ofmf.rest.status.4xx");
    let (e0, s0) = (errors.get(), c4xx.get());

    let buf = raw_roundtrip(server.addr(), b"GET /redfish/v1 SPDY/3\r\n\r\n");
    assert!(buf.starts_with("HTTP/1.1 400"), "{buf}");
    assert!(buf.contains("\"error\""), "{buf}");

    assert!(errors.get() > e0, "parser rejection must hit the error counter");
    assert!(c4xx.get() > s0, "400 must land in the 4xx status class");
    server.shutdown();
}

#[test]
fn oversized_headers_are_a_431_and_counted() {
    let (server, _c, _o) = boot(false, HashMap::new());
    let errors = ofmf_obs::counter("ofmf.rest.parse_errors.total");
    let c4xx = ofmf_obs::counter("ofmf.rest.status.4xx");
    let (e0, s0) = (errors.get(), c4xx.get());

    // One giant header line pushes the section past MAX_HEADER_BYTES; the
    // overflow triggers on the last byte sent, so the server consumes the
    // whole request before responding (no RST racing the response).
    let mut req = b"GET /redfish/v1 HTTP/1.1\r\n".to_vec();
    req.extend_from_slice(format!("X-Pad: {}\r\n", "y".repeat(66 * 1024)).as_bytes());
    let buf = raw_roundtrip(server.addr(), &req);
    assert!(buf.starts_with("HTTP/1.1 431"), "{buf}");

    assert!(errors.get() > e0);
    assert!(c4xx.get() > s0);
    server.shutdown();
}

#[test]
fn unknown_route_is_a_404_and_counted() {
    let (server, mut c, _o) = boot(false, HashMap::new());
    let c4xx = ofmf_obs::counter("ofmf.rest.status.4xx");
    let gets = ofmf_obs::counter("ofmf.rest.get.requests");
    let (s0, g0) = (c4xx.get(), gets.get());

    let miss = c.get("/redfish/v1/Chassis/teapot").unwrap();
    assert_eq!(miss.status, 404);
    let body = miss.json().unwrap();
    assert!(body["error"]["message"].as_str().unwrap().contains("teapot"), "{body}");

    assert!(c4xx.get() > s0, "404 must land in the 4xx status class");
    assert!(gets.get() > g0, "routed 404s still count as GET requests");
    server.shutdown();
}
