//! Torn-write corpus: for EVERY byte offset inside the last record,
//! truncating the log there — and separately, bit-flipping any single byte
//! of the last record — must still boot, recover the longest valid prefix,
//! and bump `ofmf.wal.torn_tail.total`. A write-ahead log that refuses to
//! start after a torn tail converts a crash into an outage.

use ofmf_wal::{FsyncPolicy, Wal, WalRecord};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static CASE: AtomicU64 = AtomicU64::new(0);

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ofmf-torn-{tag}-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn record(i: u64) -> WalRecord {
    WalRecord::SessionTouch {
        token: format!("ofmf-token-{i:08}"),
        last_used_ms: i * 1000,
    }
}

/// Build a log of `n` records and return (dir, file bytes, frame end offsets).
fn build_log(tag: &str, n: u64) -> (PathBuf, Vec<u8>, Vec<usize>) {
    let dir = fresh_dir(tag);
    let wal = Wal::open(&dir, FsyncPolicy::Always).expect("open");
    for i in 0..n {
        wal.append(&record(i)).expect("append");
    }
    drop(wal);
    let bytes = std::fs::read(dir.join("wal.log")).expect("read log");
    let (frames, valid) = ofmf_wal::scan_frames(&bytes);
    assert_eq!(valid, bytes.len(), "freshly written log must be fully valid");
    assert_eq!(frames.len(), n as usize);
    let ends = frames.iter().map(|f| f.end()).collect();
    (dir, bytes, ends)
}

#[test]
fn truncation_at_every_offset_of_the_last_record_recovers_prefix() {
    let (dir, bytes, ends) = build_log("trunc", 5);
    let log = dir.join("wal.log");
    let last_start = ends[ends.len() - 2]; // end of record 3 = start of record 4
    let torn_counter = ofmf_obs::counter("ofmf.wal.torn_tail.total");

    for cut in last_start..bytes.len() {
        std::fs::write(&log, &bytes[..cut]).expect("truncate");
        let wal = Wal::open(&dir, FsyncPolicy::Always).expect("boot must succeed");
        let before = torn_counter.get();
        let replay = wal.replay().expect("replay must succeed");
        if cut == last_start {
            // A clean cut at a frame boundary is not a torn tail.
            assert_eq!(replay.torn_tails, 0, "cut at {cut}");
            assert_eq!(torn_counter.get(), before);
        } else {
            assert_eq!(replay.torn_tails, 1, "cut at {cut}");
            assert_eq!(torn_counter.get(), before + 1, "counter must bump at cut {cut}");
        }
        // Longest valid prefix: exactly the four complete records.
        assert_eq!(replay.records.len(), 4, "cut at {cut}");
        for (i, r) in replay.records.iter().enumerate() {
            assert_eq!(r, &record(i as u64), "cut at {cut}");
        }
        // The file was truncated in place: a second boot is clean.
        let replay2 = Wal::open(&dir, FsyncPolicy::Always)
            .expect("reopen")
            .replay()
            .expect("second replay");
        assert_eq!(replay2.torn_tails, 0, "cut at {cut}: truncation must persist");
        assert_eq!(replay2.records.len(), 4);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bit_flip_at_every_byte_of_the_last_record_recovers_prefix() {
    let (dir, bytes, ends) = build_log("flip", 4);
    let log = dir.join("wal.log");
    let last_start = ends[ends.len() - 2];

    for pos in last_start..bytes.len() {
        for bit in [0x01u8, 0x80u8] {
            let mut corrupted = bytes.clone();
            corrupted[pos] ^= bit;
            std::fs::write(&log, &corrupted).expect("write corrupted");
            let wal = Wal::open(&dir, FsyncPolicy::Always).expect("boot must succeed");
            let replay = wal.replay().expect("replay must succeed");
            // A flipped bit in the last record must never produce a bogus
            // record: either the frame fails CRC/decode (3 records), or —
            // never — more.
            assert_eq!(replay.torn_tails, 1, "flip at {pos}:{bit:#x}");
            assert_eq!(replay.records.len(), 3, "flip at {pos}:{bit:#x}");
            for (i, r) in replay.records.iter().enumerate() {
                assert_eq!(r, &record(i as u64), "flip at {pos}:{bit:#x}");
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn garbage_appended_after_valid_log_is_dropped() {
    let (dir, bytes, _) = build_log("garbage", 3);
    let log = dir.join("wal.log");
    for garbage in [&b"\x00\x00"[..], &b"totally not a frame"[..], &[0xffu8; 64][..]] {
        let mut b = bytes.clone();
        b.extend_from_slice(garbage);
        std::fs::write(&log, &b).expect("write");
        let replay = Wal::open(&dir, FsyncPolicy::Always)
            .expect("boot")
            .replay()
            .expect("replay");
        assert_eq!(replay.records.len(), 3);
        assert_eq!(replay.torn_tails, 1);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn appends_after_torn_boot_extend_the_recovered_prefix() {
    let (dir, bytes, _) = build_log("extend", 3);
    let log = dir.join("wal.log");
    std::fs::write(&log, &bytes[..bytes.len() - 1]).expect("tear one byte");
    let wal = Wal::open(&dir, FsyncPolicy::Always).expect("boot");
    assert_eq!(wal.replay().expect("replay").records.len(), 2);
    wal.append(&record(77)).expect("append");
    drop(wal);
    let replay = Wal::open(&dir, FsyncPolicy::Always)
        .expect("reopen")
        .replay()
        .expect("replay");
    assert_eq!(replay.torn_tails, 0);
    assert_eq!(replay.records.len(), 3);
    assert_eq!(replay.records[2], record(77));
    let _ = std::fs::remove_dir_all(&dir);
}
