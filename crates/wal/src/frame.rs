//! On-disk framing: `[u32 payload-len LE][u32 crc32 LE][payload]`.
//!
//! The CRC covers the payload bytes only; the length field is implicitly
//! validated by the CRC check (a corrupted length either points past the
//! end of the file, exceeds [`MAX_FRAME_PAYLOAD`], or frames a byte run
//! whose checksum cannot match). A scan stops at the first frame that
//! fails any of those checks, so the valid prefix of a torn file is
//! always recoverable.

/// Upper bound on a single frame's payload. A length field above this is
/// treated as corruption rather than an instruction to allocate gigabytes.
pub const MAX_FRAME_PAYLOAD: usize = 64 * 1024 * 1024;

/// Bytes of framing overhead per record (length + checksum).
pub const FRAME_HEADER: usize = 8;

const CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xedb8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        // ofmf-lint: allow(no-panic-path, "const-eval index bounded by the 0..256 loop")
        table[i] = c;
        i += 1;
    }
    table
}

/// IEEE CRC-32 (the zlib/PNG polynomial), table-driven.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in bytes {
        // ofmf-lint: allow(no-panic-path, "index is masked to 0..256; the table has 256 entries")
        c = CRC_TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

/// Append one framed payload to `out`.
pub fn encode_frame(payload: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// One structurally valid frame located by [`scan_frames`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameInfo {
    /// Byte offset of the frame header within the scanned buffer.
    pub offset: usize,
    /// Byte offset of the payload.
    pub payload_start: usize,
    /// Payload length in bytes.
    pub payload_len: usize,
}

impl FrameInfo {
    /// Offset one past the end of this frame (the next frame's header).
    pub fn end(&self) -> usize {
        self.payload_start + self.payload_len
    }
}

fn read_u32(bytes: &[u8], at: usize) -> Option<u32> {
    let slice = bytes.get(at..at + 4)?;
    let arr: [u8; 4] = slice.try_into().ok()?;
    Some(u32::from_le_bytes(arr))
}

/// Walk `bytes` frame by frame. Returns the structurally valid frames and
/// the length of the valid prefix; scanning stops at the first frame with
/// a short header, an absurd length, a short payload, or a CRC mismatch.
pub fn scan_frames(bytes: &[u8]) -> (Vec<FrameInfo>, usize) {
    let mut frames = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let Some(len) = read_u32(bytes, pos) else { break };
        let Some(crc) = read_u32(bytes, pos + 4) else { break };
        let len = len as usize;
        if len > MAX_FRAME_PAYLOAD {
            break;
        }
        let start = pos + FRAME_HEADER;
        let Some(payload) = bytes.get(start..start + len) else {
            break;
        };
        if crc32(payload) != crc {
            break;
        }
        frames.push(FrameInfo {
            offset: pos,
            payload_start: start,
            payload_len: len,
        });
        pos = start + len;
    }
    (frames, pos)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789" under IEEE CRC-32.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_frames() {
        let mut buf = Vec::new();
        encode_frame(b"hello", &mut buf);
        encode_frame(b"", &mut buf);
        encode_frame(b"world!", &mut buf);
        let (frames, valid) = scan_frames(&buf);
        assert_eq!(valid, buf.len());
        assert_eq!(frames.len(), 3);
        assert_eq!(&buf[frames[0].payload_start..frames[0].end()], b"hello");
        assert_eq!(frames[1].payload_len, 0);
        assert_eq!(&buf[frames[2].payload_start..frames[2].end()], b"world!");
    }

    #[test]
    fn scan_stops_at_corruption() {
        let mut buf = Vec::new();
        encode_frame(b"keep me", &mut buf);
        let keep = buf.len();
        encode_frame(b"corrupt me", &mut buf);
        let last = buf.len() - 1;
        buf[last] ^= 0x01;
        let (frames, valid) = scan_frames(&buf);
        assert_eq!(frames.len(), 1);
        assert_eq!(valid, keep);
    }

    #[test]
    fn scan_rejects_absurd_length() {
        let mut buf = Vec::new();
        encode_frame(b"ok", &mut buf);
        let keep = buf.len();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(b"garbage");
        let (frames, valid) = scan_frames(&buf);
        assert_eq!(frames.len(), 1);
        assert_eq!(valid, keep);
    }

    #[test]
    fn every_truncation_yields_a_prefix() {
        let mut buf = Vec::new();
        for i in 0..4 {
            encode_frame(format!("record-{i}").as_bytes(), &mut buf);
        }
        let (full, _) = scan_frames(&buf);
        let ends: Vec<usize> = full.iter().map(|f| f.end()).collect();
        for cut in 0..buf.len() {
            let (frames, valid) = scan_frames(&buf[..cut]);
            // The valid prefix must be exactly the frames that end at or
            // before the cut.
            let expect = ends.iter().filter(|&&e| e <= cut).count();
            assert_eq!(frames.len(), expect, "cut at {cut}");
            assert!(valid <= cut);
        }
    }
}
