//! # ofmf-wal
//!
//! Dependency-free durability for the OFMF control plane: an append-only,
//! length-prefixed + CRC-checksummed write-ahead log of logical mutations,
//! periodic compacted snapshots with atomic rename-into-place, and a
//! replay path that truncates torn tails instead of refusing to boot.
//!
//! ## Layout
//!
//! A journal directory holds up to three files:
//!
//! * `wal.log` — the live append segment.
//! * `snapshot.bin` — the last compacted snapshot (same frame format).
//! * `wal.old` — the sealed previous segment, present only between a
//!   snapshot's log rotation and its rename-into-place (i.e. after a
//!   crash mid-snapshot).
//!
//! Replay order is `snapshot.bin`, then `wal.old` (if any), then
//! `wal.log` — always a consistent prefix of history. Records are
//! *idempotent* (they carry absolute ETags and full bodies), so a record
//! that lands both in a snapshot and in the live segment replays to the
//! same state; that is what makes the rotate-then-collect snapshot safe
//! against concurrent writers.
//!
//! ## Group commit
//!
//! All appends funnel through one mutex-guarded file handle; a batch of
//! records is framed into a single `write(2)`. The [`FsyncPolicy`]
//! decides when the file is additionally fsynced: `Always` (every
//! append), `Batch(ms)` (at most one fsync per window — bounded loss on
//! power failure, none on process crash), or `Off` (no explicit fsync).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frame;
mod record;

pub use frame::{crc32, encode_frame, scan_frames, FrameInfo, FRAME_HEADER, MAX_FRAME_PAYLOAD};
pub use record::WalRecord;

use ofmf_obs::Counter;
use parking_lot::Mutex;
use serde_json::Value;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// When the journal file is additionally `fsync`ed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync after every append: no loss even on power failure.
    Always,
    /// At most one fsync per window of this many milliseconds: every
    /// append still reaches the kernel (survives a process crash), and a
    /// power failure loses at most one window of mutations.
    Batch(u64),
    /// Never fsync explicitly: appends reach the kernel per write, but
    /// nothing forces them to stable storage.
    Off,
}

impl FsyncPolicy {
    /// Parse a CLI spelling: `always`, `off`, `batch` (default 25 ms) or
    /// `batch:<ms>`.
    pub fn parse(s: &str) -> Option<FsyncPolicy> {
        match s {
            "always" => Some(FsyncPolicy::Always),
            "off" => Some(FsyncPolicy::Off),
            "batch" => Some(FsyncPolicy::Batch(25)),
            other => {
                let ms = other.strip_prefix("batch:")?;
                ms.parse::<u64>().ok().map(FsyncPolicy::Batch)
            }
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::Batch(ms) => write!(f, "batch:{ms}"),
            FsyncPolicy::Off => write!(f, "off"),
        }
    }
}

/// The result of [`Wal::replay`].
#[derive(Debug)]
pub struct Replay {
    /// Every decoded record, in snapshot → old-segment → live-segment order.
    pub records: Vec<WalRecord>,
    /// How many files had a torn tail truncated away (0–3).
    pub torn_tails: u64,
}

struct Inner {
    log: File,
    log_bytes: u64,
    last_sync_ms: u64,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("dir", &self.dir)
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}

/// The write-ahead journal: one per OFMF instance, shared by every
/// subsystem through `Arc<Wal>`.
pub struct Wal {
    dir: PathBuf,
    policy: FsyncPolicy,
    opened: Instant,
    /// Append path: a leaf lock — nothing is acquired while holding it.
    inner: Mutex<Inner>,
    /// Serializes snapshot/replay against each other; ordered before
    /// `inner` and before any registry lock taken by a collect closure.
    snap: Mutex<()>,
    appends: Arc<Counter>,
    bytes: Arc<Counter>,
    fsyncs: Arc<Counter>,
    replayed: Arc<Counter>,
    torn_tail: Arc<Counter>,
    snapshots: Arc<Counter>,
    errors: Arc<Counter>,
}

const LOG_FILE: &str = "wal.log";
const OLD_FILE: &str = "wal.old";
const SNAP_FILE: &str = "snapshot.bin";
const SNAP_TMP: &str = "snapshot.tmp";

fn json_err(e: serde_json::Error) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("wal record encode: {e}"))
}

impl Wal {
    /// Open (creating if needed) the journal directory and its live
    /// segment. Call [`Wal::replay`] before serving writes.
    pub fn open(dir: impl AsRef<Path>, policy: FsyncPolicy) -> io::Result<Wal> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let log_path = dir.join(LOG_FILE);
        let log = OpenOptions::new().create(true).append(true).open(&log_path)?;
        let log_bytes = log.metadata()?.len();
        Ok(Wal {
            dir,
            policy,
            opened: Instant::now(),
            inner: Mutex::new(Inner {
                log,
                log_bytes,
                last_sync_ms: 0,
            }),
            snap: Mutex::new(()),
            appends: ofmf_obs::counter("ofmf.wal.appends.total"),
            bytes: ofmf_obs::counter("ofmf.wal.bytes.total"),
            fsyncs: ofmf_obs::counter("ofmf.wal.fsyncs.total"),
            replayed: ofmf_obs::counter("ofmf.wal.replayed.total"),
            torn_tail: ofmf_obs::counter("ofmf.wal.torn_tail.total"),
            snapshots: ofmf_obs::counter("ofmf.wal.snapshot.total"),
            errors: ofmf_obs::counter("ofmf.wal.errors.total"),
        })
    }

    /// The configured fsync policy.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// Path of the live append segment (exposed for crash-injection tests).
    pub fn log_path(&self) -> PathBuf {
        self.dir.join(LOG_FILE)
    }

    /// Path of the current snapshot.
    pub fn snapshot_path(&self) -> PathBuf {
        self.dir.join(SNAP_FILE)
    }

    fn old_path(&self) -> PathBuf {
        self.dir.join(OLD_FILE)
    }

    /// Bytes currently in the live segment (frames + headers).
    pub fn log_bytes(&self) -> u64 {
        self.inner.lock().log_bytes
    }

    fn now_ms(&self) -> u64 {
        self.opened.elapsed().as_millis() as u64
    }

    /// Append one record (group-committed per the fsync policy).
    pub fn append(&self, rec: &WalRecord) -> io::Result<()> {
        self.append_many(std::slice::from_ref(rec))
    }

    /// Append a batch of records in one write.
    pub fn append_many(&self, recs: &[WalRecord]) -> io::Result<()> {
        if recs.is_empty() {
            return Ok(());
        }
        let mut buf = Vec::new();
        for r in recs {
            let payload = serde_json::to_vec(&r.to_value()).map_err(json_err)?;
            frame::encode_frame(&payload, &mut buf);
        }
        let mut inner = self.inner.lock();
        #[cfg(feature = "lockcheck")]
        parking_lot::blocking_op("wal.file.write");
        inner.log.write_all(&buf)?; // ofmf-lint: allow(no-blocking-while-locked, "group commit: the inner mutex is the append serialization point; the buffer is bounded")
        inner.log_bytes += buf.len() as u64;
        self.appends.add(recs.len() as u64);
        self.bytes.add(buf.len() as u64);
        let due = match self.policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::Batch(ms) => self.now_ms().saturating_sub(inner.last_sync_ms) >= ms,
            FsyncPolicy::Off => false,
        };
        if due {
            self.sync(&mut inner)?;
        }
        Ok(())
    }

    fn sync(&self, inner: &mut Inner) -> io::Result<()> {
        #[cfg(feature = "lockcheck")]
        parking_lot::blocking_op("wal.file.fsync");
        // ofmf-wal: policy — the one durability point of the append path
        inner.log.sync_data()?; // ofmf-lint: allow(no-blocking-while-locked, "the WAL's single durability point: every journaling caller fsyncs inside its own lock scope by design")
        self.fsyncs.inc();
        inner.last_sync_ms = self.now_ms();
        Ok(())
    }

    /// Append one record, absorbing I/O errors into the
    /// `ofmf.wal.errors.total` counter. Mutation paths use this: by the
    /// time a record is journaled the in-memory mutation has already
    /// happened, so a journaling failure degrades durability, never
    /// availability.
    pub fn record(&self, rec: &WalRecord) {
        if self.append(rec).is_err() {
            self.errors.inc();
        }
    }

    /// Batch form of [`Wal::record`].
    pub fn record_many(&self, recs: &[WalRecord]) {
        if self.append_many(recs).is_err() {
            self.errors.inc();
        }
    }

    /// Force an fsync of the live segment regardless of policy.
    pub fn flush(&self) -> io::Result<()> {
        let mut inner = self.inner.lock();
        self.sync(&mut inner)
    }

    /// Write a compacted snapshot. The live segment is rotated out
    /// *before* `collect` runs, so the collected state is guaranteed to
    /// cover everything in the sealed segment; mutations racing with the
    /// collection land in the fresh segment and replay idempotently on
    /// top of the snapshot.
    pub fn snapshot_with<F>(&self, collect: F) -> io::Result<usize>
    where
        F: FnOnce() -> Vec<WalRecord>,
    {
        let mut span = ofmf_obs::enter_span("ofmf.wal.snapshot");
        let _guard = self.snap.lock();
        self.rotate_log()?;
        let records = collect();
        let mut buf = Vec::new();
        for r in &records {
            let payload = serde_json::to_vec(&r.to_value()).map_err(json_err)?;
            frame::encode_frame(&payload, &mut buf);
        }
        let tmp = self.dir.join(SNAP_TMP);
        #[cfg(feature = "lockcheck")]
        parking_lot::blocking_op("wal.file.snapshot");
        let mut f = File::create(&tmp)?; // ofmf-lint: allow(no-blocking-while-locked, "snapshot collection holds only the snap mutex, taken by no hot path")
        f.write_all(&buf)?;
        // ofmf-wal: policy — the rename below must publish a fully durable snapshot
        f.sync_all()?; // ofmf-lint: allow(no-blocking-while-locked, "durability point: the rename below must publish a fully durable snapshot")
        drop(f);
        std::fs::rename(&tmp, self.snapshot_path())?; // ofmf-lint: allow(no-blocking-while-locked, "atomic publish of the snapshot under the snap mutex only")
        if let Ok(d) = File::open(&self.dir) {
            // ofmf-wal: policy — make the rename itself durable before dropping the old segment
            let _ = d.sync_all(); // ofmf-lint: allow(no-blocking-while-locked, "make the rename durable before dropping the old segment")
        }
        let _ = std::fs::remove_file(self.old_path()); // ofmf-lint: allow(no-blocking-while-locked, "old segment removal after the snapshot superseded it")
        self.snapshots.inc();
        span.annotate("records", records.len().to_string());
        span.annotate("bytes", buf.len().to_string());
        Ok(records.len())
    }

    fn rotate_log(&self) -> io::Result<()> {
        let mut inner = self.inner.lock();
        #[cfg(feature = "lockcheck")]
        parking_lot::blocking_op("wal.file.rotate");
        // ofmf-wal: policy — seal the segment before the snapshot supersedes it
        inner.log.sync_data()?; // ofmf-lint: allow(no-blocking-while-locked, "segment seal: rotation must not interleave with appends")
        std::fs::rename(self.log_path(), self.old_path())?; // ofmf-lint: allow(no-blocking-while-locked, "segment rotation under the append mutex by design")
        inner.log = OpenOptions::new().create(true).append(true).open(self.log_path())?;
        inner.log_bytes = 0;
        inner.last_sync_ms = self.now_ms();
        Ok(())
    }

    /// Read back every durable record: snapshot first, then the sealed
    /// segment a crashed snapshot may have left behind, then the live
    /// segment. A torn tail anywhere yields the longest valid prefix; the
    /// live segment is additionally truncated in place so subsequent
    /// appends extend a clean file.
    pub fn replay(&self) -> io::Result<Replay> {
        let mut span = ofmf_obs::enter_span("ofmf.wal.replay");
        span.force_sample();
        let _guard = self.snap.lock();
        let mut records = Vec::new();
        let mut torn = 0u64;
        torn += self.read_segment(&self.snapshot_path(), false, &mut records)?;
        torn += self.read_segment(&self.old_path(), false, &mut records)?;
        torn += self.read_segment(&self.log_path(), true, &mut records)?;
        self.replayed.add(records.len() as u64);
        span.annotate("records", records.len().to_string());
        if torn > 0 {
            span.annotate("torn_tails", torn.to_string());
        }
        Ok(Replay {
            records,
            torn_tails: torn,
        })
    }

    /// Decode one segment file into `out`. Returns 1 if a torn tail was
    /// dropped (and, for the live segment, truncated on disk), else 0.
    fn read_segment(&self, path: &Path, is_live: bool, out: &mut Vec<WalRecord>) -> io::Result<u64> {
        // ofmf-lint: allow(no-blocking-while-locked, "replay reads segments under the snap mutex to exclude a concurrent snapshot; runs before appenders exist")
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
            Err(e) => return Err(e),
        };
        let (decoded, valid_len) = decode_records(&bytes);
        let torn = valid_len < bytes.len();
        if torn {
            self.torn_tail.inc();
            if is_live {
                let mut inner = self.inner.lock();
                #[cfg(feature = "lockcheck")]
                parking_lot::blocking_op("wal.file.truncate");
                let f = OpenOptions::new().write(true).open(path)?; // ofmf-lint: allow(no-blocking-while-locked, "torn-tail truncation during replay, before any concurrent appender exists")
                f.set_len(valid_len as u64)?;
                // ofmf-wal: policy — persist the tail truncation before serving new appends
                f.sync_all()?; // ofmf-lint: allow(no-blocking-while-locked, "persist the tail truncation before serving new appends")
                inner.log_bytes = valid_len as u64;
            }
        }
        out.extend(decoded);
        Ok(u64::from(torn))
    }
}

/// Decode framed records from a byte buffer. Returns the records of the
/// longest valid prefix and that prefix's length: a frame whose payload
/// fails CRC *or* fails to decode as a known record ends the prefix.
pub fn decode_records(bytes: &[u8]) -> (Vec<WalRecord>, usize) {
    let (frames, mut valid_len) = scan_frames(bytes);
    let mut out = Vec::with_capacity(frames.len());
    for f in &frames {
        let payload = match bytes.get(f.payload_start..f.end()) {
            Some(p) => p,
            None => {
                valid_len = f.offset;
                break;
            }
        };
        let parsed: Result<Value, _> = serde_json::from_slice(payload);
        match parsed.ok().as_ref().and_then(WalRecord::from_value) {
            Some(rec) => out.push(rec),
            None => {
                valid_len = f.offset;
                break;
            }
        }
    }
    (out, valid_len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ofmf-wal-{tag}-{}-{}",
            std::process::id(),
            ofmf_obs::next_request_id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn mark(ms: u64) -> WalRecord {
        WalRecord::ClockMark { now_ms: ms }
    }

    #[test]
    fn append_then_replay_roundtrips() {
        let dir = tmpdir("roundtrip");
        let wal = Wal::open(&dir, FsyncPolicy::Always).expect("open");
        for i in 0..10 {
            wal.append(&mark(i)).expect("append");
        }
        let replay = wal.replay().expect("replay");
        assert_eq!(replay.torn_tails, 0);
        assert_eq!(replay.records, (0..10).map(mark).collect::<Vec<_>>());
        // A second handle sees the same history.
        let wal2 = Wal::open(&dir, FsyncPolicy::Off).expect("reopen");
        assert_eq!(wal2.replay().expect("replay2").records.len(), 10);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_survives() {
        let dir = tmpdir("torn");
        let wal = Wal::open(&dir, FsyncPolicy::Always).expect("open");
        for i in 0..5 {
            wal.append(&mark(i)).expect("append");
        }
        drop(wal);
        // Tear the last record mid-payload.
        let path = dir.join("wal.log");
        let bytes = std::fs::read(&path).expect("read");
        std::fs::write(&path, &bytes[..bytes.len() - 3]).expect("tear");
        let wal = Wal::open(&dir, FsyncPolicy::Always).expect("reopen");
        let replay = wal.replay().expect("replay");
        assert_eq!(replay.torn_tails, 1);
        assert_eq!(replay.records.len(), 4);
        // The file was physically truncated: appends extend a clean log.
        wal.append(&mark(99)).expect("append after truncate");
        let replay = wal.replay().expect("replay after append");
        assert_eq!(replay.torn_tails, 0);
        assert_eq!(replay.records.len(), 5);
        assert_eq!(replay.records.last(), Some(&mark(99)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_compacts_and_replays_in_order() {
        let dir = tmpdir("snap");
        let wal = Wal::open(&dir, FsyncPolicy::Batch(5)).expect("open");
        for i in 0..20 {
            wal.append(&mark(i)).expect("append");
        }
        let n = wal
            .snapshot_with(|| vec![WalRecord::EtagFloor { seq: 77 }])
            .expect("snapshot");
        assert_eq!(n, 1);
        wal.append(&mark(100)).expect("append post-snapshot");
        let replay = wal.replay().expect("replay");
        assert_eq!(
            replay.records,
            vec![WalRecord::EtagFloor { seq: 77 }, mark(100)],
            "snapshot first, then the live segment"
        );
        assert!(!dir.join("wal.old").exists(), "sealed segment removed after snapshot");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_between_rotate_and_snapshot_keeps_old_segment() {
        let dir = tmpdir("crash-mid-snap");
        let wal = Wal::open(&dir, FsyncPolicy::Always).expect("open");
        wal.append(&mark(1)).expect("append");
        // Simulate the crash window: rotation happened, snapshot did not.
        wal.rotate_log().expect("rotate");
        wal.append(&mark(2)).expect("append to fresh segment");
        drop(wal);
        let wal = Wal::open(&dir, FsyncPolicy::Always).expect("reopen");
        let replay = wal.replay().expect("replay");
        assert_eq!(replay.records, vec![mark(1), mark(2)], "old then live segment");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn undecodable_payload_counts_as_torn() {
        let dir = tmpdir("badjson");
        let wal = Wal::open(&dir, FsyncPolicy::Always).expect("open");
        wal.append(&mark(1)).expect("append");
        drop(wal);
        let path = dir.join("wal.log");
        // A structurally valid frame whose payload is not a record.
        let mut bytes = std::fs::read(&path).expect("read");
        let mut extra = Vec::new();
        encode_frame(b"{\"k\": \"no_such_kind\"}", &mut extra);
        bytes.extend_from_slice(&extra);
        std::fs::write(&path, &bytes).expect("write");
        let wal = Wal::open(&dir, FsyncPolicy::Always).expect("reopen");
        let replay = wal.replay().expect("replay");
        assert_eq!(replay.torn_tails, 1);
        assert_eq!(replay.records, vec![mark(1)]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsync_policy_parse() {
        assert_eq!(FsyncPolicy::parse("always"), Some(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("off"), Some(FsyncPolicy::Off));
        assert_eq!(FsyncPolicy::parse("batch"), Some(FsyncPolicy::Batch(25)));
        assert_eq!(FsyncPolicy::parse("batch:10"), Some(FsyncPolicy::Batch(10)));
        assert_eq!(FsyncPolicy::parse("batch:x"), None);
        assert_eq!(FsyncPolicy::parse("sometimes"), None);
        assert_eq!(FsyncPolicy::Batch(10).to_string(), "batch:10");
    }
}
