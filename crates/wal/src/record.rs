//! The logical journal records and their JSON codec.
//!
//! Records are encoded as single JSON objects with a `"k"` discriminant,
//! hand-rolled in both directions so the on-disk format is a stable,
//! inspectable contract rather than an artifact of derive internals.
//! Payload fields use plain `String` paths and `u64` ETags — the WAL sits
//! below the Redfish data model and must not depend on it.

use serde_json::{Map, Number, Value};

/// One durable control-plane mutation (or snapshot install record).
///
/// Registry records carry the ETag the live mutation allocated (and the
/// parent collection's bumped ETag, when linking/unlinking touched one),
/// so replay reproduces the exact tree — including ETags — regardless of
/// how concurrent writers interleaved across stripes.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A resource (or collection) was created and linked into its parent.
    Create {
        /// Resource path.
        id: String,
        /// Full body as stored.
        body: Value,
        /// ETag allocated for the new resource.
        etag: u64,
        /// Whether the resource is a Members collection.
        is_collection: bool,
        /// New ETag of the parent collection, when linking bumped one.
        parent_etag: Option<u64>,
    },
    /// A resource was merge-patched.
    Patch {
        /// Resource path.
        id: String,
        /// The merge-patch delta that was applied.
        delta: Value,
        /// ETag allocated by the patch.
        etag: u64,
    },
    /// A resource body was replaced wholesale.
    Replace {
        /// Resource path.
        id: String,
        /// The replacement body.
        body: Value,
        /// ETag allocated by the replace.
        etag: u64,
    },
    /// A single resource was deleted and unlinked.
    Delete {
        /// Resource path.
        id: String,
        /// New ETag of the parent collection, when unlinking bumped one.
        parent_etag: Option<u64>,
    },
    /// A whole subtree was deleted and its root unlinked.
    DeleteSubtree {
        /// Subtree root path.
        id: String,
        /// New ETag of the parent collection, when unlinking bumped one.
        parent_etag: Option<u64>,
    },
    /// Snapshot record: install a resource verbatim (no linking — the
    /// parent's Members are part of its own installed body).
    InstallResource {
        /// Resource path.
        id: String,
        /// Full stored body.
        body: Value,
        /// Stored ETag.
        etag: u64,
        /// Whether the resource is a Members collection.
        is_collection: bool,
    },
    /// Snapshot record: the ETag allocator must resume at or above `seq`.
    EtagFloor {
        /// Next ETag sequence value.
        seq: u64,
    },
    /// Periodic stamp of the control-plane clock, so sessions and other
    /// deadline state resume against monotonic time after a restart.
    ClockMark {
        /// Clock reading in milliseconds.
        now_ms: u64,
    },
    /// An event subscription was created.
    Subscribe {
        /// Subscription id (the member id under the Subscriptions collection).
        id: String,
        /// Delivery destination URI.
        destination: String,
        /// Subscribed event type names (empty = all).
        event_types: Vec<String>,
        /// Origin-resource path filters (empty = all).
        origins: Vec<String>,
    },
    /// An event subscription was removed.
    Unsubscribe {
        /// Subscription id.
        id: String,
    },
    /// A session was created.
    SessionLogin {
        /// The bearer token.
        token: String,
        /// Session member id.
        session_id: String,
        /// Authenticated user name.
        user: String,
        /// Clock reading at login.
        last_used_ms: u64,
    },
    /// A session's idle deadline was refreshed.
    SessionTouch {
        /// The bearer token.
        token: String,
        /// Clock reading at the touch.
        last_used_ms: u64,
    },
    /// A session ended (logout or expiry).
    SessionEnd {
        /// The bearer token.
        token: String,
    },
    /// A teardown op was journaled for a dead agent (PR-2 teardown journal).
    Teardown {
        /// Fabric the op targets.
        fabric: String,
        /// Encoded `AgentOp`.
        op: Value,
    },
    /// A fabric's journaled teardowns were drained (replayed or dropped).
    TeardownDrained {
        /// Fabric whose journal drained.
        fabric: String,
    },
    /// Composition intent, written *before* any agent bind executes. The
    /// planned bindings carry pre-allocated zone/connection member ids so
    /// recovery can find (and remove) half-applied state by exact path.
    ComposeIntent {
        /// Composed system path.
        system: String,
        /// Backing compute node path.
        node: String,
        /// Encoded `CompositionRequest`.
        request: Value,
        /// Array of planned bindings.
        planned: Value,
    },
    /// One planned binding completed against the agent.
    BindDone {
        /// Composed system path.
        system: String,
        /// Encoded `Binding`.
        binding: Value,
    },
    /// The composition completed and is live.
    ComposeCommit {
        /// Composed system path.
        system: String,
    },
    /// The composition was abandoned and compensated.
    ComposeAbort {
        /// Composed system path.
        system: String,
    },
    /// A live composition was decomposed.
    Decompose {
        /// Composed system path.
        system: String,
    },
    /// A binding was added to a live composition (grow/attach).
    BindAdded {
        /// Composed system path.
        system: String,
        /// Encoded `Binding`.
        binding: Value,
    },
    /// Snapshot record: a live committed composition.
    ComposeLive {
        /// Composed system path.
        system: String,
        /// Backing compute node path.
        node: String,
        /// Encoded `CompositionRequest`.
        request: Value,
        /// Array of encoded `Binding`s.
        bindings: Value,
    },
}

fn s(v: &str) -> Value {
    Value::String(v.to_string())
}

fn n(v: u64) -> Value {
    Value::Number(Number::from_u64(v))
}

fn strings(vs: &[String]) -> Value {
    Value::Array(vs.iter().map(|v| s(v)).collect())
}

fn obj(kind: &str) -> Map {
    let mut m = Map::new();
    m.insert("k".to_string(), s(kind));
    m
}

fn get_str(m: &Map, key: &str) -> Option<String> {
    m.get(key)?.as_str().map(|v| v.to_string())
}

fn get_u64(m: &Map, key: &str) -> Option<u64> {
    m.get(key)?.as_u64()
}

fn get_bool(m: &Map, key: &str) -> Option<bool> {
    m.get(key)?.as_bool()
}

fn get_val(m: &Map, key: &str) -> Option<Value> {
    m.get(key).cloned()
}

fn get_strings(m: &Map, key: &str) -> Option<Vec<String>> {
    let arr = m.get(key)?.as_array()?;
    let mut out = Vec::with_capacity(arr.len());
    for v in arr {
        out.push(v.as_str()?.to_string());
    }
    Some(out)
}

impl WalRecord {
    /// A short stable name for the record kind (the `"k"` discriminant).
    pub fn kind(&self) -> &'static str {
        match self {
            WalRecord::Create { .. } => "create",
            WalRecord::Patch { .. } => "patch",
            WalRecord::Replace { .. } => "replace",
            WalRecord::Delete { .. } => "delete",
            WalRecord::DeleteSubtree { .. } => "delete_subtree",
            WalRecord::InstallResource { .. } => "install",
            WalRecord::EtagFloor { .. } => "etag_floor",
            WalRecord::ClockMark { .. } => "clock_mark",
            WalRecord::Subscribe { .. } => "subscribe",
            WalRecord::Unsubscribe { .. } => "unsubscribe",
            WalRecord::SessionLogin { .. } => "session_login",
            WalRecord::SessionTouch { .. } => "session_touch",
            WalRecord::SessionEnd { .. } => "session_end",
            WalRecord::Teardown { .. } => "teardown",
            WalRecord::TeardownDrained { .. } => "teardown_drained",
            WalRecord::ComposeIntent { .. } => "compose_intent",
            WalRecord::BindDone { .. } => "bind_done",
            WalRecord::ComposeCommit { .. } => "compose_commit",
            WalRecord::ComposeAbort { .. } => "compose_abort",
            WalRecord::Decompose { .. } => "decompose",
            WalRecord::BindAdded { .. } => "bind_added",
            WalRecord::ComposeLive { .. } => "compose_live",
        }
    }

    /// Encode as the on-disk JSON object.
    pub fn to_value(&self) -> Value {
        let mut m = obj(self.kind());
        match self {
            WalRecord::Create {
                id,
                body,
                etag,
                is_collection,
                parent_etag,
            } => {
                m.insert("id".to_string(), s(id));
                m.insert("body".to_string(), body.clone());
                m.insert("etag".to_string(), n(*etag));
                m.insert("coll".to_string(), Value::Bool(*is_collection));
                if let Some(p) = parent_etag {
                    m.insert("parent_etag".to_string(), n(*p));
                }
            }
            WalRecord::Patch { id, delta, etag } => {
                m.insert("id".to_string(), s(id));
                m.insert("delta".to_string(), delta.clone());
                m.insert("etag".to_string(), n(*etag));
            }
            WalRecord::Replace { id, body, etag } => {
                m.insert("id".to_string(), s(id));
                m.insert("body".to_string(), body.clone());
                m.insert("etag".to_string(), n(*etag));
            }
            WalRecord::Delete { id, parent_etag } => {
                m.insert("id".to_string(), s(id));
                if let Some(p) = parent_etag {
                    m.insert("parent_etag".to_string(), n(*p));
                }
            }
            WalRecord::DeleteSubtree { id, parent_etag } => {
                m.insert("id".to_string(), s(id));
                if let Some(p) = parent_etag {
                    m.insert("parent_etag".to_string(), n(*p));
                }
            }
            WalRecord::InstallResource {
                id,
                body,
                etag,
                is_collection,
            } => {
                m.insert("id".to_string(), s(id));
                m.insert("body".to_string(), body.clone());
                m.insert("etag".to_string(), n(*etag));
                m.insert("coll".to_string(), Value::Bool(*is_collection));
            }
            WalRecord::EtagFloor { seq } => {
                m.insert("seq".to_string(), n(*seq));
            }
            WalRecord::ClockMark { now_ms } => {
                m.insert("now_ms".to_string(), n(*now_ms));
            }
            WalRecord::Subscribe {
                id,
                destination,
                event_types,
                origins,
            } => {
                m.insert("id".to_string(), s(id));
                m.insert("dest".to_string(), s(destination));
                m.insert("types".to_string(), strings(event_types));
                m.insert("origins".to_string(), strings(origins));
            }
            WalRecord::Unsubscribe { id } => {
                m.insert("id".to_string(), s(id));
            }
            WalRecord::SessionLogin {
                token,
                session_id,
                user,
                last_used_ms,
            } => {
                m.insert("token".to_string(), s(token));
                m.insert("sid".to_string(), s(session_id));
                m.insert("user".to_string(), s(user));
                m.insert("used_ms".to_string(), n(*last_used_ms));
            }
            WalRecord::SessionTouch { token, last_used_ms } => {
                m.insert("token".to_string(), s(token));
                m.insert("used_ms".to_string(), n(*last_used_ms));
            }
            WalRecord::SessionEnd { token } => {
                m.insert("token".to_string(), s(token));
            }
            WalRecord::Teardown { fabric, op } => {
                m.insert("fabric".to_string(), s(fabric));
                m.insert("op".to_string(), op.clone());
            }
            WalRecord::TeardownDrained { fabric } => {
                m.insert("fabric".to_string(), s(fabric));
            }
            WalRecord::ComposeIntent {
                system,
                node,
                request,
                planned,
            } => {
                m.insert("system".to_string(), s(system));
                m.insert("node".to_string(), s(node));
                m.insert("request".to_string(), request.clone());
                m.insert("planned".to_string(), planned.clone());
            }
            WalRecord::BindDone { system, binding } => {
                m.insert("system".to_string(), s(system));
                m.insert("binding".to_string(), binding.clone());
            }
            WalRecord::ComposeCommit { system }
            | WalRecord::ComposeAbort { system }
            | WalRecord::Decompose { system } => {
                m.insert("system".to_string(), s(system));
            }
            WalRecord::BindAdded { system, binding } => {
                m.insert("system".to_string(), s(system));
                m.insert("binding".to_string(), binding.clone());
            }
            WalRecord::ComposeLive {
                system,
                node,
                request,
                bindings,
            } => {
                m.insert("system".to_string(), s(system));
                m.insert("node".to_string(), s(node));
                m.insert("request".to_string(), request.clone());
                m.insert("bindings".to_string(), bindings.clone());
            }
        }
        Value::Object(m)
    }

    /// Decode from the on-disk JSON object. `None` on any structural
    /// mismatch — the caller treats an undecodable frame as a torn tail.
    pub fn from_value(v: &Value) -> Option<WalRecord> {
        let m = v.as_object()?;
        let kind = m.get("k")?.as_str()?;
        Some(match kind {
            "create" => WalRecord::Create {
                id: get_str(m, "id")?,
                body: get_val(m, "body")?,
                etag: get_u64(m, "etag")?,
                is_collection: get_bool(m, "coll")?,
                parent_etag: get_u64(m, "parent_etag"),
            },
            "patch" => WalRecord::Patch {
                id: get_str(m, "id")?,
                delta: get_val(m, "delta")?,
                etag: get_u64(m, "etag")?,
            },
            "replace" => WalRecord::Replace {
                id: get_str(m, "id")?,
                body: get_val(m, "body")?,
                etag: get_u64(m, "etag")?,
            },
            "delete" => WalRecord::Delete {
                id: get_str(m, "id")?,
                parent_etag: get_u64(m, "parent_etag"),
            },
            "delete_subtree" => WalRecord::DeleteSubtree {
                id: get_str(m, "id")?,
                parent_etag: get_u64(m, "parent_etag"),
            },
            "install" => WalRecord::InstallResource {
                id: get_str(m, "id")?,
                body: get_val(m, "body")?,
                etag: get_u64(m, "etag")?,
                is_collection: get_bool(m, "coll")?,
            },
            "etag_floor" => WalRecord::EtagFloor {
                seq: get_u64(m, "seq")?,
            },
            "clock_mark" => WalRecord::ClockMark {
                now_ms: get_u64(m, "now_ms")?,
            },
            "subscribe" => WalRecord::Subscribe {
                id: get_str(m, "id")?,
                destination: get_str(m, "dest")?,
                event_types: get_strings(m, "types")?,
                origins: get_strings(m, "origins")?,
            },
            "unsubscribe" => WalRecord::Unsubscribe { id: get_str(m, "id")? },
            "session_login" => WalRecord::SessionLogin {
                token: get_str(m, "token")?,
                session_id: get_str(m, "sid")?,
                user: get_str(m, "user")?,
                last_used_ms: get_u64(m, "used_ms")?,
            },
            "session_touch" => WalRecord::SessionTouch {
                token: get_str(m, "token")?,
                last_used_ms: get_u64(m, "used_ms")?,
            },
            "session_end" => WalRecord::SessionEnd {
                token: get_str(m, "token")?,
            },
            "teardown" => WalRecord::Teardown {
                fabric: get_str(m, "fabric")?,
                op: get_val(m, "op")?,
            },
            "teardown_drained" => WalRecord::TeardownDrained {
                fabric: get_str(m, "fabric")?,
            },
            "compose_intent" => WalRecord::ComposeIntent {
                system: get_str(m, "system")?,
                node: get_str(m, "node")?,
                request: get_val(m, "request")?,
                planned: get_val(m, "planned")?,
            },
            "bind_done" => WalRecord::BindDone {
                system: get_str(m, "system")?,
                binding: get_val(m, "binding")?,
            },
            "compose_commit" => WalRecord::ComposeCommit {
                system: get_str(m, "system")?,
            },
            "compose_abort" => WalRecord::ComposeAbort {
                system: get_str(m, "system")?,
            },
            "decompose" => WalRecord::Decompose {
                system: get_str(m, "system")?,
            },
            "bind_added" => WalRecord::BindAdded {
                system: get_str(m, "system")?,
                binding: get_val(m, "binding")?,
            },
            "compose_live" => WalRecord::ComposeLive {
                system: get_str(m, "system")?,
                node: get_str(m, "node")?,
                request: get_val(m, "request")?,
                bindings: get_val(m, "bindings")?,
            },
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn roundtrip(r: WalRecord) {
        let v = r.to_value();
        let back = WalRecord::from_value(&v).expect("roundtrip decode");
        assert_eq!(back, r);
        // And through the serializer, as the file does it.
        let text = serde_json::to_string(&v).expect("serialize");
        let parsed: Value = serde_json::from_str(&text).expect("parse");
        assert_eq!(WalRecord::from_value(&parsed), Some(r));
    }

    #[test]
    fn all_variants_roundtrip() {
        roundtrip(WalRecord::Create {
            id: "/redfish/v1/Systems/s1".to_string(),
            body: json!({"Id": "s1", "Name": "S1"}),
            etag: 42,
            is_collection: false,
            parent_etag: Some(43),
        });
        roundtrip(WalRecord::Create {
            id: "/redfish/v1/Systems".to_string(),
            body: json!({"Members": []}),
            etag: 2,
            is_collection: true,
            parent_etag: None,
        });
        roundtrip(WalRecord::Patch {
            id: "/redfish/v1/Systems/s1".to_string(),
            delta: json!({"Status": {"Health": "OK"}}),
            etag: 44,
        });
        roundtrip(WalRecord::Replace {
            id: "/redfish/v1/Systems/s1".to_string(),
            body: json!({"Id": "s1"}),
            etag: 45,
        });
        roundtrip(WalRecord::Delete {
            id: "/redfish/v1/Systems/s1".to_string(),
            parent_etag: Some(46),
        });
        roundtrip(WalRecord::DeleteSubtree {
            id: "/redfish/v1/Fabrics/CXL0".to_string(),
            parent_etag: None,
        });
        roundtrip(WalRecord::InstallResource {
            id: "/redfish/v1".to_string(),
            body: json!({"Id": "RootService"}),
            etag: 1,
            is_collection: false,
        });
        roundtrip(WalRecord::EtagFloor { seq: 1000 });
        roundtrip(WalRecord::ClockMark { now_ms: 123456 });
        roundtrip(WalRecord::Subscribe {
            id: "1".to_string(),
            destination: "http://sink/events".to_string(),
            event_types: vec!["Alert".to_string()],
            origins: vec!["/redfish/v1/Fabrics".to_string()],
        });
        roundtrip(WalRecord::Unsubscribe { id: "1".to_string() });
        roundtrip(WalRecord::SessionLogin {
            token: "ofmf-abc".to_string(),
            session_id: "7".to_string(),
            user: "admin".to_string(),
            last_used_ms: 99,
        });
        roundtrip(WalRecord::SessionTouch {
            token: "ofmf-abc".to_string(),
            last_used_ms: 100,
        });
        roundtrip(WalRecord::SessionEnd {
            token: "ofmf-abc".to_string(),
        });
        roundtrip(WalRecord::Teardown {
            fabric: "CXL0".to_string(),
            op: json!({"kind": "delete_zone", "zone": "/redfish/v1/Fabrics/CXL0/Zones/z1"}),
        });
        roundtrip(WalRecord::TeardownDrained {
            fabric: "CXL0".to_string(),
        });
        roundtrip(WalRecord::ComposeIntent {
            system: "/redfish/v1/Systems/c1".to_string(),
            node: "/redfish/v1/Systems/n1".to_string(),
            request: json!({"name": "c1"}),
            planned: json!([{"fabric": "CXL0", "zone_id": "z9", "conn_id": "c9"}]),
        });
        roundtrip(WalRecord::BindDone {
            system: "/redfish/v1/Systems/c1".to_string(),
            binding: json!({"fabric": "CXL0"}),
        });
        roundtrip(WalRecord::ComposeCommit {
            system: "/redfish/v1/Systems/c1".to_string(),
        });
        roundtrip(WalRecord::ComposeAbort {
            system: "/redfish/v1/Systems/c1".to_string(),
        });
        roundtrip(WalRecord::Decompose {
            system: "/redfish/v1/Systems/c1".to_string(),
        });
        roundtrip(WalRecord::BindAdded {
            system: "/redfish/v1/Systems/c1".to_string(),
            binding: json!({"fabric": "NVME0"}),
        });
        roundtrip(WalRecord::ComposeLive {
            system: "/redfish/v1/Systems/c1".to_string(),
            node: "/redfish/v1/Systems/n1".to_string(),
            request: json!({"name": "c1"}),
            bindings: json!([]),
        });
    }

    #[test]
    fn unknown_kind_decodes_to_none() {
        assert_eq!(WalRecord::from_value(&json!({"k": "time_travel"})), None);
        assert_eq!(WalRecord::from_value(&json!({"no_k": true})), None);
        assert_eq!(WalRecord::from_value(&json!(42)), None);
    }

    #[test]
    fn missing_field_decodes_to_none() {
        assert_eq!(WalRecord::from_value(&json!({"k": "create", "id": "/x"})), None);
        assert_eq!(WalRecord::from_value(&json!({"k": "etag_floor"})), None);
    }
}
