//! The external Lustre-like parallel filesystem.
//!
//! In the "Matching Lustre" control experiment IOR targets the site-wide
//! filesystem: its OSS/MDS daemons run on *external* server nodes, so the
//! compute allocation carries no filesystem daemons at all. The model
//! therefore only needs to answer "how much does Lustre-bound IOR perturb
//! co-allocated compute nodes" — which the paper found to be nil (the
//! Lustre+IOR runs were the *fastest* configuration).

use serde::Serialize;

/// External filesystem service capacity.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct LustreModel {
    /// External OSS server count.
    pub oss_servers: usize,
    /// External MDS server count.
    pub mds_servers: usize,
    /// Aggregate write bandwidth (GB/s) — bounds IOR throughput, not HPL.
    pub write_gbps: f64,
    /// Client-side CPU fraction consumed on an IOR *client* node when
    /// writing at full tilt (HPL never runs on IOR nodes, so this does not
    /// touch HPL nodes).
    pub client_cpu_fraction: f64,
}

impl Default for LustreModel {
    fn default() -> Self {
        LustreModel {
            oss_servers: 32,
            mds_servers: 2,
            write_gbps: 120.0,
            client_cpu_fraction: 0.15,
        }
    }
}

impl LustreModel {
    /// Noise contribution of Lustre-bound IOR on a *compute* (non-IOR)
    /// node. External service: zero by construction.
    pub fn compute_node_interference(&self) -> f64 {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn external_service_does_not_perturb_compute_nodes() {
        assert_eq!(LustreModel::default().compute_node_interference(), 0.0);
    }
}
