//! A Slurm-like workload manager over the DES engine.
//!
//! Models what the paper's integration relies on: contiguous node
//! allocation affinity, parallel Prolog/Epilog hooks (BeeOND assembly and
//! teardown run there), job constraints (the `beeond` constraint toggles
//! private-filesystem creation), error handling that drains nodes on
//! prolog failure, and per-job lifecycle events.

use crate::des::{Model, Scheduler, SimTime};
use serde::Serialize;
use std::collections::BTreeMap;

/// Job identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub struct JobId(pub u64);

/// A job submission.
#[derive(Debug, Clone, Serialize)]
pub struct JobSpec {
    /// Nodes requested.
    pub nodes: usize,
    /// Requested walltime (sim seconds); the job is killed at this limit.
    pub walltime_s: f64,
    /// Constraints (e.g. `beeond`), matching `SLURM_JOB_CONSTRAINTS`.
    pub constraints: Vec<String>,
}

impl JobSpec {
    /// A job with the `beeond` constraint set.
    pub fn with_beeond(nodes: usize, walltime_s: f64) -> JobSpec {
        JobSpec {
            nodes,
            walltime_s,
            constraints: vec!["beeond".to_string()],
        }
    }

    /// A plain job.
    pub fn plain(nodes: usize, walltime_s: f64) -> JobSpec {
        JobSpec {
            nodes,
            walltime_s,
            constraints: Vec::new(),
        }
    }

    /// Whether the `beeond` constraint is present (the Prolog check the
    /// paper describes).
    pub fn wants_beeond(&self) -> bool {
        self.constraints.iter().any(|c| c == "beeond")
    }
}

/// Node lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum NodeState {
    /// Available for allocation.
    Idle,
    /// Part of a running allocation.
    Allocated,
    /// Drained after a failure (the paper: "the compute nodes would be
    /// drained for further inspection").
    Drained,
}

/// Job lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum JobState {
    /// Waiting for nodes.
    Pending,
    /// Prolog running (BeeOND assembly happens here).
    Prolog,
    /// User payload running.
    Running,
    /// Epilog running (teardown + XFS reformat).
    Epilog,
    /// Finished normally.
    Completed,
    /// Killed at the walltime limit.
    TimedOut,
    /// Failed in prolog; nodes drained.
    Failed,
}

/// WLM events.
#[derive(Debug, Clone)]
pub enum WlmEvent {
    /// Try to schedule pending jobs.
    Schedule,
    /// Prolog finished on all nodes of a job.
    PrologDone(JobId),
    /// Job payload finished (duration known at start in this model).
    PayloadDone(JobId),
    /// Walltime limit hit.
    WalltimeKill(JobId),
    /// Epilog finished; nodes return to idle.
    EpilogDone(JobId),
}

/// A live or finished job record.
#[derive(Debug, Clone, Serialize)]
pub struct JobRecord {
    /// The spec as submitted.
    pub spec: JobSpec,
    /// Current state.
    pub state: JobState,
    /// First node of the contiguous allocation (the paper's "lowest node"
    /// becomes Mgmtd/MDS).
    pub first_node: Option<usize>,
    /// When the payload started, if it did.
    pub started_at: Option<SimTime>,
    /// When the job reached a terminal state.
    pub ended_at: Option<SimTime>,
    /// Payload duration to simulate (set by the experiment driver).
    pub payload_s: f64,
}

/// Tunable hook durations.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct HookTimes {
    /// Prolog duration with the `beeond` constraint (parallel assembly;
    /// the paper achieved "under 3 seconds … regardless of the scale").
    pub beeond_prolog_s: f64,
    /// Prolog without BeeOND.
    pub plain_prolog_s: f64,
    /// Epilog with BeeOND (stop daemons + XFS reformat, "under 6 seconds").
    pub beeond_epilog_s: f64,
    /// Epilog without BeeOND.
    pub plain_epilog_s: f64,
}

impl Default for HookTimes {
    fn default() -> Self {
        HookTimes {
            beeond_prolog_s: 2.8,
            plain_prolog_s: 0.5,
            beeond_epilog_s: 5.5,
            plain_epilog_s: 0.5,
        }
    }
}

/// The workload manager.
#[derive(Debug)]
pub struct Wlm {
    nodes: Vec<NodeState>,
    jobs: BTreeMap<JobId, JobRecord>,
    queue: Vec<JobId>,
    next_job: u64,
    /// Hook timing model.
    pub hooks: HookTimes,
    /// Fraction-of-one probability that a BeeOND prolog fails on a given
    /// job (hardware issue model); failing jobs drain their nodes.
    pub prolog_failure_prob: f64,
    rng_state: u64,
}

impl Wlm {
    /// A WLM over `nodes` idle nodes.
    pub fn new(nodes: usize, seed: u64) -> Wlm {
        Wlm {
            nodes: vec![NodeState::Idle; nodes],
            jobs: BTreeMap::new(),
            queue: Vec::new(),
            next_job: 1,
            hooks: HookTimes::default(),
            prolog_failure_prob: 0.0,
            rng_state: seed | 1,
        }
    }

    fn rand01(&mut self) -> f64 {
        // xorshift64* — enough for a failure coin-flip.
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Submit a job whose payload will take `payload_s` seconds; kicks the
    /// scheduler.
    pub fn submit(&mut self, spec: JobSpec, payload_s: f64, s: &mut Scheduler<WlmEvent>) -> JobId {
        let id = JobId(self.next_job);
        self.next_job += 1;
        self.jobs.insert(
            id,
            JobRecord {
                spec,
                state: JobState::Pending,
                first_node: None,
                started_at: None,
                ended_at: None,
                payload_s,
            },
        );
        self.queue.push(id);
        s.after(SimTime::ZERO, WlmEvent::Schedule);
        id
    }

    /// Read a job record.
    pub fn job(&self, id: JobId) -> Option<&JobRecord> {
        self.jobs.get(&id)
    }

    /// Node states (tests/inspection).
    pub fn node_states(&self) -> &[NodeState] {
        &self.nodes
    }

    /// The node list of a job's allocation (contiguous), mirroring
    /// `SLURM_NODELIST`.
    pub fn nodelist(&self, id: JobId) -> Option<Vec<usize>> {
        let j = self.jobs.get(&id)?;
        let first = j.first_node?;
        Some((first..first + j.spec.nodes).collect())
    }

    /// Find a contiguous run of `n` idle nodes (Slurm's contiguous-affinity
    /// behavior the paper leans on for data locality).
    fn find_contiguous(&self, n: usize) -> Option<usize> {
        let mut run = 0;
        for (i, st) in self.nodes.iter().enumerate() {
            if *st == NodeState::Idle {
                run += 1;
                if run == n {
                    return Some(i + 1 - n);
                }
            } else {
                run = 0;
            }
        }
        None
    }

    /// EASY-backfill shadow time: the earliest time at which `needed` nodes
    /// will be free, assuming every running job releases its nodes at its
    /// walltime limit (the guaranteed bound). Returns `None` when even all
    /// releases cannot satisfy the demand (more nodes requested than
    /// non-drained nodes exist).
    fn shadow_time(&self, needed: usize, now: SimTime) -> Option<SimTime> {
        let mut free = self.nodes.iter().filter(|s| **s == NodeState::Idle).count();
        if free >= needed {
            return Some(now);
        }
        // (release time, node count) of every running/prolog/epilog job.
        let mut releases: Vec<(SimTime, usize)> = self
            .jobs
            .values()
            .filter(|j| matches!(j.state, JobState::Prolog | JobState::Running | JobState::Epilog))
            .map(|j| {
                let start = j.started_at.unwrap_or(now);
                let bound = start.plus(SimTime::from_secs_f64(
                    j.spec.walltime_s + self.hooks.beeond_epilog_s.max(self.hooks.plain_epilog_s),
                ));
                (bound.max(now), j.spec.nodes)
            })
            .collect();
        releases.sort();
        for (t, n) in releases {
            free += n;
            if free >= needed {
                return Some(t);
            }
        }
        None
    }
}

impl Model for Wlm {
    type Event = WlmEvent;

    fn handle(&mut self, t: SimTime, event: WlmEvent, s: &mut Scheduler<WlmEvent>) {
        match event {
            WlmEvent::Schedule => {
                // EASY backfill: jobs launch in queue order until the first
                // one that does not fit (the head). The head gets a
                // reservation at its shadow time; later jobs may jump ahead
                // only if they fit *and* are guaranteed to finish before the
                // shadow time, so the head is never delayed.
                let mut launched = Vec::new();
                let mut shadow: Option<SimTime> = None; // set once a head is blocked
                for &id in &self.queue.clone() {
                    let Some(j) = self.jobs.get(&id) else { continue };
                    if j.state != JobState::Pending {
                        continue;
                    }
                    let placement = self.find_contiguous(j.spec.nodes);
                    if placement.is_none() && shadow.is_none() {
                        // This is the blocked head: reserve its shadow time.
                        shadow = self.shadow_time(j.spec.nodes, t);
                        continue;
                    }
                    if let Some(reserved) = shadow {
                        // Backfill guard: must complete (walltime + worst
                        // epilog) before the head's reservation.
                        let done_by = t.plus(SimTime::from_secs_f64(
                            j.spec.walltime_s
                                + self.hooks.beeond_prolog_s.max(self.hooks.plain_prolog_s)
                                + self.hooks.beeond_epilog_s.max(self.hooks.plain_epilog_s),
                        ));
                        if done_by > reserved {
                            continue;
                        }
                    }
                    let Some(first) = placement else { continue };
                    for node in &mut self.nodes[first..first + j.spec.nodes] {
                        *node = NodeState::Allocated;
                    }
                    let wants_beeond = j.spec.wants_beeond();
                    let prolog = if wants_beeond {
                        self.hooks.beeond_prolog_s
                    } else {
                        self.hooks.plain_prolog_s
                    };
                    let fails = wants_beeond && self.rand01() < self.prolog_failure_prob;
                    let j = self.jobs.get_mut(&id).expect("checked");
                    j.first_node = Some(first);
                    j.state = JobState::Prolog;
                    if fails {
                        j.state = JobState::Failed;
                        j.ended_at = Some(t);
                        // Drain the nodes; they do not return to the pool.
                        for node in &mut self.nodes[first..first + j.spec.nodes] {
                            *node = NodeState::Drained;
                        }
                        launched.push(id);
                        continue;
                    }
                    s.after(SimTime::from_secs_f64(prolog), WlmEvent::PrologDone(id));
                    launched.push(id);
                }
                self.queue.retain(|id| !launched.contains(id));
            }
            WlmEvent::PrologDone(id) => {
                let Some(j) = self.jobs.get_mut(&id) else { return };
                if j.state != JobState::Prolog {
                    return;
                }
                j.state = JobState::Running;
                j.started_at = Some(t);
                s.after(SimTime::from_secs_f64(j.payload_s), WlmEvent::PayloadDone(id));
                s.after(SimTime::from_secs_f64(j.spec.walltime_s), WlmEvent::WalltimeKill(id));
            }
            WlmEvent::PayloadDone(id) | WlmEvent::WalltimeKill(id) => {
                let timed_out = matches!(event, WlmEvent::WalltimeKill(_));
                let Some(j) = self.jobs.get_mut(&id) else { return };
                if j.state != JobState::Running {
                    return; // the other of the two events already fired
                }
                j.state = JobState::Epilog;
                j.ended_at = Some(t);
                let epilog = if j.spec.wants_beeond() {
                    self.hooks.beeond_epilog_s
                } else {
                    self.hooks.plain_epilog_s
                };
                // Remember how it ended; applied at EpilogDone.
                j.payload_s = if timed_out { f64::NAN } else { j.payload_s };
                s.after(SimTime::from_secs_f64(epilog), WlmEvent::EpilogDone(id));
            }
            WlmEvent::EpilogDone(id) => {
                let Some(j) = self.jobs.get_mut(&id) else { return };
                if j.state != JobState::Epilog {
                    return;
                }
                j.state = if j.payload_s.is_nan() {
                    JobState::TimedOut
                } else {
                    JobState::Completed
                };
                let first = j.first_node.expect("ran");
                let n = j.spec.nodes;
                for node in &mut self.nodes[first..first + n] {
                    *node = NodeState::Idle;
                }
                s.after(SimTime::ZERO, WlmEvent::Schedule);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::des::Engine;

    #[test]
    fn job_lifecycle_with_beeond_hooks() {
        let mut wlm = Wlm::new(8, 7);
        let mut s = Scheduler::new();
        let id = wlm.submit(JobSpec::with_beeond(4, 3600.0), 100.0, &mut s);
        Engine::run(&mut wlm, &mut s);
        let j = wlm.job(id).unwrap();
        assert_eq!(j.state, JobState::Completed);
        // started after the 2.8 s prolog; ended 100 s later.
        assert!((j.started_at.unwrap().as_secs_f64() - 2.8).abs() < 1e-6);
        assert!((j.ended_at.unwrap().as_secs_f64() - 102.8).abs() < 1e-6);
        assert!(wlm.node_states().iter().all(|s| *s == NodeState::Idle));
    }

    #[test]
    fn contiguous_allocation_and_nodelist() {
        let mut wlm = Wlm::new(8, 7);
        let mut s = Scheduler::new();
        let a = wlm.submit(JobSpec::plain(3, 100.0), 50.0, &mut s);
        let b = wlm.submit(JobSpec::plain(2, 100.0), 50.0, &mut s);
        // Run just the scheduling + prologs.
        Engine::run_until(&mut wlm, &mut s, SimTime::from_secs(2));
        assert_eq!(wlm.nodelist(a).unwrap(), vec![0, 1, 2]);
        assert_eq!(wlm.nodelist(b).unwrap(), vec![3, 4]);
    }

    #[test]
    fn queued_job_waits_for_space() {
        let mut wlm = Wlm::new(4, 7);
        let mut s = Scheduler::new();
        let a = wlm.submit(JobSpec::plain(4, 1000.0), 10.0, &mut s);
        let b = wlm.submit(JobSpec::plain(4, 1000.0), 10.0, &mut s);
        Engine::run(&mut wlm, &mut s);
        let ja = wlm.job(a).unwrap();
        let jb = wlm.job(b).unwrap();
        assert_eq!(ja.state, JobState::Completed);
        assert_eq!(jb.state, JobState::Completed);
        assert!(jb.started_at.unwrap() > ja.ended_at.unwrap(), "b ran after a finished");
    }

    #[test]
    fn walltime_kill() {
        let mut wlm = Wlm::new(2, 7);
        let mut s = Scheduler::new();
        let id = wlm.submit(JobSpec::plain(1, 5.0), 60.0, &mut s);
        Engine::run(&mut wlm, &mut s);
        let j = wlm.job(id).unwrap();
        assert_eq!(j.state, JobState::TimedOut);
        assert!((j.ended_at.unwrap().as_secs_f64() - 5.5).abs() < 1e-6); // prolog 0.5 + 5.0
    }

    #[test]
    fn prolog_failure_drains_nodes() {
        let mut wlm = Wlm::new(4, 7);
        wlm.prolog_failure_prob = 1.0;
        let mut s = Scheduler::new();
        let id = wlm.submit(JobSpec::with_beeond(2, 100.0), 10.0, &mut s);
        Engine::run(&mut wlm, &mut s);
        assert_eq!(wlm.job(id).unwrap().state, JobState::Failed);
        assert_eq!(wlm.node_states()[0], NodeState::Drained);
        assert_eq!(wlm.node_states()[1], NodeState::Drained);
        assert_eq!(wlm.node_states()[2], NodeState::Idle);
        // Drained nodes are not reallocated.
        let id2 = wlm.submit(JobSpec::plain(3, 100.0), 1.0, &mut s);
        Engine::run(&mut wlm, &mut s);
        assert_eq!(
            wlm.job(id2).unwrap().state,
            JobState::Pending,
            "only 2 idle nodes remain"
        );
    }

    #[test]
    fn backfill_lets_short_jobs_jump_but_never_delays_the_head() {
        // 4 nodes. A 3-node job runs for 100 s. A 4-node head job queues
        // behind it. A short 1-node job (10 s) can backfill; a long 1-node
        // job (200 s) would delay the head and must wait.
        let mut wlm = Wlm::new(4, 7);
        let mut s = Scheduler::new();
        let running = wlm.submit(JobSpec::plain(3, 100.0), 100.0, &mut s);
        let head = wlm.submit(JobSpec::plain(4, 50.0), 50.0, &mut s);
        let long = wlm.submit(JobSpec::plain(1, 200.0), 200.0, &mut s);
        let short = wlm.submit(JobSpec::plain(1, 10.0), 10.0, &mut s);
        Engine::run(&mut wlm, &mut s);
        let st = |id| wlm.job(id).unwrap().started_at.unwrap().as_secs_f64();
        // The short job backfilled: it started while the 3-node job ran.
        assert!(st(short) < st(running) + 100.0, "short backfilled at {}", st(short));
        // The head started as soon as the 3-node job's allocation freed —
        // not delayed past the long job.
        assert!(st(head) < st(long), "head {} before long {}", st(head), st(long));
        // Everything completed.
        for id in [running, head, long, short] {
            assert_eq!(wlm.job(id).unwrap().state, JobState::Completed);
        }
    }

    #[test]
    fn shadow_time_accounts_for_walltime_bounds() {
        let mut wlm = Wlm::new(4, 7);
        let mut s = Scheduler::new();
        wlm.submit(JobSpec::plain(4, 100.0), 1000.0, &mut s); // killed at 100s
        Engine::run_until(&mut wlm, &mut s, SimTime::from_secs(10));
        let now = SimTime::from_secs(10);
        let shadow = wlm.shadow_time(4, now).expect("releases eventually");
        // Walltime 100 s from start (0.5 s prolog) + worst-case epilog
        // bound (the BeeOND teardown, 5.5 s — the estimate is conservative).
        assert!(
            shadow.as_secs_f64() > 100.0 && shadow.as_secs_f64() < 107.0,
            "{shadow:?}"
        );
        // More nodes than the cluster has: never.
        assert!(wlm.shadow_time(99, now).is_none());
    }

    #[test]
    fn hook_times_match_paper_budgets() {
        let h = HookTimes::default();
        assert!(h.beeond_prolog_s < 3.0, "assembly under 3 s");
        assert!(h.beeond_epilog_s < 6.0, "teardown under 6 s");
    }
}
