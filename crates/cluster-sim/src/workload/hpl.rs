//! HPL: Table II parameter derivation and the bulk-synchronous runtime
//! model.
//!
//! The paper sizes HPL "by starting from a well-performing single-node
//! specification that uses most of the memory on a single node", then
//! "extrapolated to higher node counts by approximating the same amount of
//! work" — i.e. N grows by √2 per node-count doubling (constant runtime,
//! not constant-memory weak scaling), and the P×Q grid doubles one factor
//! at a time.

use crate::node::NodeSpec;
use serde::Serialize;

/// One row of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct HplParams {
    /// Node count.
    pub nodes: usize,
    /// Matrix order N.
    pub n: u64,
    /// Process grid P.
    pub p: u32,
    /// Process grid Q.
    pub q: u32,
}

/// The paper's Table II, verbatim.
pub const TABLE_II: [HplParams; 8] = [
    HplParams {
        nodes: 1,
        n: 91048,
        p: 7,
        q: 8,
    },
    HplParams {
        nodes: 2,
        n: 114713,
        p: 14,
        q: 8,
    },
    HplParams {
        nodes: 4,
        n: 144529,
        p: 14,
        q: 16,
    },
    HplParams {
        nodes: 8,
        n: 182096,
        p: 28,
        q: 16,
    },
    HplParams {
        nodes: 16,
        n: 229427,
        p: 28,
        q: 32,
    },
    HplParams {
        nodes: 32,
        n: 289059,
        p: 56,
        q: 32,
    },
    HplParams {
        nodes: 64,
        n: 364192,
        p: 56,
        q: 64,
    },
    HplParams {
        nodes: 128,
        n: 458853,
        p: 112,
        q: 64,
    },
];

/// Derive an HPL parameter row for `nodes` nodes of `spec`, following the
/// paper's construction rule. For the paper's node (ThunderX2, 128 GiB,
/// 56 cores) this regenerates Table II to within rounding.
pub fn derive_params(spec: &NodeSpec, nodes: usize) -> HplParams {
    assert!(nodes.is_power_of_two(), "the paper's table doubles node counts");
    // Single-node N from memory: use most of one node's memory for the
    // N×N×8-byte matrix.
    let n1 = ((spec.hpl_usable_memory_bytes() as f64 / 8.0).sqrt()).floor();
    // Work-preserving scaling: runtime ∝ N³ / nodes ⇒ N ∝ nodes^(1/3) would
    // preserve time exactly, but the paper preserves *per-step work* with
    // N ∝ √2 per doubling (N² scaling, matching their table: 91048·√2 ≈
    // 128 761 — their 114 713 sits between √2 and 2^(1/3) scaling; we use
    // their exact exponent fit below).
    // Fit: their table follows N(k) = N₁ · 2^(k/3) within 0.4 % (constant
    // total FLOPs per unit time across the doubling series).
    let k = nodes.trailing_zeros();
    let n = (n1 * 2f64.powf(f64::from(k) / 3.0)).round() as u64;
    // Grid: total ranks = cores · nodes; the paper alternates doubling P
    // then Q starting from 7×8 on 56 cores.
    let (mut p, mut q) = (7u32, 8u32);
    for i in 0..k {
        if i % 2 == 0 {
            p *= 2;
        } else {
            q *= 2;
        }
    }
    let _ = spec;
    HplParams { nodes, n, p, q }
}

/// Block size used by the step model (HPL NB).
pub const NB: u64 = 192;

impl HplParams {
    /// Total floating-point operations: (2/3)·N³ + O(N²).
    pub fn flops(&self) -> f64 {
        2.0 / 3.0 * (self.n as f64).powi(3)
    }

    /// Number of bulk-synchronous panel steps (N / NB).
    pub fn steps(&self) -> usize {
        (self.n / NB).max(1) as usize
    }

    /// Noise-free runtime on `nodes` nodes of `spec` (seconds): total flops
    /// over aggregate sustained GFLOPS, with a parallel-efficiency factor
    /// that decays slowly with scale (network/panel overheads).
    pub fn base_runtime_s(&self, spec: &NodeSpec) -> f64 {
        let agg_gflops = spec.gflops * self.nodes as f64;
        let efficiency = 0.97f64.powf((self.nodes as f64).log2());
        self.flops() / (agg_gflops * 1e9 * efficiency)
    }

    /// Noise-free time of one step (seconds).
    pub fn base_step_s(&self, spec: &NodeSpec) -> f64 {
        self.base_runtime_s(spec) / self.steps() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_params_match_table_ii() {
        let spec = NodeSpec::thunderx2();
        for row in TABLE_II {
            let d = derive_params(&spec, row.nodes);
            let rel = (d.n as f64 - row.n as f64).abs() / row.n as f64;
            assert!(
                rel < 0.02,
                "N for {} nodes: derived {} vs table {} ({:.3})",
                row.nodes,
                d.n,
                row.n,
                rel
            );
            assert_eq!((d.p, d.q), (row.p, row.q), "grid for {} nodes", row.nodes);
        }
    }

    #[test]
    fn grids_match_rank_counts() {
        // P·Q should equal cores · nodes (56 ranks per node).
        for row in TABLE_II {
            assert_eq!(u64::from(row.p) * u64::from(row.q), 56 * row.nodes as u64);
        }
    }

    #[test]
    fn runtimes_are_comparable_across_scales() {
        // The construction approximately preserves runtime: every row should
        // land within ±25 % of the single-node runtime.
        let spec = NodeSpec::thunderx2();
        let t1 = TABLE_II[0].base_runtime_s(&spec);
        for row in &TABLE_II[1..] {
            let t = row.base_runtime_s(&spec);
            assert!((t / t1 - 1.0).abs() < 0.25, "{} nodes: {t:.0}s vs {t1:.0}s", row.nodes);
        }
    }

    #[test]
    fn single_node_under_15_minutes() {
        let spec = NodeSpec::thunderx2();
        assert!(TABLE_II[0].base_runtime_s(&spec) < 900.0);
    }

    #[test]
    fn steps_scale_with_n() {
        assert_eq!(TABLE_II[0].steps(), (91048 / NB) as usize);
        assert!(TABLE_II[7].steps() > TABLE_II[0].steps());
    }

    #[test]
    #[should_panic(expected = "doubles node counts")]
    fn non_power_of_two_panics() {
        let _ = derive_params(&NodeSpec::thunderx2(), 3);
    }
}
