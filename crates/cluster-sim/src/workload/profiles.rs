//! Table I: performance profiles, representative benchmarks, and the
//! degree of isolation HPC users typically expect.
//!
//! Each profile is modeled by its demand on four contention channels with
//! different sharing scopes; the measured slowdown when a matching
//! neighbour task runs classifies the isolation level.

use serde::Serialize;

/// The six profiles of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Profile {
    /// Heavy use of CPU and accelerators (HPL).
    CpuBound,
    /// Reads and writes to main memory (STREAM, HPCG).
    MemoryBound,
    /// Sending/receiving among nodes (Intel MPI Benchmarks).
    NetworkBound,
    /// Many small reads/writes to a few files (IOR-hard).
    IopsBound,
    /// Large reads/writes to a few files (IOR-easy).
    BandwidthBound,
    /// Many small reads/writes to many files (mdtest).
    MetadataBound,
}

impl Profile {
    /// All profiles in Table I order.
    pub const ALL: [Profile; 6] = [
        Profile::CpuBound,
        Profile::MemoryBound,
        Profile::NetworkBound,
        Profile::IopsBound,
        Profile::BandwidthBound,
        Profile::MetadataBound,
    ];

    /// Table I's description column.
    pub fn description(self) -> &'static str {
        match self {
            Profile::CpuBound => "Heavy use of CPU and accelerators",
            Profile::MemoryBound => "Reads and writes to main memory",
            Profile::NetworkBound => "Sending and receiving data among nodes in a task",
            Profile::IopsBound => "Many small reads/writes to a few files",
            Profile::BandwidthBound => "Large reads/writes to a few files",
            Profile::MetadataBound => "Many small reads/writes to many files",
        }
    }

    /// Table I's representative benchmark column.
    pub fn benchmark(self) -> &'static str {
        match self {
            Profile::CpuBound => "HPL",
            Profile::MemoryBound => "STREAM, HPCG",
            Profile::NetworkBound => "Intel MPI Benchmarks",
            Profile::IopsBound => "IOR-hard",
            Profile::BandwidthBound => "IOR-easy",
            Profile::MetadataBound => "mdtest",
        }
    }

    /// Demand vector on the contention channels, each 0–1:
    /// `(cpu, memory-bandwidth, network, filesystem)`.
    pub fn demand(self) -> (f64, f64, f64, f64) {
        match self {
            Profile::CpuBound => (1.0, 0.2, 0.1, 0.0),
            Profile::MemoryBound => (0.4, 1.0, 0.1, 0.0),
            Profile::NetworkBound => (0.2, 0.3, 1.0, 0.0),
            Profile::IopsBound => (0.1, 0.1, 0.3, 1.0),
            Profile::BandwidthBound => (0.1, 0.2, 0.5, 1.0),
            Profile::MetadataBound => (0.1, 0.1, 0.2, 1.0),
        }
    }
}

/// How strongly a channel leaks between *separately scheduled tasks on
/// distinct nodes* of a typical HPC system: CPU and memory bandwidth are
/// node-private (no leak); the network fabric is partially shared; the
/// filesystem service is fully shared.
const CHANNEL_LEAK: (f64, f64, f64, f64) = (0.0, 0.0, 0.08, 0.45);

/// Isolation classes of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Isolation {
    /// Slowdown under a matching neighbour < 2 %.
    Strong,
    /// 2–10 %.
    MediumToStrong,
    /// > 10 %.
    Weak,
}

/// Predicted slowdown of `a` when a matching task `b` runs on other nodes
/// of the same system, from channel demands and leaks.
pub fn contention_slowdown(a: Profile, b: Profile) -> f64 {
    let (ac, am, an, af) = a.demand();
    let (bc, bm, bn, bf) = b.demand();
    let (lc, lm, ln, lf) = CHANNEL_LEAK;
    ac * bc * lc + am * bm * lm + an * bn * ln + af * bf * lf
}

/// Classify a slowdown fraction.
pub fn classify(slowdown: f64) -> Isolation {
    if slowdown < 0.02 {
        Isolation::Strong
    } else if slowdown <= 0.10 {
        Isolation::MediumToStrong
    } else {
        Isolation::Weak
    }
}

/// One rendered row of Table I.
#[derive(Debug, Clone, Serialize)]
pub struct ProfileRow {
    /// Profile name.
    pub profile: Profile,
    /// Description column.
    pub description: &'static str,
    /// Benchmark column.
    pub benchmark: &'static str,
    /// Measured self-contention slowdown.
    pub slowdown: f64,
    /// Resulting isolation class.
    pub isolation: Isolation,
}

/// Regenerate Table I: each profile contended against itself.
pub fn table_i() -> Vec<ProfileRow> {
    Profile::ALL
        .iter()
        .map(|&p| {
            let s = contention_slowdown(p, p);
            ProfileRow {
                profile: p,
                description: p.description(),
                benchmark: p.benchmark(),
                slowdown: s,
                isolation: classify(s),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_isolation_classes_match_paper() {
        let rows = table_i();
        let by_profile = |p: Profile| rows.iter().find(|r| r.profile == p).unwrap().isolation;
        assert_eq!(by_profile(Profile::CpuBound), Isolation::Strong);
        assert_eq!(by_profile(Profile::MemoryBound), Isolation::Strong);
        assert_eq!(by_profile(Profile::NetworkBound), Isolation::MediumToStrong);
        assert_eq!(by_profile(Profile::IopsBound), Isolation::Weak);
        assert_eq!(by_profile(Profile::BandwidthBound), Isolation::Weak);
        assert_eq!(by_profile(Profile::MetadataBound), Isolation::Weak);
    }

    #[test]
    fn benchmarks_match_table() {
        assert_eq!(Profile::CpuBound.benchmark(), "HPL");
        assert_eq!(Profile::MetadataBound.benchmark(), "mdtest");
    }

    #[test]
    fn cross_contention_is_asymmetric_in_demand() {
        // An FS-heavy neighbour barely hurts a CPU-bound task…
        assert!(contention_slowdown(Profile::CpuBound, Profile::IopsBound) < 0.02);
        // …but FS-bound tasks trample each other.
        assert!(contention_slowdown(Profile::IopsBound, Profile::BandwidthBound) > 0.10);
    }

    #[test]
    fn classification_boundaries() {
        assert_eq!(classify(0.0), Isolation::Strong);
        assert_eq!(classify(0.019), Isolation::Strong);
        assert_eq!(classify(0.05), Isolation::MediumToStrong);
        assert_eq!(classify(0.2), Isolation::Weak);
    }
}
