//! Workload models: HPL (Table II), IOR (Table III) and the six
//! performance profiles (Table I).

pub mod hpl;
pub mod ior;
pub mod profiles;

pub use hpl::HplParams;
pub use ior::IorParams;
pub use profiles::{Profile, ProfileRow};
