//! IOR: Table III configuration and the write-load it generates.
//!
//! The paper designed IOR "to be as disruptive to object storage daemons as
//! possible": many small (512 B) synchronous writes, file-per-process,
//! fsync after every write, from 56 processes per node, stonewalled so it
//! runs for the whole computation.

use serde::Serialize;

/// The IOR invocation of Table III.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct IorParams {
    /// `srun -n` — processes per node.
    pub procs_per_node: u32,
    /// `-t` — transfer size in bytes.
    pub transfer_bytes: u64,
    /// `-T` — maximum run duration in minutes.
    pub max_duration_min: u32,
    /// `-D` — stonewalling deadline in seconds.
    pub stonewall_s: u32,
    /// `-i` — test repetitions.
    pub repetitions: u64,
    /// `-e` — sync after each write phase.
    pub sync_per_phase: bool,
    /// `-C` — reorder tasks.
    pub reorder_tasks: bool,
    /// `-w` — write test.
    pub write_test: bool,
    /// `-a` — access method.
    pub access: &'static str,
    /// `-s` — number of segments.
    pub segments: u64,
    /// `-F` — file per process.
    pub file_per_process: bool,
    /// `-Y` — fsync after every write.
    pub fsync_every_write: bool,
}

impl Default for IorParams {
    /// Table III, verbatim.
    fn default() -> Self {
        IorParams {
            procs_per_node: 56,
            transfer_bytes: 512,
            max_duration_min: 20,
            stonewall_s: 60,
            repetitions: 1_048_576,
            sync_per_phase: true,
            reorder_tasks: true,
            write_test: true,
            access: "POSIX",
            segments: 1024,
            file_per_process: true,
            fsync_every_write: true,
        }
    }
}

impl IorParams {
    /// Render the equivalent command line (the bench harness prints this to
    /// regenerate Table III).
    pub fn command_line(&self) -> String {
        format!(
            "srun -n {} ior -t {} -T {} -D {} -i {} {}{}{}-a {} -s {} {}{}",
            self.procs_per_node,
            self.transfer_bytes,
            self.max_duration_min,
            self.stonewall_s,
            self.repetitions,
            if self.sync_per_phase { "-e " } else { "" },
            if self.reorder_tasks { "-C " } else { "" },
            if self.write_test { "-w " } else { "" },
            self.access,
            self.segments,
            if self.file_per_process { "-F " } else { "" },
            if self.fsync_every_write { "-Y" } else { "" },
        )
    }

    /// Sustained write-op rate per client *process* (ops/s).
    ///
    /// A 512 B synchronous write with per-write fsync is latency-bound: one
    /// round trip to the OST plus the commit. With ~250 µs of network +
    /// service + commit latency per op on the modeled fabric, each process
    /// sustains ≈ 4 000 ops/s.
    pub fn ops_per_process_per_s(&self, per_op_latency_s: f64) -> f64 {
        1.0 / per_op_latency_s
    }

    /// Total write ops/s emitted by one IOR node.
    pub fn node_ops_per_s(&self, per_op_latency_s: f64) -> f64 {
        f64::from(self.procs_per_node) * self.ops_per_process_per_s(per_op_latency_s)
    }

    /// Files created by one IOR node (file-per-process).
    pub fn files_per_node(&self) -> u64 {
        u64::from(self.procs_per_node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_values() {
        let p = IorParams::default();
        assert_eq!(p.procs_per_node, 56);
        assert_eq!(p.transfer_bytes, 512);
        assert_eq!(p.max_duration_min, 20);
        assert_eq!(p.stonewall_s, 60);
        assert_eq!(p.repetitions, 1 << 20);
        assert_eq!(p.segments, 1024);
        assert!(p.file_per_process && p.fsync_every_write && p.write_test);
    }

    #[test]
    fn command_line_contains_all_flags() {
        let cmd = IorParams::default().command_line();
        for flag in [
            "-t 512", "-T 20", "-D 60", "-e", "-C", "-w", "-a POSIX", "-s 1024", "-F", "-Y",
        ] {
            assert!(cmd.contains(flag), "missing {flag} in {cmd}");
        }
    }

    #[test]
    fn op_rates_scale_with_latency() {
        let p = IorParams::default();
        assert!((p.node_ops_per_s(250e-6) - 56.0 * 4000.0).abs() < 1.0);
        assert!(p.node_ops_per_s(500e-6) < p.node_ops_per_s(250e-6));
    }
}
