//! The noise engine: how filesystem daemons perturb a bulk-synchronous
//! computation.
//!
//! HPL is modeled as `S` panel steps; in each step every node computes for
//! `τ·(1+ε)` and the step completes at the **max across nodes** — the
//! amplification mechanism that makes tiny per-node noise expensive at
//! scale (the paper's `daemon-interference` citation). Per-node `ε`
//! aggregates:
//!
//! * **OS baseline jitter** — exponential, on every node, always.
//! * **Idle daemon wakeups** — Poisson housekeeping wakeups stealing short
//!   slices on nodes hosting BeeOND daemons (even with zero I/O).
//! * **OSS service work** — object-storage service consumed on nodes whose
//!   OST receives IOR writes; saturating in offered load.
//! * **MDS service work** — metadata load on the management node.

use crate::node::NodeSpec;
use crate::workload::hpl::HplParams;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Calibration constants, each pinned to a range the paper reports.
pub mod calib {
    /// Mean relative OS jitter per node-step (plain Linux housekeeping).
    /// Small enough that the Matching-Lustre runs show only the intrinsic
    /// variance of the platform.
    pub const OS_JITTER_MEAN: f64 = 0.0012;

    /// Idle BeeOND daemon housekeeping wakeups per second per node.
    /// Together with [`IDLE_SLICE_S`] this yields a ~0.84 % mean per-node
    /// steal; the deliberately low rate / long slice gives the Poisson
    /// process high per-step dispersion, so the max-over-nodes cost grows
    /// visibly with job size — landing in the paper's "likely between 0.9
    /// and 2.5 %" band at 64 nodes.
    pub const IDLE_WAKEUPS_PER_S: f64 = 6.0;

    /// CPU slice stolen per idle-daemon wakeup (seconds).
    pub const IDLE_SLICE_S: f64 = 1_400e-6;

    /// Per-op base client latency of a 512 B fsync'd write (seconds);
    /// sets IOR's offered rate (≈ 4 000 ops/s per process).
    pub const WRITE_LATENCY_S: f64 = 250e-6;

    /// Saturation ceiling of the fraction of a node the OSS service can
    /// steal. Pinned by the Matching-BeeOND (no metadata) 128-node result:
    /// 47–52 % extended runtime (the bulk-synchronous max adds ~10 % of
    /// step-jitter on top of the plateau, so the ceiling sits below it).
    pub const OSS_RHO_MAX: f64 = 0.48;

    /// Offered-load half-saturation point (ops/s per OST). Pinned by the
    /// Single-BeeOND 128-node result: a lone IOR node's ~1 750 ops/s per
    /// OST must cost 7–13 %.
    pub const OSS_LAMBDA_HALF: f64 = 8_000.0;

    /// Extra service fraction on the metadata server while file-per-process
    /// IOR churns (small: creates are a startup burst; steady state is
    /// lookups). Small enough that "skip metadata" is not definitively
    /// distinguishable, as the paper found.
    pub const MDS_RHO: f64 = 0.015;

    /// Run-to-run multiplicative variability (relative sigma): system state
    /// differs between submissions (page cache, placement, network
    /// background). Sets the width of the 95 % error bars in
    /// Fig. `multinode`.
    pub const RUN_SIGMA: f64 = 0.006;
}

/// Saturating OSS disruption: fraction of a node consumed by object-storage
/// service work given `offered` write ops/s directed at its OST.
pub fn oss_rho(offered_ops_per_s: f64) -> f64 {
    if offered_ops_per_s <= 0.0 {
        return 0.0;
    }
    calib::OSS_RHO_MAX * offered_ops_per_s / (offered_ops_per_s + calib::OSS_LAMBDA_HALF)
}

/// Static per-node noise profile for one experiment configuration.
#[derive(Debug, Clone, Default)]
pub struct NodeNoise {
    /// Node hosts (possibly idle) BeeOND daemons.
    pub idle_daemons: bool,
    /// OSS service fraction from IOR load on this node's OST.
    pub oss_rho: f64,
    /// MDS service fraction (management node under active IOR).
    pub mds_rho: f64,
}

/// Simulate one HPL run under per-node noise; returns wall seconds.
///
/// `noise[i]` describes compute node `i` of the HPL task. Deterministic in
/// `seed`.
pub fn hpl_runtime_s(params: &HplParams, spec: &NodeSpec, noise: &[NodeNoise], seed: u64) -> f64 {
    assert_eq!(noise.len(), params.nodes, "one noise profile per HPL node");
    let mut rng = StdRng::seed_from_u64(seed);
    // Run-level factor: drawn once per run (Box-Muller) so repetitions of
    // the same cell scatter like real submissions do.
    let run_factor = {
        let u1: f64 = rng.gen_range(1e-12..1.0);
        let u2: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
        let z = (-2.0 * u1.ln()).sqrt() * u2.cos();
        (1.0 + calib::RUN_SIGMA * z).max(0.5)
    };
    let tau = params.base_step_s(spec);
    let steps = params.steps();
    let idle_mean_per_step = calib::IDLE_WAKEUPS_PER_S * tau;

    let mut total = 0.0;
    for _ in 0..steps {
        let mut worst: f64 = 0.0;
        for n in noise {
            // OS jitter: exponential with the calibrated mean.
            let u: f64 = rng.gen_range(1e-12..1.0);
            let mut eps = -calib::OS_JITTER_MEAN * u.ln();
            if n.idle_daemons {
                // Poisson wakeup count (knuth sampling is fine at λ ≲ 100).
                let k = poisson(&mut rng, idle_mean_per_step);
                eps += k as f64 * calib::IDLE_SLICE_S / tau;
            }
            if n.oss_rho > 0.0 {
                // Service work fluctuates ±10 % step to step.
                eps += n.oss_rho * rng.gen_range(0.9..1.1);
            }
            if n.mds_rho > 0.0 {
                eps += n.mds_rho * rng.gen_range(0.9..1.1);
            }
            worst = worst.max(eps);
        }
        total += tau * (1.0 + worst);
    }
    total * run_factor
}

fn poisson(rng: &mut StdRng, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda > 64.0 {
        // Normal approximation for large λ.
        let u1: f64 = rng.gen_range(1e-12..1.0);
        let u2: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
        let z = (-2.0 * u1.ln()).sqrt() * u2.cos();
        return (lambda + z * lambda.sqrt()).max(0.0).round() as u64;
    }
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.gen_range(0.0..1.0f64);
        if p <= l {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeSpec;
    use crate::workload::hpl::TABLE_II;

    fn clean(n: usize) -> Vec<NodeNoise> {
        vec![NodeNoise::default(); n]
    }

    #[test]
    fn oss_rho_saturates() {
        assert_eq!(oss_rho(0.0), 0.0);
        let single_128 = oss_rho(56.0 * 4000.0 / 128.0);
        assert!((0.06..0.14).contains(&single_128), "single IOR @128: {single_128}");
        let matching = oss_rho(56.0 * 4000.0);
        assert!((0.44..0.48).contains(&matching), "matching: {matching}");
        assert!(oss_rho(1e12) < calib::OSS_RHO_MAX + 1e-9);
    }

    #[test]
    fn clean_run_is_near_base() {
        let spec = NodeSpec::thunderx2();
        let p = TABLE_II[2]; // 4 nodes
        let t = hpl_runtime_s(&p, &spec, &clean(4), 1);
        let base = p.base_runtime_s(&spec);
        assert!(t > base, "noise only ever slows");
        assert!(t / base < 1.02, "OS jitter alone stays under 2%: {}", t / base);
    }

    #[test]
    fn idle_daemons_cost_grows_with_scale() {
        let spec = NodeSpec::thunderx2();
        let slowdown = |idx: usize, seed: u64| {
            let p = TABLE_II[idx];
            let mut noise = clean(p.nodes);
            for n in &mut noise {
                n.idle_daemons = true;
            }
            let with = hpl_runtime_s(&p, &spec, &noise, seed);
            let without = hpl_runtime_s(&p, &spec, &clean(p.nodes), seed + 1000);
            with / without - 1.0
        };
        // 64 nodes: the paper's 0.9–2.5 % band.
        let s64 = slowdown(6, 5);
        assert!((0.005..0.035).contains(&s64), "idle daemons @64: {s64}");
        // Larger jobs hurt more (average over a few seeds to de-noise).
        let s8: f64 = (0..3).map(|s| slowdown(3, s)).sum::<f64>() / 3.0;
        let s128: f64 = (0..3).map(|s| slowdown(7, s)).sum::<f64>() / 3.0;
        assert!(s128 > s8, "scale amplification: {s8} -> {s128}");
    }

    #[test]
    fn deterministic_in_seed() {
        let spec = NodeSpec::thunderx2();
        let p = TABLE_II[1];
        let a = hpl_runtime_s(&p, &spec, &clean(2), 9);
        let b = hpl_runtime_s(&p, &spec, &clean(2), 9);
        let c = hpl_runtime_s(&p, &spec, &clean(2), 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn poisson_mean_is_lambda() {
        let mut rng = StdRng::seed_from_u64(3);
        for lambda in [0.5, 5.0, 45.0, 100.0] {
            let n = 4000;
            let mean: f64 = (0..n).map(|_| poisson(&mut rng, lambda) as f64).sum::<f64>() / n as f64;
            assert!((mean - lambda).abs() < lambda * 0.1 + 0.1, "λ={lambda}: mean {mean}");
        }
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    #[should_panic(expected = "one noise profile per HPL node")]
    fn noise_length_mismatch_panics() {
        let spec = NodeSpec::thunderx2();
        let _ = hpl_runtime_s(&TABLE_II[0], &spec, &[], 1);
    }
}
