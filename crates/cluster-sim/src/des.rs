//! A minimal discrete-event simulation engine.
//!
//! Models push typed events into a [`Scheduler`]; the [`Engine`] pops them
//! in time order (FIFO among equal timestamps) and hands them back to the
//! model. No threads, no wall clock: a simulated second costs whatever the
//! handler costs.

use serde::Serialize;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulated time in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Zero.
    pub const ZERO: SimTime = SimTime(0);

    /// From whole seconds.
    pub fn from_secs(s: u64) -> SimTime {
        SimTime(s * 1_000_000)
    }

    /// From fractional seconds (truncating below 1 µs).
    pub fn from_secs_f64(s: f64) -> SimTime {
        SimTime((s.max(0.0) * 1e6) as u64)
    }

    /// As fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating addition.
    #[must_use]
    pub fn plus(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(other.0))
    }
}

/// The pending-event queue handed to model handlers.
#[derive(Debug)]
pub struct Scheduler<E> {
    heap: BinaryHeap<Reverse<(SimTime, u64, EventBox<E>)>>,
    seq: u64,
    now: SimTime,
}

#[derive(Debug)]
struct EventBox<E>(E);

// Ordering only ever compares (time, seq); the payload must not influence
// it, so EventBox compares as always-equal.
impl<E> PartialEq for EventBox<E> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<E> Eq for EventBox<E> {}
impl<E> PartialOrd for EventBox<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for EventBox<E> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<E> Scheduler<E> {
    /// Empty scheduler at time zero.
    pub fn new() -> Self {
        Scheduler {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at` (clamped to now if in the
    /// past — models cannot rewrite history).
    pub fn at(&mut self, at: SimTime, event: E) {
        let t = at.max(self.now);
        self.heap.push(Reverse((t, self.seq, EventBox(event))));
        self.seq += 1;
    }

    /// Schedule `event` after a delay.
    pub fn after(&mut self, delay: SimTime, event: E) {
        self.at(self.now.plus(delay), event);
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse((t, _, EventBox(e))) = self.heap.pop()?;
        self.now = t;
        Some((t, e))
    }
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Scheduler::new()
    }
}

/// A simulation model: handles its own event type.
pub trait Model {
    /// The event alphabet.
    type Event;

    /// Handle one event at time `t`, possibly scheduling more.
    fn handle(&mut self, t: SimTime, event: Self::Event, scheduler: &mut Scheduler<Self::Event>);
}

/// The driver: runs a model to quiescence or a horizon.
#[derive(Debug, Default)]
pub struct Engine;

impl Engine {
    /// Run until no events remain. Returns the final simulated time and the
    /// number of events processed.
    pub fn run<M: Model>(model: &mut M, scheduler: &mut Scheduler<M::Event>) -> (SimTime, usize) {
        Self::run_until(model, scheduler, SimTime(u64::MAX))
    }

    /// Run until the queue empties or the next event would exceed `horizon`.
    pub fn run_until<M: Model>(
        model: &mut M,
        scheduler: &mut Scheduler<M::Event>,
        horizon: SimTime,
    ) -> (SimTime, usize) {
        let mut n = 0;
        while let Some(Reverse((t, _, _))) = scheduler.heap.peek() {
            if *t > horizon {
                break;
            }
            let (t, e) = scheduler.pop().expect("peeked");
            model.handle(t, e, scheduler);
            n += 1;
        }
        (scheduler.now(), n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter {
        fired: Vec<(SimTime, u32)>,
        chain: u32,
    }

    impl Model for Counter {
        type Event = u32;
        fn handle(&mut self, t: SimTime, event: u32, s: &mut Scheduler<u32>) {
            self.fired.push((t, event));
            if event == 0 && self.chain > 0 {
                self.chain -= 1;
                s.after(SimTime::from_secs(1), 0);
            }
        }
    }

    #[test]
    fn events_fire_in_time_order_fifo_on_ties() {
        let mut m = Counter {
            fired: Vec::new(),
            chain: 0,
        };
        let mut s = Scheduler::new();
        s.at(SimTime::from_secs(5), 1);
        s.at(SimTime::from_secs(1), 2);
        s.at(SimTime::from_secs(5), 3); // same time as event 1, scheduled later
        let (end, n) = Engine::run(&mut m, &mut s);
        assert_eq!(n, 3);
        assert_eq!(end, SimTime::from_secs(5));
        assert_eq!(m.fired.iter().map(|(_, e)| *e).collect::<Vec<_>>(), vec![2, 1, 3]);
    }

    #[test]
    fn chained_events_advance_clock() {
        let mut m = Counter {
            fired: Vec::new(),
            chain: 3,
        };
        let mut s = Scheduler::new();
        s.at(SimTime::ZERO, 0);
        let (end, n) = Engine::run(&mut m, &mut s);
        assert_eq!(n, 4);
        assert_eq!(end, SimTime::from_secs(3));
    }

    #[test]
    fn horizon_stops_early() {
        let mut m = Counter {
            fired: Vec::new(),
            chain: 100,
        };
        let mut s = Scheduler::new();
        s.at(SimTime::ZERO, 0);
        let (end, _) = Engine::run_until(&mut m, &mut s, SimTime::from_secs(10));
        assert!(end <= SimTime::from_secs(10));
        assert!(s.pending() > 0, "later events remain queued");
    }

    #[test]
    fn past_scheduling_clamps_to_now() {
        struct PastScheduler;
        impl Model for PastScheduler {
            type Event = u8;
            fn handle(&mut self, t: SimTime, e: u8, s: &mut Scheduler<u8>) {
                if e == 0 {
                    // Try to schedule in the past.
                    s.at(SimTime::ZERO, 1);
                    assert!(t > SimTime::ZERO);
                }
            }
        }
        let mut m = PastScheduler;
        let mut s = Scheduler::new();
        s.at(SimTime::from_secs(10), 0);
        let (end, n) = Engine::run(&mut m, &mut s);
        assert_eq!(n, 2);
        assert_eq!(end, SimTime::from_secs(10), "clamped event fires at now");
    }

    #[test]
    fn simtime_conversions() {
        assert_eq!(SimTime::from_secs_f64(1.5).0, 1_500_000);
        assert_eq!(SimTime::from_secs_f64(-3.0), SimTime::ZERO);
        assert!((SimTime(2_500_000).as_secs_f64() - 2.5).abs() < 1e-12);
    }
}
