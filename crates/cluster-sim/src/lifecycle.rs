//! BeeOND filesystem assembly/teardown timing, driven through the WLM's
//! parallel Prolog/Epilog — the §III-B claim under test: "parallel
//! component instances … assembled into complete stable private BeeOND
//! filesystems in under 3 seconds and disassembled and erased in under 6
//! seconds, **regardless of the scale** of the compute node allocation."
//!
//! The model mirrors the paper's serialized start-up recipe on each node
//! (§III-D): Mgmtd first (management node only), then every node starts its
//! OST storage service in parallel, then the metadata server (management
//! node), then `helperd` + `beeond_mount` on every node. Teardown is the
//! Epilog: kill + poll for exit + XFS reformat + remount, in parallel.

use crate::rngx::stream01;
use serde::Serialize;

/// Component timing constants (seconds). Values chosen so the totals match
/// the paper's budgets with margin; the *shape* (flat in allocation size)
/// comes from the parallel structure, not the constants.
pub mod timing {
    /// Mgmtd daemon start + port bind.
    pub const MGMTD_S: f64 = 0.35;
    /// One OST storage service start (runs in parallel on every node).
    pub const OST_S: f64 = 0.55;
    /// Metadata server start (after storage, management node).
    pub const META_S: f64 = 0.40;
    /// `helperd` start + `beeond_mount` (parallel on every node).
    pub const MOUNT_S: f64 = 0.60;
    /// Kill signal + poll until daemons exit (parallel).
    pub const STOP_S: f64 = 1.20;
    /// XFS reformat of the node-local partition (parallel).
    pub const REFORMAT_S: f64 = 2.80;
    /// Remount for the next allocation (parallel).
    pub const REMOUNT_S: f64 = 0.50;
    /// Relative jitter applied to every component (uniform ±).
    pub const JITTER: f64 = 0.15;
}

/// Measured assembly/teardown times for one allocation size.
#[derive(Debug, Clone, Serialize)]
pub struct LifecycleTiming {
    /// Allocation size (nodes).
    pub nodes: usize,
    /// Prolog time to a mounted filesystem (seconds).
    pub assembly_s: f64,
    /// Epilog time to erased, remounted storage (seconds).
    pub teardown_s: f64,
}

fn jittered(base: f64, seed: u64, label: &str, idx: u64) -> f64 {
    let u = stream01(seed, label, idx);
    base * (1.0 + timing::JITTER * (2.0 * u - 1.0))
}

/// Simulate one assembly: serialized phases, each phase parallel across
/// nodes (the phase ends at the slowest node).
pub fn assemble_s(nodes: usize, seed: u64) -> f64 {
    assert!(nodes >= 1);
    let mgmtd = jittered(timing::MGMTD_S, seed, "mgmtd", 0);
    let ost = (0..nodes as u64)
        .map(|i| jittered(timing::OST_S, seed, "ost", i))
        .fold(0.0f64, f64::max);
    let meta = jittered(timing::META_S, seed, "meta", 0);
    let mount = (0..nodes as u64)
        .map(|i| jittered(timing::MOUNT_S, seed, "mount", i))
        .fold(0.0f64, f64::max);
    mgmtd + ost + meta + mount
}

/// Simulate one teardown: stop + reformat + remount, parallel across nodes.
pub fn teardown_s(nodes: usize, seed: u64) -> f64 {
    assert!(nodes >= 1);
    (0..nodes as u64)
        .map(|i| {
            jittered(timing::STOP_S, seed, "stop", i)
                + jittered(timing::REFORMAT_S, seed, "reformat", i)
                + jittered(timing::REMOUNT_S, seed, "remount", i)
        })
        .fold(0.0f64, f64::max)
}

/// Sweep allocation sizes.
pub fn sweep(sizes: &[usize], seed: u64) -> Vec<LifecycleTiming> {
    sizes
        .iter()
        .map(|&n| LifecycleTiming {
            nodes: n,
            assembly_s: assemble_s(n, seed ^ n as u64),
            teardown_s: teardown_s(n, seed ^ (n as u64) << 16),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_hold_at_every_scale() {
        for t in sweep(&[1, 2, 8, 64, 512, 4096], 7) {
            assert!(
                t.assembly_s < 3.0,
                "{} nodes assembled in {:.2}s",
                t.nodes,
                t.assembly_s
            );
            assert!(
                t.teardown_s < 6.0,
                "{} nodes torn down in {:.2}s",
                t.nodes,
                t.teardown_s
            );
        }
    }

    #[test]
    fn scale_free_within_jitter() {
        // The max over more nodes grows, but is bounded by base·(1+JITTER):
        // "regardless of the scale".
        let small = assemble_s(2, 3);
        let huge = assemble_s(4096, 3);
        assert!(huge / small < 1.0 + 2.0 * timing::JITTER + 0.05, "{small} -> {huge}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(assemble_s(16, 9), assemble_s(16, 9));
        assert_ne!(assemble_s(16, 9), assemble_s(16, 10));
    }

    #[test]
    fn teardown_dominated_by_reformat() {
        let t = teardown_s(8, 1);
        assert!(t > timing::REFORMAT_S * (1.0 - timing::JITTER));
    }
}
