//! Summary statistics: mean, standard deviation and Student-t 95 %
//! confidence intervals, matching the error bars of Fig. `multinode`.

use serde::Serialize;

/// Two-sided 97.5 % Student-t quantiles by degrees of freedom (1–30);
/// beyond 30 the normal quantile 1.96 is used.
const T_975: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120,
    2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
];

/// Student-t 97.5 % quantile for `df` degrees of freedom.
pub fn t_quantile_975(df: usize) -> f64 {
    if df == 0 {
        return f64::INFINITY;
    }
    if df <= 30 {
        T_975[df - 1]
    } else {
        1.96
    }
}

/// Summary of a sample.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator).
    pub stddev: f64,
    /// Lower bound of the 95 % CI of the mean.
    pub ci_low: f64,
    /// Upper bound of the 95 % CI of the mean.
    pub ci_high: f64,
}

impl Summary {
    /// Summarize a sample. Panics on an empty slice.
    pub fn of(xs: &[f64]) -> Summary {
        assert!(!xs.is_empty(), "cannot summarize an empty sample");
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        if n == 1 {
            return Summary {
                n,
                mean,
                stddev: 0.0,
                ci_low: mean,
                ci_high: mean,
            };
        }
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0);
        let stddev = var.sqrt();
        let half = t_quantile_975(n - 1) * stddev / (n as f64).sqrt();
        Summary {
            n,
            mean,
            stddev,
            ci_low: mean - half,
            ci_high: mean + half,
        }
    }

    /// Half-width of the CI.
    pub fn ci_half_width(&self) -> f64 {
        (self.ci_high - self.ci_low) / 2.0
    }

    /// Whether this summary's CI overlaps another's (no statistically
    /// significant difference at roughly the 95 % level).
    pub fn overlaps(&self, other: &Summary) -> bool {
        self.ci_low <= other.ci_high && other.ci_low <= self.ci_high
    }

    /// Relative difference of means: `(self − base) / base`.
    pub fn rel_diff(&self, base: &Summary) -> f64 {
        (self.mean - base.mean) / base.mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.stddev - 2.13809).abs() < 1e-4);
        // df=7 → t=2.365; half = 2.365 * 2.13809 / sqrt(8) ≈ 1.7878
        assert!((s.ci_half_width() - 1.7878).abs() < 1e-3);
    }

    #[test]
    fn singleton_has_degenerate_ci() {
        let s = Summary::of(&[3.0]);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.ci_low, 3.0);
        assert_eq!(s.ci_high, 3.0);
    }

    #[test]
    fn ci_width_shrinks_with_n() {
        let small = Summary::of(&[1.0, 2.0, 3.0]);
        let xs: Vec<f64> = (0..30).map(|i| 1.0 + (i % 3) as f64).collect();
        let big = Summary::of(&xs);
        assert!(big.ci_half_width() < small.ci_half_width());
    }

    #[test]
    fn ci_contains_mean() {
        let xs = [10.0, 11.0, 12.5, 9.8, 10.7];
        let s = Summary::of(&xs);
        assert!(s.ci_low <= s.mean && s.mean <= s.ci_high);
    }

    #[test]
    fn overlap_detection() {
        let a = Summary::of(&[10.0, 10.1, 9.9, 10.05]);
        let b = Summary::of(&[10.05, 10.15, 9.95, 10.1]);
        let c = Summary::of(&[20.0, 20.1, 19.9, 20.05]);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!((c.rel_diff(&a) - 1.0005).abs() < 0.01);
    }

    #[test]
    fn t_quantiles_monotone() {
        assert!(t_quantile_975(1) > t_quantile_975(5));
        assert!(t_quantile_975(5) > t_quantile_975(30));
        assert_eq!(t_quantile_975(31), 1.96);
        assert!(t_quantile_975(0).is_infinite());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sample_panics() {
        let _ = Summary::of(&[]);
    }
}
