//! The node-local BeeOND-like parallel filesystem model.
//!
//! Role assignment follows the paper's §III-D exactly: "The lowest node in
//! the allocation became the Mgmt server, the Metadata server, an OST, and
//! a client. The other nodes in the Slurm allocation became both OST
//! servers and clients."

use serde::Serialize;

/// Daemon roles a node can host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct NodeRoles {
    /// Management daemon (`mgmtd`).
    pub mgmtd: bool,
    /// Metadata server (`meta`).
    pub meta: bool,
    /// Object storage server / target (`storage`).
    pub ost: bool,
    /// Client mount (`helperd` + `beeond_mount`).
    pub client: bool,
}

/// A BeeOND filesystem instance over an allocation.
#[derive(Debug, Clone, Serialize)]
pub struct BeeondFs {
    /// Allocation nodes, in `SLURM_NODELIST` order.
    pub nodes: Vec<usize>,
    /// Per-node roles (same order as `nodes`).
    pub roles: Vec<NodeRoles>,
}

impl BeeondFs {
    /// Assign roles over the allocation per the paper's layout.
    pub fn assemble(nodes: Vec<usize>) -> BeeondFs {
        assert!(!nodes.is_empty(), "BeeOND needs at least one node");
        let lowest = *nodes.iter().min().expect("non-empty");
        let roles = nodes
            .iter()
            .map(|&n| NodeRoles {
                mgmtd: n == lowest,
                meta: n == lowest,
                ost: true,
                client: true,
            })
            .collect();
        BeeondFs { nodes, roles }
    }

    /// The node hosting mgmtd + metadata.
    pub fn management_node(&self) -> usize {
        *self.nodes.iter().min().expect("non-empty")
    }

    /// All OST nodes (every node, per the paper's first implementation).
    pub fn ost_nodes(&self) -> Vec<usize> {
        self.nodes
            .iter()
            .zip(&self.roles)
            .filter(|(_, r)| r.ost)
            .map(|(n, _)| *n)
            .collect()
    }

    /// Number of OSTs (stripe width for file-per-process distribution).
    pub fn ost_count(&self) -> usize {
        self.roles.iter().filter(|r| r.ost).count()
    }

    /// Which OST node the `i`-th stripe/file lands on (round-robin, the
    /// even striping the paper describes).
    pub fn ost_for(&self, i: usize) -> usize {
        let osts = self.ost_nodes();
        osts[i % osts.len()]
    }

    /// Roles of a specific node, if it belongs to this filesystem.
    pub fn roles_of(&self, node: usize) -> Option<NodeRoles> {
        self.nodes.iter().position(|&n| n == node).map(|i| self.roles[i])
    }
}

/// Daemon overhead parameters while the filesystem is *idle* (no I/O): the
/// surprising cost the paper measured ("idle BeeOND daemons" costing
/// 0.9–2.5 % at 64 nodes).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct IdleDaemonModel {
    /// Housekeeping wakeups per second per daemon-hosting node.
    pub wakeups_per_s: f64,
    /// CPU time stolen per wakeup (seconds).
    pub slice_s: f64,
}

impl Default for IdleDaemonModel {
    fn default() -> Self {
        // See interference::calib for how these pin to the paper's ranges.
        IdleDaemonModel {
            wakeups_per_s: 25.0,
            slice_s: 350e-6,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowest_node_gets_all_management_roles() {
        let fs = BeeondFs::assemble(vec![4, 5, 6, 7]);
        assert_eq!(fs.management_node(), 4);
        let r4 = fs.roles_of(4).unwrap();
        assert!(r4.mgmtd && r4.meta && r4.ost && r4.client);
        let r5 = fs.roles_of(5).unwrap();
        assert!(!r5.mgmtd && !r5.meta && r5.ost && r5.client);
        assert_eq!(fs.ost_count(), 4);
    }

    #[test]
    fn striping_is_round_robin() {
        let fs = BeeondFs::assemble(vec![0, 1, 2]);
        assert_eq!(fs.ost_for(0), 0);
        assert_eq!(fs.ost_for(1), 1);
        assert_eq!(fs.ost_for(2), 2);
        assert_eq!(fs.ost_for(3), 0);
    }

    #[test]
    fn roles_of_foreign_node_is_none() {
        let fs = BeeondFs::assemble(vec![0, 1]);
        assert!(fs.roles_of(9).is_none());
    }

    #[test]
    fn single_node_fs_is_everything() {
        let fs = BeeondFs::assemble(vec![3]);
        let r = fs.roles_of(3).unwrap();
        assert!(r.mgmtd && r.meta && r.ost && r.client);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_allocation_panics() {
        let _ = BeeondFs::assemble(vec![]);
    }
}
