//! The five experiment classes of Fig. `process-layout` and the runner
//! that regenerates Fig. `multinode` / Fig. `multinode-variance`.
//!
//! "An experiment is a multi-node HPL task run in the same compute
//! allocation with an IOR task of various sizes … placed on non-overlapping
//! sets of nodes."

use crate::beeond::BeeondFs;
use crate::interference::{calib, hpl_runtime_s, oss_rho, NodeNoise};
use crate::node::NodeSpec;
use crate::stats::Summary;
use crate::workload::hpl::{derive_params, HplParams};
use crate::workload::ior::IorParams;
use rayon::prelude::*;
use serde::Serialize;

/// The experiment classes, with the paper's `k` (separator tasks) and `m`
/// (IOR nodes) parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum ExperimentClass {
    /// `k=0, m=0`: control; BeeOND daemons loaded but idle.
    HplOnly,
    /// `k=0, m=n`: IOR targets external Lustre; **no** BeeOND daemons.
    MatchingLustre,
    /// `k=0, m=1`: one IOR node over BeeOND.
    SingleBeeond,
    /// `k=0, m=n`: n IOR nodes over BeeOND; HPL overlaps the MDS node.
    MatchingBeeond,
    /// `k=1, m=n`: as above but a separator task keeps HPL off the MDS
    /// node.
    MatchingBeeondNoMeta,
}

impl ExperimentClass {
    /// All five classes in the paper's order.
    pub const ALL: [ExperimentClass; 5] = [
        ExperimentClass::HplOnly,
        ExperimentClass::MatchingLustre,
        ExperimentClass::SingleBeeond,
        ExperimentClass::MatchingBeeond,
        ExperimentClass::MatchingBeeondNoMeta,
    ];

    /// `(k, m)` for an `n`-node HPL task.
    pub fn k_m(self, n: usize) -> (usize, usize) {
        match self {
            ExperimentClass::HplOnly => (0, 0),
            ExperimentClass::MatchingLustre => (0, n),
            ExperimentClass::SingleBeeond => (0, 1),
            ExperimentClass::MatchingBeeond => (0, n),
            ExperimentClass::MatchingBeeondNoMeta => (1, n),
        }
    }

    /// Whether BeeOND daemons are loaded in the allocation.
    pub fn loads_beeond(self) -> bool {
        !matches!(self, ExperimentClass::MatchingLustre)
    }

    /// Whether the IOR task writes to the BeeOND filesystem (vs external
    /// Lustre or no IOR at all).
    pub fn ior_on_beeond(self) -> bool {
        matches!(
            self,
            ExperimentClass::SingleBeeond | ExperimentClass::MatchingBeeond | ExperimentClass::MatchingBeeondNoMeta
        )
    }

    /// Display name matching the paper's legend.
    pub fn label(self) -> &'static str {
        match self {
            ExperimentClass::HplOnly => "HPL-Only",
            ExperimentClass::MatchingLustre => "Matching Lustre",
            ExperimentClass::SingleBeeond => "Single BeeOND",
            ExperimentClass::MatchingBeeond => "Matching BeeOND",
            ExperimentClass::MatchingBeeondNoMeta => "Matching BeeOND (no meta)",
        }
    }
}

/// Role of a node in an experiment layout (Fig. `process-layout`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum NodeRole {
    /// Runs part of the multi-node HPL task.
    Hpl,
    /// Runs IOR client processes.
    Ior,
    /// Separator task pinning the metadata node away from HPL.
    Separator,
}

/// The concrete node layout of one experiment cell.
#[derive(Debug, Clone, Serialize)]
pub struct Layout {
    /// Class.
    pub class: ExperimentClass,
    /// HPL node count `n`.
    pub n: usize,
    /// Role per allocation node (index = node within the allocation).
    pub roles: Vec<NodeRole>,
    /// Index of the BeeOND management/metadata node, if daemons are loaded.
    pub mds_node: Option<usize>,
}

impl Layout {
    /// Build the layout for `class` at HPL size `n`.
    ///
    /// The allocation is `k` separator nodes, then `n` HPL nodes, then `m`
    /// IOR nodes; BeeOND (when loaded) spans the whole allocation with the
    /// lowest node as management/metadata server — so with `k=0` the first
    /// HPL node hosts the MDS, and with `k=1` the separator does.
    pub fn build(class: ExperimentClass, n: usize) -> Layout {
        let (k, m) = class.k_m(n);
        let mut roles = Vec::with_capacity(k + n + m);
        roles.extend(std::iter::repeat_n(NodeRole::Separator, k));
        roles.extend(std::iter::repeat_n(NodeRole::Hpl, n));
        roles.extend(std::iter::repeat_n(NodeRole::Ior, m));
        let mds_node = class.loads_beeond().then_some(0);
        Layout {
            class,
            n,
            roles,
            mds_node,
        }
    }

    /// Total allocation size.
    pub fn allocation_size(&self) -> usize {
        self.roles.len()
    }

    /// Indices of the HPL nodes.
    pub fn hpl_nodes(&self) -> Vec<usize> {
        self.roles
            .iter()
            .enumerate()
            .filter(|(_, r)| **r == NodeRole::Hpl)
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of the IOR nodes.
    pub fn ior_nodes(&self) -> Vec<usize> {
        self.roles
            .iter()
            .enumerate()
            .filter(|(_, r)| **r == NodeRole::Ior)
            .map(|(i, _)| i)
            .collect()
    }

    /// Per-HPL-node noise profiles for this layout.
    pub fn noise(&self, ior: &IorParams) -> Vec<NodeNoise> {
        let beeond = self
            .class
            .loads_beeond()
            .then(|| BeeondFs::assemble((0..self.allocation_size()).collect()));
        let per_ost_offered = if self.class.ior_on_beeond() {
            let m = self.ior_nodes().len() as f64;
            let total = m * ior.node_ops_per_s(calib::WRITE_LATENCY_S);
            total / self.allocation_size() as f64
        } else {
            0.0
        };
        self.hpl_nodes()
            .iter()
            .map(|&node| {
                let mut nn = NodeNoise::default();
                if let Some(fs) = &beeond {
                    let roles = fs.roles_of(node).expect("fs spans allocation");
                    nn.idle_daemons = roles.ost || roles.meta;
                    if self.class.ior_on_beeond() {
                        if roles.ost {
                            nn.oss_rho = oss_rho(per_ost_offered);
                        }
                        if roles.meta {
                            nn.mds_rho = calib::MDS_RHO;
                        }
                    }
                }
                nn
            })
            .collect()
    }
}

/// A sweep plan: which classes, which HPL sizes, how many repetitions.
#[derive(Debug, Clone, Serialize)]
pub struct ExperimentPlan {
    /// Classes to run.
    pub classes: Vec<ExperimentClass>,
    /// HPL node counts (powers of two).
    pub node_counts: Vec<usize>,
    /// Repetitions per cell ("All runs were completed between 7 and 10
    /// times").
    pub reps: usize,
    /// Repetitions for the Matching-Lustre control ("we only ran those
    /// experiments only three times each").
    pub lustre_reps: usize,
    /// Master seed.
    pub seed: u64,
}

impl ExperimentPlan {
    /// The paper's full sweep.
    pub fn paper(seed: u64) -> ExperimentPlan {
        ExperimentPlan {
            classes: ExperimentClass::ALL.to_vec(),
            node_counts: vec![1, 2, 4, 8, 16, 32, 64, 128],
            reps: 8,
            lustre_reps: 3,
            seed,
        }
    }

    /// A fast smoke-scale plan (tests / examples).
    pub fn smoke(seed: u64) -> ExperimentPlan {
        ExperimentPlan {
            classes: ExperimentClass::ALL.to_vec(),
            node_counts: vec![1, 4, 16],
            reps: 4,
            lustre_reps: 3,
            seed,
        }
    }
}

/// One cell of results.
#[derive(Debug, Clone, Serialize)]
pub struct ExperimentResult {
    /// Class.
    pub class: ExperimentClass,
    /// HPL node count.
    pub n: usize,
    /// HPL parameters used.
    pub params: HplParams,
    /// Runtime summary over repetitions (seconds).
    pub runtime: Summary,
}

/// Run the full sweep (parallel over cells and repetitions).
pub fn run(plan: &ExperimentPlan, spec: &NodeSpec) -> Vec<ExperimentResult> {
    let ior = IorParams::default();
    let cells: Vec<(ExperimentClass, usize)> = plan
        .classes
        .iter()
        .flat_map(|&c| plan.node_counts.iter().map(move |&n| (c, n)))
        .collect();
    cells
        .par_iter()
        .map(|&(class, n)| {
            let params = derive_params(spec, n);
            let layout = Layout::build(class, n);
            let noise = layout.noise(&ior);
            let reps = if class == ExperimentClass::MatchingLustre {
                plan.lustre_reps
            } else {
                plan.reps
            };
            let runtimes: Vec<f64> = (0..reps)
                .into_par_iter()
                .map(|r| {
                    let seed = cell_seed(plan.seed, class, n, r);
                    hpl_runtime_s(&params, spec, &noise, seed)
                })
                .collect();
            ExperimentResult {
                class,
                n,
                params,
                runtime: Summary::of(&runtimes),
            }
        })
        .collect()
}

/// Outcome of one experiment repetition driven through the workload
/// manager (prolog → payload → epilog), the way the real campaign ran.
#[derive(Debug, Clone, Serialize)]
pub struct WlmRun {
    /// HPL wall time (the measured quantity).
    pub payload_s: f64,
    /// Prolog duration (BeeOND assembly when daemons are loaded).
    pub prolog_s: f64,
    /// Epilog duration (teardown + XFS reformat when daemons were loaded).
    pub epilog_s: f64,
    /// Total allocation occupancy.
    pub total_s: f64,
}

/// Run one repetition of `class` at HPL size `n` through the Slurm-like
/// WLM: allocate `k+n+m` nodes, run the (BeeOND-aware) prolog, the noisy
/// HPL payload, then the epilog. Uses the lifecycle model for hook times so
/// occupancy accounting includes the filesystem assembly cost.
pub fn run_one_via_wlm(class: ExperimentClass, n: usize, spec: &NodeSpec, seed: u64) -> WlmRun {
    use crate::des::{Engine, Scheduler};
    use crate::slurm::{JobSpec, Wlm};

    let layout = Layout::build(class, n);
    let params = derive_params(spec, n);
    let noise = layout.noise(&IorParams::default());
    let payload_s = crate::interference::hpl_runtime_s(&params, spec, &noise, seed);

    let alloc = layout.allocation_size();
    let mut wlm = Wlm::new(alloc, seed);
    if class.loads_beeond() {
        wlm.hooks.beeond_prolog_s = crate::lifecycle::assemble_s(alloc, seed ^ 0xA55E);
        wlm.hooks.beeond_epilog_s = crate::lifecycle::teardown_s(alloc, seed ^ 0x7EAD);
    }
    let job = if class.loads_beeond() {
        JobSpec::with_beeond(alloc, payload_s + 7200.0)
    } else {
        JobSpec::plain(alloc, payload_s + 7200.0)
    };
    let mut sched = Scheduler::new();
    let id = wlm.submit(job, payload_s, &mut sched);
    Engine::run(&mut wlm, &mut sched);
    let rec = wlm.job(id).expect("submitted");
    let started = rec.started_at.expect("ran").as_secs_f64();
    let ended = rec.ended_at.expect("finished").as_secs_f64();
    let epilog = if class.loads_beeond() {
        wlm.hooks.beeond_epilog_s
    } else {
        wlm.hooks.plain_epilog_s
    };
    WlmRun {
        payload_s: ended - started,
        prolog_s: started,
        epilog_s: epilog,
        total_s: ended - started + started + epilog,
    }
}

/// Derive the seed of repetition `r` of a cell — stable no matter the
/// execution order.
fn cell_seed(master: u64, class: ExperimentClass, n: usize, r: usize) -> u64 {
    let c = ExperimentClass::ALL.iter().position(|&x| x == class).unwrap_or(0) as u64;
    let mut x = master ^ (c << 48) ^ ((n as u64) << 24) ^ r as u64;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeSpec;

    #[test]
    fn layouts_match_class_definitions() {
        let l = Layout::build(ExperimentClass::MatchingBeeondNoMeta, 4);
        assert_eq!(l.allocation_size(), 1 + 4 + 4);
        assert_eq!(l.roles[0], NodeRole::Separator);
        assert_eq!(l.hpl_nodes(), vec![1, 2, 3, 4]);
        assert_eq!(l.ior_nodes(), vec![5, 6, 7, 8]);
        assert_eq!(l.mds_node, Some(0));

        let l = Layout::build(ExperimentClass::MatchingBeeond, 4);
        assert_eq!(l.hpl_nodes()[0], 0, "HPL overlaps the MDS node");

        let l = Layout::build(ExperimentClass::MatchingLustre, 4);
        assert_eq!(l.mds_node, None, "no BeeOND daemons loaded");
        assert_eq!(l.ior_nodes().len(), 4);

        let l = Layout::build(ExperimentClass::SingleBeeond, 4);
        assert_eq!(l.ior_nodes().len(), 1);
    }

    #[test]
    fn noise_profiles_encode_the_classes() {
        let ior = IorParams::default();
        // HPL-only: idle daemons, no OSS load.
        let noise = Layout::build(ExperimentClass::HplOnly, 4).noise(&ior);
        assert!(noise.iter().all(|n| n.idle_daemons && n.oss_rho == 0.0));
        // Lustre: nothing at all.
        let noise = Layout::build(ExperimentClass::MatchingLustre, 4).noise(&ior);
        assert!(noise
            .iter()
            .all(|n| !n.idle_daemons && n.oss_rho == 0.0 && n.mds_rho == 0.0));
        // Matching: every HPL node loaded, first one also MDS.
        let noise = Layout::build(ExperimentClass::MatchingBeeond, 4).noise(&ior);
        assert!(noise.iter().all(|n| n.oss_rho > 0.2));
        assert!(noise[0].mds_rho > 0.0);
        assert!(noise[1..].iter().all(|n| n.mds_rho == 0.0));
        // No-meta: no HPL node carries MDS load.
        let noise = Layout::build(ExperimentClass::MatchingBeeondNoMeta, 4).noise(&ior);
        assert!(noise.iter().all(|n| n.mds_rho == 0.0));
    }

    #[test]
    fn single_vs_matching_oss_load_ordering() {
        let ior = IorParams::default();
        let single = Layout::build(ExperimentClass::SingleBeeond, 8).noise(&ior);
        let matching = Layout::build(ExperimentClass::MatchingBeeond, 8).noise(&ior);
        assert!(single[1].oss_rho < matching[1].oss_rho);
    }

    #[test]
    fn smoke_sweep_reproduces_the_ordering() {
        let spec = NodeSpec::thunderx2();
        let mut plan = ExperimentPlan::smoke(11);
        plan.node_counts = vec![16];
        let results = run(&plan, &spec);
        let mean = |c: ExperimentClass| results.iter().find(|r| r.class == c && r.n == 16).unwrap().runtime.mean;
        let lustre = mean(ExperimentClass::MatchingLustre);
        let hpl_only = mean(ExperimentClass::HplOnly);
        let single = mean(ExperimentClass::SingleBeeond);
        let matching = mean(ExperimentClass::MatchingBeeond);
        assert!(lustre < hpl_only, "idle daemons cost something: {lustre} vs {hpl_only}");
        assert!(hpl_only < single, "active IOR costs more: {hpl_only} vs {single}");
        assert!(single < matching, "matching IOR costs most: {single} vs {matching}");
    }

    #[test]
    fn wlm_run_accounts_for_hooks() {
        let spec = NodeSpec::thunderx2();
        let r = run_one_via_wlm(ExperimentClass::HplOnly, 4, &spec, 5);
        // BeeOND assembly happened in the prolog, within the paper's budget.
        assert!(r.prolog_s > 1.0 && r.prolog_s < 3.0, "prolog {:.2}", r.prolog_s);
        assert!(r.epilog_s < 6.0);
        // The payload matches the direct interference model at this seed.
        let params = derive_params(&spec, 4);
        let layout = Layout::build(ExperimentClass::HplOnly, 4);
        let direct = crate::interference::hpl_runtime_s(&params, &spec, &layout.noise(&IorParams::default()), 5);
        assert!((r.payload_s - direct).abs() < 0.5, "{} vs {}", r.payload_s, direct);
        // Lustre jobs skip BeeOND hooks.
        let l = run_one_via_wlm(ExperimentClass::MatchingLustre, 4, &spec, 5);
        assert!(l.prolog_s < 1.0, "plain prolog: {}", l.prolog_s);
    }

    #[test]
    fn results_are_reproducible() {
        let spec = NodeSpec::thunderx2();
        let mut plan = ExperimentPlan::smoke(3);
        plan.node_counts = vec![4];
        plan.classes = vec![ExperimentClass::HplOnly];
        let a = run(&plan, &spec);
        let b = run(&plan, &spec);
        assert_eq!(a[0].runtime, b[0].runtime);
    }
}
