//! # cluster-sim
//!
//! Discrete-event simulator of an HPC cluster: a Slurm-like workload
//! manager, a BeeOND-like node-local parallel filesystem, a Lustre-like
//! external filesystem, and analytic HPL/IOR workload models with an OS
//! noise / daemon-interference engine.
//!
//! This crate is the substitute substrate for the evaluation section of the
//! supplied paper text (the burst-buffer interference study): the original
//! ran on a 128-node dual-socket ThunderX2 system with node-local SATA SSDs.
//! Here the same experiment classes run against a calibrated model:
//!
//! * [`des`] — a small discrete-event engine (event queue + virtual clock).
//! * [`node`] — node hardware model (cores, memory, SSD, NIC).
//! * [`slurm`] — the workload manager: contiguous allocation, prolog/epilog,
//!   constraints (`beeond`), drain-on-failure.
//! * [`beeond`] — the node-local FS: role assignment exactly as the paper's
//!   §III-D (lowest node = mgmtd + metadata + OST + client; every node an
//!   OST + client), parallel startup < 3 s, teardown + XFS reformat < 6 s.
//! * [`lustre`] — the external parallel FS (absorbs I/O without loading
//!   compute nodes).
//! * [`workload`] — HPL (Table II parameter derivation + bulk-synchronous
//!   runtime model), IOR (Table III configuration + load generation), and
//!   the six Table I performance profiles.
//! * [`interference`] — the noise engine: OS jitter, idle-daemon wakeups,
//!   OSS service work, metadata service load; calibration constants live in
//!   [`interference::calib`] with the paper ranges that pin them.
//! * [`lifecycle`] — BeeOND assembly/teardown timing through the parallel
//!   Prolog/Epilog (the "<3 s / <6 s regardless of scale" claim).
//! * [`experiment`] — the five experiment classes of Fig. `process-layout`
//!   and the runner that reproduces Fig. `multinode` / Fig.
//!   `multinode-variance`.
//! * [`stats`] — mean / stddev / Student-t 95 % confidence intervals.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod beeond;
pub mod des;
pub mod experiment;
pub mod interference;
pub mod lifecycle;
pub mod lustre;
pub mod node;
pub mod rngx;
pub mod slurm;
pub mod stats;
pub mod workload;

pub use des::{Engine, Scheduler, SimTime};
pub use experiment::{ExperimentClass, ExperimentPlan, ExperimentResult};
pub use stats::Summary;
