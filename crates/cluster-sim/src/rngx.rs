//! Tiny deterministic uniform-stream helper (no `rand` dependency in hot
//! paths that only need a labelled uniform draw).

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)` for `(seed, label, index)`.
pub fn stream01(seed: u64, label: &str, index: u64) -> f64 {
    let mut h = splitmix64(seed);
    for b in label.as_bytes() {
        h = splitmix64(h ^ u64::from(*b));
    }
    (splitmix64(h ^ index) >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_unit_interval_and_deterministic() {
        for i in 0..100 {
            let u = stream01(42, "t", i);
            assert!((0.0..1.0).contains(&u));
            assert_eq!(u, stream01(42, "t", i));
        }
    }

    #[test]
    fn labels_decorrelate() {
        assert_ne!(stream01(1, "a", 0), stream01(1, "b", 0));
    }

    #[test]
    fn roughly_uniform() {
        let n = 10_000;
        let mean: f64 = (0..n).map(|i| stream01(7, "u", i)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "{mean}");
    }
}
