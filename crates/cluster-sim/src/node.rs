//! Node hardware model: the paper's testbed nodes.
//!
//! "A dual socket ThunderX2 processor with Socket Direct … 100 Gb/s EDR
//! InfiniBand … each node contained a 1 TB SATA interface SSD" with an
//! 894 GB XFS partition.

use serde::Serialize;

/// Hardware of one compute node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct NodeSpec {
    /// Physical cores (2 × 28 for dual ThunderX2 CN9975).
    pub cores: u32,
    /// DRAM in GiB.
    pub memory_gib: u64,
    /// Node-local SSD partition in bytes (894 GB usable).
    pub ssd_bytes: u64,
    /// NIC bandwidth in Gbit/s (EDR InfiniBand).
    pub nic_gbps: f64,
    /// Sustained double-precision GFLOPS for HPL-like kernels.
    pub gflops: f64,
}

impl NodeSpec {
    /// The paper's ARM64 node (HPE Apollo 70 class).
    pub fn thunderx2() -> NodeSpec {
        NodeSpec {
            cores: 56,
            memory_gib: 128,
            ssd_bytes: 894_000_000_000,
            nic_gbps: 100.0,
            // Calibrated so the paper's single-node HPL (N = 91048) takes a
            // bit under 15 minutes: 2/3·N³ flops ≈ 5.03e14 → ~560 GFLOPS
            // sustains ≈ 860 s.
            gflops: 585.0,
        }
    }

    /// Memory HPL sizes its matrix from (bytes).
    ///
    /// The paper says "most of the memory", but its own Table II implies
    /// N₁ = 91 048 ⇒ 8·N₁² ≈ 61.8 GiB ≈ 48.3 % of the 128 GiB node —
    /// consistent with one NUMA domain of the dual-socket ThunderX2 plus
    /// headroom. We use that observed fill factor so the derived table
    /// matches the published one.
    pub fn hpl_usable_memory_bytes(&self) -> u64 {
        self.memory_gib * 1024 * 1024 * 1024 * 483 / 1000
    }
}

/// A cluster: homogeneous nodes, numbered 0..n.
#[derive(Debug, Clone, Serialize)]
pub struct Cluster {
    /// Per-node hardware.
    pub spec: NodeSpec,
    /// Node count.
    pub nodes: usize,
}

impl Cluster {
    /// A cluster of `nodes` ThunderX2 nodes.
    pub fn thunderx2(nodes: usize) -> Cluster {
        Cluster {
            spec: NodeSpec::thunderx2(),
            nodes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thunderx2_shape() {
        let n = NodeSpec::thunderx2();
        assert_eq!(n.cores, 56);
        assert_eq!(n.memory_gib, 128);
        assert!(n.hpl_usable_memory_bytes() < 128 * (1u64 << 30));
        // The observed Table-II fill factor: ~61.8 GiB of matrix.
        assert!(n.hpl_usable_memory_bytes() > 60 * (1u64 << 30));
        assert!(n.hpl_usable_memory_bytes() < 64 * (1u64 << 30));
    }

    #[test]
    fn single_node_hpl_under_15_minutes() {
        // Cross-check the calibration note on `gflops`.
        let n = NodeSpec::thunderx2();
        let flops = 2.0 / 3.0 * 91048f64.powi(3);
        let t = flops / (n.gflops * 1e9);
        assert!(t < 900.0, "single-node HPL {t:.0}s must be < 15 min");
        assert!(t > 600.0, "but not implausibly fast ({t:.0}s)");
    }
}
