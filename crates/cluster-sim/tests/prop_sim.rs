//! Property tests: statistics, DES ordering, workload-model monotonicity
//! and experiment-layout invariants.

use cluster_sim::des::{Engine, Model, Scheduler, SimTime};
use cluster_sim::experiment::{ExperimentClass, Layout};
use cluster_sim::interference::{hpl_runtime_s, oss_rho, NodeNoise};
use cluster_sim::node::NodeSpec;
use cluster_sim::stats::Summary;
use cluster_sim::workload::hpl::derive_params;
use cluster_sim::workload::ior::IorParams;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The 95 % CI always contains the sample mean and is symmetric.
    #[test]
    fn ci_contains_mean(xs in prop::collection::vec(-1e6f64..1e6, 1..50)) {
        let s = Summary::of(&xs);
        prop_assert!(s.ci_low <= s.mean + 1e-9);
        prop_assert!(s.mean <= s.ci_high + 1e-9);
        let lo = s.mean - s.ci_low;
        let hi = s.ci_high - s.mean;
        prop_assert!((lo - hi).abs() < 1e-6 * (1.0 + lo.abs()));
    }

    /// Adding more identically distributed data never widens the CI much:
    /// the half-width of a doubled sample is strictly smaller for constant
    /// spread data.
    #[test]
    fn ci_shrinks_with_replication(base in prop::collection::vec(0.0f64..100.0, 3..12)) {
        prop_assume!(Summary::of(&base).stddev > 1e-9);
        let doubled: Vec<f64> = base.iter().chain(base.iter()).copied().collect();
        let s1 = Summary::of(&base);
        let s2 = Summary::of(&doubled);
        prop_assert!(s2.ci_half_width() < s1.ci_half_width());
    }

    /// DES events always fire in non-decreasing time order, whatever the
    /// schedule, with FIFO among ties.
    #[test]
    fn des_time_ordering(times in prop::collection::vec(0u64..1000, 1..60)) {
        struct Recorder(Vec<(SimTime, usize)>);
        impl Model for Recorder {
            type Event = usize;
            fn handle(&mut self, t: SimTime, e: usize, _s: &mut Scheduler<usize>) {
                self.0.push((t, e));
            }
        }
        let mut m = Recorder(Vec::new());
        let mut s = Scheduler::new();
        for (i, &t) in times.iter().enumerate() {
            s.at(SimTime::from_secs(t), i);
        }
        Engine::run(&mut m, &mut s);
        prop_assert_eq!(m.0.len(), times.len());
        for w in m.0.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO among ties");
            }
        }
    }

    /// OSS disruption is monotone in offered load and bounded by the
    /// calibrated ceiling.
    #[test]
    fn oss_rho_monotone_bounded(a in 0.0f64..1e7, b in 0.0f64..1e7) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(oss_rho(lo) <= oss_rho(hi) + 1e-12);
        prop_assert!(oss_rho(hi) < 0.5);
        prop_assert!(oss_rho(lo) >= 0.0);
    }

    /// More noise never speeds HPL up: runtime with OSS load dominates the
    /// clean runtime at the same seed.
    #[test]
    fn noise_is_never_free(k in 0u32..6, rho in 0.01f64..0.4, seed in any::<u64>()) {
        let spec = NodeSpec::thunderx2();
        let nodes = 1usize << k.min(4); // up to 16 to keep it quick
        let params = derive_params(&spec, nodes);
        let clean = vec![NodeNoise::default(); nodes];
        let noisy: Vec<NodeNoise> = (0..nodes)
            .map(|_| NodeNoise { idle_daemons: false, oss_rho: rho, mds_rho: 0.0 })
            .collect();
        let t_clean = hpl_runtime_s(&params, &spec, &clean, seed);
        let t_noisy = hpl_runtime_s(&params, &spec, &noisy, seed);
        prop_assert!(t_noisy > t_clean, "{t_noisy} vs {t_clean}");
        // And the slowdown is in the right ballpark (≥ half of rho, the
        // max-over-nodes can only amplify).
        prop_assert!(t_noisy / t_clean - 1.0 > rho * 0.5);
    }

    /// Layout invariants hold for every class and size: HPL node count is
    /// exact, roles partition the allocation, the no-meta class never puts
    /// HPL on the MDS node.
    #[test]
    fn layouts_partition_the_allocation(class_idx in 0usize..5, kbits in 0u32..6) {
        let n = 1usize << kbits;
        let class = ExperimentClass::ALL[class_idx];
        let l = Layout::build(class, n);
        let (k, m) = class.k_m(n);
        prop_assert_eq!(l.allocation_size(), k + n + m);
        prop_assert_eq!(l.hpl_nodes().len(), n);
        prop_assert_eq!(l.ior_nodes().len(), m);
        if class == ExperimentClass::MatchingBeeondNoMeta {
            prop_assert!(!l.hpl_nodes().contains(&l.mds_node.unwrap()));
        }
        if class == ExperimentClass::MatchingBeeond {
            prop_assert!(l.hpl_nodes().contains(&l.mds_node.unwrap()));
        }
        // Noise profiles are produced for every HPL node.
        prop_assert_eq!(l.noise(&IorParams::default()).len(), n);
    }

    /// Derived HPL parameters are monotone in node count: N, steps and
    /// total FLOPs all grow.
    #[test]
    fn hpl_params_monotone(kbits in 0u32..7) {
        let spec = NodeSpec::thunderx2();
        let a = derive_params(&spec, 1 << kbits);
        let b = derive_params(&spec, 1 << (kbits + 1));
        prop_assert!(b.n > a.n);
        prop_assert!(b.steps() > a.steps());
        prop_assert!(b.flops() > a.flops());
        prop_assert_eq!(u64::from(b.p) * u64::from(b.q), 2 * u64::from(a.p) * u64::from(a.q));
    }
}
