//! Constructors for the four technology agents and their standard rack
//! shapes.
//!
//! Each helper builds a [`fabric_sim::FabricSim`] with the devices that
//! technology typically serves and wraps it in a [`SimAgent`] speaking the
//! matching protocol.

use crate::simagent::SimAgent;
use fabric_sim::topology::{presets, TopologyBuilder};
use fabric_sim::{FabricConfig, FabricSim};
use redfish_model::enums::Protocol;

/// Shape parameters shared by the flavor constructors.
#[derive(Debug, Clone)]
pub struct RackShape {
    /// Compute nodes attached to the fabric (initiators).
    pub compute_nodes: usize,
    /// Cores per compute node.
    pub cores_per_node: u32,
    /// Local DRAM per compute node (GiB).
    pub node_memory_gib: u64,
    /// Target devices (appliances/subsystems/GPUs) on the fabric.
    pub targets: usize,
    /// Spine switches (leaf count is derived).
    pub spines: usize,
    /// Leaf switches.
    pub leaves: usize,
}

impl Default for RackShape {
    fn default() -> Self {
        RackShape {
            compute_nodes: 4,
            cores_per_node: 56,
            node_memory_gib: 128,
            targets: 2,
            spines: 2,
            leaves: 2,
        }
    }
}

/// A CXL memory-pooling agent: compute nodes + memory appliances
/// (`capacity_mib` each) on a leaf–spine CXL pod.
pub fn cxl_agent(fabric_id: &str, shape: &RackShape, capacity_mib: u64, seed: u64) -> SimAgent {
    let mut devices = presets::compute_nodes(shape.compute_nodes, shape.cores_per_node, shape.node_memory_gib);
    devices.extend(presets::memory_appliances(shape.targets, capacity_mib));
    let topo = TopologyBuilder::new()
        .access_gbps(256.0) // CXL x8 Gen5-class
        .trunk_gbps(512.0)
        .leaf_spine(shape.spines, shape.leaves, devices);
    let sim = FabricSim::new(FabricConfig::new(fabric_id, "CXL", seed), topo);
    SimAgent::new(sim, Protocol::CXL)
}

/// An NVMe-oF storage agent: compute nodes + NVMe subsystems
/// (`capacity_bytes` each) on a leaf–spine storage network.
pub fn nvmeof_agent(fabric_id: &str, shape: &RackShape, capacity_bytes: u64, seed: u64) -> SimAgent {
    let mut devices = presets::compute_nodes(shape.compute_nodes, shape.cores_per_node, shape.node_memory_gib);
    devices.extend(presets::nvme_subsystems(shape.targets, capacity_bytes));
    let topo =
        TopologyBuilder::new()
            .access_gbps(100.0)
            .trunk_gbps(400.0)
            .leaf_spine(shape.spines, shape.leaves, devices);
    let sim = FabricSim::new(FabricConfig::new(fabric_id, "NVMeOverFabrics", seed), topo);
    SimAgent::new(sim, Protocol::NVMeOverFabrics)
}

/// An InfiniBand accelerator agent: compute nodes + pooled GPUs on a
/// leaf–spine EDR fabric.
pub fn infiniband_agent(fabric_id: &str, shape: &RackShape, gpu_model: &str, seed: u64) -> SimAgent {
    let mut devices = presets::compute_nodes(shape.compute_nodes, shape.cores_per_node, shape.node_memory_gib);
    devices.extend(presets::gpus(shape.targets, gpu_model, 40));
    let topo = TopologyBuilder::new()
        .access_gbps(100.0) // EDR
        .trunk_gbps(200.0)
        .leaf_spine(shape.spines, shape.leaves, devices);
    let sim = FabricSim::new(FabricConfig::new(fabric_id, "InfiniBand", seed), topo);
    SimAgent::new(sim, Protocol::InfiniBand)
}

/// A plain Ethernet agent on a ring (exercises multi-hop routing and
/// fail-over the hard way).
pub fn ethernet_agent(fabric_id: &str, shape: &RackShape, seed: u64) -> SimAgent {
    let mut devices = presets::compute_nodes(shape.compute_nodes, shape.cores_per_node, shape.node_memory_gib);
    devices.extend(presets::nvme_subsystems(shape.targets, 1 << 40));
    let ring = (shape.spines + shape.leaves).max(3);
    let topo = TopologyBuilder::new()
        .access_gbps(25.0)
        .trunk_gbps(100.0)
        .ring(ring, devices);
    let sim = FabricSim::new(FabricConfig::new(fabric_id, "Ethernet", seed), topo);
    SimAgent::new(sim, Protocol::Ethernet)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofmf_core::agent::Agent;

    #[test]
    fn flavors_report_their_technology() {
        let shape = RackShape::default();
        assert_eq!(cxl_agent("CXL0", &shape, 1 << 20, 1).info().technology, "CXL");
        assert_eq!(
            nvmeof_agent("NVME0", &shape, 1 << 40, 1).info().technology,
            "NVMeOverFabrics"
        );
        assert_eq!(
            infiniband_agent("IB0", &shape, "A100", 1).info().technology,
            "InfiniBand"
        );
        assert_eq!(ethernet_agent("ETH0", &shape, 1).info().technology, "Ethernet");
    }

    #[test]
    fn discovery_produces_device_resources() {
        let shape = RackShape::default();
        let a = cxl_agent("CXL0", &shape, 1 << 20, 1);
        let docs = a.discover();
        let ids: Vec<String> = docs.iter().map(|(id, _)| id.to_string()).collect();
        assert!(ids.iter().any(|i| i == "/redfish/v1/Fabrics/CXL0"));
        assert!(ids.iter().any(|i| i.contains("/Systems/cn00")));
        assert!(ids.iter().any(|i| i.contains("/Chassis/mem00/MemoryDomains/dom0")));
        assert!(ids.iter().any(|i| i.contains("/Endpoints/mem00-ep")));
        // Port docs live under the link's canonical (a-side) switch — the
        // leaf for both trunk and access links in a leaf-spine build.
        assert!(ids.iter().any(|i| i.contains("/Switches/leaf0/Ports/")));
    }

    #[test]
    fn nvmeof_discovery_publishes_storage_service() {
        let a = nvmeof_agent("NVME0", &RackShape::default(), 1 << 40, 1);
        let docs = a.discover();
        let ids: Vec<String> = docs.iter().map(|(id, _)| id.to_string()).collect();
        assert!(ids.iter().any(|i| i == "/redfish/v1/StorageServices/nvme00"));
        assert!(ids.iter().any(|i| i.contains("/StoragePools/pool0")));
    }

    #[test]
    fn infiniband_discovery_publishes_gpu_processors() {
        let a = infiniband_agent("IB0", &RackShape::default(), "A100", 1);
        let docs = a.discover();
        let ids: Vec<String> = docs.iter().map(|(id, _)| id.to_string()).collect();
        assert!(ids.iter().any(|i| i.contains("/Chassis/gpu00/Processors/gpu00")));
    }
}
