//! The generic fabric-sim-backed Agent: translation between the unified
//! Redfish tree and the simulated fabric manager.

use fabric_sim::device::DeviceKind;
use fabric_sim::failure::Fault;
use fabric_sim::ids::{ConnectionId, DeviceId, EndpointId, LinkId, SwitchId, ZoneId};
use fabric_sim::telemetry::Source;
use fabric_sim::{FabricEvent, FabricSim};
use ofmf_core::agent::{Agent, AgentEvent, AgentInfo, AgentMetric, AgentOp, AgentResponse};
use parking_lot::Mutex;
use redfish_model::enums::{EntityType, Protocol};
use redfish_model::odata::{Link, ODataId};
use redfish_model::path::top;
use redfish_model::resources::events::EventType;
use redfish_model::resources::fabric as rf;
use redfish_model::resources::memory::{MemoryChunk, MemoryDomain};
use redfish_model::resources::processor::Processor;
use redfish_model::resources::storage::{StoragePool, StorageService, Volume};
use redfish_model::resources::system::ComputerSystem;
use redfish_model::resources::{Chassis, Resource};
use redfish_model::{RedfishError, RedfishResult};
use serde_json::{json, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, Ordering};

/// Tracks what tree resources a live connection materialized, so teardown
/// removes exactly what setup created.
#[derive(Debug, Clone)]
struct ConnectionArtifacts {
    sim_id: ConnectionId,
    /// Extra resources created alongside the `Connection` doc (the chunk or
    /// volume), removed together with it.
    aux: Vec<ODataId>,
}

/// State shared behind the agent's lock.
struct Inner {
    sim: FabricSim,
    /// Tree endpoint id → sim endpoint id.
    endpoints: BTreeMap<ODataId, EndpointId>,
    /// Tree zone id → sim zone id.
    zones: BTreeMap<ODataId, ZoneId>,
    /// Tree connection id → artifacts.
    connections: BTreeMap<ODataId, ConnectionArtifacts>,
    /// Interned metric names: each distinct name is allocated once and every
    /// sample of it shares the `Arc<str>`.
    metric_names: BTreeMap<&'static str, std::sync::Arc<str>>,
}

/// A technology-specific agent backed by one [`FabricSim`].
///
/// Constructed via the [`crate::flavors`] helpers; generic over protocol and
/// over how target devices/connections materialize as Redfish resources.
pub struct SimAgent {
    info: AgentInfo,
    protocol: Protocol,
    inner: Mutex<Inner>,
    healthy: AtomicBool,
}

impl SimAgent {
    /// Wrap a simulator as an agent speaking `protocol`.
    pub fn new(sim: FabricSim, protocol: Protocol) -> Self {
        let info = AgentInfo {
            fabric_id: sim.config.name.clone(),
            technology: sim.config.technology.clone(),
            version: format!("sim-agent/{}", env!("CARGO_PKG_VERSION")),
        };
        SimAgent {
            info,
            protocol,
            inner: Mutex::new(Inner {
                sim,
                endpoints: BTreeMap::new(),
                zones: BTreeMap::new(),
                connections: BTreeMap::new(),
                metric_names: BTreeMap::new(),
            }),
            healthy: AtomicBool::new(true),
        }
    }

    /// Flip the simulated agent-process health (tests the OFMF liveness
    /// machinery; this is the agent process dying, not the fabric).
    pub fn set_process_health(&self, healthy: bool) {
        self.healthy.store(healthy, Ordering::Release);
    }

    /// The unified-tree id of this agent's fabric.
    pub fn fabric_root(&self) -> ODataId {
        ODataId::new(top::FABRICS).child(&self.info.fabric_id)
    }

    /// The tree endpoint id for a device name (agents name endpoints
    /// `{device}-ep`).
    pub fn endpoint_id(&self, device_name: &str) -> ODataId {
        self.fabric_root()
            .child("Endpoints")
            .child(&format!("{device_name}-ep"))
    }

    /// Inject a fault directly (test/ops path mirroring
    /// [`AgentOp::InjectFault`] but typed).
    pub fn inject_fault(&self, fault: Fault) -> (usize, usize) {
        self.inner.lock().sim.inject(fault)
    }

    /// Run a read against the underlying simulator (benches/tests inspect
    /// fabric-side state — e.g. aggregate effective bandwidth — that the
    /// Redfish tree does not surface).
    pub fn with_sim<R>(&self, f: impl FnOnce(&FabricSim) -> R) -> R {
        f(&self.inner.lock().sim)
    }

    /// Remaining capacity behind a device's endpoint.
    pub fn free_capacity_of(&self, device_name: &str) -> Option<u64> {
        let inner = self.inner.lock();
        let ep = inner.sim.endpoint_by_device_name(device_name)?;
        Some(inner.sim.free_capacity(ep))
    }

    // ------------------------------------------------------- doc generation

    fn device_docs(&self, fabric: &ODataId, ep: EndpointId, inner: &Inner) -> Vec<(ODataId, Value)> {
        let dev = inner.sim.device(ep);
        let name = dev.name.clone();
        let mut docs = Vec::new();
        let eps_col = fabric.child("Endpoints");
        match &dev.kind {
            DeviceKind::ComputeNode { cores, memory_gib } => {
                let systems = ODataId::new(top::SYSTEMS);
                let sys = ComputerSystem::physical(&systems, &name, *cores, *memory_gib);
                let sys_id = systems.child(&name);
                docs.push((sys_id.clone(), sys.to_value()));
                let ep_doc = rf::Endpoint::initiator(&eps_col, &format!("{name}-ep"), self.protocol, &sys_id);
                docs.push((ep_doc.odata_id().clone(), ep_doc.to_value()));
            }
            DeviceKind::Gpu { model, .. } => {
                let chassis_col = ODataId::new(top::CHASSIS);
                let ch = Chassis::new(
                    &chassis_col,
                    &name,
                    redfish_model::resources::chassis::ChassisType::Enclosure,
                    model,
                );
                let ch_id = chassis_col.child(&name);
                docs.push((ch_id.clone(), ch.to_value()));
                let procs = ch_id.child("Processors");
                docs.push((
                    procs.clone(),
                    json!({"@odata.type": "#ProcessorCollection.ProcessorCollection", "Name": "Processors", "Members": [], "Members@odata.count": 0}),
                ));
                let gpu = Processor::gpu(&procs, &name, model);
                docs.push((gpu.odata_id().clone(), gpu.to_value()));
                let ep_doc = rf::Endpoint::target(
                    &eps_col,
                    &format!("{name}-ep"),
                    self.protocol,
                    EntityType::Accelerator,
                    &procs.child(&name),
                );
                docs.push((ep_doc.odata_id().clone(), ep_doc.to_value()));
            }
            DeviceKind::MemoryAppliance { capacity_mib } => {
                let chassis_col = ODataId::new(top::CHASSIS);
                let ch = Chassis::new(
                    &chassis_col,
                    &name,
                    redfish_model::resources::chassis::ChassisType::Enclosure,
                    "CXL-MemoryPool",
                );
                let ch_id = chassis_col.child(&name);
                docs.push((ch_id.clone(), ch.to_value()));
                let domains = ch_id.child("MemoryDomains");
                docs.push((
                    domains.clone(),
                    json!({"@odata.type": "#MemoryDomainCollection.MemoryDomainCollection", "Name": "Memory Domains", "Members": [], "Members@odata.count": 0}),
                ));
                let dom = MemoryDomain::new(&domains, "dom0", *capacity_mib);
                docs.push((dom.odata_id().clone(), dom.to_value()));
                let chunks = domains.child("dom0").child("MemoryChunks");
                docs.push((
                    chunks,
                    json!({"@odata.type": "#MemoryChunksCollection.MemoryChunksCollection", "Name": "Memory Chunks", "Members": [], "Members@odata.count": 0}),
                ));
                let ep_doc = rf::Endpoint::target(
                    &eps_col,
                    &format!("{name}-ep"),
                    self.protocol,
                    EntityType::MemoryChunk,
                    &domains.child("dom0"),
                );
                docs.push((ep_doc.odata_id().clone(), ep_doc.to_value()));
            }
            DeviceKind::NvmeSubsystem { capacity_bytes } => {
                let services = ODataId::new(top::STORAGE_SERVICES);
                let svc = StorageService::new(&services, &name);
                let svc_id = services.child(&name);
                docs.push((svc_id.clone(), svc.to_value()));
                let pools = svc_id.child("StoragePools");
                docs.push((
                    pools.clone(),
                    json!({"@odata.type": "#StoragePoolCollection.StoragePoolCollection", "Name": "Storage Pools", "Members": [], "Members@odata.count": 0}),
                ));
                let pool = StoragePool::new(&pools, "pool0", *capacity_bytes);
                docs.push((pool.odata_id().clone(), pool.to_value()));
                let vols = svc_id.child("Volumes");
                docs.push((
                    vols,
                    json!({"@odata.type": "#VolumeCollection.VolumeCollection", "Name": "Volumes", "Members": [], "Members@odata.count": 0}),
                ));
                let drives = svc_id.child("Drives");
                docs.push((
                    drives.clone(),
                    json!({"@odata.type": "#DriveCollection.DriveCollection", "Name": "Drives", "Members": [], "Members@odata.count": 0}),
                ));
                let drive =
                    redfish_model::resources::storage::Drive::ssd(&drives, &format!("{name}-d0"), *capacity_bytes);
                docs.push((drive.odata_id().clone(), drive.to_value()));
                let ep_doc = rf::Endpoint::target(
                    &eps_col,
                    &format!("{name}-ep"),
                    self.protocol,
                    EntityType::StorageSubsystem,
                    &pools.child("pool0"),
                );
                docs.push((ep_doc.odata_id().clone(), ep_doc.to_value()));
            }
        }
        docs
    }

    /// Tree ids of switch / link / device resources (used in events and
    /// telemetry translation).
    fn switch_doc_id(&self, s: SwitchId, inner: &Inner) -> ODataId {
        // ofmf-lint: allow(no-panic-path, "SwitchId was minted by this topology; ids are dense indices")
        let name = &inner.sim.topology().switches[s.index()].name;
        self.fabric_root().child("Switches").child(name)
    }

    fn port_doc_id(&self, l: LinkId, inner: &Inner) -> ODataId {
        // A link's port doc lives under the first switch it touches.
        let topo = inner.sim.topology();
        // ofmf-lint: allow(no-panic-path, "LinkId was minted by this topology; ids are dense indices")
        let edge = &topo.links[l.index()];
        let sw = match (edge.a, edge.b) {
            (fabric_sim::topology::Attach::Switch(s), _) => s,
            (_, fabric_sim::topology::Attach::Switch(s)) => s,
            _ => SwitchId(0),
        };
        self.switch_doc_id(sw, inner).child("Ports").child(&format!("p{}", l.0))
    }

    fn device_doc_id(&self, d: DeviceId, inner: &Inner) -> ODataId {
        // ofmf-lint: allow(no-panic-path, "DeviceId was minted by this topology; ids are dense indices")
        let dev = &inner.sim.topology().devices[d.index()];
        match dev.kind {
            DeviceKind::ComputeNode { .. } => ODataId::new(top::SYSTEMS).child(&dev.name),
            DeviceKind::Gpu { .. } | DeviceKind::MemoryAppliance { .. } => ODataId::new(top::CHASSIS).child(&dev.name),
            DeviceKind::NvmeSubsystem { .. } => ODataId::new(top::STORAGE_SERVICES).child(&dev.name),
        }
    }

    /// Build the connection-specific payload resource (chunk / volume) and
    /// return `(aux docs, resource link for the Connection doc)`.
    fn materialize_payload(
        &self,
        inner: &Inner,
        target: EndpointId,
        handle: u64,
        size: u64,
    ) -> (Vec<(ODataId, Value)>, Option<ODataId>) {
        let dev = inner.sim.device(target);
        match &dev.kind {
            DeviceKind::MemoryAppliance { .. } => {
                let chunks = ODataId::new(top::CHASSIS)
                    .child(&dev.name)
                    .child("MemoryDomains")
                    .child("dom0")
                    .child("MemoryChunks");
                let chunk = MemoryChunk::volatile(&chunks, &format!("chunk{handle}"), size);
                let id = chunk.odata_id().clone();
                (vec![(id.clone(), chunk.to_value())], Some(id))
            }
            DeviceKind::NvmeSubsystem { .. } => {
                let svc = ODataId::new(top::STORAGE_SERVICES).child(&dev.name);
                let vols = svc.child("Volumes");
                let pool = svc.child("StoragePools").child("pool0");
                let vol = Volume::new(&vols, &format!("vol{handle}"), size, &pool);
                let id = vol.odata_id().clone();
                (vec![(id.clone(), vol.to_value())], Some(id))
            }
            DeviceKind::Gpu { .. } => {
                let gpu = ODataId::new(top::CHASSIS)
                    .child(&dev.name)
                    .child("Processors")
                    .child(&dev.name);
                (Vec::new(), Some(gpu))
            }
            DeviceKind::ComputeNode { .. } => (Vec::new(), None),
        }
    }

    fn lookup_endpoint(inner: &Inner, id: &ODataId) -> RedfishResult<EndpointId> {
        inner
            .endpoints
            .get(id)
            .copied()
            .ok_or_else(|| RedfishError::NotFound(id.clone()))
    }
}

impl Agent for SimAgent {
    fn info(&self) -> AgentInfo {
        self.info.clone()
    }

    fn discover(&self) -> Vec<(ODataId, Value)> {
        let _span = ofmf_obs::Trace::begin(&agent_metrics().discover_latency);
        let mut inner = self.inner.lock();
        let fabric_root = self.fabric_root();
        let mut docs: Vec<(ODataId, Value)> = Vec::new();

        // Fabric shell + sub-collections.
        let fabric = rf::Fabric::new(&ODataId::new(top::FABRICS), &self.info.fabric_id, self.protocol);
        docs.push((fabric_root.clone(), fabric.to_value()));
        for (sub, ty) in [
            ("Switches", "#SwitchCollection.SwitchCollection"),
            ("Endpoints", "#EndpointCollection.EndpointCollection"),
            ("Zones", "#ZoneCollection.ZoneCollection"),
            ("Connections", "#ConnectionCollection.ConnectionCollection"),
            ("AddressPools", "#AddressPoolCollection.AddressPoolCollection"),
        ] {
            docs.push((
                fabric_root.child(sub),
                json!({"@odata.type": ty, "Name": sub, "Members": [], "Members@odata.count": 0}),
            ));
        }
        let pools = fabric_root.child("AddressPools");
        let pool = rf::AddressPool::new(&pools, "pool0", 0x1000, 65536);
        docs.push((pool.odata_id().clone(), pool.to_value()));

        // Switches and their ports.
        let topo = inner.sim.topology();
        let switches_col = fabric_root.child("Switches");
        for (i, sw) in topo.switches.iter().enumerate() {
            let doc = rf::Switch::new(&switches_col, &sw.name, self.protocol, sw.radix);
            let sw_id = switches_col.child(&sw.name);
            docs.push((sw_id.clone(), doc.to_value()));
            docs.push((
                sw_id.child("Ports"),
                json!({"@odata.type": "#PortCollection.PortCollection", "Name": "Ports", "Members": [], "Members@odata.count": 0}),
            ));
            for (lid, edge) in topo.links.iter().enumerate().filter(|(_, e)| {
                e.a == fabric_sim::topology::Attach::Switch(SwitchId(i as u32))
                    || e.b == fabric_sim::topology::Attach::Switch(SwitchId(i as u32))
            }) {
                // Only the canonical owner (see `port_doc_id`) publishes the
                // port so each link has exactly one port doc.
                let canonical = match (edge.a, edge.b) {
                    (fabric_sim::topology::Attach::Switch(s), _) => s,
                    (_, fabric_sim::topology::Attach::Switch(s)) => s,
                    _ => continue,
                };
                if canonical != SwitchId(i as u32) {
                    continue;
                }
                let port = rf::Port::new(
                    &sw_id.child("Ports"),
                    &format!("p{lid}"),
                    self.protocol,
                    edge.bandwidth_gbps,
                );
                docs.push((port.odata_id().clone(), port.to_value()));
            }
        }

        // Endpoints and device resources; build the translation map.
        let ep_count = topo.endpoints.len() as u32;
        let mut endpoint_map = BTreeMap::new();
        for raw in 0..ep_count {
            let ep = EndpointId(raw);
            let dev_name = inner.sim.device(ep).name.clone();
            let tree_id = self.endpoint_id(&dev_name);
            endpoint_map.insert(tree_id, ep);
        }
        for (_tree_id, ep) in endpoint_map.iter() {
            docs.extend(self.device_docs(&fabric_root, *ep, &inner));
        }
        inner.endpoints = endpoint_map;
        docs
    }

    fn apply(&self, op: &AgentOp) -> RedfishResult<AgentResponse> {
        let mut ospan = ofmf_obs::child_span("ofmf.agents.op");
        ospan.annotate("fabric", self.info.fabric_id.as_str());
        ospan.annotate("op", op.kind());
        let mut inner = self.inner.lock();
        let fabric_root = self.fabric_root();
        match op {
            AgentOp::CreateZone { zone_id, endpoints } => {
                let mut members = BTreeSet::new();
                for e in endpoints {
                    members.insert(Self::lookup_endpoint(&inner, e)?);
                }
                let zid = inner
                    .sim
                    .create_zone(zone_id, members)
                    .map_err(|e| RedfishError::BadRequest(e.to_string()))?;
                let zones_col = fabric_root.child("Zones");
                let tree_id = zones_col.child(zone_id);
                inner.zones.insert(tree_id.clone(), zid);
                let doc = rf::Zone::of_endpoints(&zones_col, zone_id, endpoints.iter().map(Link::from).collect());
                Ok(AgentResponse {
                    upserts: vec![(tree_id.clone(), doc.to_value())],
                    removals: vec![],
                    primary: Some(tree_id),
                    payload: None,
                })
            }
            AgentOp::DeleteZone { zone } => {
                let zid = *inner
                    .zones
                    .get(zone)
                    .ok_or_else(|| RedfishError::NotFound(zone.clone()))?;
                inner
                    .sim
                    .delete_zone(zid)
                    .map_err(|e| RedfishError::Conflict(e.to_string()))?;
                inner.zones.remove(zone);
                Ok(AgentResponse {
                    upserts: vec![],
                    removals: vec![zone.clone()],
                    primary: None,
                    payload: None,
                })
            }
            AgentOp::Connect {
                connection_id,
                zone,
                initiator,
                target,
                size,
                qos_gbps,
            } => {
                let zid = *inner
                    .zones
                    .get(zone)
                    .ok_or_else(|| RedfishError::NotFound(zone.clone()))?;
                let iep = Self::lookup_endpoint(&inner, initiator)?;
                let tep = Self::lookup_endpoint(&inner, target)?;
                let cid = inner
                    .sim
                    .connect_qos(connection_id, zid, iep, tep, *size, *qos_gbps)
                    .map_err(|e| match e {
                        fabric_sim::fabric::FabricError::Device(fabric_sim::device::DeviceError::Insufficient {
                            requested,
                            available,
                        }) => {
                            RedfishError::InsufficientResources(format!("requested {requested}, available {available}"))
                        }
                        other => RedfishError::Conflict(other.to_string()),
                    })?;
                let handle = inner
                    .sim
                    .connection(cid)
                    .map_err(|e| RedfishError::Conflict(format!("connection {cid:?} vanished after create: {e}")))?
                    .allocation;
                let (mut aux_docs, payload) = self.materialize_payload(&inner, tep, handle, *size);
                let cons_col = fabric_root.child("Connections");
                let tree_id = cons_col.child(connection_id);
                let conn_value = match payload.as_ref() {
                    Some(p) if aux_docs.iter().any(|(id, _)| id == p) && p.as_str().contains("MemoryChunks") => {
                        rf::Connection::memory(&cons_col, connection_id, initiator, target, p).to_value()
                    }
                    Some(p) if p.as_str().contains("/Volumes/") => {
                        rf::Connection::storage(&cons_col, connection_id, initiator, target, p).to_value()
                    }
                    Some(p) => {
                        // Accelerator / generic grant: the granted resource
                        // is referenced via Oem so clients (the composer)
                        // can still resolve it.
                        let mut c = rf::Connection::memory(&cons_col, connection_id, initiator, target, p);
                        c.connection_type = "Accelerator".to_string();
                        c.memory_chunk_info.clear();
                        let mut v = c.to_value();
                        v["Oem"] = json!({"OFMF": {"Resource": {"@odata.id": p.as_str()}}});
                        v
                    }
                    None => rf::Connection::memory(&cons_col, connection_id, initiator, target, target).to_value(),
                };
                let mut upserts = Vec::with_capacity(aux_docs.len() + 1);
                upserts.append(&mut aux_docs);
                upserts.push((tree_id.clone(), conn_value));
                inner.connections.insert(
                    tree_id.clone(),
                    ConnectionArtifacts {
                        sim_id: cid,
                        aux: upserts
                            .iter()
                            .map(|(id, _)| id.clone())
                            .filter(|id| id != &tree_id)
                            .collect(),
                    },
                );
                Ok(AgentResponse {
                    upserts,
                    removals: vec![],
                    primary: Some(tree_id),
                    payload: None,
                })
            }
            AgentOp::Disconnect { connection } => {
                let artifacts = inner
                    .connections
                    .remove(connection)
                    .ok_or_else(|| RedfishError::NotFound(connection.clone()))?;
                inner
                    .sim
                    .disconnect(artifacts.sim_id)
                    .map_err(|e| RedfishError::Conflict(e.to_string()))?;
                let mut removals = artifacts.aux;
                removals.push(connection.clone());
                Ok(AgentResponse {
                    upserts: vec![],
                    removals,
                    primary: None,
                    payload: None,
                })
            }
            AgentOp::InjectFault { description } => {
                let fault = parse_fault(description)
                    .ok_or_else(|| RedfishError::BadRequest(format!("unparseable fault '{description}'")))?;
                inner.sim.inject(fault);
                Ok(AgentResponse::default())
            }
            AgentOp::ProbeRoute { initiator, target } => {
                let iep = Self::lookup_endpoint(&inner, initiator)?;
                let tep = Self::lookup_endpoint(&inner, target)?;
                let probe = inner
                    .sim
                    .probe_route_detailed(iep, tep)
                    .ok_or_else(|| RedfishError::Conflict(format!("no healthy route {initiator} → {target}")))?;
                Ok(AgentResponse {
                    upserts: vec![],
                    removals: vec![],
                    primary: None,
                    payload: Some(json!({
                        "Hops": probe.path.hops(),
                        "LatencyNs": probe.path.latency_ns,
                        "BandwidthGbps": probe.path.bandwidth_gbps,
                        "ResidualGbps": finite_or_max(probe.min_residual_gbps),
                        "BlastRadius": probe.blast_radius,
                        "TopologyGeneration": inner.sim.generation(),
                    })),
                })
            }
            AgentOp::ProbeRoutes { pairs } => {
                ospan.annotate("pairs", pairs.len().to_string());
                let generation = inner.sim.generation();
                let results: Vec<Value> = pairs
                    .iter()
                    .map(|(initiator, target)| {
                        let resolved = Self::lookup_endpoint(&inner, initiator)
                            .and_then(|i| Self::lookup_endpoint(&inner, target).map(|t| (i, t)));
                        let (iep, tep) = match resolved {
                            Ok(pair) => pair,
                            Err(e) => return json!({"Error": e.to_string()}),
                        };
                        match inner.sim.probe_route_detailed(iep, tep) {
                            Some(probe) => json!({
                                "Hops": probe.path.hops(),
                                "LatencyNs": probe.path.latency_ns,
                                "BandwidthGbps": probe.path.bandwidth_gbps,
                                "ResidualGbps": finite_or_max(probe.min_residual_gbps),
                                "BlastRadius": probe.blast_radius,
                            }),
                            None => json!({"Error": format!("no healthy route {initiator} → {target}")}),
                        }
                    })
                    .collect();
                Ok(AgentResponse {
                    upserts: vec![],
                    removals: vec![],
                    primary: None,
                    payload: Some(json!({
                        "TopologyGeneration": generation,
                        "Results": results,
                    })),
                })
            }
        }
    }

    fn drain_events(&self) -> Vec<AgentEvent> {
        let mut inner = self.inner.lock();
        let raw = inner.sim.drain_events();
        let mut out = Vec::with_capacity(raw.len());
        for ev in raw {
            let translated = match ev {
                FabricEvent::LinkHealth { link, healthy } => {
                    let origin = self.port_doc_id(link, &inner);
                    let status = if healthy {
                        json!({"Status": {"State": "Enabled", "Health": "OK"}, "LinkState": "Enabled"})
                    } else {
                        json!({"Status": {"State": "Enabled", "Health": "Critical"}, "LinkState": "Disabled"})
                    };
                    AgentEvent {
                        event_type: if healthy {
                            EventType::StatusChange
                        } else {
                            EventType::Alert
                        },
                        origin: origin.clone(),
                        message: format!("link {} {}", link, if healthy { "up" } else { "down" }),
                        severity: if healthy { "OK" } else { "Critical" }.to_string(),
                        patches: vec![(origin, status)],
                        removals: vec![],
                    }
                }
                FabricEvent::SwitchHealth { switch, healthy } => {
                    let origin = self.switch_doc_id(switch, &inner);
                    let status = if healthy {
                        json!({"Status": {"State": "Enabled", "Health": "OK"}})
                    } else {
                        json!({"Status": {"State": "UnavailableOffline", "Health": "Critical"}})
                    };
                    AgentEvent {
                        event_type: if healthy {
                            EventType::StatusChange
                        } else {
                            EventType::Alert
                        },
                        origin: origin.clone(),
                        message: format!("switch {} {}", switch, if healthy { "recovered" } else { "failed" }),
                        severity: if healthy { "OK" } else { "Critical" }.to_string(),
                        patches: vec![(origin, status)],
                        removals: vec![],
                    }
                }
                FabricEvent::DeviceHealth { device, healthy } => {
                    let origin = self.device_doc_id(device, &inner);
                    let status = if healthy {
                        json!({"Status": {"State": "Enabled", "Health": "OK"}})
                    } else {
                        json!({"Status": {"State": "UnavailableOffline", "Health": "Critical"}})
                    };
                    AgentEvent {
                        event_type: if healthy {
                            EventType::StatusChange
                        } else {
                            EventType::Alert
                        },
                        origin: origin.clone(),
                        message: format!("device {} {}", device, if healthy { "recovered" } else { "failed" }),
                        severity: if healthy { "OK" } else { "Critical" }.to_string(),
                        patches: vec![(origin, status)],
                        removals: vec![],
                    }
                }
                FabricEvent::ConnectionFailedOver { connection, new_hops } => {
                    let tree_id = inner
                        .connections
                        .iter()
                        .find(|(_, a)| a.sim_id == connection)
                        .map(|(k, _)| k.clone())
                        .unwrap_or_else(|| self.fabric_root().child("Connections"));
                    AgentEvent {
                        event_type: EventType::StatusChange,
                        origin: tree_id.clone(),
                        message: format!("connection re-routed after fault; new path has {new_hops} hops"),
                        severity: "Warning".to_string(),
                        patches: vec![(tree_id, json!({"Oem": {"OFMF": {"FailoverHops": new_hops}}}))],
                        removals: vec![],
                    }
                }
                FabricEvent::ConnectionLost { connection } => {
                    let found = inner
                        .connections
                        .iter()
                        .find(|(_, a)| a.sim_id == connection)
                        .map(|(k, a)| (k.clone(), a.clone()));
                    match found {
                        Some((tree_id, artifacts)) => {
                            inner.connections.remove(&tree_id);
                            let mut removals = artifacts.aux;
                            removals.push(tree_id.clone());
                            AgentEvent {
                                event_type: EventType::Alert,
                                origin: tree_id,
                                message: "connection lost: no healthy path remains".to_string(),
                                severity: "Critical".to_string(),
                                patches: vec![],
                                removals,
                            }
                        }
                        None => AgentEvent {
                            event_type: EventType::Alert,
                            origin: self.fabric_root(),
                            message: format!("untracked connection {connection} lost"),
                            severity: "Warning".to_string(),
                            patches: vec![],
                            removals: vec![],
                        },
                    }
                }
                FabricEvent::ZoneCreated { .. } | FabricEvent::Connected { .. } | FabricEvent::Disconnected { .. } => {
                    continue
                } // already announced via apply()
            };
            out.push(translated);
        }
        out
    }

    fn sample_telemetry(&self) -> Vec<AgentMetric> {
        let mut inner = self.inner.lock();
        let samples = inner.sim.sample_telemetry();
        samples
            .into_iter()
            .map(|s| {
                let origin = match s.source {
                    Source::Switch(sw) => self.switch_doc_id(sw, &inner),
                    Source::Link(l) => self.port_doc_id(l, &inner),
                    Source::Device(d) => self.device_doc_id(d, &inner),
                };
                let metric_id = std::sync::Arc::clone(
                    inner
                        .metric_names
                        .entry(s.metric)
                        .or_insert_with(|| std::sync::Arc::from(s.metric)),
                );
                AgentMetric {
                    metric_id,
                    origin,
                    value: s.value,
                }
            })
            .collect()
    }

    fn heartbeat(&self) -> bool {
        let m = agent_metrics();
        let _span = ofmf_obs::Trace::begin(&m.heartbeat_rtt);
        let alive = self.healthy.load(Ordering::Acquire);
        if !alive {
            m.heartbeat_missed.inc();
        }
        alive
    }
}

struct AgentMetrics {
    /// `ofmf.agents.heartbeat.rtt_ns` — round-trip time of a heartbeat.
    heartbeat_rtt: std::sync::Arc<ofmf_obs::Histogram>,
    /// `ofmf.agents.heartbeat.missed` — heartbeats answered "down".
    heartbeat_missed: std::sync::Arc<ofmf_obs::Counter>,
    /// `ofmf.agents.discover.latency_ns` — full inventory walk duration.
    discover_latency: std::sync::Arc<ofmf_obs::Histogram>,
}

fn agent_metrics() -> &'static AgentMetrics {
    static METRICS: std::sync::OnceLock<AgentMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| AgentMetrics {
        heartbeat_rtt: ofmf_obs::histogram("ofmf.agents.heartbeat.rtt_ns"),
        heartbeat_missed: ofmf_obs::counter("ofmf.agents.heartbeat.missed"),
        discover_latency: ofmf_obs::histogram("ofmf.agents.discover.latency_ns"),
    })
}

/// Clamp a residual-bandwidth value to something JSON can carry: zero-hop
/// (same-endpoint) routes report `f64::INFINITY`, which serde_json would
/// encode as `null` and clients would misread as "no data".
fn finite_or_max(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        f64::MAX
    }
}

/// Parse `"link:3 down"`, `"switch:0 up"`, `"device:2 down"`.
fn parse_fault(s: &str) -> Option<Fault> {
    let mut parts = s.split_whitespace();
    let target = parts.next()?;
    let action = parts.next()?;
    let up = match action {
        "up" => true,
        "down" => false,
        _ => return None,
    };
    let (kind, idx) = target.split_once(':')?;
    let n: u32 = idx.parse().ok()?;
    Some(match (kind, up) {
        ("link", false) => Fault::LinkDown(LinkId(n)),
        ("link", true) => Fault::LinkUp(LinkId(n)),
        ("switch", false) => Fault::SwitchDown(SwitchId(n)),
        ("switch", true) => Fault::SwitchUp(SwitchId(n)),
        ("device", false) => Fault::DeviceDown(DeviceId(n)),
        ("device", true) => Fault::DeviceUp(DeviceId(n)),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_fault_grammar() {
        assert_eq!(parse_fault("link:3 down"), Some(Fault::LinkDown(LinkId(3))));
        assert_eq!(parse_fault("switch:0 up"), Some(Fault::SwitchUp(SwitchId(0))));
        assert_eq!(parse_fault("device:2 down"), Some(Fault::DeviceDown(DeviceId(2))));
        assert_eq!(parse_fault("gremlin:1 down"), None);
        assert_eq!(parse_fault("link:x down"), None);
        assert_eq!(parse_fault("link:1 sideways"), None);
        assert_eq!(parse_fault(""), None);
    }
}
