//! # ofmf-agents
//!
//! Technology-specific OFMF Agents over the [`fabric_sim`] substrate.
//!
//! "The Agents … translate between the OFMF and network fabric-specific
//! providers. These Agents provide access to network fabrics and trigger
//! them to make the actual changes to their resources in their own
//! technology-specific manner."
//!
//! All four agents share one translation engine ([`simagent::SimAgent`]):
//! they differ in protocol, in which Redfish device resources they publish
//! for targets, and in what a `Connect` materializes:
//!
//! | Agent | Protocol | Target devices | Connect materializes |
//! |---|---|---|---|
//! | [`flavors::cxl_agent`] | CXL | memory appliances → `Chassis` + `MemoryDomain` | a `MemoryChunks` carve + `Connection` |
//! | [`flavors::nvmeof_agent`] | NVMe-oF | subsystems → `StorageService` + `StoragePool` | a `Volume` (namespace) + `Connection` |
//! | [`flavors::infiniband_agent`] | InfiniBand | GPUs → `Chassis` + `Processor` | a whole-GPU grant `Connection` |
//! | [`flavors::ethernet_agent`] | Ethernet | any | a bandwidth-reservation `Connection` |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod flavors;
pub mod simagent;

pub use chaos::{ChaosAgent, ChaosConfig};
pub use flavors::{cxl_agent, ethernet_agent, infiniband_agent, nvmeof_agent};
pub use simagent::SimAgent;
