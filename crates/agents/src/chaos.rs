//! [`ChaosAgent`]: a fault-injecting decorator over any [`Agent`].
//!
//! Wraps a real agent and perturbs the OFMF↔Agent boundary with seeded,
//! reproducible misbehavior — dropped ops, added latency, duplicated
//! (at-least-once) delivery, a scheduled crash mid-op, and heartbeat
//! flapping. The chaos integration suite and the `failover` bench use it to
//! exercise the supervisor layer (breakers, retries, degraded mode, journal
//! replay) without any real flaky hardware.
//!
//! All randomness comes from one `StdRng` seeded by [`ChaosConfig::seed`]:
//! two runs with the same seed and the same call sequence misbehave
//! identically.

use ofmf_core::agent::{Agent, AgentEvent, AgentInfo, AgentMetric, AgentOp, AgentResponse};
use ofmf_core::clock::Clock;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use redfish_model::odata::ODataId;
use redfish_model::{RedfishError, RedfishResult};
use serde_json::Value;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Fault schedule for a [`ChaosAgent`]. All probabilities are in `[0, 1]`.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Seed for the fault rng (reproducible runs).
    pub seed: u64,
    /// Probability an op is dropped (fails with `AgentUnavailable` without
    /// reaching the inner agent).
    pub drop_rate: f64,
    /// Probability a heartbeat is missed while the agent is otherwise up.
    pub flap_rate: f64,
    /// Probability an op is delivered twice (at-least-once duplication; the
    /// second response wins).
    pub duplicate_rate: f64,
    /// Service-clock latency added to every delivered op.
    pub delay_ms: u64,
    /// Crash (panic mid-op, then stay down until [`ChaosAgent::revive`])
    /// after this many delivered ops.
    pub crash_after_ops: Option<u64>,
}

impl ChaosConfig {
    /// A quiet schedule: no faults, only the seed set.
    pub fn quiet(seed: u64) -> Self {
        ChaosConfig {
            seed,
            drop_rate: 0.0,
            flap_rate: 0.0,
            duplicate_rate: 0.0,
            delay_ms: 0,
            crash_after_ops: None,
        }
    }

    /// Set the op drop probability.
    pub fn with_drop_rate(mut self, p: f64) -> Self {
        self.drop_rate = p;
        self
    }

    /// Set the heartbeat flap probability.
    pub fn with_flap_rate(mut self, p: f64) -> Self {
        self.flap_rate = p;
        self
    }

    /// Set the op duplication probability.
    pub fn with_duplicate_rate(mut self, p: f64) -> Self {
        self.duplicate_rate = p;
        self
    }

    /// Add fixed service-clock latency to every delivered op.
    pub fn with_delay_ms(mut self, ms: u64) -> Self {
        self.delay_ms = ms;
        self
    }

    /// Schedule a crash after `n` delivered ops.
    pub fn with_crash_after_ops(mut self, n: u64) -> Self {
        self.crash_after_ops = Some(n);
        self
    }
}

/// A fault-injecting wrapper around any [`Agent`].
pub struct ChaosAgent {
    inner: Arc<dyn Agent>,
    cfg: ChaosConfig,
    rng: Mutex<StdRng>,
    /// Ops delivered to the inner agent so far (drives the crash schedule).
    delivered: AtomicU64,
    /// Crashed or manually taken down: heartbeats fail and ops are refused
    /// until revived.
    down: AtomicBool,
    /// Set by [`ChaosAgent::revive`]: the crash schedule fires at most once
    /// per arming, so a revived agent does not immediately re-crash.
    crash_disarmed: AtomicBool,
    /// Optional service clock; when set, `delay_ms` advances it so manual
    /// clocks observe the injected latency.
    clock: Option<Arc<Clock>>,
    /// Counters (test observation).
    dropped: AtomicU64,
    duplicated: AtomicU64,
    flapped: AtomicU64,
}

impl ChaosAgent {
    /// Wrap `inner` with the given fault schedule.
    pub fn new(inner: Arc<dyn Agent>, cfg: ChaosConfig) -> Self {
        ChaosAgent {
            inner,
            cfg,
            rng: Mutex::new(StdRng::seed_from_u64(cfg.seed)),
            delivered: AtomicU64::new(0),
            down: AtomicBool::new(false),
            crash_disarmed: AtomicBool::new(false),
            clock: None,
            dropped: AtomicU64::new(0),
            duplicated: AtomicU64::new(0),
            flapped: AtomicU64::new(0),
        }
    }

    /// Attach a service clock so injected delays advance it (keeps manual
    /// clocks honest about the latency).
    pub fn with_clock(mut self, clock: Arc<Clock>) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Take the agent down (heartbeats fail, ops refused) without a panic.
    pub fn set_down(&self, down: bool) {
        self.down.store(down, Ordering::Release);
    }

    /// Whether the agent is currently down (crashed or forced).
    pub fn is_down(&self) -> bool {
        self.down.load(Ordering::Acquire)
    }

    /// Bring a crashed/downed agent back and permanently disarm the crash
    /// schedule, so the revived agent serves cleanly.
    pub fn revive(&self) {
        self.crash_disarmed.store(true, Ordering::Release);
        self.down.store(false, Ordering::Release);
    }

    /// Ops dropped so far.
    pub fn dropped_ops(&self) -> u64 {
        self.dropped.load(Ordering::Acquire)
    }

    /// Ops delivered twice so far.
    pub fn duplicated_ops(&self) -> u64 {
        self.duplicated.load(Ordering::Acquire)
    }

    /// Heartbeats flapped so far.
    pub fn flapped_heartbeats(&self) -> u64 {
        self.flapped.load(Ordering::Acquire)
    }

    fn draw(&self, p: f64) -> bool {
        p > 0.0 && self.rng.lock().gen::<f64>() < p
    }
}

impl Agent for ChaosAgent {
    fn info(&self) -> AgentInfo {
        self.inner.info()
    }

    fn discover(&self) -> Vec<(ODataId, Value)> {
        self.inner.discover()
    }

    fn apply(&self, op: &AgentOp) -> RedfishResult<AgentResponse> {
        if self.is_down() {
            return Err(RedfishError::AgentUnavailable("chaos: agent is down".into()));
        }
        if self.draw(self.cfg.drop_rate) {
            self.dropped.fetch_add(1, Ordering::AcqRel);
            return Err(RedfishError::AgentUnavailable("chaos: op dropped".into()));
        }
        // Crash BEFORE forwarding: the op never reaches the fabric
        // (at-most-once), which is the nastier case for the control plane.
        let n = self.delivered.fetch_add(1, Ordering::AcqRel) + 1;
        if !self.crash_disarmed.load(Ordering::Acquire) && self.cfg.crash_after_ops.is_some_and(|limit| n > limit) {
            self.down.store(true, Ordering::Release);
            // ofmf-lint: allow(no-panic-path, "deliberate fault injection: the chaos agent crashes on purpose")
            panic!("chaos: scheduled crash mid-op after {} delivered ops", n - 1);
        }
        if self.cfg.delay_ms > 0 {
            if let Some(clock) = &self.clock {
                clock.wait_ms(self.cfg.delay_ms);
            }
        }
        let resp = self.inner.apply(op)?;
        if self.draw(self.cfg.duplicate_rate) {
            self.duplicated.fetch_add(1, Ordering::AcqRel);
            // At-least-once delivery: the duplicate's outcome wins, matching
            // a retransmit racing the original on a real wire.
            return self.inner.apply(op);
        }
        Ok(resp)
    }

    fn drain_events(&self) -> Vec<AgentEvent> {
        if self.is_down() {
            return Vec::new();
        }
        self.inner.drain_events()
    }

    fn sample_telemetry(&self) -> Vec<AgentMetric> {
        if self.is_down() {
            return Vec::new();
        }
        self.inner.sample_telemetry()
    }

    fn heartbeat(&self) -> bool {
        if self.is_down() {
            return false;
        }
        if self.draw(self.cfg.flap_rate) {
            self.flapped.fetch_add(1, Ordering::AcqRel);
            return false;
        }
        self.inner.heartbeat()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofmf_core::agent::NullAgent;

    fn null() -> Arc<dyn Agent> {
        Arc::new(NullAgent::new("C0", vec![]))
    }

    fn del_op() -> AgentOp {
        AgentOp::DeleteZone {
            zone: ODataId::new("/z"),
        }
    }

    #[test]
    fn quiet_config_is_transparent() {
        let a = ChaosAgent::new(null(), ChaosConfig::quiet(1));
        assert!(a.apply(&del_op()).is_ok());
        assert!(a.heartbeat());
        assert_eq!(a.dropped_ops(), 0);
    }

    #[test]
    fn drop_rate_one_drops_everything() {
        let a = ChaosAgent::new(null(), ChaosConfig::quiet(1).with_drop_rate(1.0));
        assert!(matches!(a.apply(&del_op()), Err(RedfishError::AgentUnavailable(_))));
        assert_eq!(a.dropped_ops(), 1);
    }

    #[test]
    fn crash_schedule_panics_then_stays_down_until_revived() {
        let a = Arc::new(ChaosAgent::new(null(), ChaosConfig::quiet(1).with_crash_after_ops(2)));
        assert!(a.apply(&del_op()).is_ok());
        assert!(a.apply(&del_op()).is_ok());
        let a2 = Arc::clone(&a);
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let _ = a2.apply(&del_op());
        }))
        .is_err();
        assert!(panicked);
        assert!(a.is_down());
        assert!(!a.heartbeat());
        assert!(matches!(a.apply(&del_op()), Err(RedfishError::AgentUnavailable(_))));
        a.revive();
        assert!(a.heartbeat());
        assert!(a.apply(&del_op()).is_ok());
    }

    #[test]
    fn duplicate_rate_one_applies_twice() {
        let inner = Arc::new(NullAgent::new("C0", vec![]));
        let a = ChaosAgent::new(
            Arc::clone(&inner) as Arc<dyn Agent>,
            ChaosConfig::quiet(1).with_duplicate_rate(1.0),
        );
        a.apply(&del_op()).unwrap();
        assert_eq!(inner.applied_ops().len(), 2);
        assert_eq!(a.duplicated_ops(), 1);
    }

    #[test]
    fn delay_advances_manual_clock() {
        let clock = Arc::new(Clock::manual());
        let a = ChaosAgent::new(null(), ChaosConfig::quiet(1).with_delay_ms(25)).with_clock(Arc::clone(&clock));
        a.apply(&del_op()).unwrap();
        assert_eq!(clock.now_ms(), 25);
    }

    #[test]
    fn same_seed_same_fault_sequence() {
        let run = |seed: u64| {
            let a = ChaosAgent::new(null(), ChaosConfig::quiet(seed).with_drop_rate(0.3).with_flap_rate(0.2));
            let mut outcomes = Vec::new();
            for _ in 0..64 {
                outcomes.push(a.apply(&del_op()).is_ok());
                outcomes.push(a.heartbeat());
            }
            outcomes
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10), "different seeds should (almost surely) differ");
    }
}
