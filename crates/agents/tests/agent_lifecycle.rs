//! Integration tests: agents registered into a live OFMF, zone/connection
//! lifecycle, fault propagation, telemetry flow.

use fabric_sim::failure::Fault;
use fabric_sim::ids::SwitchId;
use ofmf_agents::flavors::{cxl_agent, infiniband_agent, nvmeof_agent, RackShape};
use ofmf_core::agent::AgentOp;
use ofmf_core::Ofmf;
use redfish_model::odata::ODataId;
use redfish_model::resources::events::EventType;
use serde_json::json;
use std::collections::HashMap;
use std::sync::Arc;

fn ofmf() -> Arc<Ofmf> {
    Ofmf::new("it-uuid", HashMap::new(), 99)
}

fn shape() -> RackShape {
    RackShape::default()
}

#[test]
fn cxl_compose_memory_end_to_end() {
    let o = ofmf();
    let agent = Arc::new(cxl_agent("CXL0", &shape(), 1 << 20, 7));
    o.register_agent(Arc::clone(&agent) as Arc<dyn ofmf_core::Agent>)
        .unwrap();

    // Tree contains the mounted inventory with intact links.
    assert!(o.registry.exists(&ODataId::new("/redfish/v1/Systems/cn00")));
    assert!(o
        .registry
        .exists(&ODataId::new("/redfish/v1/Chassis/mem00/MemoryDomains/dom0")));

    // Create a zone over cn00 + mem00 via the north-bound POST.
    let zones = ODataId::new("/redfish/v1/Fabrics/CXL0/Zones");
    let zone = o
        .post(
            &zones,
            &json!({
                "Id": "jobzone",
                "Links": {"Endpoints": [
                    {"@odata.id": "/redfish/v1/Fabrics/CXL0/Endpoints/cn00-ep"},
                    {"@odata.id": "/redfish/v1/Fabrics/CXL0/Endpoints/mem00-ep"},
                ]}
            }),
        )
        .unwrap();
    assert!(o.registry.exists(&zone));

    // Connect 64 GiB of fabric memory to cn00.
    let cons = ODataId::new("/redfish/v1/Fabrics/CXL0/Connections");
    let conn = o
        .post(
            &cons,
            &json!({
                "Id": "c1",
                "Zone": {"@odata.id": zone.as_str()},
                "Size": 64 * 1024,
                "Links": {
                    "InitiatorEndpoints": [{"@odata.id": "/redfish/v1/Fabrics/CXL0/Endpoints/cn00-ep"}],
                    "TargetEndpoints": [{"@odata.id": "/redfish/v1/Fabrics/CXL0/Endpoints/mem00-ep"}],
                }
            }),
        )
        .unwrap();
    assert!(o.registry.exists(&conn));
    // A MemoryChunk materialized under the appliance.
    let chunks = o
        .registry
        .members(&ODataId::new(
            "/redfish/v1/Chassis/mem00/MemoryDomains/dom0/MemoryChunks",
        ))
        .unwrap();
    assert_eq!(chunks.len(), 1);
    let chunk = o.registry.get(&chunks[0]).unwrap().body;
    assert_eq!(chunk["MemoryChunkSizeMiB"], 64 * 1024);
    assert_eq!(agent.free_capacity_of("mem00"), Some((1 << 20) - 64 * 1024));

    // Disconnect releases the chunk and the doc.
    o.delete(&conn).unwrap();
    assert!(!o.registry.exists(&conn));
    assert!(!o.registry.exists(&chunks[0]));
    assert_eq!(agent.free_capacity_of("mem00"), Some(1 << 20));

    // Zone can now be deleted.
    o.delete(&zone).unwrap();
    assert!(!o.registry.exists(&zone));
}

#[test]
fn nvmeof_connect_materializes_volume() {
    let o = ofmf();
    let agent = Arc::new(nvmeof_agent("NVME0", &shape(), 1 << 40, 7));
    o.register_agent(agent).unwrap();

    let zones = ODataId::new("/redfish/v1/Fabrics/NVME0/Zones");
    let zone = o
        .post(
            &zones,
            &json!({"Links": {"Endpoints": [
                {"@odata.id": "/redfish/v1/Fabrics/NVME0/Endpoints/cn01-ep"},
                {"@odata.id": "/redfish/v1/Fabrics/NVME0/Endpoints/nvme00-ep"},
            ]}}),
        )
        .unwrap();
    let cons = ODataId::new("/redfish/v1/Fabrics/NVME0/Connections");
    o.post(
        &cons,
        &json!({
            "Id": "ns1",
            "Zone": {"@odata.id": zone.as_str()},
            "Size": 500_000_000_000u64,
            "Links": {
                "InitiatorEndpoints": [{"@odata.id": "/redfish/v1/Fabrics/NVME0/Endpoints/cn01-ep"}],
                "TargetEndpoints": [{"@odata.id": "/redfish/v1/Fabrics/NVME0/Endpoints/nvme00-ep"}],
            }
        }),
    )
    .unwrap();
    let vols = o
        .registry
        .members(&ODataId::new("/redfish/v1/StorageServices/nvme00/Volumes"))
        .unwrap();
    assert_eq!(vols.len(), 1);
    assert_eq!(
        o.registry.get(&vols[0]).unwrap().body["CapacityBytes"],
        500_000_000_000u64
    );
}

#[test]
fn gpu_grant_is_exclusive() {
    let o = ofmf();
    o.register_agent(Arc::new(infiniband_agent("IB0", &shape(), "A100", 7)))
        .unwrap();
    let zones = ODataId::new("/redfish/v1/Fabrics/IB0/Zones");
    let zone = o
        .post(
            &zones,
            &json!({"Links": {"Endpoints": [
                {"@odata.id": "/redfish/v1/Fabrics/IB0/Endpoints/cn00-ep"},
                {"@odata.id": "/redfish/v1/Fabrics/IB0/Endpoints/cn01-ep"},
                {"@odata.id": "/redfish/v1/Fabrics/IB0/Endpoints/gpu00-ep"},
            ]}}),
        )
        .unwrap();
    let cons = ODataId::new("/redfish/v1/Fabrics/IB0/Connections");
    let mk = |id: &str, cn: &str| {
        json!({
            "Id": id,
            "Zone": {"@odata.id": zone.as_str()},
            "Size": 1,
            "Links": {
                "InitiatorEndpoints": [{"@odata.id": format!("/redfish/v1/Fabrics/IB0/Endpoints/{cn}-ep")}],
                "TargetEndpoints": [{"@odata.id": "/redfish/v1/Fabrics/IB0/Endpoints/gpu00-ep"}],
            }
        })
    };
    o.post(&cons, &mk("g1", "cn00")).unwrap();
    // Second grant on the same GPU must be refused (507).
    let err = o.post(&cons, &mk("g2", "cn01")).unwrap_err();
    assert_eq!(err.http_status(), 507);
}

#[test]
fn switch_failure_propagates_alert_and_failover() {
    let o = ofmf();
    let agent = Arc::new(cxl_agent("CXL0", &shape(), 1 << 20, 7));
    o.register_agent(Arc::clone(&agent) as Arc<dyn ofmf_core::Agent>)
        .unwrap();
    let (_, rx) = o
        .events
        .subscribe(
            &o.registry,
            "channel://ops",
            vec![EventType::Alert, EventType::StatusChange],
            vec![],
        )
        .unwrap();

    // Set up a connection that crosses a spine (cn01 on leaf1, mem00 on leaf0).
    let zones = ODataId::new("/redfish/v1/Fabrics/CXL0/Zones");
    let zone = o
        .post(
            &zones,
            &json!({"Links": {"Endpoints": [
                {"@odata.id": "/redfish/v1/Fabrics/CXL0/Endpoints/cn01-ep"},
                {"@odata.id": "/redfish/v1/Fabrics/CXL0/Endpoints/mem00-ep"},
            ]}}),
        )
        .unwrap();
    let cons = ODataId::new("/redfish/v1/Fabrics/CXL0/Connections");
    o.post(
        &cons,
        &json!({
            "Id": "c1",
            "Zone": {"@odata.id": zone.as_str()},
            "Size": 1024,
            "Links": {
                "InitiatorEndpoints": [{"@odata.id": "/redfish/v1/Fabrics/CXL0/Endpoints/cn01-ep"}],
                "TargetEndpoints": [{"@odata.id": "/redfish/v1/Fabrics/CXL0/Endpoints/mem00-ep"}],
            }
        }),
    )
    .unwrap();
    while rx.try_recv().is_ok() {} // clear setup noise

    // Kill spine0 via the typed test hook, then poll the OFMF.
    agent.inject_fault(Fault::SwitchDown(SwitchId(0)));
    let n = o.poll();
    assert!(n >= 1, "poll processed agent events");

    // The spine's resource shows Critical and at least one Alert was delivered.
    let spine = ODataId::new("/redfish/v1/Fabrics/CXL0/Switches/spine0");
    assert_eq!(o.registry.get(&spine).unwrap().body["Status"]["Health"], "Critical");
    let mut saw_alert = false;
    while let Ok(batch) = rx.try_recv() {
        for e in batch.events.iter() {
            if e.severity == "Critical" || e.severity == "Warning" {
                saw_alert = true;
            }
        }
    }
    assert!(saw_alert);
}

#[test]
fn telemetry_flows_from_agents_to_reports() {
    let o = ofmf();
    o.register_agent(Arc::new(cxl_agent("CXL0", &shape(), 1 << 20, 7)))
        .unwrap();
    o.poll(); // one telemetry sweep
    assert!(o.telemetry.series_count() > 0);
    let rid = o.telemetry.generate_report(&o.registry, &o.events).unwrap();
    let report = o.registry.get(&rid).unwrap().body;
    assert!(!report["MetricValues"].as_array().unwrap().is_empty());
    // Power metrics reference real tree resources.
    let prop = report["MetricValues"][0]["MetricProperty"].as_str().unwrap();
    assert!(o.registry.exists(&ODataId::new(prop)), "{prop} should exist");
}

#[test]
fn fault_injection_via_agent_op() {
    let o = ofmf();
    o.register_agent(Arc::new(cxl_agent("CXL0", &shape(), 1 << 20, 7)))
        .unwrap();
    o.apply(
        "CXL0",
        &AgentOp::InjectFault {
            description: "link:0 down".into(),
        },
    )
    .unwrap();
    o.poll();
    // The port doc for link 0 carries the failure.
    let docs = o.registry.ids_of_type("#Port.");
    let bad: Vec<_> = docs
        .iter()
        .filter(|id| o.registry.get(id).unwrap().body["LinkState"] == "Disabled")
        .collect();
    assert_eq!(bad.len(), 1);
    // Unparseable description rejected.
    assert!(o
        .apply(
            "CXL0",
            &AgentOp::InjectFault {
                description: "chaos everywhere".into()
            }
        )
        .is_err());
}

#[test]
fn multi_fabric_tree_is_unified() {
    let o = ofmf();
    o.register_agent(Arc::new(cxl_agent("CXL0", &shape(), 1 << 20, 1)))
        .unwrap();
    o.register_agent(Arc::new(nvmeof_agent("NVME0", &shape(), 1 << 40, 2)))
        .unwrap();
    o.register_agent(Arc::new(infiniband_agent("IB0", &shape(), "A100", 3)))
        .unwrap();
    assert_eq!(o.fabric_ids(), vec!["CXL0", "IB0", "NVME0"]);
    let fabrics = o.registry.members(&ODataId::new("/redfish/v1/Fabrics")).unwrap();
    assert_eq!(fabrics.len(), 3);
    // Unregistration removes exactly that fabric's subtree.
    o.unregister_agent("NVME0").unwrap();
    assert!(!o.registry.exists(&ODataId::new("/redfish/v1/Fabrics/NVME0")));
    assert!(o.registry.exists(&ODataId::new("/redfish/v1/Fabrics/CXL0")));
}
