//! A bounded ring buffer of recent structured observability events.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

/// Default capacity of the global event ring.
pub const RING_CAPACITY: usize = 256;

/// Severity of a ring event, mapped to Redfish `Severity` values on export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Informational ("OK" in Redfish).
    Info,
    /// Degraded but operating ("Warning").
    Warning,
    /// Requires attention ("Critical").
    Critical,
}

impl Severity {
    /// The Redfish `Health`/`Severity` string for this level.
    pub fn as_str(&self) -> &'static str {
        match self {
            Severity::Info => "OK",
            Severity::Warning => "Warning",
            Severity::Critical => "Critical",
        }
    }
}

/// One structured event captured in the ring.
#[derive(Debug, Clone)]
pub struct RingEvent {
    /// Monotonically increasing sequence number (never reused; survives
    /// eviction, so entry URIs stay stable).
    pub seq: u64,
    /// Wall-clock milliseconds since the Unix epoch.
    pub unix_ms: u64,
    /// Event severity.
    pub severity: Severity,
    /// Dotted subsystem target, e.g. `ofmf.rest` or `ofmf.events`.
    pub target: String,
    /// Human-readable message.
    pub message: String,
    /// Root span (trace) id if the event occurred inside a traced request;
    /// joins ring entries to flight-recorder traces.
    pub trace_id: Option<u64>,
}

/// Fixed-capacity buffer of the most recent [`RingEvent`]s.
///
/// Emission takes a short mutex; this is fine because events are rare
/// (errors, drops, lifecycle transitions) — per-operation data belongs in
/// histograms, not here.
pub struct EventRing {
    cap: usize,
    seq: AtomicU64,
    inner: Mutex<VecDeque<RingEvent>>,
}

impl EventRing {
    /// New ring holding at most `cap` events.
    pub fn new(cap: usize) -> EventRing {
        EventRing {
            cap: cap.max(1),
            seq: AtomicU64::new(0),
            inner: Mutex::new(VecDeque::with_capacity(cap.max(1))),
        }
    }

    /// Append an event, evicting the oldest when full. Returns the event's
    /// sequence number (0 when instrumentation is disabled and the event was
    /// discarded).
    pub fn emit(&self, severity: Severity, target: &str, message: impl Into<String>) -> u64 {
        self.emit_for_trace(severity, target, message, None)
    }

    /// [`EventRing::emit`] with the originating trace (root span) id
    /// attached, so the entry is joinable with the flight recorder.
    pub fn emit_for_trace(
        &self,
        severity: Severity,
        target: &str,
        message: impl Into<String>,
        trace_id: Option<u64>,
    ) -> u64 {
        if !crate::enabled() {
            return 0;
        }
        // Relaxed: the sequence only needs per-event uniqueness; the ring's
        // mutex orders the enqueue itself.
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let ev = RingEvent {
            seq,
            unix_ms: crate::unix_ms(),
            severity,
            target: target.to_string(),
            message: message.into(),
            trace_id,
        };
        let mut q = self.inner.lock();
        if q.len() == self.cap {
            q.pop_front();
        }
        q.push_back(ev);
        seq
    }

    /// Clone out the buffered events, oldest first.
    pub fn recent(&self) -> Vec<RingEvent> {
        self.inner.lock().iter().cloned().collect()
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever emitted (including evicted ones).
    pub fn total_emitted(&self) -> u64 {
        // ofmf-lint: allow(atomic-ordering-audit, "statistics read; no cross-thread handoff depends on it")
        self.seq.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_and_keeps_sequence() {
        let _g = crate::test_guard();
        let ring = EventRing::new(3);
        for i in 0..5 {
            ring.emit(Severity::Info, "ofmf.test", format!("event {i}"));
        }
        let events = ring.recent();
        assert_eq!(events.len(), 3);
        // Oldest two evicted; sequence numbers keep counting.
        assert_eq!(events[0].seq, 3);
        assert_eq!(events[2].seq, 5);
        assert_eq!(events[2].message, "event 4");
        assert_eq!(ring.total_emitted(), 5);
    }

    #[test]
    fn severity_maps_to_redfish_strings() {
        assert_eq!(Severity::Info.as_str(), "OK");
        assert_eq!(Severity::Warning.as_str(), "Warning");
        assert_eq!(Severity::Critical.as_str(), "Critical");
    }

    #[test]
    fn disabled_ring_discards() {
        let _g = crate::test_guard();
        let ring = EventRing::new(4);
        crate::set_enabled(false);
        let seq = ring.emit(Severity::Critical, "ofmf.test", "dropped");
        crate::set_enabled(true);
        assert_eq!(seq, 0);
        assert!(ring.is_empty());
    }

    #[test]
    fn trace_id_is_attached() {
        let _g = crate::test_guard();
        let ring = EventRing::new(4);
        ring.emit_for_trace(Severity::Warning, "ofmf.rest", "parse error", Some(42));
        assert_eq!(ring.recent()[0].trace_id, Some(42));
    }
}
