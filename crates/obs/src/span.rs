//! Hierarchical spans: one request becomes one tree.
//!
//! A [`Span`] is a timed scope with a name, a parent, a status and
//! key-value annotations. Spans belong to a *trace* — the tree of work done
//! on behalf of one north-bound request — identified by a process-unique
//! trace id (the same counter that numbers requests, so event-ring entries
//! and recorded traces join on the same id).
//!
//! The active trace propagates through a thread-local: the OFMF serves each
//! request synchronously on one worker thread, so rest → core → composer →
//! supervisor → agent all see the same context without plumbing arguments
//! through every signature. Three entry points cover the call-site shapes:
//!
//! * [`root_span`] — always opens a new trace. Used once, at the top of
//!   REST request handling.
//! * [`enter_span`] — child of the active trace, or a new root when none is
//!   active. Used at composer entry points, which are driven both over REST
//!   and directly (tests, tools).
//! * [`child_span`] — child of the active trace, or *inert* when none is
//!   active. Used on interior operations (registry ops, supervisor
//!   dispatch, agent round-trips) that must cost nothing when nobody is
//!   tracing.
//!
//! When the root span drops, the finished tree is offered to the
//! [`crate::recorder::FlightRecorder`], which retains it only when the
//! request was slow, errored or explicitly sampled. Everything is inert
//! while instrumentation is disabled ([`crate::set_enabled`]).

use crate::metrics::Counter;
use crate::recorder::FinishedTrace;
use parking_lot::Mutex;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Hard cap on buffered spans per trace; beyond it spans are counted as
/// dropped (`ofmf.trace.spans.dropped.total`) instead of growing the
/// buffer. A compose over every fabric stays well under this.
pub const SPAN_CAP: usize = 512;

/// Outcome of a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanStatus {
    /// The operation completed normally.
    Ok,
    /// The operation failed; an errored root retains the whole trace.
    Error,
}

impl SpanStatus {
    /// Redfish-friendly status string.
    pub fn as_str(&self) -> &'static str {
        match self {
            SpanStatus::Ok => "OK",
            SpanStatus::Error => "Error",
        }
    }
}

/// One finished span inside a recorded trace.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Id unique within the trace (root is 1).
    pub id: u64,
    /// Parent span id; 0 for the root.
    pub parent_id: u64,
    /// Static span name, `ofmf.<subsystem>.<op>`.
    pub name: &'static str,
    /// Start offset from the trace's start, in nanoseconds.
    pub start_ns: u64,
    /// Elapsed nanoseconds.
    pub duration_ns: u64,
    /// Outcome.
    pub status: SpanStatus,
    /// Key-value annotations attached while the span was open.
    pub annotations: Vec<(&'static str, String)>,
}

/// Shared buffer for one in-flight trace.
pub(crate) struct TraceBuf {
    trace_id: u64,
    started_unix_ms: u64,
    started: Instant,
    next_span_id: AtomicU64,
    spans: Mutex<Vec<SpanRecord>>,
    dropped: AtomicU64,
    sampled: AtomicBool,
    errored: AtomicBool,
    route: Mutex<String>,
}

impl TraceBuf {
    fn new() -> TraceBuf {
        TraceBuf {
            trace_id: crate::trace::next_request_id(),
            started_unix_ms: crate::unix_ms(),
            started: Instant::now(),
            next_span_id: AtomicU64::new(0),
            spans: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
            sampled: AtomicBool::new(false),
            errored: AtomicBool::new(false),
            route: Mutex::new(String::new()),
        }
    }

    fn elapsed_ns(&self) -> u64 {
        self.started.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }
}

/// The worker thread's active trace: the shared buffer plus the stack of
/// open span ids (top = current parent).
struct ActiveTrace {
    buf: Arc<TraceBuf>,
    stack: Vec<u64>,
}

thread_local! {
    static ACTIVE: RefCell<Option<ActiveTrace>> = const { RefCell::new(None) };
}

/// The tracing subsystem's own instruments.
pub(crate) struct TraceMetrics {
    /// `ofmf.trace.spans.started.total`
    pub started: Arc<Counter>,
    /// `ofmf.trace.spans.dropped.total` — spans past [`SPAN_CAP`].
    pub dropped: Arc<Counter>,
    /// `ofmf.trace.recorder.retained.total`
    pub retained: Arc<Counter>,
    /// `ofmf.trace.recorder.evicted.total`
    pub evicted: Arc<Counter>,
    /// `ofmf.trace.exemplar.hits.total` — top-band exemplar recordings.
    pub exemplar_hits: Arc<Counter>,
}

/// The process-wide tracing instrument bundle.
pub(crate) fn trace_metrics() -> &'static TraceMetrics {
    static METRICS: OnceLock<TraceMetrics> = OnceLock::new();
    METRICS.get_or_init(|| TraceMetrics {
        started: crate::registry::counter("ofmf.trace.spans.started.total"),
        dropped: crate::registry::counter("ofmf.trace.spans.dropped.total"),
        retained: crate::registry::counter("ofmf.trace.recorder.retained.total"),
        evicted: crate::registry::counter("ofmf.trace.recorder.evicted.total"),
        exemplar_hits: crate::registry::counter("ofmf.trace.exemplar.hits.total"),
    })
}

struct SpanInner {
    buf: Arc<TraceBuf>,
    id: u64,
    parent_id: u64,
    name: &'static str,
    start_ns: u64,
    start: Instant,
    status: SpanStatus,
    annotations: Vec<(&'static str, String)>,
}

impl SpanInner {
    fn open(buf: Arc<TraceBuf>, parent_id: u64, name: &'static str) -> SpanInner {
        let id = buf.next_span_id.fetch_add(1, Ordering::Relaxed) + 1;
        let start_ns = buf.elapsed_ns();
        trace_metrics().started.inc();
        SpanInner {
            buf,
            id,
            parent_id,
            name,
            start_ns,
            start: Instant::now(),
            status: SpanStatus::Ok,
            annotations: Vec::new(),
        }
    }
}

/// A live span guard. Records itself into the active trace on drop; the
/// root span's drop additionally hands the finished tree to the flight
/// recorder. An inert span (no active trace, or instrumentation disabled)
/// costs one branch per method call.
pub struct Span {
    inner: Option<SpanInner>,
}

impl Span {
    const INERT: Span = Span { inner: None };

    /// Whether this span is actually recording.
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }

    /// The owning trace's id, or 0 when inert.
    pub fn trace_id(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.buf.trace_id)
    }

    /// Nanoseconds since this span opened (0 when inert).
    pub fn elapsed_ns(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.start.elapsed().as_nanos().min(u64::MAX as u128) as u64)
    }

    /// Attach a key-value annotation.
    pub fn annotate(&mut self, key: &'static str, value: impl Into<String>) {
        if let Some(i) = self.inner.as_mut() {
            i.annotations.push((key, value.into()));
        }
    }

    /// Mark this span (and therefore the whole trace) as errored; errored
    /// traces are always retained by the flight recorder.
    pub fn set_error(&mut self) {
        if let Some(i) = self.inner.as_mut() {
            i.status = SpanStatus::Error;
        }
    }

    /// Force the trace to be retained regardless of latency.
    pub fn force_sample(&self) {
        if let Some(i) = self.inner.as_ref() {
            // ofmf-lint: allow(atomic-ordering-audit, "written and read on the owning request thread; atomic only because TraceBuf is Sync")
            i.buf.sampled.store(true, Ordering::Relaxed);
        }
    }

    /// Set the trace's route key (the flight recorder keeps a rolling
    /// latency distribution per route). Defaults to the root span's name.
    pub fn set_route(&self, route: &str) {
        if let Some(i) = self.inner.as_ref() {
            *i.buf.route.lock() = route.to_string();
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else { return };
        let duration_ns = inner.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        if inner.status == SpanStatus::Error {
            // ofmf-lint: allow(atomic-ordering-audit, "written and read on the owning request thread; atomic only because TraceBuf is Sync")
            inner.buf.errored.store(true, Ordering::Relaxed);
        }
        let record = SpanRecord {
            id: inner.id,
            parent_id: inner.parent_id,
            name: inner.name,
            start_ns: inner.start_ns,
            duration_ns,
            status: inner.status,
            annotations: inner.annotations,
        };
        let is_root = inner.parent_id == 0;
        {
            let mut spans = inner.buf.spans.lock();
            // The root record always lands: a rendered trace needs its root
            // even when children overflowed the cap.
            if spans.len() < SPAN_CAP || is_root {
                spans.push(record);
            } else {
                inner.buf.dropped.fetch_add(1, Ordering::Relaxed);
                trace_metrics().dropped.inc();
            }
        }
        ACTIVE.with(|a| {
            let mut slot = a.borrow_mut();
            if let Some(t) = slot.as_mut() {
                if t.buf.trace_id == inner.buf.trace_id {
                    if let Some(pos) = t.stack.iter().rposition(|&id| id == inner.id) {
                        t.stack.remove(pos);
                    }
                    if is_root {
                        *slot = None;
                    }
                }
            }
        });
        if is_root {
            let buf = &inner.buf;
            let spans = std::mem::take(&mut *buf.spans.lock());
            let route = {
                let r = buf.route.lock();
                if r.is_empty() {
                    inner.name.to_string()
                } else {
                    r.clone()
                }
            };
            crate::recorder::recorder().complete(FinishedTrace {
                trace_id: buf.trace_id,
                route,
                started_unix_ms: buf.started_unix_ms,
                duration_ns,
                // ofmf-lint: allow(atomic-ordering-audit, "same-thread reads of flags this thread wrote; atomic only because TraceBuf is Sync")
                errored: buf.errored.load(Ordering::Relaxed),
                // ofmf-lint: allow(atomic-ordering-audit, "same-thread reads of flags this thread wrote; atomic only because TraceBuf is Sync")
                sampled: buf.sampled.load(Ordering::Relaxed),
                spans,
                // ofmf-lint: allow(atomic-ordering-audit, "same-thread reads of flags this thread wrote; atomic only because TraceBuf is Sync")
                spans_dropped: buf.dropped.load(Ordering::Relaxed),
            });
        }
    }
}

/// Open a new trace with this span as its root. The previous active trace
/// (if any — there should be none on a well-nested path) is abandoned.
pub fn root_span(name: &'static str) -> Span {
    if !crate::enabled() {
        return Span::INERT;
    }
    let buf = Arc::new(TraceBuf::new());
    let inner = SpanInner::open(Arc::clone(&buf), 0, name);
    ACTIVE.with(|a| {
        *a.borrow_mut() = Some(ActiveTrace {
            buf,
            stack: vec![inner.id],
        })
    });
    Span { inner: Some(inner) }
}

/// Open a child of the active trace, or a new root when none is active.
/// For subsystem entry points that are driven both under a traced request
/// and directly.
pub fn enter_span(name: &'static str) -> Span {
    if !crate::enabled() {
        return Span::INERT;
    }
    match open_child(name) {
        Some(span) => span,
        None => root_span(name),
    }
}

/// Open a child of the active trace, or an inert span when none is active.
/// For interior operations that must cost nothing untraced.
pub fn child_span(name: &'static str) -> Span {
    if !crate::enabled() {
        return Span::INERT;
    }
    open_child(name).unwrap_or(Span::INERT)
}

fn open_child(name: &'static str) -> Option<Span> {
    ACTIVE.with(|a| {
        let mut slot = a.borrow_mut();
        let t = slot.as_mut()?;
        let parent = t.stack.last().copied().unwrap_or(0).max(1);
        let inner = SpanInner::open(Arc::clone(&t.buf), parent, name);
        t.stack.push(inner.id);
        Some(Span { inner: Some(inner) })
    })
}

/// The active trace's id on this thread, or 0 when nothing is being traced.
/// Lets event-ring emitters join their entries to the trace.
pub fn current_trace_id() -> u64 {
    if !crate::enabled() {
        return 0;
    }
    ACTIVE.with(|a| a.borrow().as_ref().map_or(0, |t| t.buf.trace_id))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{recorder, RetainReason};

    fn find_trace(id: u64) -> crate::recorder::RecordedTrace {
        recorder().get(id).expect("trace retained")
    }

    #[test]
    fn trace_tree_parent_child_structure() {
        let _g = crate::test_guard();
        let root = root_span("ofmf.test.span_root");
        let id = root.trace_id();
        assert!(id > 0);
        root.force_sample();
        {
            let child = child_span("ofmf.test.span_child");
            assert_eq!(child.trace_id(), id);
            {
                let mut grand = child_span("ofmf.test.span_grandchild");
                grand.annotate("k", "v");
            }
        }
        assert_eq!(current_trace_id(), id);
        drop(root);
        assert_eq!(current_trace_id(), 0);
        let t = find_trace(id);
        assert_eq!(t.reason, RetainReason::Sampled);
        assert_eq!(t.spans.len(), 3);
        // Spans finish leaf-first; the root is last.
        let root_rec = t.spans.iter().find(|s| s.parent_id == 0).unwrap();
        assert_eq!(root_rec.name, "ofmf.test.span_root");
        let child = t.spans.iter().find(|s| s.parent_id == root_rec.id).unwrap();
        assert_eq!(child.name, "ofmf.test.span_child");
        let grand = t.spans.iter().find(|s| s.parent_id == child.id).unwrap();
        assert_eq!(grand.name, "ofmf.test.span_grandchild");
        assert_eq!(grand.annotations, vec![("k", "v".to_string())]);
    }

    #[test]
    fn errored_trace_is_retained() {
        let _g = crate::test_guard();
        let mut root = root_span("ofmf.test.span_err");
        let id = root.trace_id();
        root.set_error();
        drop(root);
        let t = find_trace(id);
        assert!(t.errored);
        assert_eq!(t.reason, RetainReason::Errored);
        assert_eq!(t.spans[0].status, SpanStatus::Error);
    }

    #[test]
    fn child_span_is_inert_without_active_trace() {
        let _g = crate::test_guard();
        let before = trace_metrics().started.get();
        let mut orphan = child_span("ofmf.test.span_orphan");
        assert!(!orphan.is_recording());
        assert_eq!(orphan.trace_id(), 0);
        orphan.annotate("ignored", "yes");
        drop(orphan);
        assert_eq!(trace_metrics().started.get(), before);
    }

    #[test]
    fn enter_span_roots_a_trace_when_none_active() {
        let _g = crate::test_guard();
        let span = enter_span("ofmf.test.span_enter");
        let id = span.trace_id();
        assert!(id > 0);
        span.force_sample();
        drop(span);
        let t = find_trace(id);
        assert_eq!(t.route, "ofmf.test.span_enter", "route defaults to root name");
    }

    #[test]
    fn disabled_tracing_is_fully_inert() {
        let _g = crate::test_guard();
        crate::set_enabled(false);
        let root = root_span("ofmf.test.span_disabled");
        let ok = !root.is_recording() && current_trace_id() == 0;
        drop(root);
        crate::set_enabled(true);
        assert!(ok);
    }

    #[test]
    fn trace_span_overflow_is_counted_not_buffered() {
        let _g = crate::test_guard();
        let root = root_span("ofmf.test.span_overflow");
        let id = root.trace_id();
        root.force_sample();
        for _ in 0..SPAN_CAP + 5 {
            child_span("ofmf.test.span_filler");
        }
        drop(root);
        let t = find_trace(id);
        // SPAN_CAP children buffered, 5 dropped, root always appended.
        assert_eq!(t.spans.len(), SPAN_CAP + 1);
        assert_eq!(t.spans_dropped, 5);
        assert!(t.spans.iter().any(|s| s.parent_id == 0), "root record survives");
    }
}
