//! The process-global metrics registry and its snapshot/export machinery.

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
use crate::ring::EventRing;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// A named collection of instruments plus the event ring.
///
/// Look instruments up once (at service construction or via a call-site
/// `OnceLock`) and hold the returned `Arc`; lookups take a read lock, the
/// instruments themselves never do.
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
    ring: EventRing,
    started: Instant,
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new()
    }
}

impl Registry {
    /// New empty registry (tests; services use [`global`]).
    pub fn new() -> Registry {
        Registry {
            counters: RwLock::new(BTreeMap::new()),
            gauges: RwLock::new(BTreeMap::new()),
            histograms: RwLock::new(BTreeMap::new()),
            ring: EventRing::new(crate::ring::RING_CAPACITY),
            started: Instant::now(),
        }
    }

    fn get_or_insert<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
        if let Some(v) = map.read().get(name) {
            return Arc::clone(v);
        }
        let mut w = map.write();
        Arc::clone(w.entry(name.to_string()).or_default())
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Self::get_or_insert(&self.counters, name)
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        Self::get_or_insert(&self.gauges, name)
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        Self::get_or_insert(&self.histograms, name)
    }

    /// The registry's event ring.
    pub fn ring(&self) -> &EventRing {
        &self.ring
    }

    /// Milliseconds since this registry was created (process uptime for the
    /// global registry).
    pub fn uptime_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// Materialize every instrument into a plain-data snapshot.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self.counters.read().iter().map(|(k, v)| (k.clone(), v.get())).collect();
        let gauges = self.gauges.read().iter().map(|(k, v)| (k.clone(), v.get())).collect();
        let histograms = self
            .histograms
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        Snapshot {
            uptime_ms: self.uptime_ms(),
            counters,
            gauges,
            histograms,
        }
    }
}

/// Point-in-time dump of a [`Registry`], ordered by metric name.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Milliseconds since the registry was created.
    pub uptime_ms: u64,
    /// Counter name → count.
    pub counters: Vec<(String, u64)>,
    /// Gauge name → value.
    pub gauges: Vec<(String, i64)>,
    /// Histogram name → summary.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl Snapshot {
    /// Value of a counter, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Value of a gauge, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Summary of a histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Render as a JSON document (hand-rolled; the crate is dependency-free).
    ///
    /// Shape: `{"uptime_ms": …, "counters": {name: n, …}, "gauges": {…},
    /// "histograms": {name: {"count": …, "mean": …, "p50": …, "p95": …,
    /// "p99": …, "max": …}, …}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str(&format!("{{\n  \"uptime_ms\": {},\n", self.uptime_ms));
        out.push_str("  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {v}", json_string(name)));
        }
        out.push_str(if self.counters.is_empty() { "},\n" } else { "\n  },\n" });
        out.push_str("  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {v}", json_string(name)));
        }
        out.push_str(if self.gauges.is_empty() { "},\n" } else { "\n  },\n" });
        out.push_str("  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {}: {{\"count\": {}, \"mean\": {:.1}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}}}",
                json_string(name),
                h.count,
                h.mean,
                h.p50,
                h.p95,
                h.p99,
                h.max
            ));
        }
        out.push_str(if self.histograms.is_empty() { "}\n" } else { "\n  }\n" });
        out.push('}');
        out
    }
}

/// Quote and escape a string for JSON output.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-global registry all OFMF services record into.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// Get or create a counter in the global registry.
pub fn counter(name: &str) -> Arc<Counter> {
    global().counter(name)
}

/// Get or create a gauge in the global registry.
pub fn gauge(name: &str) -> Arc<Gauge> {
    global().gauge(name)
}

/// Get or create a histogram in the global registry.
pub fn histogram(name: &str) -> Arc<Histogram> {
    global().histogram(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruments_are_shared_by_name() {
        let _g = crate::test_guard();
        let r = Registry::new();
        r.counter("ofmf.test.a.total").add(2);
        r.counter("ofmf.test.a.total").add(3);
        assert_eq!(r.counter("ofmf.test.a.total").get(), 5);
        r.histogram("ofmf.test.a.latency_ns").record(100);
        assert_eq!(r.histogram("ofmf.test.a.latency_ns").count(), 1);
    }

    #[test]
    fn snapshot_lists_everything_sorted() {
        let _g = crate::test_guard();
        let r = Registry::new();
        r.counter("b.total").inc();
        r.counter("a.total").inc();
        r.gauge("q.depth").set(4);
        r.histogram("lat_ns").record(1_000);
        let s = r.snapshot();
        let names: Vec<&str> = s.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a.total", "b.total"]);
        assert_eq!(s.gauge("q.depth"), Some(4));
        assert_eq!(s.histogram("lat_ns").unwrap().count, 1);
        assert_eq!(s.counter("missing"), None);
    }

    #[test]
    fn snapshot_json_is_well_formed() {
        let _g = crate::test_guard();
        let r = Registry::new();
        r.counter("ofmf.rest.get.requests").add(7);
        r.histogram("ofmf.rest.get.latency_ns").record(2_000);
        let json = r.snapshot().to_json();
        assert!(json.contains("\"ofmf.rest.get.requests\": 7"));
        assert!(json.contains("\"uptime_ms\""));
        assert!(json.contains("\"p99\""));
        // Balanced braces (cheap well-formedness check without a parser dep).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }
}
