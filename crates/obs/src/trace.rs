//! Request IDs and scope-timing spans.

use crate::metrics::Histogram;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

static REQUEST_ID: AtomicU64 = AtomicU64::new(0);

/// Allocate the next process-unique request ID (starts at 1).
pub fn next_request_id() -> u64 {
    REQUEST_ID.fetch_add(1, Ordering::Relaxed) + 1
}

/// A guard that times the scope it lives in and records the elapsed
/// nanoseconds into a histogram when dropped.
///
/// ```
/// let hist = ofmf_obs::histogram("ofmf.doc.example.latency_ns");
/// {
///     let _span = ofmf_obs::Trace::begin(&hist);
///     // ... timed work ...
/// } // recorded here
/// ```
pub struct Trace {
    hist: Arc<Histogram>,
    start: Instant,
}

impl Trace {
    /// Start timing; the span records into `hist` on drop.
    pub fn begin(hist: &Arc<Histogram>) -> Trace {
        Trace {
            hist: Arc::clone(hist),
            start: Instant::now(),
        }
    }

    /// Nanoseconds elapsed so far.
    pub fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }
}

impl Drop for Trace {
    fn drop(&mut self) {
        self.hist.record_duration(self.start.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_ids_are_unique_and_positive() {
        let a = next_request_id();
        let b = next_request_id();
        assert!(a >= 1);
        assert!(b > a);
    }

    #[test]
    fn trace_records_on_drop() {
        let _g = crate::test_guard();
        let hist = Arc::new(Histogram::new());
        {
            let span = Trace::begin(&hist);
            std::thread::sleep(std::time::Duration::from_millis(1));
            assert!(span.elapsed_ns() > 0);
        }
        let s = hist.snapshot();
        assert_eq!(s.count, 1);
        assert!(s.max >= 1_000_000, "slept ≥1ms, recorded {}", s.max);
    }
}
