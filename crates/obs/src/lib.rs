//! # ofmf-obs
//!
//! Dependency-free observability for the OFMF services: a process-global
//! [`Registry`] of atomic [`Counter`]s, [`Gauge`]s and log-bucketed
//! [`Histogram`]s, a lightweight scope timer ([`Trace`]), hierarchical
//! request tracing ([`Span`], [`root_span`]/[`enter_span`]/[`child_span`])
//! with a tail-latency [`FlightRecorder`], and a bounded [`EventRing`] of
//! recent structured events.
//!
//! The design goals, in order:
//!
//! 1. **Negligible hot-path cost.** Every instrument is lock-free on the
//!    update path (a handful of relaxed/acq-rel atomic ops); name lookup
//!    happens once at call-site initialization, never per operation.
//! 2. **No dependencies.** The crate uses only `std` plus the in-tree
//!    `parking_lot` shim (itself std-only), so every other crate in the
//!    workspace can depend on it without cycles or feature drift — and so
//!    `lockcheck` observes the registry's own locks.
//! 3. **Redfish-friendly export.** [`Registry::snapshot`] produces a plain
//!    data [`Snapshot`] that the REST layer renders as `MetricReport` and
//!    `LogEntry` resources, and [`Snapshot::to_json`] renders the same data
//!    as standalone JSON for `--obs-json` bench dumps.
//!
//! Metric names follow `ofmf.<service>.<op>.<unit>`, e.g.
//! `ofmf.rest.get.latency_ns` or `ofmf.events.dropped.total`.
//!
//! Instrumentation can be globally disabled ([`set_enabled`]) to measure
//! its own overhead; disabled instruments skip their atomic updates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod recorder;
mod registry;
mod ring;
mod span;
mod trace;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use recorder::{
    recorder, FlightRecorder, RecordedTrace, RetainReason, MAX_ROUTES, RECORDER_STRIPES, STRIPE_CAPACITY,
};
pub use registry::{counter, gauge, global, histogram, Registry, Snapshot};
pub use ring::{EventRing, RingEvent, Severity, RING_CAPACITY};
pub use span::{child_span, current_trace_id, enter_span, root_span, Span, SpanRecord, SpanStatus, SPAN_CAP};
pub use trace::{next_request_id, Trace};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Globally enable or disable instrumentation. Disabled instruments skip
/// their updates; snapshots still work (they report whatever was recorded
/// while enabled). Used by the benches to measure instrumentation overhead.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Release);
}

/// Whether instrumentation is currently enabled.
pub fn enabled() -> bool {
    // Acquire pairs with the Release store in `set_enabled`: a reader that
    // observes the flip also observes everything recorded before it.
    ENABLED.load(Ordering::Acquire)
}

/// Refresh the `ofmf.lockcheck.*` gauges from the recording shim's hold,
/// blocking and lock-order reports. Only meaningful under
/// `--features lockcheck`; the REST export calls it before snapshotting so
/// the gauges are synthesized per GET like the Redfish overlays.
#[cfg(feature = "lockcheck")]
pub fn publish_lockcheck() {
    let holds = parking_lot::hold_time_report();
    gauge("ofmf.lockcheck.hold.sites").set(holds.len() as i64);
    gauge("ofmf.lockcheck.hold.max_ns").set(holds.iter().map(|h| h.max_ns).max().unwrap_or(0) as i64);
    gauge("ofmf.lockcheck.hold.p99_ns").set(holds.iter().map(|h| h.p99_ns).max().unwrap_or(0) as i64);
    gauge("ofmf.lockcheck.hold.contended").set(holds.iter().map(|h| h.contended).sum::<u64>() as i64);
    gauge("ofmf.lockcheck.blocking.witnessed").set(parking_lot::blocking_report().len() as i64);
    let order = parking_lot::lock_order_report();
    gauge("ofmf.lockcheck.order.edges").set(order.edges.len() as i64);
    gauge("ofmf.lockcheck.order.cycles").set(order.cycles.len() as i64);
}

/// Serializes tests that record against tests that toggle [`set_enabled`],
/// since the flag is process-global.
#[cfg(test)]
pub(crate) static TEST_LOCK: parking_lot::Mutex<()> = parking_lot::Mutex::new(());

#[cfg(test)]
pub(crate) fn test_guard() -> parking_lot::MutexGuard<'static, ()> {
    TEST_LOCK.lock()
}

/// Milliseconds since the Unix epoch (wall clock), for event timestamps.
pub fn unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}
