//! The flight recorder: a bounded, lock-striped store of interesting
//! span trees.
//!
//! Most requests are cheap and record only into histograms; the recorder
//! keeps the complete tree for the ones worth debugging:
//!
//! * **errored** — any span in the trace reported failure,
//! * **sampled** — explicitly marked (the `x-ofmf-trace` request header,
//!   or control-plane operations like compose that are rare and precious),
//! * **slow** — the trace's duration reached the rolling p99 of its route,
//!   tracked by an unregistered per-route histogram (refreshed every few
//!   completions, armed only after a warm-up so early noise doesn't retain
//!   everything).
//!
//! Memory is strictly bounded: [`RECORDER_STRIPES`] stripes ×
//! [`STRIPE_CAPACITY`] traces × [`crate::SPAN_CAP`] spans, with per-route
//! state capped at [`MAX_ROUTES`] distinct keys (overflow shares one
//! bucket). Stripes are independent mutexes keyed by trace id, and the
//! route map lock is never held across a stripe lock, so the recorder adds
//! no edges to the lock-order graph beyond leaf locks.

use crate::metrics::Histogram;
use crate::span::{trace_metrics, SpanRecord};
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Number of independent stripes (trace id modulo stripe count).
pub const RECORDER_STRIPES: usize = 8;

/// Retained traces per stripe, oldest evicted first.
pub const STRIPE_CAPACITY: usize = 32;

/// Cap on distinct per-route latency states; further routes share one
/// overflow bucket so a path-scanning client cannot grow the map.
pub const MAX_ROUTES: usize = 64;

/// Completions a route must see before the p99 threshold arms.
const WARMUP_SAMPLES: u64 = 64;

/// The cached p99 refreshes every this many completions.
const P99_REFRESH: u64 = 16;

const OVERFLOW_ROUTE: &str = "other";

/// Why a trace was retained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetainReason {
    /// A span in the trace reported an error.
    Errored,
    /// Explicitly sampled.
    Sampled,
    /// Duration reached the route's rolling p99.
    Slow,
}

impl RetainReason {
    /// Human/Redfish-friendly label.
    pub fn as_str(&self) -> &'static str {
        match self {
            RetainReason::Errored => "Errored",
            RetainReason::Sampled => "Sampled",
            RetainReason::Slow => "Slow",
        }
    }
}

/// A complete retained span tree.
#[derive(Debug, Clone)]
pub struct RecordedTrace {
    /// The trace id (also the root span's request id).
    pub trace_id: u64,
    /// Route key the retention threshold was computed against.
    pub route: String,
    /// Wall-clock start, milliseconds since the Unix epoch.
    pub started_unix_ms: u64,
    /// Root span duration in nanoseconds.
    pub duration_ns: u64,
    /// Whether any span errored.
    pub errored: bool,
    /// Why the recorder kept it.
    pub reason: RetainReason,
    /// The spans, in completion order (leaves first, root last).
    pub spans: Vec<SpanRecord>,
    /// Spans discarded past [`crate::SPAN_CAP`].
    pub spans_dropped: u64,
}

/// A finished trace offered to the recorder (crate-internal hand-off from
/// the root span's drop).
pub(crate) struct FinishedTrace {
    pub trace_id: u64,
    pub route: String,
    pub started_unix_ms: u64,
    pub duration_ns: u64,
    pub errored: bool,
    pub sampled: bool,
    pub spans: Vec<SpanRecord>,
    pub spans_dropped: u64,
}

/// Rolling latency state for one route.
struct RouteState {
    hist: Histogram,
    completions: AtomicU64,
    p99_ns: AtomicU64,
}

impl RouteState {
    fn new() -> RouteState {
        RouteState {
            hist: Histogram::new(),
            completions: AtomicU64::new(0),
            p99_ns: AtomicU64::new(0),
        }
    }
}

/// The bounded store of retained traces. See the module docs for the
/// retention policy and memory bound.
pub struct FlightRecorder {
    routes: RwLock<HashMap<String, Arc<RouteState>>>,
    stripes: Vec<Mutex<VecDeque<RecordedTrace>>>,
}

impl FlightRecorder {
    fn new() -> FlightRecorder {
        FlightRecorder {
            routes: RwLock::new(HashMap::new()),
            stripes: (0..RECORDER_STRIPES)
                .map(|_| Mutex::new(VecDeque::with_capacity(STRIPE_CAPACITY)))
                .collect(),
        }
    }

    /// Fetch-or-create the route's rolling state. The map lock is released
    /// before any stripe lock is taken.
    fn route_state(&self, route: &str) -> Arc<RouteState> {
        if let Some(s) = self.routes.read().get(route) {
            return Arc::clone(s);
        }
        let mut w = self.routes.write();
        if let Some(s) = w.get(route) {
            return Arc::clone(s);
        }
        let key = if w.len() >= MAX_ROUTES && !w.contains_key(route) {
            OVERFLOW_ROUTE.to_string()
        } else {
            route.to_string()
        };
        Arc::clone(w.entry(key).or_insert_with(|| Arc::new(RouteState::new())))
    }

    /// Feed a finished trace: always updates the route's distribution,
    /// retains the tree only when errored, sampled or slow.
    pub(crate) fn complete(&self, t: FinishedTrace) {
        let state = self.route_state(&t.route);
        state.hist.record(t.duration_ns);
        let n = state.completions.fetch_add(1, Ordering::Relaxed) + 1;
        if n.is_multiple_of(P99_REFRESH) {
            // ofmf-lint: allow(atomic-ordering-audit, "advisory latency-threshold cache; a stale value only shifts the retention heuristic")
            state.p99_ns.store(state.hist.snapshot().p99, Ordering::Relaxed);
        }
        let reason = if t.errored {
            RetainReason::Errored
        } else if t.sampled {
            RetainReason::Sampled
        } else {
            // ofmf-lint: allow(atomic-ordering-audit, "advisory latency-threshold cache; a stale value only shifts the retention heuristic")
            let p99 = state.p99_ns.load(Ordering::Relaxed);
            if n < WARMUP_SAMPLES || p99 == 0 || t.duration_ns < p99 {
                return;
            }
            RetainReason::Slow
        };
        trace_metrics().retained.inc();
        let idx = (t.trace_id as usize) % RECORDER_STRIPES;
        let mut stripe = self.stripes[idx].lock();
        if stripe.len() >= STRIPE_CAPACITY {
            stripe.pop_front();
            trace_metrics().evicted.inc();
        }
        stripe.push_back(RecordedTrace {
            trace_id: t.trace_id,
            route: t.route,
            started_unix_ms: t.started_unix_ms,
            duration_ns: t.duration_ns,
            errored: t.errored,
            reason,
            spans: t.spans,
            spans_dropped: t.spans_dropped,
        });
    }

    /// Look up a retained trace by id.
    pub fn get(&self, trace_id: u64) -> Option<RecordedTrace> {
        let stripe = self.stripes[(trace_id as usize) % RECORDER_STRIPES].lock();
        stripe.iter().find(|t| t.trace_id == trace_id).cloned()
    }

    /// All retained traces, ordered by trace id (≈ arrival order).
    pub fn recent(&self) -> Vec<RecordedTrace> {
        let mut all: Vec<RecordedTrace> = Vec::new();
        for stripe in &self.stripes {
            all.extend(stripe.lock().iter().cloned());
        }
        all.sort_by_key(|t| t.trace_id);
        all
    }

    /// Number of traces currently retained.
    pub fn len(&self) -> usize {
        self.stripes.iter().map(|s| s.lock().len()).sum() // ofmf-lint: allow(lock-discipline, "stripes are visited in ascending index order; no path holds two stripes otherwise")
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The cached rolling p99 (ns) for a route, once armed.
    pub fn route_p99_ns(&self, route: &str) -> Option<u64> {
        let state = Arc::clone(self.routes.read().get(route)?);
        // ofmf-lint: allow(atomic-ordering-audit, "advisory latency-threshold cache; a stale value only shifts the retention heuristic")
        match state.p99_ns.load(Ordering::Relaxed) {
            0 => None,
            p => Some(p),
        }
    }
}

/// The process-wide flight recorder.
pub fn recorder() -> &'static FlightRecorder {
    static RECORDER: OnceLock<FlightRecorder> = OnceLock::new();
    RECORDER.get_or_init(FlightRecorder::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finished(trace_id: u64, route: &str, duration_ns: u64, errored: bool, sampled: bool) -> FinishedTrace {
        FinishedTrace {
            trace_id,
            route: route.to_string(),
            started_unix_ms: 0,
            duration_ns,
            errored,
            sampled,
            spans: Vec::new(),
            spans_dropped: 0,
        }
    }

    #[test]
    fn trace_recorder_keeps_errored_and_sampled_only_while_cold() {
        let _g = crate::test_guard();
        let r = FlightRecorder::new();
        r.complete(finished(1, "t1", 1_000, false, false));
        assert!(r.get(1).is_none(), "cold fast trace not retained");
        r.complete(finished(2, "t1", 1_000, true, false));
        assert_eq!(r.get(2).unwrap().reason, RetainReason::Errored);
        r.complete(finished(3, "t1", 1_000, false, true));
        assert_eq!(r.get(3).unwrap().reason, RetainReason::Sampled);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn trace_recorder_retains_tail_latency_after_warmup() {
        let _g = crate::test_guard();
        let r = FlightRecorder::new();
        // Warm the route with fast completions, then send one 100× outlier.
        for i in 0..WARMUP_SAMPLES {
            r.complete(finished(100 + i, "t2", 10_000, false, false));
        }
        assert!(r.route_p99_ns("t2").is_some(), "p99 armed after warm-up");
        r.complete(finished(999, "t2", 1_000_000, false, false));
        assert_eq!(r.get(999).unwrap().reason, RetainReason::Slow);
        // A typical request after warm-up is still not retained.
        r.complete(finished(1000, "t2", 10_000, false, false));
        assert!(r.get(1000).is_none());
    }

    #[test]
    fn trace_recorder_stripes_are_bounded_and_evict_oldest() {
        let _g = crate::test_guard();
        let r = FlightRecorder::new();
        let stripe0 = |i: u64| i * RECORDER_STRIPES as u64; // all land in stripe 0
        for i in 1..=(STRIPE_CAPACITY as u64 + 3) {
            r.complete(finished(stripe0(i), "t3", 1_000, true, false));
        }
        assert_eq!(r.len(), STRIPE_CAPACITY);
        assert!(r.get(stripe0(1)).is_none(), "oldest evicted");
        assert!(r.get(stripe0(STRIPE_CAPACITY as u64 + 3)).is_some());
    }

    /// With `--features lockcheck`: drive the full span → recorder path
    /// (route map, stripes, span buffers, registry) and assert the
    /// process-global lock-order graph stays acyclic.
    #[cfg(feature = "lockcheck")]
    #[test]
    fn trace_recorder_lock_graph_is_acyclic() {
        let _g = crate::test_guard();
        for i in 0..64u64 {
            let mut root = crate::span::root_span("ofmf.test.span_lockgraph");
            root.set_route("lockgraph");
            if i % 2 == 0 {
                root.set_error();
            }
            let _child = crate::span::child_span("ofmf.test.span_lockgraph_child");
        }
        let report = parking_lot::lock_order_report();
        assert!(
            report.cycles.is_empty(),
            "recorder locking introduced a potential deadlock:\n{}",
            report.render()
        );
    }

    #[test]
    fn trace_recorder_route_cardinality_is_capped() {
        let _g = crate::test_guard();
        let r = FlightRecorder::new();
        let routes: Vec<String> = (0..MAX_ROUTES + 10).map(|i| format!("t4.{i}")).collect();
        for (i, route) in routes.iter().enumerate() {
            r.complete(finished(5_000 + i as u64, route, 1_000, false, false));
        }
        assert!(r.routes.read().len() <= MAX_ROUTES + 1, "overflow shares one bucket");
        assert!(r.routes.read().contains_key(OVERFLOW_ROUTE));
    }
}
