//! The instruments: counters, gauges and log-bucketed histograms.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Monotonically increasing count (requests served, batches dropped, …).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// New counter at zero.
    pub const fn new() -> Counter {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A value that goes up and down (queue depth, in-flight operations, …).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// New gauge at zero.
    pub const fn new() -> Gauge {
        Gauge {
            value: AtomicI64::new(0),
        }
    }

    /// Set to an absolute value.
    pub fn set(&self, v: i64) {
        if crate::enabled() {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Add `n` (may be negative via [`Gauge::sub`]).
    pub fn add(&self, n: i64) {
        if crate::enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Subtract `n`.
    pub fn sub(&self, n: i64) {
        self.add(-n);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of logarithmic buckets: bucket `i` holds values in
/// `[2^(i-1), 2^i)`, bucket 0 holds zero.
pub const BUCKETS: usize = 64;

/// A lock-free latency histogram with power-of-two buckets.
///
/// Recording is four relaxed atomic ops; quantiles are computed at snapshot
/// time by walking the bucket array. Bucket resolution (a factor of two) is
/// coarse but honest for latency work: p99 answers "which power-of-two band"
/// — exactly the granularity tail-latency regressions show up at.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    /// Last trace id that landed in each bucket (0 = none): exemplars that
    /// link a latency band to a concrete flight-recorder trace.
    exemplars: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// New empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            exemplars: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn bucket_of(v: u64) -> usize {
        ((u64::BITS - v.leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// Representative (midpoint) value for a bucket index.
    fn bucket_mid(i: usize) -> u64 {
        if i == 0 {
            return 0;
        }
        let lo = 1u64 << (i - 1);
        lo + lo / 2
    }

    /// Record a raw value (nanoseconds by convention).
    pub fn record(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record an elapsed duration in nanoseconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// [`Histogram::record`] plus an exemplar: the trace id is stored on
    /// the value's bucket, and samples landing in the top latency band
    /// (within 2× of the previous maximum) count as exemplar hits
    /// (`ofmf.trace.exemplar.hits.total`) — the cheap-request path's link
    /// into the flight recorder.
    pub fn record_with_exemplar(&self, v: u64, trace_id: u64) {
        if !crate::enabled() {
            return;
        }
        let prior_max = self.max.load(Ordering::Relaxed);
        self.record(v);
        if trace_id == 0 {
            return;
        }
        self.exemplars[Self::bucket_of(v)].store(trace_id, Ordering::Relaxed);
        if v.saturating_mul(2) >= prior_max {
            crate::span::trace_metrics().exemplar_hits.inc();
        }
    }

    /// The exemplar trace ids currently attached to nonempty buckets, as
    /// `(bucket_midpoint, trace_id)` pairs in ascending value order.
    pub fn bucket_exemplars(&self) -> Vec<(u64, u64)> {
        (0..BUCKETS)
            .filter_map(|i| match self.exemplars[i].load(Ordering::Relaxed) {
                0 => None,
                id => Some((Self::bucket_mid(i), id)),
            })
            .collect()
    }

    /// The exemplar from the highest occupied bucket — a trace id for the
    /// worst latency band seen so far.
    pub fn top_exemplar(&self) -> Option<u64> {
        self.bucket_exemplars().last().map(|&(_, id)| id)
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Consistent-enough view of the distribution (concurrent recording may
    /// skew quantiles by a sample or two; fine for monitoring).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let count: u64 = counts.iter().sum();
        let sum = self.sum.load(Ordering::Relaxed);
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0;
            for (i, c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return Self::bucket_mid(i);
                }
            }
            Self::bucket_mid(BUCKETS - 1)
        };
        HistogramSnapshot {
            count,
            mean: if count == 0 { 0.0 } else { sum as f64 / count as f64 },
            p50: quantile(0.50),
            p95: quantile(0.95),
            p99: quantile(0.99),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Arithmetic mean of raw values.
    pub mean: f64,
    /// Median (bucket midpoint).
    pub p50: u64,
    /// 95th percentile (bucket midpoint).
    pub p95: u64,
    /// 99th percentile (bucket midpoint).
    pub p99: u64,
    /// Largest recorded value (exact).
    pub max: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let _g = crate::test_guard();
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.add(3);
        g.sub(1);
        assert_eq!(g.get(), 2);
        g.set(-7);
        assert_eq!(g.get(), -7);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn histogram_quantiles_track_distribution() {
        let _g = crate::test_guard();
        let h = Histogram::new();
        // 100 fast (≈1 µs) and 1 slow (≈1 ms) sample.
        for _ in 0..100 {
            h.record(1_000);
        }
        h.record(1_000_000);
        let s = h.snapshot();
        assert_eq!(s.count, 101);
        assert_eq!(s.max, 1_000_000);
        // p50 lands in the 1 µs band, max-bucket p100 the 1 ms band.
        assert!(s.p50 >= 512 && s.p50 < 2_048, "p50 = {}", s.p50);
        assert!(s.p99 < 1_000_000, "p99 excludes the single outlier");
        assert!(s.mean > 1_000.0 && s.mean < 20_000.0);
    }

    #[test]
    fn empty_histogram_snapshot_is_zeroed() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p99, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn trace_exemplars_stick_to_buckets_and_count_top_band_hits() {
        let _g = crate::test_guard();
        let h = Histogram::new();
        let hits = || crate::span::trace_metrics().exemplar_hits.get();
        let before = hits();
        // First sample always counts as a top-band hit.
        h.record_with_exemplar(1_000, 7);
        assert_eq!(hits(), before + 1);
        // A much slower sample is a hit and owns the top bucket.
        h.record_with_exemplar(1_000_000, 8);
        assert_eq!(hits(), before + 2);
        assert_eq!(h.top_exemplar(), Some(8));
        // A fast sample (same [512,1024) bucket as the first) updates its
        // bucket's exemplar but is not a hit.
        h.record_with_exemplar(900, 9);
        assert_eq!(hits(), before + 2);
        let ex = h.bucket_exemplars();
        assert_eq!(ex.len(), 2);
        assert_eq!(ex[0].1, 9, "fast bucket now exemplified by trace 9");
        // Anonymous samples (no trace) leave exemplars untouched.
        h.record_with_exemplar(1_200, 0);
        assert_eq!(h.bucket_exemplars(), ex);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn disabled_instruments_record_nothing() {
        let _g = crate::test_guard();
        let c = Counter::new();
        let h = Histogram::new();
        crate::set_enabled(false);
        c.inc();
        h.record(5);
        crate::set_enabled(true);
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        c.inc();
        assert_eq!(c.get(), 1);
    }
}
