//! The Composability Manager itself: compose / decompose, dynamic
//! reprovisioning and event-driven fail-over recovery.
//!
//! Every binding is materialized as its own zone + connection pair on the
//! owning fabric: the zone scopes visibility to exactly {initiator, target}
//! and the connection carries the capacity carve. One-zone-per-binding keeps
//! grow/shrink/fail-over local — rebinding memory never touches the zones of
//! other bindings.

use crate::inventory::Inventory;
use crate::policy::PolicySet;
use crate::probe::Prober;
use crate::request::{Binding, BindingKind, ComposedSystem, CompositionRequest};
use crate::strategy::{choose_gpu_with, choose_memory_with, choose_storage_with, Strategy};
use ofmf_core::Ofmf;
use ofmf_wal::WalRecord;
use parking_lot::Mutex;
use redfish_model::odata::ODataId;
use redfish_model::path::top;
use redfish_model::resources::events::EventType;
use redfish_model::{RedfishError, RedfishResult};
use serde_json::{json, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

struct ComposerMetrics {
    /// `ofmf.composer.compose.<strategy>.latency_ns`, indexed by
    /// [`Strategy::index`].
    compose_latency: [Arc<ofmf_obs::Histogram>; 3],
    /// `ofmf.composer.decompose.latency_ns`
    decompose_latency: Arc<ofmf_obs::Histogram>,
    /// `ofmf.composer.composed.total`
    composed: Arc<ofmf_obs::Counter>,
    /// `ofmf.composer.reject.<reason>` — why requests were refused.
    reject_no_node: Arc<ofmf_obs::Counter>,
    reject_memory: Arc<ofmf_obs::Counter>,
    reject_gpu: Arc<ofmf_obs::Counter>,
    reject_storage: Arc<ofmf_obs::Counter>,
    reject_other: Arc<ofmf_obs::Counter>,
}

impl ComposerMetrics {
    fn count_rejection(&self, e: &RedfishError) {
        let c = match e {
            RedfishError::InsufficientResources(msg) => {
                if msg.contains("node") {
                    &self.reject_no_node
                } else if msg.contains("memory") || msg.contains("spread") {
                    &self.reject_memory
                } else if msg.contains("GPU") {
                    &self.reject_gpu
                } else if msg.contains("storage") {
                    &self.reject_storage
                } else {
                    &self.reject_other
                }
            }
            _ => &self.reject_other,
        };
        c.inc();
    }
}

fn composer_metrics() -> &'static ComposerMetrics {
    static METRICS: std::sync::OnceLock<ComposerMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| ComposerMetrics {
        compose_latency: std::array::from_fn(|i| {
            ofmf_obs::histogram(&format!(
                "ofmf.composer.compose.{}.latency_ns",
                // ofmf-lint: allow(no-panic-path, "from_fn passes i < N and Strategy::ALL has N entries")
                Strategy::ALL[i].label()
            ))
        }),
        decompose_latency: ofmf_obs::histogram("ofmf.composer.decompose.latency_ns"),
        composed: ofmf_obs::counter("ofmf.composer.composed.total"),
        reject_no_node: ofmf_obs::counter("ofmf.composer.reject.no_node"),
        reject_memory: ofmf_obs::counter("ofmf.composer.reject.memory"),
        reject_gpu: ofmf_obs::counter("ofmf.composer.reject.gpu"),
        reject_storage: ofmf_obs::counter("ofmf.composer.reject.storage"),
        reject_other: ofmf_obs::counter("ofmf.composer.reject.other"),
    })
}

/// The Composability Manager.
pub struct Composer {
    ofmf: Arc<Ofmf>,
    strategy: Strategy,
    policy: PolicySet,
    state: Mutex<BTreeMap<ODataId, ComposedSystem>>,
    prober: Prober,
}

impl Composer {
    /// New composer over an OFMF with the given strategy and default
    /// policies.
    pub fn new(ofmf: Arc<Ofmf>, strategy: Strategy) -> Self {
        Composer {
            ofmf,
            strategy,
            policy: PolicySet::default(),
            state: Mutex::new(BTreeMap::new()),
            prober: Prober::new(),
        }
    }

    /// Override the policy set.
    #[must_use]
    pub fn with_policy(mut self, policy: PolicySet) -> Self {
        self.policy = policy;
        self
    }

    /// Use the sequential per-candidate probing baseline instead of batched
    /// parallel probing. Kept for A/B comparison in benches and property
    /// tests, mirroring `EventService::with_linear_matching`.
    #[must_use]
    pub fn with_sequential_probing(mut self) -> Self {
        self.prober = self.prober.with_sequential_probing();
        self
    }

    /// Override the probing engine wholesale (benches swap in hop-count-only
    /// scoring here).
    #[must_use]
    pub fn with_prober(mut self, prober: Prober) -> Self {
        self.prober = prober;
        self
    }

    /// The probing engine (test/bench observation).
    pub fn prober(&self) -> &Prober {
        &self.prober
    }

    /// The strategy in use.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The OFMF this composer manages.
    pub fn ofmf(&self) -> &Arc<Ofmf> {
        &self.ofmf
    }

    /// Live compositions, keyed by composed-system id.
    pub fn compositions(&self) -> Vec<ComposedSystem> {
        self.state.lock().values().cloned().collect()
    }

    /// Look up one composition.
    pub fn find(&self, system: &ODataId) -> Option<ComposedSystem> {
        self.state.lock().get(system).cloned()
    }

    /// Current inventory as the composer sees it (bound nodes excluded).
    pub fn inventory(&self) -> Inventory {
        let bound: Vec<ODataId> = self.state.lock().values().map(|c| c.node.clone()).collect();
        Inventory::scan(&self.ofmf, &bound)
    }

    // ------------------------------------------------------------- compose

    /// Satisfy a composition request, or fail with 507 when the pools
    /// cannot cover it. All-or-nothing: partial bindings are rolled back.
    pub fn compose(&self, request: &CompositionRequest) -> RedfishResult<ComposedSystem> {
        let metrics = composer_metrics();
        // ofmf-lint: allow(no-panic-path, "strategy.index() enumerates Strategy::ALL, the array's length")
        let _span = ofmf_obs::Trace::begin(&metrics.compose_latency[self.strategy.index()]);
        // Composes are rare control-plane transactions: always retain their
        // trace tree in the flight recorder, regardless of latency.
        let mut tspan = ofmf_obs::enter_span("ofmf.composer.compose");
        tspan.force_sample();
        tspan.annotate("request", request.name.as_str());
        tspan.annotate("strategy", self.strategy.label());
        let result = self.compose_inner(request);
        match &result {
            Ok(_) => metrics.composed.inc(),
            Err(e) => {
                metrics.count_rejection(e);
                tspan.set_error();
                tspan.annotate("error", e.to_string());
            }
        }
        result
    }

    fn compose_inner(&self, request: &CompositionRequest) -> RedfishResult<ComposedSystem> {
        let inv = self.inventory();

        // 1. Pick the compute node.
        let node = inv
            .compute
            .iter()
            .find(|c| c.cores >= request.cores && c.memory_gib >= request.local_memory_gib)
            .ok_or_else(|| {
                RedfishError::InsufficientResources(format!(
                    "no free node with ≥{} cores and ≥{} GiB",
                    request.cores, request.local_memory_gib
                ))
            })?
            .clone();

        // 2. Plan the fabric bindings (sizes + targets) up front so failures
        //    happen before any mutation.
        let mut planned: Vec<(String, ODataId, ODataId, u64, BindingKind)> = Vec::new();
        // (fabric, target endpoint, bound resource placeholder, size, kind)

        if request.fabric_memory_mib > 0 {
            if request.spread_memory {
                let eligible: Vec<&crate::inventory::MemoryPool> = inv
                    .memory
                    .iter()
                    .filter(|p| node.endpoints.contains_key(&p.fabric))
                    .collect();
                let plan = self
                    .policy
                    .spread_plan(&eligible, request.fabric_memory_mib)
                    .ok_or_else(|| {
                        RedfishError::InsufficientResources(format!(
                            "cannot spread {} MiB across ≤{} pools",
                            request.fabric_memory_mib, self.policy.max_memory_spread
                        ))
                    })?;
                for (idx, size) in plan {
                    // ofmf-lint: allow(no-panic-path, "spread_plan yields indices into the eligible slice it was given")
                    let p = eligible[idx];
                    planned.push((
                        p.fabric.clone(),
                        p.endpoint.clone(),
                        p.domain.clone(),
                        size,
                        BindingKind::Memory,
                    ));
                }
            } else {
                let eligible: Vec<crate::inventory::MemoryPool> = inv
                    .memory
                    .iter()
                    .filter(|p| self.policy.allows_carve(p, request.fabric_memory_mib))
                    .cloned()
                    .collect();
                let (chosen, skipped) = choose_memory_with(
                    &self.prober,
                    self.strategy,
                    &eligible,
                    request.fabric_memory_mib,
                    &self.ofmf,
                    &node.endpoints,
                );
                note_skipped_fabrics(&skipped);
                let p = chosen.ok_or_else(|| {
                    RedfishError::InsufficientResources(format!(
                        "no memory pool with {} MiB free under policy",
                        request.fabric_memory_mib
                    ))
                })?;
                planned.push((
                    p.fabric.clone(),
                    p.endpoint.clone(),
                    p.domain.clone(),
                    request.fabric_memory_mib,
                    BindingKind::Memory,
                ));
            }
        }

        let mut gpus = inv.gpus.clone();
        for _ in 0..request.gpus {
            let (picked, skipped) = choose_gpu_with(&self.prober, self.strategy, &gpus, &self.ofmf, &node.endpoints);
            note_skipped_fabrics(&skipped);
            let chosen = picked
                .ok_or_else(|| RedfishError::InsufficientResources("no free GPU".into()))?
                .clone();
            gpus.iter_mut()
                .find(|g| g.processor == chosen.processor)
                .ok_or_else(|| RedfishError::Internal("chosen GPU vanished from inventory".into()))?
                .assigned = true;
            planned.push((chosen.fabric, chosen.endpoint, chosen.processor, 1, BindingKind::Gpu));
        }

        if request.storage_bytes > 0 {
            let (chosen, skipped) = choose_storage_with(
                &self.prober,
                self.strategy,
                &inv.storage,
                request.storage_bytes,
                &self.ofmf,
                &node.endpoints,
            );
            note_skipped_fabrics(&skipped);
            let p = chosen.ok_or_else(|| {
                RedfishError::InsufficientResources(format!(
                    "no storage pool with {} bytes free",
                    request.storage_bytes
                ))
            })?;
            planned.push((
                p.fabric.clone(),
                p.endpoint.clone(),
                p.pool.clone(),
                request.storage_bytes,
                BindingKind::Storage,
            ));
        }

        // 3. Journal the intent — with zone/connection member ids allocated
        //    up front — BEFORE any agent mutation, so a crash mid-bind leaves
        //    a WAL record naming every path recovery must inspect.
        let sys_col = ODataId::new(top::SYSTEMS);
        let sys_id = sys_col.child(&request.name);
        let planned: Vec<(String, ODataId, ODataId, u64, BindingKind, String, String)> = planned
            .into_iter()
            .map(|(fabric, target_ep, hint, size, kind)| {
                let zone_id = self.ofmf.next_member_id("z");
                let conn_id = self.ofmf.next_member_id("c");
                (fabric, target_ep, hint, size, kind, zone_id, conn_id)
            })
            .collect();
        self.ofmf.wal_record(WalRecord::ComposeIntent {
            system: sys_id.as_str().to_string(),
            node: node.system.as_str().to_string(),
            request: request.to_value(),
            planned: Value::Array(
                planned
                    .iter()
                    .map(|(fabric, target_ep, hint, size, kind, zone_id, conn_id)| {
                        json!({
                            "Fabric": fabric.as_str(),
                            "Target": target_ep.as_str(),
                            "Resource": hint.as_str(),
                            "Size": *size,
                            "Kind": kind.label(),
                            "ZoneId": zone_id.as_str(),
                            "ConnId": conn_id.as_str(),
                        })
                    })
                    .collect(),
            ),
        });
        let abort = |bindings: &[Binding]| {
            self.unbind_all(bindings);
            self.ofmf.wal_record(WalRecord::ComposeAbort {
                system: sys_id.as_str().to_string(),
            });
        };

        // 4. Execute: bind each planned resource; roll everything back on
        //    the first failure.
        let mut bindings: Vec<Binding> = Vec::with_capacity(planned.len());
        for (fabric, target_ep, _resource_hint, size, kind, zone_id, conn_id) in planned {
            let Some(initiator) = node.endpoints.get(&fabric).cloned() else {
                // Planner invariant broken (fabric dropped mid-compose):
                // compensate before surfacing.
                abort(&bindings);
                return Err(RedfishError::Internal(format!(
                    "node {} lost its endpoint on fabric {fabric} mid-compose",
                    node.system
                )));
            };
            let qos = match kind {
                BindingKind::Memory => request.memory_bandwidth_gbps,
                BindingKind::Storage => request.storage_bandwidth_gbps,
                BindingKind::Gpu => request.gpu_bandwidth_gbps,
            };
            match self.bind(&fabric, &initiator, &target_ep, size, kind, qos, &zone_id, &conn_id) {
                Ok(b) => {
                    self.ofmf.wal_record(WalRecord::BindDone {
                        system: sys_id.as_str().to_string(),
                        binding: b.to_value(),
                    });
                    bindings.push(b);
                }
                Err(e) => {
                    // Compensation: unwind every binding already made on the
                    // surviving fabrics, then name the fabric that failed so
                    // the 503 is actionable.
                    abort(&bindings);
                    return Err(name_failed_fabric(e, &fabric));
                }
            }
        }

        // 5. Materialize the composed system resource.
        let composed = ComposedSystem {
            system: sys_id.clone(),
            node: node.system.clone(),
            bindings,
            request: request.clone(),
        };
        let doc = json!({
            "@odata.type": "#ComputerSystem.v1_20_0.ComputerSystem",
            "Id": request.name,
            "Name": request.name,
            "SystemType": "Composed",
            "PowerState": "On",
            "Status": {"State": "Enabled", "Health": "OK"},
            "ProcessorSummary": {"Count": 2, "CoreCount": node.cores},
            "MemorySummary": {"TotalSystemMemoryGiB": node.memory_gib + composed.bound_memory_mib() / 1024},
            "Links": {"ResourceBlocks": composed.resource_block_links()},
        });
        if let Err(e) = self.ofmf.registry.create(&sys_id, doc) {
            abort(&composed.bindings);
            return Err(e);
        }
        // Mark granted GPUs.
        for b in composed.bindings.iter().filter(|b| b.kind == BindingKind::Gpu) {
            let _ = self.ofmf.registry.patch(
                &b.resource,
                &json!({"Oem": {"OFMF": {"AssignedTo": sys_id.as_str()}}}),
                None,
            );
        }
        self.ofmf.events.publish(
            EventType::ResourceAdded,
            &sys_id,
            format!("system {} composed on {}", request.name, node.system),
            "OK",
        );
        // Commit marks the transaction complete: replay treats anything
        // journaled after the intent but before this record as half-bound.
        self.state.lock().insert(sys_id.clone(), composed.clone());
        self.ofmf.wal_record(WalRecord::ComposeCommit {
            system: sys_id.as_str().to_string(),
        });
        Ok(composed)
    }

    /// Create the zone + connection for one binding. The member ids are
    /// allocated by the caller so they can be journaled before any mutation.
    #[allow(clippy::too_many_arguments)]
    fn bind(
        &self,
        fabric: &str,
        initiator: &ODataId,
        target_ep: &ODataId,
        size: u64,
        kind: BindingKind,
        qos_gbps: f64,
        zone_id: &str,
        conn_id: &str,
    ) -> RedfishResult<Binding> {
        let mut bspan = ofmf_obs::child_span("ofmf.composer.bind");
        bspan.annotate("fabric", fabric);
        bspan.annotate("kind", kind.label());
        // Power-gated pool devices are woken on demand before binding.
        crate::energy::wake_backing(self, target_ep);
        let fabric_root = ODataId::new(top::FABRICS).child(fabric);
        let zone = self.ofmf.post(
            &fabric_root.child("Zones"),
            &json!({
                "Id": zone_id,
                "Links": {"Endpoints": [
                    {"@odata.id": initiator.as_str()},
                    {"@odata.id": target_ep.as_str()},
                ]}
            }),
        )?;
        let connection = match self.ofmf.post(
            &fabric_root.child("Connections"),
            &json!({
                "Id": conn_id,
                "Zone": {"@odata.id": zone.as_str()},
                "Size": size,
                "BandwidthGbps": qos_gbps,
                "Links": {
                    "InitiatorEndpoints": [{"@odata.id": initiator.as_str()}],
                    "TargetEndpoints": [{"@odata.id": target_ep.as_str()}],
                }
            }),
        ) {
            Ok(c) => c,
            Err(e) => {
                let _ = self.ofmf.delete(&zone);
                return Err(e);
            }
        };
        // The materialized resource is what the connection references.
        let conn_body = self.ofmf.registry.get(&connection)?.body;
        // ofmf-lint: allow(no-panic-path, "Value usize indexing is total; out-of-range yields Null")
        let resource = conn_body["MemoryChunkInfo"][0]["Resource"]["@odata.id"]
            .as_str()
            // ofmf-lint: allow(no-panic-path, "Value usize indexing is total; out-of-range yields Null")
            .or_else(|| conn_body["VolumeInfo"][0]["Resource"]["@odata.id"].as_str())
            .or_else(|| conn_body["Oem"]["OFMF"]["Resource"]["@odata.id"].as_str())
            .map(ODataId::new)
            .unwrap_or_else(|| target_ep.clone());
        // The new reservation moved this fabric's residuals: cached probe
        // scores for it are stale.
        self.prober.invalidate_fabric(fabric);
        Ok(Binding {
            fabric: fabric.to_string(),
            zone,
            connection,
            resource,
            size,
            kind,
        })
    }

    fn unbind_all(&self, bindings: &[Binding]) {
        let mut uspan = ofmf_obs::child_span("ofmf.composer.unbind_all");
        uspan.annotate("bindings", bindings.len().to_string());
        for b in bindings {
            let _ = self.ofmf.delete(&b.connection);
            let _ = self.ofmf.delete(&b.zone);
            // Decomposition credits bandwidth back: drop stale probe scores.
            self.prober.invalidate_fabric(&b.fabric);
            if b.kind == BindingKind::Gpu {
                let _ = self
                    .ofmf
                    .registry
                    .patch(&b.resource, &json!({"Oem": {"OFMF": {"AssignedTo": null}}}), None);
            }
        }
    }

    // ----------------------------------------------------------- decompose

    /// Tear a composition down, returning every resource to its pool.
    pub fn decompose(&self, system: &ODataId) -> RedfishResult<()> {
        let _span = ofmf_obs::Trace::begin(&composer_metrics().decompose_latency);
        let mut tspan = ofmf_obs::enter_span("ofmf.composer.decompose");
        tspan.force_sample();
        tspan.annotate("system", system.as_str());
        let composed = self
            .state
            .lock()
            .remove(system)
            .ok_or_else(|| RedfishError::NotFound(system.clone()))?;
        self.unbind_all(&composed.bindings);
        self.ofmf.registry.delete(system)?;
        self.ofmf.wal_record(WalRecord::Decompose {
            system: system.as_str().to_string(),
        });
        self.ofmf.events.publish(
            EventType::ResourceRemoved,
            system,
            format!("system {} decomposed; resources returned to pools", system.leaf()),
            "OK",
        );
        Ok(())
    }

    // -------------------------------------------------- dynamic reprovision

    /// Grow a running composition's fabric memory by `extra_mib` (the OOM
    /// mitigation path). Creates an additional binding; existing ones are
    /// untouched, so the running job never loses memory.
    pub fn grow_memory(&self, system: &ODataId, extra_mib: u64) -> RedfishResult<Binding> {
        let (node_endpoints, _node) = {
            let state = self.state.lock();
            let c = state
                .get(system)
                .ok_or_else(|| RedfishError::NotFound(system.clone()))?;
            let inv_node = Inventory::scan(&self.ofmf, &[])
                .compute
                .into_iter()
                .chain(std::iter::empty())
                .find(|n| n.system == c.node);
            // The node is bound (excluded from the free list), so rebuild
            // its endpoint map directly from the tree.
            let endpoints = match inv_node {
                Some(n) => n.endpoints,
                None => Self::endpoints_of(&self.ofmf, &c.node),
            };
            (endpoints, c.node.clone())
        };
        let inv = Inventory::scan(&self.ofmf, &[]);
        let eligible: Vec<crate::inventory::MemoryPool> = inv
            .memory
            .iter()
            .filter(|p| self.policy.allows_carve(p, extra_mib))
            .cloned()
            .collect();
        let (chosen, skipped) = choose_memory_with(
            &self.prober,
            self.strategy,
            &eligible,
            extra_mib,
            &self.ofmf,
            &node_endpoints,
        );
        note_skipped_fabrics(&skipped);
        let pool = chosen
            .ok_or_else(|| RedfishError::InsufficientResources(format!("no pool can grow by {extra_mib} MiB")))?
            .clone();
        let initiator = node_endpoints
            .get(&pool.fabric)
            .ok_or_else(|| RedfishError::Internal("node lost its fabric endpoint".into()))?
            .clone();
        let qos = {
            let state = self.state.lock();
            state
                .get(system)
                .map(|c| c.request.memory_bandwidth_gbps)
                .unwrap_or(0.0)
        };
        let zone_id = self.ofmf.next_member_id("z");
        let conn_id = self.ofmf.next_member_id("c");
        let binding = self.bind(
            &pool.fabric,
            &initiator,
            &pool.endpoint,
            extra_mib,
            BindingKind::Memory,
            qos,
            &zone_id,
            &conn_id,
        )?;
        self.ofmf.wal_record(WalRecord::BindAdded {
            system: system.as_str().to_string(),
            binding: binding.to_value(),
        });
        let mut state = self.state.lock();
        let c = state
            .get_mut(system)
            .ok_or_else(|| RedfishError::NotFound(system.clone()))?;
        c.bindings.push(binding.clone());
        let node_gib = self
            .ofmf
            .registry
            .get(&c.node)
            .ok()
            .and_then(|s| s.body["MemorySummary"]["TotalSystemMemoryGiB"].as_u64())
            .unwrap_or(c.request.local_memory_gib);
        let new_total = node_gib + c.bound_memory_mib() / 1024;
        drop(state);
        let _ = self.ofmf.registry.patch(
            system,
            &json!({"MemorySummary": {"TotalSystemMemoryGiB": new_total}}),
            None,
        );
        self.refresh_resource_blocks(system);
        self.ofmf.events.publish(
            EventType::ResourceUpdated,
            system,
            format!("grew fabric memory by {extra_mib} MiB (OOM mitigation)"),
            "OK",
        );
        Ok(binding)
    }

    /// Attach additional fabric storage to a running composition (the I/O
    /// thrash mitigation path).
    pub fn attach_storage(&self, system: &ODataId, bytes: u64) -> RedfishResult<Binding> {
        let node = {
            let state = self.state.lock();
            let c = state
                .get(system)
                .ok_or_else(|| RedfishError::NotFound(system.clone()))?;
            c.node.clone()
        };
        let node_endpoints = Self::endpoints_of(&self.ofmf, &node);
        let inv = Inventory::scan(&self.ofmf, &[]);
        let (chosen, skipped) = choose_storage_with(
            &self.prober,
            self.strategy,
            &inv.storage,
            bytes,
            &self.ofmf,
            &node_endpoints,
        );
        note_skipped_fabrics(&skipped);
        let pool = chosen
            .ok_or_else(|| RedfishError::InsufficientResources(format!("no storage pool with {bytes} bytes")))?
            .clone();
        let initiator = node_endpoints
            .get(&pool.fabric)
            .ok_or_else(|| RedfishError::Internal("node lost its fabric endpoint".into()))?
            .clone();
        let qos = {
            let state = self.state.lock();
            state
                .get(system)
                .map(|c| c.request.storage_bandwidth_gbps)
                .unwrap_or(0.0)
        };
        let zone_id = self.ofmf.next_member_id("z");
        let conn_id = self.ofmf.next_member_id("c");
        let binding = self.bind(
            &pool.fabric,
            &initiator,
            &pool.endpoint,
            bytes,
            BindingKind::Storage,
            qos,
            &zone_id,
            &conn_id,
        )?;
        self.ofmf.wal_record(WalRecord::BindAdded {
            system: system.as_str().to_string(),
            binding: binding.to_value(),
        });
        let mut state = self.state.lock();
        let c = state
            .get_mut(system)
            .ok_or_else(|| RedfishError::NotFound(system.clone()))?;
        c.bindings.push(binding.clone());
        drop(state);
        self.refresh_resource_blocks(system);
        self.ofmf.events.publish(
            EventType::ResourceUpdated,
            system,
            format!("attached {bytes} bytes of fabric storage"),
            "OK",
        );
        Ok(binding)
    }

    /// Re-sync the composed system document's `Links.ResourceBlocks` with
    /// the current binding set (bindings change under grow/attach/
    /// reconcile, and lost bindings would otherwise leave dangling links).
    fn refresh_resource_blocks(&self, system: &ODataId) {
        let links = {
            let state = self.state.lock();
            let Some(c) = state.get(system) else { return };
            c.resource_block_links()
        };
        let _ = self
            .ofmf
            .registry
            .patch(system, &json!({"Links": {"ResourceBlocks": links}}), None);
    }

    /// Rebuild the fabric-endpoint map of a node from the tree.
    fn endpoints_of(ofmf: &Ofmf, node: &ODataId) -> BTreeMap<String, ODataId> {
        let mut out = BTreeMap::new();
        for ep_id in ofmf.registry.ids_of_type("#Endpoint.") {
            let Ok(stored) = ofmf.registry.get(&ep_id) else {
                continue;
            };
            let Some(entities) = stored.body["ConnectedEntities"].as_array() else {
                continue;
            };
            let is_ours = entities.iter().any(|e| {
                e["EntityRole"] == "Initiator" && e["EntityLink"]["@odata.id"].as_str() == Some(node.as_str())
            });
            if is_ours {
                if let Some(f) = redfish_model::path::fabric_id_of(ep_id.as_str()) {
                    out.insert(f.to_string(), ep_id.clone());
                }
            }
        }
        out
    }

    // ------------------------------------------------------------ reconcile

    /// Repair compositions whose connections disappeared (fabric fail-over
    /// exhausted all paths and the agent tore the connection down). For each
    /// missing memory/storage binding, re-bind the same capacity from the
    /// remaining pools. Returns `(repaired, lost)` binding counts.
    pub fn reconcile(&self) -> (usize, usize) {
        let systems: Vec<ODataId> = self.state.lock().keys().cloned().collect();
        let mut repaired = 0;
        let mut lost = 0;
        for sys in systems {
            let missing: Vec<Binding> = {
                let state = self.state.lock();
                let Some(c) = state.get(&sys) else { continue };
                c.bindings
                    .iter()
                    .filter(|b| !self.ofmf.registry.exists(&b.connection))
                    .cloned()
                    .collect()
            };
            for b in missing {
                // Drop the dead binding (and its now-empty zone).
                {
                    let mut state = self.state.lock();
                    if let Some(c) = state.get_mut(&sys) {
                        c.bindings.retain(|x| x.connection != b.connection);
                    }
                }
                self.refresh_resource_blocks(&sys);
                let _ = self.ofmf.delete(&b.zone);
                let outcome = match b.kind {
                    BindingKind::Memory => self.grow_memory(&sys, b.size).map(|_| ()),
                    BindingKind::Storage => self.attach_storage(&sys, b.size).map(|_| ()),
                    BindingKind::Gpu => Err(RedfishError::InsufficientResources(
                        "GPU grants are not auto-rebound".into(),
                    )),
                };
                match outcome {
                    Ok(()) => {
                        repaired += 1;
                        self.ofmf.events.publish(
                            EventType::StatusChange,
                            &sys,
                            format!("rebound lost {:?} binding of {} units", b.kind, b.size),
                            "Warning",
                        );
                    }
                    Err(_) => {
                        lost += 1;
                        self.ofmf.events.publish(
                            EventType::Alert,
                            &sys,
                            format!("could not rebind lost {:?} binding of {} units", b.kind, b.size),
                            "Critical",
                        );
                    }
                }
            }
        }
        (repaired, lost)
    }

    // ------------------------------------------------------------- recovery

    /// Rebuild composer state after a crash-restart from the WAL records the
    /// OFMF boot replay set aside. Committed compositions are restored
    /// (bindings validated against the replayed tree); intents with no
    /// matching commit are half-bound transactions — their confirmed
    /// bindings are force-unwound, planned-but-unconfirmed zone/connection
    /// documents deleted, and a `ComposeAbort` journaled so a second restart
    /// does not re-compensate. Returns `(restored, compensated)` counts.
    pub fn recover(&self) -> (usize, usize) {
        let records = self.ofmf.take_recovered_compose();
        if records.is_empty() {
            return (0, 0);
        }
        struct Pending {
            node: String,
            request: Value,
            planned: Value,
            bindings: Vec<Binding>,
        }
        let mut pending: BTreeMap<String, Pending> = BTreeMap::new();
        let mut live: BTreeMap<String, (String, Value, Vec<Binding>)> = BTreeMap::new();
        for rec in records {
            match rec {
                WalRecord::ComposeIntent {
                    system,
                    node,
                    request,
                    planned,
                } => {
                    live.remove(&system);
                    pending.insert(
                        system,
                        Pending {
                            node,
                            request,
                            planned,
                            bindings: Vec::new(),
                        },
                    );
                }
                WalRecord::BindDone { system, binding } => {
                    if let (Some(p), Some(b)) = (pending.get_mut(&system), Binding::from_value(&binding)) {
                        p.bindings.push(b);
                    }
                }
                WalRecord::ComposeCommit { system } => {
                    if let Some(p) = pending.remove(&system) {
                        live.insert(system, (p.node, p.request, p.bindings));
                    }
                }
                WalRecord::ComposeAbort { system } => {
                    pending.remove(&system);
                }
                WalRecord::Decompose { system } => {
                    live.remove(&system);
                }
                WalRecord::BindAdded { system, binding } => {
                    if let (Some(l), Some(b)) = (live.get_mut(&system), Binding::from_value(&binding)) {
                        l.2.push(b);
                    }
                }
                WalRecord::ComposeLive {
                    system,
                    node,
                    request,
                    bindings,
                } => {
                    let bs = bindings
                        .as_array()
                        .map(|a| a.iter().filter_map(Binding::from_value).collect())
                        .unwrap_or_default();
                    live.insert(system, (node, request, bs));
                }
                _ => {}
            }
        }

        let mut restored = 0;
        for (system, (node, request, bindings)) in live {
            let sys_id = ODataId::new(&system);
            if !self.ofmf.registry.exists(&sys_id) {
                continue; // decomposed (or never materialized) before the crash
            }
            let Some(request) = CompositionRequest::from_value(&request) else {
                continue;
            };
            let bindings: Vec<Binding> = bindings
                .into_iter()
                .filter(|b| self.ofmf.registry.exists(&b.connection))
                .collect();
            self.state.lock().insert(
                sys_id.clone(),
                ComposedSystem {
                    system: sys_id,
                    node: ODataId::new(&node),
                    bindings,
                    request,
                },
            );
            restored += 1;
        }

        let mut compensated = 0;
        for (system, p) in pending {
            let sys_id = ODataId::new(&system);
            for b in &p.bindings {
                self.force_unbind(b);
            }
            if let Some(planned) = p.planned.as_array() {
                for entry in planned {
                    let fabric = entry.get("Fabric").and_then(Value::as_str);
                    let zone_id = entry.get("ZoneId").and_then(Value::as_str);
                    let conn_id = entry.get("ConnId").and_then(Value::as_str);
                    let (Some(fabric), Some(zone_id), Some(conn_id)) = (fabric, zone_id, conn_id) else {
                        continue;
                    };
                    let confirmed = p
                        .bindings
                        .iter()
                        .any(|b| b.zone.leaf() == zone_id || b.connection.leaf() == conn_id);
                    if confirmed {
                        continue; // force_unbind already handled it
                    }
                    // A half-applied bind may have created the zone (or even
                    // the connection) without a BindDone reaching the log.
                    let froot = ODataId::new(top::FABRICS).child(fabric);
                    self.force_delete(&froot.child("Connections").child(conn_id));
                    self.force_delete(&froot.child("Zones").child(zone_id));
                }
            }
            // The system document only exists if the crash hit between
            // create and commit; remove it with everything hanging off it.
            if self.ofmf.registry.exists(&sys_id) {
                self.ofmf.registry.delete_subtree(&sys_id);
            }
            self.ofmf.wal_record(WalRecord::ComposeAbort { system: system.clone() });
            self.ofmf.events.publish(
                EventType::Alert,
                &sys_id,
                format!(
                    "composition {} found half-bound after restart; compensated",
                    sys_id.leaf()
                ),
                "Warning",
            );
            compensated += 1;
        }
        (restored, compensated)
    }

    /// Unwind one binding during crash recovery. Freshly re-registered
    /// agents answer NotFound for pre-crash zones and connections, so when
    /// the agent path fails the replayed tree documents are dropped directly
    /// — stale links are worse than a lost disconnect RPC.
    fn force_unbind(&self, b: &Binding) {
        self.force_delete(&b.connection);
        self.force_delete(&b.zone);
        match b.kind {
            BindingKind::Gpu => {
                let _ = self
                    .ofmf
                    .registry
                    .patch(&b.resource, &json!({"Oem": {"OFMF": {"AssignedTo": null}}}), None);
            }
            BindingKind::Memory | BindingKind::Storage => {
                // The carve the dead connection backed: normally the agent's
                // disconnect response removes it, but a fresh agent never
                // knew it. Never an endpoint (the fallback resource when the
                // connection carried no carve info).
                if let Ok(stored) = self.ofmf.registry.get(&b.resource) {
                    if stored.odata_type().is_none_or(|t| !t.starts_with("#Endpoint.")) {
                        self.ofmf.registry.delete_subtree(&b.resource);
                    }
                }
            }
        }
    }

    /// Delete through the agent when possible, falling back to a direct
    /// tree prune when the agent disowns the resource.
    fn force_delete(&self, id: &ODataId) {
        if self.ofmf.delete(id).is_err() && self.ofmf.registry.exists(id) {
            self.ofmf.registry.delete_subtree(id);
        }
    }

    /// One `ComposeLive` record per live composition — the composer's
    /// contribution to a WAL snapshot.
    pub fn snapshot_records(&self) -> Vec<WalRecord> {
        self.state
            .lock()
            .values()
            .map(|c| WalRecord::ComposeLive {
                system: c.system.as_str().to_string(),
                node: c.node.as_str().to_string(),
                request: c.request.to_value(),
                bindings: Value::Array(c.bindings.iter().map(Binding::to_value).collect()),
            })
            .collect()
    }

    /// Register this composer as the OFMF's snapshot provider. Held through
    /// a `Weak` so the OFMF (owned by the composer) never keeps the composer
    /// alive in a reference cycle.
    pub fn attach_snapshot_provider(self: &Arc<Self>) {
        let weak = Arc::downgrade(self);
        self.ofmf.set_snapshot_provider(Some(Box::new(move || {
            weak.upgrade().map(|c| c.snapshot_records()).unwrap_or_default()
        })));
    }
}

/// Record fabrics whose probe batches failed during placement on the live
/// trace: the candidates degraded to unprobed scoring instead of being
/// silently dropped, and the span names exactly which fabrics went dark.
fn note_skipped_fabrics(skipped: &[String]) {
    if skipped.is_empty() {
        return;
    }
    let mut span = ofmf_obs::child_span("ofmf.composer.probe");
    span.annotate("skipped_fabrics", skipped.join(","));
    span.set_error();
}

/// Attribute an availability error to the fabric whose bind failed, so a
/// mid-compose agent loss surfaces as an actionable 503.
/// `CircuitOpen` already names its fabric; bare `AgentUnavailable` messages
/// get the fabric prefixed.
fn name_failed_fabric(e: RedfishError, fabric: &str) -> RedfishError {
    match e {
        RedfishError::AgentUnavailable(m) if !m.contains(fabric) => {
            RedfishError::AgentUnavailable(format!("fabric {fabric}: {m}"))
        }
        other => other,
    }
}
