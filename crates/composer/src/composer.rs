//! The Composability Manager itself: compose / decompose, dynamic
//! reprovisioning and event-driven fail-over recovery.
//!
//! Every binding is materialized as its own zone + connection pair on the
//! owning fabric: the zone scopes visibility to exactly {initiator, target}
//! and the connection carries the capacity carve. One-zone-per-binding keeps
//! grow/shrink/fail-over local — rebinding memory never touches the zones of
//! other bindings.

use crate::inventory::Inventory;
use crate::policy::PolicySet;
use crate::request::{Binding, BindingKind, ComposedSystem, CompositionRequest};
use crate::strategy::{choose_gpu, choose_memory, choose_storage, Strategy};
use ofmf_core::Ofmf;
use parking_lot::Mutex;
use redfish_model::odata::ODataId;
use redfish_model::path::top;
use redfish_model::resources::events::EventType;
use redfish_model::{RedfishError, RedfishResult};
use serde_json::json;
use std::collections::BTreeMap;
use std::sync::Arc;

struct ComposerMetrics {
    /// `ofmf.composer.compose.<strategy>.latency_ns`, indexed by
    /// [`Strategy::index`].
    compose_latency: [Arc<ofmf_obs::Histogram>; 3],
    /// `ofmf.composer.decompose.latency_ns`
    decompose_latency: Arc<ofmf_obs::Histogram>,
    /// `ofmf.composer.composed.total`
    composed: Arc<ofmf_obs::Counter>,
    /// `ofmf.composer.reject.<reason>` — why requests were refused.
    reject_no_node: Arc<ofmf_obs::Counter>,
    reject_memory: Arc<ofmf_obs::Counter>,
    reject_gpu: Arc<ofmf_obs::Counter>,
    reject_storage: Arc<ofmf_obs::Counter>,
    reject_other: Arc<ofmf_obs::Counter>,
}

impl ComposerMetrics {
    fn count_rejection(&self, e: &RedfishError) {
        let c = match e {
            RedfishError::InsufficientResources(msg) => {
                if msg.contains("node") {
                    &self.reject_no_node
                } else if msg.contains("memory") || msg.contains("spread") {
                    &self.reject_memory
                } else if msg.contains("GPU") {
                    &self.reject_gpu
                } else if msg.contains("storage") {
                    &self.reject_storage
                } else {
                    &self.reject_other
                }
            }
            _ => &self.reject_other,
        };
        c.inc();
    }
}

fn composer_metrics() -> &'static ComposerMetrics {
    static METRICS: std::sync::OnceLock<ComposerMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| ComposerMetrics {
        compose_latency: std::array::from_fn(|i| {
            ofmf_obs::histogram(&format!(
                "ofmf.composer.compose.{}.latency_ns",
                // ofmf-lint: allow(no-panic-path, "from_fn passes i < N and Strategy::ALL has N entries")
                Strategy::ALL[i].label()
            ))
        }),
        decompose_latency: ofmf_obs::histogram("ofmf.composer.decompose.latency_ns"),
        composed: ofmf_obs::counter("ofmf.composer.composed.total"),
        reject_no_node: ofmf_obs::counter("ofmf.composer.reject.no_node"),
        reject_memory: ofmf_obs::counter("ofmf.composer.reject.memory"),
        reject_gpu: ofmf_obs::counter("ofmf.composer.reject.gpu"),
        reject_storage: ofmf_obs::counter("ofmf.composer.reject.storage"),
        reject_other: ofmf_obs::counter("ofmf.composer.reject.other"),
    })
}

/// The Composability Manager.
pub struct Composer {
    ofmf: Arc<Ofmf>,
    strategy: Strategy,
    policy: PolicySet,
    state: Mutex<BTreeMap<ODataId, ComposedSystem>>,
}

impl Composer {
    /// New composer over an OFMF with the given strategy and default
    /// policies.
    pub fn new(ofmf: Arc<Ofmf>, strategy: Strategy) -> Self {
        Composer {
            ofmf,
            strategy,
            policy: PolicySet::default(),
            state: Mutex::new(BTreeMap::new()),
        }
    }

    /// Override the policy set.
    #[must_use]
    pub fn with_policy(mut self, policy: PolicySet) -> Self {
        self.policy = policy;
        self
    }

    /// The strategy in use.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The OFMF this composer manages.
    pub fn ofmf(&self) -> &Arc<Ofmf> {
        &self.ofmf
    }

    /// Live compositions, keyed by composed-system id.
    pub fn compositions(&self) -> Vec<ComposedSystem> {
        self.state.lock().values().cloned().collect()
    }

    /// Look up one composition.
    pub fn find(&self, system: &ODataId) -> Option<ComposedSystem> {
        self.state.lock().get(system).cloned()
    }

    /// Current inventory as the composer sees it (bound nodes excluded).
    pub fn inventory(&self) -> Inventory {
        let bound: Vec<ODataId> = self.state.lock().values().map(|c| c.node.clone()).collect();
        Inventory::scan(&self.ofmf, &bound)
    }

    // ------------------------------------------------------------- compose

    /// Satisfy a composition request, or fail with 507 when the pools
    /// cannot cover it. All-or-nothing: partial bindings are rolled back.
    pub fn compose(&self, request: &CompositionRequest) -> RedfishResult<ComposedSystem> {
        let metrics = composer_metrics();
        // ofmf-lint: allow(no-panic-path, "strategy.index() enumerates Strategy::ALL, the array's length")
        let _span = ofmf_obs::Trace::begin(&metrics.compose_latency[self.strategy.index()]);
        // Composes are rare control-plane transactions: always retain their
        // trace tree in the flight recorder, regardless of latency.
        let mut tspan = ofmf_obs::enter_span("ofmf.composer.compose");
        tspan.force_sample();
        tspan.annotate("request", request.name.as_str());
        tspan.annotate("strategy", self.strategy.label());
        let result = self.compose_inner(request);
        match &result {
            Ok(_) => metrics.composed.inc(),
            Err(e) => {
                metrics.count_rejection(e);
                tspan.set_error();
                tspan.annotate("error", e.to_string());
            }
        }
        result
    }

    fn compose_inner(&self, request: &CompositionRequest) -> RedfishResult<ComposedSystem> {
        let inv = self.inventory();

        // 1. Pick the compute node.
        let node = inv
            .compute
            .iter()
            .find(|c| c.cores >= request.cores && c.memory_gib >= request.local_memory_gib)
            .ok_or_else(|| {
                RedfishError::InsufficientResources(format!(
                    "no free node with ≥{} cores and ≥{} GiB",
                    request.cores, request.local_memory_gib
                ))
            })?
            .clone();

        // 2. Plan the fabric bindings (sizes + targets) up front so failures
        //    happen before any mutation.
        let mut planned: Vec<(String, ODataId, ODataId, u64, BindingKind)> = Vec::new();
        // (fabric, target endpoint, bound resource placeholder, size, kind)

        if request.fabric_memory_mib > 0 {
            if request.spread_memory {
                let eligible: Vec<&crate::inventory::MemoryPool> = inv
                    .memory
                    .iter()
                    .filter(|p| node.endpoints.contains_key(&p.fabric))
                    .collect();
                let plan = self
                    .policy
                    .spread_plan(&eligible, request.fabric_memory_mib)
                    .ok_or_else(|| {
                        RedfishError::InsufficientResources(format!(
                            "cannot spread {} MiB across ≤{} pools",
                            request.fabric_memory_mib, self.policy.max_memory_spread
                        ))
                    })?;
                for (idx, size) in plan {
                    // ofmf-lint: allow(no-panic-path, "spread_plan yields indices into the eligible slice it was given")
                    let p = eligible[idx];
                    planned.push((
                        p.fabric.clone(),
                        p.endpoint.clone(),
                        p.domain.clone(),
                        size,
                        BindingKind::Memory,
                    ));
                }
            } else {
                let eligible: Vec<crate::inventory::MemoryPool> = inv
                    .memory
                    .iter()
                    .filter(|p| self.policy.allows_carve(p, request.fabric_memory_mib))
                    .cloned()
                    .collect();
                let p = choose_memory(
                    self.strategy,
                    &eligible,
                    request.fabric_memory_mib,
                    &self.ofmf,
                    &node.endpoints,
                )
                .ok_or_else(|| {
                    RedfishError::InsufficientResources(format!(
                        "no memory pool with {} MiB free under policy",
                        request.fabric_memory_mib
                    ))
                })?;
                planned.push((
                    p.fabric.clone(),
                    p.endpoint.clone(),
                    p.domain.clone(),
                    request.fabric_memory_mib,
                    BindingKind::Memory,
                ));
            }
        }

        let mut gpus = inv.gpus.clone();
        for _ in 0..request.gpus {
            let chosen = choose_gpu(self.strategy, &gpus, &self.ofmf, &node.endpoints)
                .ok_or_else(|| RedfishError::InsufficientResources("no free GPU".into()))?
                .clone();
            gpus.iter_mut()
                .find(|g| g.processor == chosen.processor)
                .ok_or_else(|| RedfishError::Internal("chosen GPU vanished from inventory".into()))?
                .assigned = true;
            planned.push((chosen.fabric, chosen.endpoint, chosen.processor, 1, BindingKind::Gpu));
        }

        if request.storage_bytes > 0 {
            let p = choose_storage(
                self.strategy,
                &inv.storage,
                request.storage_bytes,
                &self.ofmf,
                &node.endpoints,
            )
            .ok_or_else(|| {
                RedfishError::InsufficientResources(format!(
                    "no storage pool with {} bytes free",
                    request.storage_bytes
                ))
            })?;
            planned.push((
                p.fabric.clone(),
                p.endpoint.clone(),
                p.pool.clone(),
                request.storage_bytes,
                BindingKind::Storage,
            ));
        }

        // 3. Execute: bind each planned resource; roll everything back on
        //    the first failure.
        let mut bindings: Vec<Binding> = Vec::with_capacity(planned.len());
        for (fabric, target_ep, _resource_hint, size, kind) in planned {
            let Some(initiator) = node.endpoints.get(&fabric).cloned() else {
                // Planner invariant broken (fabric dropped mid-compose):
                // compensate before surfacing.
                self.unbind_all(&bindings);
                return Err(RedfishError::Internal(format!(
                    "node {} lost its endpoint on fabric {fabric} mid-compose",
                    node.system
                )));
            };
            let qos = match kind {
                BindingKind::Memory => request.memory_bandwidth_gbps,
                BindingKind::Storage => request.storage_bandwidth_gbps,
                BindingKind::Gpu => 0.0,
            };
            match self.bind(&fabric, &initiator, &target_ep, size, kind, qos) {
                Ok(b) => bindings.push(b),
                Err(e) => {
                    // Compensation: unwind every binding already made on the
                    // surviving fabrics, then name the fabric that failed so
                    // the 503 is actionable.
                    self.unbind_all(&bindings);
                    return Err(name_failed_fabric(e, &fabric));
                }
            }
        }

        // 4. Materialize the composed system resource.
        let sys_col = ODataId::new(top::SYSTEMS);
        let sys_id = sys_col.child(&request.name);
        let composed = ComposedSystem {
            system: sys_id.clone(),
            node: node.system.clone(),
            bindings,
            request: request.clone(),
        };
        let doc = json!({
            "@odata.type": "#ComputerSystem.v1_20_0.ComputerSystem",
            "Id": request.name,
            "Name": request.name,
            "SystemType": "Composed",
            "PowerState": "On",
            "Status": {"State": "Enabled", "Health": "OK"},
            "ProcessorSummary": {"Count": 2, "CoreCount": node.cores},
            "MemorySummary": {"TotalSystemMemoryGiB": node.memory_gib + composed.bound_memory_mib() / 1024},
            "Links": {"ResourceBlocks": composed.resource_block_links()},
        });
        if let Err(e) = self.ofmf.registry.create(&sys_id, doc) {
            self.unbind_all(&composed.bindings);
            return Err(e);
        }
        // Mark granted GPUs.
        for b in composed.bindings.iter().filter(|b| b.kind == BindingKind::Gpu) {
            let _ = self.ofmf.registry.patch(
                &b.resource,
                &json!({"Oem": {"OFMF": {"AssignedTo": sys_id.as_str()}}}),
                None,
            );
        }
        self.ofmf.events.publish(
            EventType::ResourceAdded,
            &sys_id,
            format!("system {} composed on {}", request.name, node.system),
            "OK",
        );
        self.state.lock().insert(sys_id, composed.clone());
        Ok(composed)
    }

    /// Create the zone + connection for one binding.
    fn bind(
        &self,
        fabric: &str,
        initiator: &ODataId,
        target_ep: &ODataId,
        size: u64,
        kind: BindingKind,
        qos_gbps: f64,
    ) -> RedfishResult<Binding> {
        let mut bspan = ofmf_obs::child_span("ofmf.composer.bind");
        bspan.annotate("fabric", fabric);
        bspan.annotate("kind", kind.label());
        // Power-gated pool devices are woken on demand before binding.
        crate::energy::wake_backing(self, target_ep);
        let fabric_root = ODataId::new(top::FABRICS).child(fabric);
        let zone_id = self.ofmf.next_member_id("z");
        let zone = self.ofmf.post(
            &fabric_root.child("Zones"),
            &json!({
                "Id": zone_id,
                "Links": {"Endpoints": [
                    {"@odata.id": initiator.as_str()},
                    {"@odata.id": target_ep.as_str()},
                ]}
            }),
        )?;
        let conn_id = self.ofmf.next_member_id("c");
        let connection = match self.ofmf.post(
            &fabric_root.child("Connections"),
            &json!({
                "Id": conn_id,
                "Zone": {"@odata.id": zone.as_str()},
                "Size": size,
                "BandwidthGbps": qos_gbps,
                "Links": {
                    "InitiatorEndpoints": [{"@odata.id": initiator.as_str()}],
                    "TargetEndpoints": [{"@odata.id": target_ep.as_str()}],
                }
            }),
        ) {
            Ok(c) => c,
            Err(e) => {
                let _ = self.ofmf.delete(&zone);
                return Err(e);
            }
        };
        // The materialized resource is what the connection references.
        let conn_body = self.ofmf.registry.get(&connection)?.body;
        // ofmf-lint: allow(no-panic-path, "Value usize indexing is total; out-of-range yields Null")
        let resource = conn_body["MemoryChunkInfo"][0]["Resource"]["@odata.id"]
            .as_str()
            // ofmf-lint: allow(no-panic-path, "Value usize indexing is total; out-of-range yields Null")
            .or_else(|| conn_body["VolumeInfo"][0]["Resource"]["@odata.id"].as_str())
            .or_else(|| conn_body["Oem"]["OFMF"]["Resource"]["@odata.id"].as_str())
            .map(ODataId::new)
            .unwrap_or_else(|| target_ep.clone());
        Ok(Binding {
            fabric: fabric.to_string(),
            zone,
            connection,
            resource,
            size,
            kind,
        })
    }

    fn unbind_all(&self, bindings: &[Binding]) {
        let mut uspan = ofmf_obs::child_span("ofmf.composer.unbind_all");
        uspan.annotate("bindings", bindings.len().to_string());
        for b in bindings {
            let _ = self.ofmf.delete(&b.connection);
            let _ = self.ofmf.delete(&b.zone);
            if b.kind == BindingKind::Gpu {
                let _ = self
                    .ofmf
                    .registry
                    .patch(&b.resource, &json!({"Oem": {"OFMF": {"AssignedTo": null}}}), None);
            }
        }
    }

    // ----------------------------------------------------------- decompose

    /// Tear a composition down, returning every resource to its pool.
    pub fn decompose(&self, system: &ODataId) -> RedfishResult<()> {
        let _span = ofmf_obs::Trace::begin(&composer_metrics().decompose_latency);
        let mut tspan = ofmf_obs::enter_span("ofmf.composer.decompose");
        tspan.force_sample();
        tspan.annotate("system", system.as_str());
        let composed = self
            .state
            .lock()
            .remove(system)
            .ok_or_else(|| RedfishError::NotFound(system.clone()))?;
        self.unbind_all(&composed.bindings);
        self.ofmf.registry.delete(system)?;
        self.ofmf.events.publish(
            EventType::ResourceRemoved,
            system,
            format!("system {} decomposed; resources returned to pools", system.leaf()),
            "OK",
        );
        Ok(())
    }

    // -------------------------------------------------- dynamic reprovision

    /// Grow a running composition's fabric memory by `extra_mib` (the OOM
    /// mitigation path). Creates an additional binding; existing ones are
    /// untouched, so the running job never loses memory.
    pub fn grow_memory(&self, system: &ODataId, extra_mib: u64) -> RedfishResult<Binding> {
        let (node_endpoints, _node) = {
            let state = self.state.lock();
            let c = state
                .get(system)
                .ok_or_else(|| RedfishError::NotFound(system.clone()))?;
            let inv_node = Inventory::scan(&self.ofmf, &[])
                .compute
                .into_iter()
                .chain(std::iter::empty())
                .find(|n| n.system == c.node);
            // The node is bound (excluded from the free list), so rebuild
            // its endpoint map directly from the tree.
            let endpoints = match inv_node {
                Some(n) => n.endpoints,
                None => Self::endpoints_of(&self.ofmf, &c.node),
            };
            (endpoints, c.node.clone())
        };
        let inv = Inventory::scan(&self.ofmf, &[]);
        let eligible: Vec<crate::inventory::MemoryPool> = inv
            .memory
            .iter()
            .filter(|p| self.policy.allows_carve(p, extra_mib))
            .cloned()
            .collect();
        let pool = choose_memory(self.strategy, &eligible, extra_mib, &self.ofmf, &node_endpoints)
            .ok_or_else(|| RedfishError::InsufficientResources(format!("no pool can grow by {extra_mib} MiB")))?
            .clone();
        let initiator = node_endpoints
            .get(&pool.fabric)
            .ok_or_else(|| RedfishError::Internal("node lost its fabric endpoint".into()))?
            .clone();
        let qos = {
            let state = self.state.lock();
            state
                .get(system)
                .map(|c| c.request.memory_bandwidth_gbps)
                .unwrap_or(0.0)
        };
        let binding = self.bind(
            &pool.fabric,
            &initiator,
            &pool.endpoint,
            extra_mib,
            BindingKind::Memory,
            qos,
        )?;
        let mut state = self.state.lock();
        let c = state
            .get_mut(system)
            .ok_or_else(|| RedfishError::NotFound(system.clone()))?;
        c.bindings.push(binding.clone());
        let node_gib = self
            .ofmf
            .registry
            .get(&c.node)
            .ok()
            .and_then(|s| s.body["MemorySummary"]["TotalSystemMemoryGiB"].as_u64())
            .unwrap_or(c.request.local_memory_gib);
        let new_total = node_gib + c.bound_memory_mib() / 1024;
        drop(state);
        let _ = self.ofmf.registry.patch(
            system,
            &json!({"MemorySummary": {"TotalSystemMemoryGiB": new_total}}),
            None,
        );
        self.refresh_resource_blocks(system);
        self.ofmf.events.publish(
            EventType::ResourceUpdated,
            system,
            format!("grew fabric memory by {extra_mib} MiB (OOM mitigation)"),
            "OK",
        );
        Ok(binding)
    }

    /// Attach additional fabric storage to a running composition (the I/O
    /// thrash mitigation path).
    pub fn attach_storage(&self, system: &ODataId, bytes: u64) -> RedfishResult<Binding> {
        let node = {
            let state = self.state.lock();
            let c = state
                .get(system)
                .ok_or_else(|| RedfishError::NotFound(system.clone()))?;
            c.node.clone()
        };
        let node_endpoints = Self::endpoints_of(&self.ofmf, &node);
        let inv = Inventory::scan(&self.ofmf, &[]);
        let pool = choose_storage(self.strategy, &inv.storage, bytes, &self.ofmf, &node_endpoints)
            .ok_or_else(|| RedfishError::InsufficientResources(format!("no storage pool with {bytes} bytes")))?
            .clone();
        let initiator = node_endpoints
            .get(&pool.fabric)
            .ok_or_else(|| RedfishError::Internal("node lost its fabric endpoint".into()))?
            .clone();
        let qos = {
            let state = self.state.lock();
            state
                .get(system)
                .map(|c| c.request.storage_bandwidth_gbps)
                .unwrap_or(0.0)
        };
        let binding = self.bind(
            &pool.fabric,
            &initiator,
            &pool.endpoint,
            bytes,
            BindingKind::Storage,
            qos,
        )?;
        let mut state = self.state.lock();
        let c = state
            .get_mut(system)
            .ok_or_else(|| RedfishError::NotFound(system.clone()))?;
        c.bindings.push(binding.clone());
        drop(state);
        self.refresh_resource_blocks(system);
        self.ofmf.events.publish(
            EventType::ResourceUpdated,
            system,
            format!("attached {bytes} bytes of fabric storage"),
            "OK",
        );
        Ok(binding)
    }

    /// Re-sync the composed system document's `Links.ResourceBlocks` with
    /// the current binding set (bindings change under grow/attach/
    /// reconcile, and lost bindings would otherwise leave dangling links).
    fn refresh_resource_blocks(&self, system: &ODataId) {
        let links = {
            let state = self.state.lock();
            let Some(c) = state.get(system) else { return };
            c.resource_block_links()
        };
        let _ = self
            .ofmf
            .registry
            .patch(system, &json!({"Links": {"ResourceBlocks": links}}), None);
    }

    /// Rebuild the fabric-endpoint map of a node from the tree.
    fn endpoints_of(ofmf: &Ofmf, node: &ODataId) -> BTreeMap<String, ODataId> {
        let mut out = BTreeMap::new();
        for ep_id in ofmf.registry.ids_of_type("#Endpoint.") {
            let Ok(stored) = ofmf.registry.get(&ep_id) else {
                continue;
            };
            let Some(entities) = stored.body["ConnectedEntities"].as_array() else {
                continue;
            };
            let is_ours = entities.iter().any(|e| {
                e["EntityRole"] == "Initiator" && e["EntityLink"]["@odata.id"].as_str() == Some(node.as_str())
            });
            if is_ours {
                if let Some(f) = redfish_model::path::fabric_id_of(ep_id.as_str()) {
                    out.insert(f.to_string(), ep_id.clone());
                }
            }
        }
        out
    }

    // ------------------------------------------------------------ reconcile

    /// Repair compositions whose connections disappeared (fabric fail-over
    /// exhausted all paths and the agent tore the connection down). For each
    /// missing memory/storage binding, re-bind the same capacity from the
    /// remaining pools. Returns `(repaired, lost)` binding counts.
    pub fn reconcile(&self) -> (usize, usize) {
        let systems: Vec<ODataId> = self.state.lock().keys().cloned().collect();
        let mut repaired = 0;
        let mut lost = 0;
        for sys in systems {
            let missing: Vec<Binding> = {
                let state = self.state.lock();
                let Some(c) = state.get(&sys) else { continue };
                c.bindings
                    .iter()
                    .filter(|b| !self.ofmf.registry.exists(&b.connection))
                    .cloned()
                    .collect()
            };
            for b in missing {
                // Drop the dead binding (and its now-empty zone).
                {
                    let mut state = self.state.lock();
                    if let Some(c) = state.get_mut(&sys) {
                        c.bindings.retain(|x| x.connection != b.connection);
                    }
                }
                self.refresh_resource_blocks(&sys);
                let _ = self.ofmf.delete(&b.zone);
                let outcome = match b.kind {
                    BindingKind::Memory => self.grow_memory(&sys, b.size).map(|_| ()),
                    BindingKind::Storage => self.attach_storage(&sys, b.size).map(|_| ()),
                    BindingKind::Gpu => Err(RedfishError::InsufficientResources(
                        "GPU grants are not auto-rebound".into(),
                    )),
                };
                match outcome {
                    Ok(()) => {
                        repaired += 1;
                        self.ofmf.events.publish(
                            EventType::StatusChange,
                            &sys,
                            format!("rebound lost {:?} binding of {} units", b.kind, b.size),
                            "Warning",
                        );
                    }
                    Err(_) => {
                        lost += 1;
                        self.ofmf.events.publish(
                            EventType::Alert,
                            &sys,
                            format!("could not rebind lost {:?} binding of {} units", b.kind, b.size),
                            "Critical",
                        );
                    }
                }
            }
        }
        (repaired, lost)
    }
}

/// Attribute an availability error to the fabric whose bind failed, so a
/// mid-compose agent loss surfaces as an actionable 503.
/// `CircuitOpen` already names its fabric; bare `AgentUnavailable` messages
/// get the fabric prefixed.
fn name_failed_fabric(e: RedfishError, fabric: &str) -> RedfishError {
    match e {
        RedfishError::AgentUnavailable(m) if !m.contains(fabric) => {
            RedfishError::AgentUnavailable(format!("fabric {fabric}: {m}"))
        }
        other => other,
    }
}
