//! Composition requests and composed-system records.

use redfish_model::odata::ODataId;
use serde_json::{json, Value};

/// What a client asks the Composability Manager for.
///
/// Mirrors the paper's motivating needs: enough local compute, plus
/// disaggregated memory (OOM mitigation), accelerators and storage attached
/// over whatever fabrics provide them.
#[derive(Debug, Clone, PartialEq)]
pub struct CompositionRequest {
    /// Human-readable name (becomes the composed system's `Name`).
    pub name: String,
    /// Minimum physical cores on the compute node.
    pub cores: u32,
    /// Minimum local DRAM on the compute node (GiB).
    pub local_memory_gib: u64,
    /// Fabric-attached memory to bind (MiB); 0 for none.
    pub fabric_memory_mib: u64,
    /// Pooled GPUs to grant.
    pub gpus: u32,
    /// Fabric-attached storage to provision (bytes); 0 for none.
    pub storage_bytes: u64,
    /// Spread fabric-memory chunks across distinct appliances
    /// (anti-affinity) instead of packing one.
    pub spread_memory: bool,
    /// Bandwidth to reserve on each memory binding's path (Gbit/s;
    /// 0 = best effort).
    pub memory_bandwidth_gbps: f64,
    /// Bandwidth to reserve on each storage binding's path (Gbit/s).
    pub storage_bandwidth_gbps: f64,
    /// Bandwidth to reserve on each GPU binding's path (Gbit/s) — peer
    /// traffic to a pooled accelerator contends on cascade trunks, so
    /// congestion-aware placement needs GPU bindings to debit links too.
    pub gpu_bandwidth_gbps: f64,
}

impl CompositionRequest {
    /// A compute-only request (no disaggregated resources).
    pub fn compute_only(name: &str, cores: u32, local_gib: u64) -> Self {
        CompositionRequest {
            name: name.to_string(),
            cores,
            local_memory_gib: local_gib,
            fabric_memory_mib: 0,
            gpus: 0,
            storage_bytes: 0,
            spread_memory: false,
            memory_bandwidth_gbps: 0.0,
            storage_bandwidth_gbps: 0.0,
            gpu_bandwidth_gbps: 0.0,
        }
    }

    /// Builder: require fabric memory.
    #[must_use]
    pub fn with_fabric_memory_mib(mut self, mib: u64) -> Self {
        self.fabric_memory_mib = mib;
        self
    }

    /// Builder: require GPUs.
    #[must_use]
    pub fn with_gpus(mut self, n: u32) -> Self {
        self.gpus = n;
        self
    }

    /// Builder: require storage.
    #[must_use]
    pub fn with_storage_bytes(mut self, bytes: u64) -> Self {
        self.storage_bytes = bytes;
        self
    }

    /// Builder: enable memory anti-affinity.
    #[must_use]
    pub fn with_spread_memory(mut self) -> Self {
        self.spread_memory = true;
        self
    }

    /// Builder: reserve bandwidth on memory bindings (QoS).
    #[must_use]
    pub fn with_memory_bandwidth_gbps(mut self, g: f64) -> Self {
        self.memory_bandwidth_gbps = g;
        self
    }

    /// Builder: reserve bandwidth on storage bindings (QoS).
    #[must_use]
    pub fn with_storage_bandwidth_gbps(mut self, g: f64) -> Self {
        self.storage_bandwidth_gbps = g;
        self
    }

    /// Builder: reserve bandwidth on GPU bindings (QoS).
    #[must_use]
    pub fn with_gpu_bandwidth_gbps(mut self, g: f64) -> Self {
        self.gpu_bandwidth_gbps = g;
        self
    }

    /// Encode for the durability journal. Inverse of
    /// [`CompositionRequest::from_value`].
    pub fn to_value(&self) -> Value {
        json!({
            "Name": self.name.as_str(),
            "Cores": self.cores as u64,
            "LocalMemoryGiB": self.local_memory_gib,
            "FabricMemoryMiB": self.fabric_memory_mib,
            "Gpus": self.gpus as u64,
            "StorageBytes": self.storage_bytes,
            "SpreadMemory": self.spread_memory,
            "MemoryBandwidthGbps": self.memory_bandwidth_gbps,
            "StorageBandwidthGbps": self.storage_bandwidth_gbps,
            "GpuBandwidthGbps": self.gpu_bandwidth_gbps,
        })
    }

    /// Decode a journaled request; `None` on malformed payloads.
    pub fn from_value(v: &Value) -> Option<Self> {
        Some(CompositionRequest {
            name: v.get("Name")?.as_str()?.to_string(),
            cores: u32::try_from(v.get("Cores")?.as_u64()?).ok()?,
            local_memory_gib: v.get("LocalMemoryGiB")?.as_u64()?,
            fabric_memory_mib: v.get("FabricMemoryMiB")?.as_u64()?,
            gpus: u32::try_from(v.get("Gpus")?.as_u64()?).ok()?,
            storage_bytes: v.get("StorageBytes")?.as_u64()?,
            spread_memory: v.get("SpreadMemory")?.as_bool()?,
            memory_bandwidth_gbps: v.get("MemoryBandwidthGbps")?.as_f64()?,
            storage_bandwidth_gbps: v.get("StorageBandwidthGbps")?.as_f64()?,
            // Absent in journals written before GPU QoS existed: default to
            // best-effort instead of refusing replay.
            gpu_bandwidth_gbps: v.get("GpuBandwidthGbps").and_then(Value::as_f64).unwrap_or(0.0),
        })
    }
}

/// One resource binding within a composition.
#[derive(Debug, Clone, PartialEq)]
pub struct Binding {
    /// The fabric the connection runs on.
    pub fabric: String,
    /// The zone created for this composition on that fabric.
    pub zone: ODataId,
    /// The connection resource.
    pub connection: ODataId,
    /// What was bound (chunk / volume / processor id).
    pub resource: ODataId,
    /// Capacity bound (MiB / bytes / 1).
    pub size: u64,
    /// Class of the binding.
    pub kind: BindingKind,
}

/// What class of resource a binding provides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BindingKind {
    /// Fabric-attached memory.
    Memory,
    /// Fabric-attached storage.
    Storage,
    /// Accelerator grant.
    Gpu,
}

impl BindingKind {
    /// Stable lowercase label (span annotations, CLI output, journal).
    pub fn label(self) -> &'static str {
        match self {
            BindingKind::Memory => "memory",
            BindingKind::Storage => "storage",
            BindingKind::Gpu => "gpu",
        }
    }

    /// Inverse of [`BindingKind::label`].
    pub fn parse(s: &str) -> Option<BindingKind> {
        match s {
            "memory" => Some(BindingKind::Memory),
            "storage" => Some(BindingKind::Storage),
            "gpu" => Some(BindingKind::Gpu),
            _ => None,
        }
    }
}

impl Binding {
    /// Encode for the durability journal. Inverse of [`Binding::from_value`].
    pub fn to_value(&self) -> Value {
        json!({
            "Fabric": self.fabric.as_str(),
            "Zone": self.zone.as_str(),
            "Connection": self.connection.as_str(),
            "Resource": self.resource.as_str(),
            "Size": self.size,
            "Kind": self.kind.label(),
        })
    }

    /// Decode a journaled binding; `None` on malformed payloads.
    pub fn from_value(v: &Value) -> Option<Self> {
        Some(Binding {
            fabric: v.get("Fabric")?.as_str()?.to_string(),
            zone: ODataId::new(v.get("Zone")?.as_str()?),
            connection: ODataId::new(v.get("Connection")?.as_str()?),
            resource: ODataId::new(v.get("Resource")?.as_str()?),
            size: v.get("Size")?.as_u64()?,
            kind: BindingKind::parse(v.get("Kind")?.as_str()?)?,
        })
    }
}

/// The record of a live composition.
#[derive(Debug, Clone, PartialEq)]
pub struct ComposedSystem {
    /// The composed `ComputerSystem` resource.
    pub system: ODataId,
    /// The underlying physical node.
    pub node: ODataId,
    /// All fabric bindings.
    pub bindings: Vec<Binding>,
    /// Request this composition satisfied.
    pub request: CompositionRequest,
}

impl ComposedSystem {
    /// Total fabric memory currently bound (MiB).
    pub fn bound_memory_mib(&self) -> u64 {
        self.bindings
            .iter()
            .filter(|b| b.kind == BindingKind::Memory)
            .map(|b| b.size)
            .sum()
    }

    /// Total fabric storage currently bound (bytes).
    pub fn bound_storage_bytes(&self) -> u64 {
        self.bindings
            .iter()
            .filter(|b| b.kind == BindingKind::Storage)
            .map(|b| b.size)
            .sum()
    }

    /// GPUs currently granted.
    pub fn bound_gpus(&self) -> usize {
        self.bindings.iter().filter(|b| b.kind == BindingKind::Gpu).count()
    }

    /// The `Links.ResourceBlocks` value for the composed system document.
    pub fn resource_block_links(&self) -> Value {
        let mut links: Vec<Value> = vec![json!({"@odata.id": self.node.as_str()})];
        links.extend(self.bindings.iter().map(|b| json!({"@odata.id": b.resource.as_str()})));
        Value::Array(links)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates() {
        let r = CompositionRequest::compute_only("job1", 56, 128)
            .with_fabric_memory_mib(65536)
            .with_gpus(2)
            .with_storage_bytes(1 << 40)
            .with_spread_memory();
        assert_eq!(r.fabric_memory_mib, 65536);
        assert_eq!(r.gpus, 2);
        assert!(r.spread_memory);
    }

    #[test]
    fn journal_codecs_roundtrip() {
        let r = CompositionRequest::compute_only("job1", 56, 128)
            .with_fabric_memory_mib(65536)
            .with_gpus(2)
            .with_storage_bytes(1 << 40)
            .with_spread_memory()
            .with_memory_bandwidth_gbps(25.5);
        assert_eq!(CompositionRequest::from_value(&r.to_value()), Some(r));
        let b = Binding {
            fabric: "CXL0".into(),
            zone: ODataId::new("/redfish/v1/Fabrics/CXL0/Zones/z1"),
            connection: ODataId::new("/redfish/v1/Fabrics/CXL0/Connections/c1"),
            resource: ODataId::new("/redfish/v1/Chassis/mem0/MemoryDomains/d0/MemoryChunks/mc1"),
            size: 4096,
            kind: BindingKind::Memory,
        };
        assert_eq!(Binding::from_value(&b.to_value()), Some(b));
        assert_eq!(Binding::from_value(&json!({"Fabric": "x"})), None);
        for k in [BindingKind::Memory, BindingKind::Storage, BindingKind::Gpu] {
            assert_eq!(BindingKind::parse(k.label()), Some(k));
        }
    }

    #[test]
    fn composed_system_accounting() {
        let mk = |kind, size| Binding {
            fabric: "F".into(),
            zone: ODataId::new("/z"),
            connection: ODataId::new("/c"),
            resource: ODataId::new("/r"),
            size,
            kind,
        };
        let cs = ComposedSystem {
            system: ODataId::new("/redfish/v1/Systems/comp1"),
            node: ODataId::new("/redfish/v1/Systems/cn00"),
            bindings: vec![
                mk(BindingKind::Memory, 1024),
                mk(BindingKind::Memory, 2048),
                mk(BindingKind::Gpu, 1),
            ],
            request: CompositionRequest::compute_only("j", 1, 1),
        };
        assert_eq!(cs.bound_memory_mib(), 3072);
        assert_eq!(cs.bound_gpus(), 1);
        assert_eq!(cs.bound_storage_bytes(), 0);
        assert_eq!(cs.resource_block_links().as_array().unwrap().len(), 4);
    }
}
