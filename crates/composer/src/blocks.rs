//! Redfish `ResourceBlock` materialization: the standard composition
//! vocabulary (`CompositionService/ResourceBlocks`) published from the
//! composer's inventory, so stock Redfish clients can browse what is
//! composable and what is already bound.

use crate::composer::Composer;
use crate::inventory::Inventory;
use redfish_model::odata::ODataId;
use redfish_model::path::top;
use redfish_model::RedfishResult;
use serde_json::{json, Value};

/// Classification of a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    /// A whole compute node.
    Compute,
    /// A fabric-memory pool (free capacity advertised).
    Memory,
    /// A pooled GPU.
    Gpu,
    /// A storage pool (free capacity advertised).
    Storage,
}

impl BlockKind {
    fn resource_block_type(self) -> &'static str {
        match self {
            BlockKind::Compute => "Compute",
            BlockKind::Memory => "Memory",
            BlockKind::Gpu => "Processor",
            BlockKind::Storage => "Storage",
        }
    }
}

fn block_doc(id: &str, kind: BlockKind, backing: &ODataId, composed: bool, capacity: Option<(&str, u64)>) -> Value {
    let mut doc = json!({
        "@odata.type": "#ResourceBlock.v1_4_0.ResourceBlock",
        "Id": id,
        "Name": id,
        "ResourceBlockType": [kind.resource_block_type()],
        "CompositionStatus": {
            "CompositionState": if composed { "Composed" } else { "Unused" },
            "SharingCapable": matches!(kind, BlockKind::Memory | BlockKind::Storage),
        },
        "Links": {"ComputerSystems": [], "Zones": []},
        "Oem": {"OFMF": {"Backing": {"@odata.id": backing.as_str()}}},
    });
    if let Some((member, v)) = capacity {
        // ofmf-lint: allow(no-panic-path, "Value str indexing is total: index_or_insert auto-vivifies objects")
        doc["Oem"]["OFMF"][member] = json!(v);
    }
    doc
}

/// Rebuild the `ResourceBlocks` collection from the composer's current
/// view: one block per compute node / memory pool / GPU / storage pool.
/// Returns the number of blocks published.
pub fn sync_resource_blocks(composer: &Composer) -> RedfishResult<usize> {
    let ofmf = composer.ofmf();
    let col = ODataId::new(top::RESOURCE_BLOCKS);

    // Wipe the old view (the collection itself survives).
    for member in ofmf.registry.members(&col).unwrap_or_default() {
        let _ = ofmf.registry.delete(&member);
    }

    // Free pools…
    let free: Inventory = composer.inventory();
    // …and everything currently bound, so Composed blocks are shown too.
    let bound_nodes: Vec<ODataId> = composer.compositions().iter().map(|c| c.node.clone()).collect();

    let mut n = 0;
    for c in &free.compute {
        let id = format!("compute-{}", c.system.leaf());
        ofmf.registry.create(
            &col.child(&id),
            block_doc(&id, BlockKind::Compute, &c.system, false, None),
        )?;
        n += 1;
    }
    for node in &bound_nodes {
        let id = format!("compute-{}", node.leaf());
        ofmf.registry
            .create(&col.child(&id), block_doc(&id, BlockKind::Compute, node, true, None))?;
        n += 1;
    }
    for m in &free.memory {
        let chassis = m
            .domain
            .parent()
            .and_then(|p| p.parent())
            .unwrap_or_else(|| m.domain.clone());
        let id = format!("memory-{}", chassis.leaf());
        let composed = m.free_mib < m.total_mib;
        ofmf.registry.create(
            &col.child(&id),
            block_doc(
                &id,
                BlockKind::Memory,
                &m.domain,
                composed,
                Some(("FreeMiB", m.free_mib)),
            ),
        )?;
        n += 1;
    }
    for g in &free.gpus {
        let id = format!("gpu-{}", g.processor.leaf());
        ofmf.registry.create(
            &col.child(&id),
            block_doc(&id, BlockKind::Gpu, &g.processor, g.assigned, None),
        )?;
        n += 1;
    }
    for s in &free.storage {
        let svc = s
            .pool
            .parent()
            .and_then(|p| p.parent())
            .unwrap_or_else(|| s.pool.clone());
        let id = format!("storage-{}", svc.leaf());
        let composed = s.free_bytes < s.total_bytes;
        ofmf.registry.create(
            &col.child(&id),
            block_doc(
                &id,
                BlockKind::Storage,
                &s.pool,
                composed,
                Some(("FreeBytes", s.free_bytes)),
            ),
        )?;
        n += 1;
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Composer, CompositionRequest, Strategy};
    use ofmf_agents::flavors::{cxl_agent, infiniband_agent, nvmeof_agent, RackShape};
    use std::sync::Arc;

    fn rig() -> Arc<ofmf_core::Ofmf> {
        let o = ofmf_core::Ofmf::new("blocks", std::collections::HashMap::new(), 5);
        let shape = RackShape::default();
        o.register_agent(Arc::new(cxl_agent("CXL0", &shape, 1 << 20, 1)))
            .unwrap();
        o.register_agent(Arc::new(nvmeof_agent("NVME0", &shape, 1 << 40, 2)))
            .unwrap();
        o.register_agent(Arc::new(infiniband_agent("IB0", &shape, "A100", 3)))
            .unwrap();
        o
    }

    #[test]
    fn blocks_reflect_inventory_and_composition_state() {
        let ofmf = rig();
        let composer = Composer::new(Arc::clone(&ofmf), Strategy::FirstFit);
        let n = sync_resource_blocks(&composer).unwrap();
        // 4 compute + 2 memory + 2 gpu + 2 storage.
        assert_eq!(n, 10);
        let col = ODataId::new(top::RESOURCE_BLOCKS);
        let members = ofmf.registry.members(&col).unwrap();
        assert_eq!(members.len(), 10);
        // All unused initially.
        for m in &members {
            let doc = ofmf.registry.get(m).unwrap().body;
            assert_eq!(doc["CompositionStatus"]["CompositionState"], "Unused", "{m}");
        }

        // Compose and resync: the bound node + carved memory flip state.
        let composed = composer
            .compose(
                &CompositionRequest::compute_only("blk", 8, 8)
                    .with_fabric_memory_mib(1024)
                    .with_gpus(1),
            )
            .unwrap();
        sync_resource_blocks(&composer).unwrap();
        let node_block = col.child(&format!("compute-{}", composed.node.leaf()));
        assert_eq!(
            ofmf.registry.get(&node_block).unwrap().body["CompositionStatus"]["CompositionState"],
            "Composed"
        );
        let composed_count = ofmf
            .registry
            .members(&col)
            .unwrap()
            .iter()
            .filter(|m| ofmf.registry.get(m).unwrap().body["CompositionStatus"]["CompositionState"] == "Composed")
            .count();
        assert_eq!(composed_count, 3, "node + memory pool + gpu");

        // Free capacity is advertised.
        let mem_blocks: Vec<_> = ofmf
            .registry
            .members(&col)
            .unwrap()
            .into_iter()
            .filter(|m| m.leaf().starts_with("memory-"))
            .collect();
        let free_total: u64 = mem_blocks
            .iter()
            .map(|m| {
                ofmf.registry.get(m).unwrap().body["Oem"]["OFMF"]["FreeMiB"]
                    .as_u64()
                    .unwrap()
            })
            .sum();
        assert_eq!(free_total, (2 << 20) - 1024);
    }

    #[test]
    fn resync_is_idempotent() {
        let ofmf = rig();
        let composer = Composer::new(Arc::clone(&ofmf), Strategy::FirstFit);
        let a = sync_resource_blocks(&composer).unwrap();
        let b = sync_resource_blocks(&composer).unwrap();
        assert_eq!(a, b);
        assert!(ofmf.registry.dangling_links().is_empty());
    }
}
