//! Stranded-resource and energy accounting (reproduces Fig. 1's claim:
//! "More Efficiency is Composable HPC Use of Resources").
//!
//! Two provisioning models are compared over the same job mix:
//!
//! * **Static** — every node is pre-provisioned with the worst-case resource
//!   set (the paper's "incorporate all of the options"). A job occupies a
//!   whole node; anything the job doesn't use is *stranded* but still drawn
//!   as power.
//! * **Composable** — nodes carry only compute; memory/GPUs/storage live in
//!   shared pools and are bound per job. Unbound pool capacity can be
//!   power-gated.

use serde::Serialize;

/// A job's resource demand.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct JobDemand {
    /// Cores used.
    pub cores: u32,
    /// Memory used (GiB).
    pub memory_gib: u64,
    /// GPUs used.
    pub gpus: u32,
}

/// The hardware a statically provisioned node carries.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct StaticNodeShape {
    /// Cores per node.
    pub cores: u32,
    /// DRAM per node (GiB).
    pub memory_gib: u64,
    /// GPUs per node.
    pub gpus: u32,
}

/// Power model constants (Watts). Representative figures for the classes of
/// hardware the paper discusses; only the *ratios* matter for the trend.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct PowerModel {
    /// Per active core.
    pub watts_per_core: f64,
    /// Per GiB of powered DRAM.
    pub watts_per_gib: f64,
    /// Per powered GPU.
    pub watts_per_gpu: f64,
    /// Fraction of nominal power an idle-but-powered resource still draws.
    pub idle_fraction: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel {
            watts_per_core: 3.0,
            watts_per_gib: 0.4,
            watts_per_gpu: 300.0,
            idle_fraction: 0.45,
        }
    }
}

/// Utilization/energy outcome of one provisioning model on one job mix.
#[derive(Debug, Clone, Serialize)]
pub struct Outcome {
    /// Fraction of provisioned cores actually used.
    pub core_utilization: f64,
    /// Fraction of provisioned memory actually used.
    pub memory_utilization: f64,
    /// Fraction of provisioned GPUs actually used.
    pub gpu_utilization: f64,
    /// Resources provisioned but unused (stranded), as a fraction of
    /// provisioned capacity (weighted across classes by power).
    pub stranded_fraction: f64,
    /// Total power draw (Watts).
    pub power_watts: f64,
    /// Jobs that could not be placed.
    pub rejected_jobs: usize,
}

/// Evaluate static provisioning: each job takes one whole node of `shape`;
/// `nodes` nodes exist.
pub fn static_outcome(jobs: &[JobDemand], shape: StaticNodeShape, nodes: usize, power: &PowerModel) -> Outcome {
    let mut placed = Vec::new();
    let mut rejected = 0;
    for (i, j) in jobs.iter().enumerate() {
        let fits = j.cores <= shape.cores && j.memory_gib <= shape.memory_gib && j.gpus <= shape.gpus;
        if fits && i < nodes {
            placed.push(*j);
        } else {
            rejected += 1;
        }
    }
    let used_cores: f64 = placed.iter().map(|j| f64::from(j.cores)).sum();
    let used_mem: f64 = placed.iter().map(|j| j.memory_gib as f64).sum();
    let used_gpus: f64 = placed.iter().map(|j| f64::from(j.gpus)).sum();
    // Every node is fully powered whether or not its resources are used.
    let prov_cores = (nodes as f64) * f64::from(shape.cores);
    let prov_mem = (nodes as f64) * shape.memory_gib as f64;
    let prov_gpus = (nodes as f64) * f64::from(shape.gpus);
    let active_power =
        used_cores * power.watts_per_core + used_mem * power.watts_per_gib + used_gpus * power.watts_per_gpu;
    let idle_power = ((prov_cores - used_cores) * power.watts_per_core
        + (prov_mem - used_mem) * power.watts_per_gib
        + (prov_gpus - used_gpus) * power.watts_per_gpu)
        * power.idle_fraction;
    outcome_from(
        used_cores,
        prov_cores,
        used_mem,
        prov_mem,
        used_gpus,
        prov_gpus,
        active_power + idle_power,
        rejected,
        power,
    )
}

/// Evaluate composable provisioning: `nodes` compute-only nodes plus shared
/// pools sized to the *aggregate* demand class (the whole point: pools are
/// sized for the sum, not per-node worst case).
pub fn composable_outcome(
    jobs: &[JobDemand],
    nodes: usize,
    node_cores: u32,
    pool_memory_gib: u64,
    pool_gpus: u32,
    power: &PowerModel,
) -> Outcome {
    let mut placed = Vec::new();
    let mut rejected = 0;
    let mut mem_left = pool_memory_gib;
    let mut gpus_left = pool_gpus;
    for (i, j) in jobs.iter().enumerate() {
        let fits = j.cores <= node_cores && j.memory_gib <= mem_left && j.gpus <= gpus_left && i < nodes;
        if fits {
            mem_left -= j.memory_gib;
            gpus_left -= j.gpus;
            placed.push(*j);
        } else {
            rejected += 1;
        }
    }
    let used_cores: f64 = placed.iter().map(|j| f64::from(j.cores)).sum();
    let used_mem: f64 = placed.iter().map(|j| j.memory_gib as f64).sum();
    let used_gpus: f64 = placed.iter().map(|j| f64::from(j.gpus)).sum();
    let prov_cores = (nodes as f64) * f64::from(node_cores);
    let prov_mem = pool_memory_gib as f64;
    let prov_gpus = f64::from(pool_gpus);
    // Unbound pool capacity is power-gated: it draws nothing. Unused cores
    // on occupied nodes still idle-draw.
    let active_power =
        used_cores * power.watts_per_core + used_mem * power.watts_per_gib + used_gpus * power.watts_per_gpu;
    let idle_core_power = (prov_cores - used_cores) * power.watts_per_core * power.idle_fraction;
    outcome_from(
        used_cores,
        prov_cores,
        used_mem,
        prov_mem,
        used_gpus,
        prov_gpus,
        active_power + idle_core_power,
        rejected,
        power,
    )
}

#[allow(clippy::too_many_arguments)]
fn outcome_from(
    used_cores: f64,
    prov_cores: f64,
    used_mem: f64,
    prov_mem: f64,
    used_gpus: f64,
    prov_gpus: f64,
    power_watts: f64,
    rejected: usize,
    power: &PowerModel,
) -> Outcome {
    let ratio = |u: f64, p: f64| if p > 0.0 { (u / p).min(1.0) } else { 1.0 };
    // Weight stranded capacity by what it costs to keep powered.
    let w_core = prov_cores * power.watts_per_core;
    let w_mem = prov_mem * power.watts_per_gib;
    let w_gpu = prov_gpus * power.watts_per_gpu;
    let w_total = (w_core + w_mem + w_gpu).max(1e-9);
    let stranded = (w_core * (1.0 - ratio(used_cores, prov_cores))
        + w_mem * (1.0 - ratio(used_mem, prov_mem))
        + w_gpu * (1.0 - ratio(used_gpus, prov_gpus)))
        / w_total;
    Outcome {
        core_utilization: ratio(used_cores, prov_cores),
        memory_utilization: ratio(used_mem, prov_mem),
        gpu_utilization: ratio(used_gpus, prov_gpus),
        stranded_fraction: stranded,
        power_watts,
        rejected_jobs: rejected,
    }
}

/// A reproducible heterogeneous job mix: most jobs are modest, a few are
/// memory-hungry, a few want GPUs — the skew that makes worst-case static
/// provisioning wasteful.
pub fn heterogeneous_mix(n: usize, seed: u64) -> Vec<JobDemand> {
    // Tiny deterministic LCG so the crate doesn't need rand here.
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    (0..n)
        .map(|_| {
            let r = next() % 100;
            if r < 70 {
                JobDemand {
                    cores: 16 + (next() % 16) as u32,
                    memory_gib: 16 + next() % 32,
                    gpus: 0,
                }
            } else if r < 90 {
                JobDemand {
                    cores: 32,
                    memory_gib: 192 + next() % 192,
                    gpus: 0,
                }
            } else {
                JobDemand {
                    cores: 24,
                    memory_gib: 64,
                    gpus: 1 + (next() % 2) as u32,
                }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> StaticNodeShape {
        // Worst-case provisioning: every node big enough for the hungriest job.
        StaticNodeShape {
            cores: 32,
            memory_gib: 384,
            gpus: 2,
        }
    }

    #[test]
    fn composable_strands_less_and_draws_less_power() {
        let jobs = heterogeneous_mix(64, 42);
        let power = PowerModel::default();
        let st = static_outcome(&jobs, shape(), 64, &power);
        // Pools sized to aggregate demand + 10% headroom.
        let total_mem: u64 = jobs.iter().map(|j| j.memory_gib).sum();
        let total_gpus: u32 = jobs.iter().map(|j| j.gpus).sum();
        let co = composable_outcome(&jobs, 64, 32, total_mem + total_mem / 10, total_gpus + 1, &power);
        assert_eq!(st.rejected_jobs, 0);
        assert_eq!(co.rejected_jobs, 0);
        assert!(
            co.stranded_fraction < st.stranded_fraction,
            "composable strands less: {} vs {}",
            co.stranded_fraction,
            st.stranded_fraction
        );
        assert!(co.power_watts < st.power_watts, "composable saves power");
        assert!(co.memory_utilization > st.memory_utilization);
    }

    #[test]
    fn static_rejects_jobs_bigger_than_a_node() {
        let jobs = vec![JobDemand {
            cores: 64,
            memory_gib: 10,
            gpus: 0,
        }];
        let st = static_outcome(&jobs, shape(), 4, &PowerModel::default());
        assert_eq!(st.rejected_jobs, 1);
    }

    #[test]
    fn composable_rejects_when_pool_exhausted() {
        let jobs = vec![
            JobDemand {
                cores: 8,
                memory_gib: 100,
                gpus: 0,
            },
            JobDemand {
                cores: 8,
                memory_gib: 100,
                gpus: 0,
            },
        ];
        let co = composable_outcome(&jobs, 8, 32, 150, 0, &PowerModel::default());
        assert_eq!(co.rejected_jobs, 1, "second job exceeds remaining pool");
    }

    #[test]
    fn mix_is_deterministic() {
        assert_eq!(heterogeneous_mix(16, 7), heterogeneous_mix(16, 7));
        assert_ne!(heterogeneous_mix(16, 7), heterogeneous_mix(16, 8));
    }

    #[test]
    fn utilizations_bounded() {
        let jobs = heterogeneous_mix(32, 1);
        let o = static_outcome(&jobs, shape(), 32, &PowerModel::default());
        for v in [
            o.core_utilization,
            o.memory_utilization,
            o.gpu_utilization,
            o.stranded_fraction,
        ] {
            assert!((0.0..=1.0).contains(&v), "{v} out of range");
        }
    }
}
