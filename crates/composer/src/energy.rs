//! Energy management: power-gate fully idle pool hardware, wake it on
//! demand.
//!
//! "Overprovisioned resources are those that are either underused, or
//! unused and idle for the current workloads but still draw energy and
//! cooling." In a composable rack the composer *knows* which appliances are
//! completely unbound, so it can gate them and wake them when a
//! composition needs the capacity back.

use crate::composer::Composer;
use redfish_model::odata::ODataId;
use redfish_model::resources::events::EventType;
use serde_json::{json, Value};

/// Nominal draw of an idle-but-powered device, used for the savings
/// estimate (same figures as the telemetry model).
fn idle_watts(kind: &str) -> f64 {
    match kind {
        "memory" => 120.0 * 0.45,
        "gpu" => 300.0 * 0.45,
        "storage" => 80.0 * 0.45,
        _ => 0.0,
    }
}

/// One gateable (or gated) device.
#[derive(Debug, Clone, PartialEq)]
pub struct Gateable {
    /// The device's chassis / service resource.
    pub resource: ODataId,
    /// Device class (`memory` / `gpu` / `storage`).
    pub kind: &'static str,
    /// Estimated idle draw avoided by gating (Watts).
    pub watts: f64,
}

/// The advisory report.
#[derive(Debug, Clone, Default)]
pub struct GatingReport {
    /// Devices that are completely unbound and can be powered off.
    pub gateable: Vec<Gateable>,
}

impl GatingReport {
    /// Total wattage the report would save.
    pub fn total_watts(&self) -> f64 {
        self.gateable.iter().map(|g| g.watts).sum()
    }
}

fn chassis_of(resource: &ODataId) -> Option<ODataId> {
    // /redfish/v1/Chassis/{x}/… → /redfish/v1/Chassis/{x}
    // /redfish/v1/StorageServices/{x}/… → /redfish/v1/StorageServices/{x}
    let segs: Vec<&str> = resource.as_str().split('/').filter(|s| !s.is_empty()).collect();
    match segs.as_slice() {
        ["redfish", "v1", kind @ ("Chassis" | "StorageServices"), id, ..] => {
            Some(ODataId::new(format!("/redfish/v1/{kind}/{id}")))
        }
        _ => None,
    }
}

/// Compute which pool devices are fully idle and could be gated.
pub fn gating_report(composer: &Composer) -> GatingReport {
    let inv = composer.inventory();
    let mut report = GatingReport::default();
    for m in &inv.memory {
        if m.free_mib == m.total_mib {
            if let Some(ch) = chassis_of(&m.domain) {
                report.gateable.push(Gateable {
                    resource: ch,
                    kind: "memory",
                    watts: idle_watts("memory"),
                });
            }
        }
    }
    for g in &inv.gpus {
        if !g.assigned {
            if let Some(ch) = chassis_of(&g.processor) {
                report.gateable.push(Gateable {
                    resource: ch,
                    kind: "gpu",
                    watts: idle_watts("gpu"),
                });
            }
        }
    }
    for s in &inv.storage {
        if s.free_bytes == s.total_bytes {
            if let Some(ch) = chassis_of(&s.pool) {
                report.gateable.push(Gateable {
                    resource: ch,
                    kind: "storage",
                    watts: idle_watts("storage"),
                });
            }
        }
    }
    report.gateable.sort_by(|a, b| a.resource.cmp(&b.resource));
    report.gateable.dedup_by(|a, b| a.resource == b.resource);
    report
}

/// Gate everything the report names: PATCH `PowerState: Off` and announce.
/// Returns the number of devices gated.
pub fn apply_power_gating(composer: &Composer) -> usize {
    let report = gating_report(composer);
    let ofmf = composer.ofmf();
    let mut gated = 0;
    for g in &report.gateable {
        let already_off = ofmf
            .registry
            .get(&g.resource)
            .ok()
            .and_then(|s| s.body.get("PowerState").and_then(Value::as_str).map(str::to_string))
            .as_deref()
            == Some("Off");
        if already_off {
            continue;
        }
        if ofmf
            .registry
            .patch(&g.resource, &json!({"PowerState": "Off"}), None)
            .is_ok()
        {
            gated += 1;
            ofmf.events.publish(
                EventType::StatusChange,
                &g.resource,
                format!("power-gated idle {} device (saves ~{:.0} W)", g.kind, g.watts),
                "OK",
            );
        }
    }
    gated
}

/// Wake a gated device (PATCH `PowerState: On`). Idempotent.
pub fn wake(composer: &Composer, resource: &ODataId) -> bool {
    let ofmf = composer.ofmf();
    let is_off = ofmf
        .registry
        .get(resource)
        .ok()
        .and_then(|s| s.body.get("PowerState").and_then(Value::as_str).map(str::to_string))
        .as_deref()
        == Some("Off");
    if !is_off {
        return false;
    }
    let ok = ofmf
        .registry
        .patch(resource, &json!({"PowerState": "On"}), None)
        .is_ok();
    if ok {
        ofmf.events.publish(
            EventType::StatusChange,
            resource,
            "woken for composition".to_string(),
            "OK",
        );
    }
    ok
}

/// Wake the device backing a target *endpoint* if it was gated (called by
/// the composer before binding): resolves the endpoint's `EntityLink` to
/// the device resource, then its chassis/service.
pub fn wake_backing(composer: &Composer, target_endpoint: &ODataId) -> bool {
    let ofmf = composer.ofmf();
    let device = ofmf
        .registry
        .get(target_endpoint)
        .ok()
        .and_then(|s| {
            // ofmf-lint: allow(no-panic-path, "Value usize indexing is total; out-of-range yields Null")
            s.body["ConnectedEntities"][0]["EntityLink"]["@odata.id"]
                .as_str()
                .map(ODataId::new)
        })
        .unwrap_or_else(|| target_endpoint.clone());
    match chassis_of(&device) {
        Some(ch) => wake(composer, &ch),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Composer, CompositionRequest, Strategy};
    use ofmf_agents::flavors::{cxl_agent, infiniband_agent, nvmeof_agent, RackShape};
    use std::sync::Arc;

    fn rig() -> Arc<ofmf_core::Ofmf> {
        let o = ofmf_core::Ofmf::new("energy", std::collections::HashMap::new(), 5);
        let shape = RackShape::default();
        o.register_agent(Arc::new(cxl_agent("CXL0", &shape, 1 << 20, 1)))
            .unwrap();
        o.register_agent(Arc::new(nvmeof_agent("NVME0", &shape, 1 << 40, 2)))
            .unwrap();
        o.register_agent(Arc::new(infiniband_agent("IB0", &shape, "A100", 3)))
            .unwrap();
        o
    }

    #[test]
    fn idle_rack_is_fully_gateable() {
        let ofmf = rig();
        let composer = Composer::new(Arc::clone(&ofmf), Strategy::FirstFit);
        let report = gating_report(&composer);
        // 2 memory + 2 gpu + 2 storage devices.
        assert_eq!(report.gateable.len(), 6);
        assert!(report.total_watts() > 400.0);
        assert_eq!(apply_power_gating(&composer), 6);
        // Gating is idempotent.
        assert_eq!(apply_power_gating(&composer), 0);
        let mem = ofmf.registry.get(&ODataId::new("/redfish/v1/Chassis/mem00")).unwrap();
        assert_eq!(mem.body["PowerState"], "Off");
    }

    #[test]
    fn bound_devices_are_not_gateable() {
        let ofmf = rig();
        let composer = Composer::new(Arc::clone(&ofmf), Strategy::FirstFit);
        composer
            .compose(
                &CompositionRequest::compute_only("user", 8, 8)
                    .with_fabric_memory_mib(64)
                    .with_gpus(1),
            )
            .unwrap();
        let report = gating_report(&composer);
        // One memory appliance carved, one GPU granted → 1 memory + 1 gpu
        // + 2 storage remain gateable.
        assert_eq!(report.gateable.len(), 4);
        assert!(!report.gateable.iter().any(|g| g.resource.as_str().contains("mem00")));
    }

    #[test]
    fn compose_wakes_gated_pools() {
        let ofmf = rig();
        let composer = Composer::new(Arc::clone(&ofmf), Strategy::FirstFit);
        apply_power_gating(&composer);
        // Composing must succeed against gated pools (auto-wake).
        let c = composer
            .compose(&CompositionRequest::compute_only("waker", 8, 8).with_fabric_memory_mib(128))
            .unwrap();
        assert_eq!(c.bound_memory_mib(), 128);
        let mem = ofmf.registry.get(&ODataId::new("/redfish/v1/Chassis/mem00")).unwrap();
        assert_eq!(mem.body["PowerState"], "On", "woken for the composition");
    }

    #[test]
    fn wake_is_noop_for_powered_devices() {
        let ofmf = rig();
        let composer = Composer::new(Arc::clone(&ofmf), Strategy::FirstFit);
        assert!(!wake(&composer, &ODataId::new("/redfish/v1/Chassis/mem00")));
    }
}
