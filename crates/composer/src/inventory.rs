//! A live inventory of composable pools, derived from the unified tree.
//!
//! The inventory is recomputed on demand from the registry (the tree is the
//! single source of truth — what an agent published is what exists), then
//! adjusted by the composer's own assignment records.

use ofmf_core::Ofmf;
use redfish_model::odata::ODataId;
use serde_json::Value;
use std::collections::BTreeMap;

/// A compute node available for composition.
#[derive(Debug, Clone, PartialEq)]
pub struct ComputePool {
    /// The `ComputerSystem` resource id.
    pub system: ODataId,
    /// Physical cores.
    pub cores: u32,
    /// Local memory (GiB).
    pub memory_gib: u64,
    /// Fabric endpoints of this node: fabric id → endpoint resource id.
    pub endpoints: BTreeMap<String, ODataId>,
}

/// A fabric-memory target with free capacity.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryPool {
    /// Owning fabric.
    pub fabric: String,
    /// Target endpoint resource id.
    pub endpoint: ODataId,
    /// The `MemoryDomain` resource id.
    pub domain: ODataId,
    /// Total capacity (MiB).
    pub total_mib: u64,
    /// Free capacity (MiB) = total − chunks already carved.
    pub free_mib: u64,
}

/// A pooled GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuPool {
    /// Owning fabric.
    pub fabric: String,
    /// Target endpoint resource id.
    pub endpoint: ODataId,
    /// The `Processor` resource id.
    pub processor: ODataId,
    /// Whether a grant already exists (tracked via `Oem.OFMF.AssignedTo`).
    pub assigned: bool,
}

/// An NVMe-oF storage pool with free bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct StoragePoolView {
    /// Owning fabric.
    pub fabric: String,
    /// Target endpoint resource id.
    pub endpoint: ODataId,
    /// The Swordfish `StoragePool` resource id.
    pub pool: ODataId,
    /// Total bytes.
    pub total_bytes: u64,
    /// Free bytes = total − volumes already provisioned.
    pub free_bytes: u64,
}

/// Snapshot of every composable pool.
#[derive(Debug, Clone, Default)]
pub struct Inventory {
    /// Free compute nodes (systems not yet bound to a composition).
    pub compute: Vec<ComputePool>,
    /// Fabric memory targets.
    pub memory: Vec<MemoryPool>,
    /// Pooled GPUs.
    pub gpus: Vec<GpuPool>,
    /// Storage pools.
    pub storage: Vec<StoragePoolView>,
}

/// Whether `id` or any of its ancestors reports `UnavailableOffline`
/// (agents mark the failed *device* resource — e.g. the chassis of a dead
/// memory appliance — so pool resources underneath inherit the state).
fn offline(reg: &redfish_model::Registry, id: &ODataId) -> bool {
    let mut cur = Some(id.clone());
    while let Some(c) = cur {
        if let Ok(stored) = reg.get(&c) {
            if stored.body["Status"]["State"].as_str() == Some("UnavailableOffline") {
                return true;
            }
        }
        cur = c.parent();
    }
    false
}

impl Inventory {
    /// Scan the tree. `bound_systems` are systems the composer already
    /// assigned (excluded from the free compute list).
    pub fn scan(ofmf: &Ofmf, bound_systems: &[ODataId]) -> Inventory {
        let reg = &ofmf.registry;
        let mut inv = Inventory::default();

        // Endpoints by the device they front; also classify roles.
        // endpoint doc → (fabric, entity link, role)
        let mut target_eps: BTreeMap<ODataId, (String, ODataId)> = BTreeMap::new();
        let mut initiator_eps: BTreeMap<ODataId, (String, ODataId)> = BTreeMap::new();
        for ep_id in reg.ids_of_type("#Endpoint.") {
            let Ok(stored) = reg.get(&ep_id) else { continue };
            let fabric = redfish_model::path::fabric_id_of(ep_id.as_str())
                .unwrap_or_default()
                .to_string();
            let Some(entities) = stored.body.get("ConnectedEntities").and_then(Value::as_array) else {
                continue;
            };
            for ent in entities {
                let role = ent.get("EntityRole").and_then(Value::as_str).unwrap_or("");
                let Some(link) = ent
                    .get("EntityLink")
                    .and_then(|l| l.get("@odata.id"))
                    .and_then(Value::as_str)
                else {
                    continue;
                };
                let link = ODataId::new(link);
                if role == "Initiator" {
                    initiator_eps.insert(ep_id.clone(), (fabric.clone(), link));
                } else {
                    target_eps.insert(ep_id.clone(), (fabric.clone(), link));
                }
            }
        }

        // Compute nodes: physical systems not bound.
        for sys_id in reg.ids_of_type("#ComputerSystem.") {
            let Ok(stored) = reg.get(&sys_id) else { continue };
            if stored.body.get("SystemType").and_then(Value::as_str) != Some("Physical") {
                continue;
            }
            if bound_systems.contains(&sys_id) {
                continue;
            }
            let state = stored.body["Status"]["State"].as_str().unwrap_or("Enabled");
            if state != "Enabled" && state != "StandbyOffline" {
                continue;
            }
            let cores = stored.body["ProcessorSummary"]["CoreCount"].as_u64().unwrap_or(0) as u32;
            let memory_gib = stored.body["MemorySummary"]["TotalSystemMemoryGiB"]
                .as_u64()
                .unwrap_or(0);
            let endpoints: BTreeMap<String, ODataId> = initiator_eps
                .iter()
                .filter(|(_, (_, link))| link == &sys_id)
                .map(|(ep, (fabric, _))| (fabric.clone(), ep.clone()))
                .collect();
            inv.compute.push(ComputePool {
                system: sys_id,
                cores,
                memory_gib,
                endpoints,
            });
        }

        // Fabric memory: each MemoryDomain, free = size - Σ chunk sizes.
        for dom_id in reg.ids_of_type("#MemoryDomain.") {
            let Ok(stored) = reg.get(&dom_id) else { continue };
            if offline(reg, &dom_id) {
                continue;
            }
            let total = stored.body["MemorySizeMiB"].as_u64().unwrap_or(0);
            let chunks_col = dom_id.child("MemoryChunks");
            let used: u64 = reg
                .members(&chunks_col)
                .unwrap_or_default()
                .iter()
                .filter_map(|c| reg.get(c).ok())
                .filter_map(|s| s.body["MemoryChunkSizeMiB"].as_u64())
                .sum();
            // The endpoint fronting this domain.
            let Some((ep, (fabric, _))) = target_eps.iter().find(|(_, (_, link))| link == &dom_id) else {
                continue;
            };
            inv.memory.push(MemoryPool {
                fabric: fabric.clone(),
                endpoint: ep.clone(),
                domain: dom_id.clone(),
                total_mib: total,
                free_mib: total.saturating_sub(used),
            });
        }

        // GPUs: processors of type GPU fronted by a target endpoint.
        for proc_id in reg.ids_of_type("#Processor.") {
            let Ok(stored) = reg.get(&proc_id) else { continue };
            if stored.body.get("ProcessorType").and_then(Value::as_str) != Some("GPU") {
                continue;
            }
            let Some((ep, (fabric, _))) = target_eps.iter().find(|(_, (_, link))| link == &proc_id) else {
                continue;
            };
            let assigned = stored.body["Oem"]["OFMF"]["AssignedTo"].is_string() || offline(reg, &proc_id);
            inv.gpus.push(GpuPool {
                fabric: fabric.clone(),
                endpoint: ep.clone(),
                processor: proc_id.clone(),
                assigned,
            });
        }

        // Storage pools: free = guaranteed − Σ volume capacities in the
        // owning service.
        for pool_id in reg.ids_of_type("#StoragePool.") {
            let Ok(stored) = reg.get(&pool_id) else { continue };
            if offline(reg, &pool_id) {
                continue;
            }
            let total = stored.body["Capacity"]["GuaranteedBytes"].as_u64().unwrap_or(0);
            // /redfish/v1/StorageServices/{svc}/StoragePools/{pool}
            let Some(pools_col) = pool_id.parent() else { continue };
            let Some(svc) = pools_col.parent() else { continue };
            let used: u64 = reg
                .members(&svc.child("Volumes"))
                .unwrap_or_default()
                .iter()
                .filter_map(|v| reg.get(v).ok())
                .filter_map(|s| s.body["CapacityBytes"].as_u64())
                .sum();
            let Some((ep, (fabric, _))) = target_eps.iter().find(|(_, (_, link))| link == &pool_id) else {
                continue;
            };
            inv.storage.push(StoragePoolView {
                fabric: fabric.clone(),
                endpoint: ep.clone(),
                pool: pool_id.clone(),
                total_bytes: total,
                free_bytes: total.saturating_sub(used),
            });
        }

        inv
    }

    /// Total free fabric memory across pools (MiB).
    pub fn free_memory_mib(&self) -> u64 {
        self.memory.iter().map(|m| m.free_mib).sum()
    }

    /// Number of unassigned GPUs.
    pub fn free_gpus(&self) -> usize {
        self.gpus.iter().filter(|g| !g.assigned).count()
    }

    /// Total free storage bytes across pools.
    pub fn free_storage_bytes(&self) -> u64 {
        self.storage.iter().map(|s| s.free_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofmf_agents::flavors::{cxl_agent, infiniband_agent, nvmeof_agent, RackShape};
    use std::collections::HashMap;
    use std::sync::Arc;

    fn rig() -> Arc<Ofmf> {
        let o = Ofmf::new("inv-uuid", HashMap::new(), 5);
        let shape = RackShape::default();
        o.register_agent(Arc::new(cxl_agent("CXL0", &shape, 1 << 20, 1)))
            .unwrap();
        o.register_agent(Arc::new(nvmeof_agent("NVME0", &shape, 1 << 40, 2)))
            .unwrap();
        o.register_agent(Arc::new(infiniband_agent("IB0", &shape, "A100", 3)))
            .unwrap();
        o
    }

    #[test]
    fn scan_finds_all_pool_classes() {
        let o = rig();
        let inv = Inventory::scan(&o, &[]);
        assert_eq!(inv.compute.len(), 4, "4 shared compute nodes");
        assert_eq!(inv.memory.len(), 2, "2 CXL appliances");
        assert_eq!(inv.gpus.len(), 2, "2 pooled GPUs");
        assert_eq!(inv.storage.len(), 2, "2 NVMe pools");
        assert_eq!(inv.free_memory_mib(), 2 << 20);
        assert_eq!(inv.free_gpus(), 2);
        assert_eq!(inv.free_storage_bytes(), 2 << 40);
        // Compute nodes carry endpoints on all three fabrics.
        assert_eq!(inv.compute[0].endpoints.len(), 3);
    }

    #[test]
    fn bound_systems_are_excluded() {
        let o = rig();
        let all = Inventory::scan(&o, &[]);
        let bound = vec![all.compute[0].system.clone()];
        let inv = Inventory::scan(&o, &bound);
        assert_eq!(inv.compute.len(), 3);
        assert!(!inv.compute.iter().any(|c| c.system == bound[0]));
    }

    #[test]
    fn chunk_consumption_reduces_free_memory() {
        let o = rig();
        // Carve a 1024 MiB chunk through the real path.
        let zones = ODataId::new("/redfish/v1/Fabrics/CXL0/Zones");
        let zone = o
            .post(
                &zones,
                &serde_json::json!({"Links": {"Endpoints": [
                    {"@odata.id": "/redfish/v1/Fabrics/CXL0/Endpoints/cn00-ep"},
                    {"@odata.id": "/redfish/v1/Fabrics/CXL0/Endpoints/mem00-ep"},
                ]}}),
            )
            .unwrap();
        o.post(
            &ODataId::new("/redfish/v1/Fabrics/CXL0/Connections"),
            &serde_json::json!({
                "Id": "c1",
                "Zone": {"@odata.id": zone.as_str()},
                "Size": 1024,
                "Links": {
                    "InitiatorEndpoints": [{"@odata.id": "/redfish/v1/Fabrics/CXL0/Endpoints/cn00-ep"}],
                    "TargetEndpoints": [{"@odata.id": "/redfish/v1/Fabrics/CXL0/Endpoints/mem00-ep"}],
                }
            }),
        )
        .unwrap();
        let inv = Inventory::scan(&o, &[]);
        assert_eq!(inv.free_memory_mib(), (2 << 20) - 1024);
        let mem00 = inv.memory.iter().find(|m| m.domain.as_str().contains("mem00")).unwrap();
        assert_eq!(mem00.free_mib, (1 << 20) - 1024);
    }

    #[test]
    fn offline_domains_are_skipped() {
        let o = rig();
        o.registry
            .patch(
                &ODataId::new("/redfish/v1/Chassis/mem00/MemoryDomains/dom0"),
                &serde_json::json!({"Status": {"State": "UnavailableOffline"}}),
                None,
            )
            .unwrap();
        let inv = Inventory::scan(&o, &[]);
        assert_eq!(inv.memory.len(), 1);
    }
}
