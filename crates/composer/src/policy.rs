//! Placement policies applied on top of the allocation strategy.
//!
//! Policies shape *how much* and *where*; strategies pick *which one*. The
//! composer consults the active [`PolicySet`] before carving capacity.

use crate::inventory::MemoryPool;

/// Tunable policy knobs.
#[derive(Debug, Clone)]
pub struct PolicySet {
    /// Fraction of each memory pool held back from composition (0.0–0.9).
    /// Headroom lets running jobs grow (OOM mitigation) without waiting for
    /// decompositions.
    pub memory_headroom: f64,
    /// Maximum chunks a single composition may spread across (anti-affinity
    /// fan-out cap; also bounds fail-over blast radius).
    pub max_memory_spread: usize,
    /// Refuse compositions that would leave a pool under this many MiB
    /// (anti-fragmentation floor).
    pub min_pool_remainder_mib: u64,
}

impl Default for PolicySet {
    fn default() -> Self {
        PolicySet {
            memory_headroom: 0.0,
            max_memory_spread: 4,
            min_pool_remainder_mib: 0,
        }
    }
}

impl PolicySet {
    /// Capacity of `pool` actually offered to the composer after headroom
    /// and remainder-floor policies.
    pub fn offered_mib(&self, pool: &MemoryPool) -> u64 {
        let headroom = (pool.total_mib as f64 * self.memory_headroom) as u64;
        pool.free_mib.saturating_sub(headroom)
    }

    /// Whether carving `size_mib` from `pool` is allowed.
    pub fn allows_carve(&self, pool: &MemoryPool, size_mib: u64) -> bool {
        let offered = self.offered_mib(pool);
        if size_mib > offered {
            return false;
        }
        let remainder = pool.free_mib - size_mib;
        remainder == 0 || remainder >= self.min_pool_remainder_mib
    }

    /// Split a memory demand across up to `max_memory_spread` pools
    /// (anti-affinity). Returns `(pool index, chunk size)` pairs, or `None`
    /// if the demand cannot be met under the policy.
    pub fn spread_plan(&self, pools: &[&MemoryPool], demand_mib: u64) -> Option<Vec<(usize, u64)>> {
        if demand_mib == 0 {
            return Some(Vec::new());
        }
        // Greedy over pools by offered capacity, largest first.
        let mut order: Vec<(usize, u64)> = pools
            .iter()
            .enumerate()
            .map(|(i, p)| (i, self.offered_mib(p)))
            .filter(|(_, cap)| *cap > 0)
            .collect();
        order.sort_by_key(|x| std::cmp::Reverse(x.1));
        let mut plan = Vec::new();
        let mut remaining = demand_mib;
        for (i, cap) in order.into_iter().take(self.max_memory_spread) {
            if remaining == 0 {
                break;
            }
            let take = cap.min(remaining);
            plan.push((i, take));
            remaining -= take;
        }
        if remaining > 0 {
            return None;
        }
        Some(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redfish_model::odata::ODataId;

    fn pool(total: u64, free: u64) -> MemoryPool {
        MemoryPool {
            fabric: "F".into(),
            endpoint: ODataId::new("/e"),
            domain: ODataId::new("/d"),
            total_mib: total,
            free_mib: free,
        }
    }

    #[test]
    fn headroom_reduces_offer() {
        let p = pool(1000, 600);
        let policy = PolicySet {
            memory_headroom: 0.2,
            ..PolicySet::default()
        };
        assert_eq!(policy.offered_mib(&p), 400); // 600 free − 200 headroom
        assert!(policy.allows_carve(&p, 400));
        assert!(!policy.allows_carve(&p, 401));
    }

    #[test]
    fn remainder_floor_blocks_fragments() {
        let p = pool(1000, 100);
        let policy = PolicySet {
            min_pool_remainder_mib: 50,
            ..PolicySet::default()
        };
        assert!(policy.allows_carve(&p, 100), "exact drain allowed");
        assert!(policy.allows_carve(&p, 50), "remainder 50 == floor");
        assert!(!policy.allows_carve(&p, 60), "would leave 40 < 50");
    }

    #[test]
    fn spread_plan_splits_across_pools() {
        let p1 = pool(1000, 300);
        let p2 = pool(1000, 500);
        let p3 = pool(1000, 200);
        let pools = vec![&p1, &p2, &p3];
        let policy = PolicySet::default();
        let plan = policy.spread_plan(&pools, 700).unwrap();
        // Largest-first greedy: 500 from p2, 200 from p1.
        assert_eq!(plan, vec![(1, 500), (0, 200)]);
        let total: u64 = plan.iter().map(|(_, s)| s).sum();
        assert_eq!(total, 700);
    }

    #[test]
    fn spread_cap_limits_fanout() {
        let p1 = pool(1000, 100);
        let p2 = pool(1000, 100);
        let p3 = pool(1000, 100);
        let pools = vec![&p1, &p2, &p3];
        let policy = PolicySet {
            max_memory_spread: 2,
            ..PolicySet::default()
        };
        assert!(policy.spread_plan(&pools, 300).is_none(), "needs 3 pools but cap is 2");
        assert!(policy.spread_plan(&pools, 200).is_some());
    }

    #[test]
    fn zero_demand_is_empty_plan() {
        let policy = PolicySet::default();
        assert_eq!(policy.spread_plan(&[], 0), Some(vec![]));
        assert!(policy.spread_plan(&[], 1).is_none());
    }
}
