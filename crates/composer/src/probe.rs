//! Batched, cached, congestion-aware route probing for placement.
//!
//! The old `TopologyAware` path paid one synchronous supervised agent
//! round-trip per candidate pool and scored by hop count alone. This module
//! replaces that with a shared scored-candidate pipeline:
//!
//! 1. **filter** — callers pass only candidates that fit;
//! 2. **batch-probe** — all uncached `(initiator, target)` pairs on one
//!    fabric travel in a single [`AgentOp::ProbeRoutes`] round-trip, and
//!    batches for different fabrics are dispatched in parallel through
//!    [`Ofmf::apply_parallel`] (supervisor retries/breakers/deadlines still
//!    apply per agent);
//! 3. **score** — candidates are ranked by `(residual bandwidth desc, hops
//!    asc, blast radius asc, free capacity asc)` with a deterministic
//!    index tie-break.
//!
//! Probe results are cached per fabric, keyed on the topology generation the
//! agent reports (bumped on every link/route/reservation change), so
//! repeated composes against a quiet fabric never re-probe it. The cache
//! lock is **never held across an agent call** — lookups release it before
//! dispatch and re-acquire to insert — which keeps the lockcheck-verified
//! lock graph acyclic.
//!
//! A probe failure no longer silently drops a candidate: failed batches are
//! counted (`ofmf.composer.probe.failed.total`), the skipped fabrics are
//! named on the placement span, and the affected candidates degrade to
//! *unprobed* scoring (ranked after every probed candidate, in input order)
//! so a flaky agent can slow placement down but never wedge it.

use ofmf_core::agent::AgentOp;
use ofmf_core::Ofmf;
use parking_lot::Mutex;
use redfish_model::odata::ODataId;
use serde_json::Value;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One fabric's freshly-probed batch: the topology generation it was
/// probed at, plus the per-pair outcomes (None = that pair has no route).
type FreshBatch = (u64, Vec<((ODataId, ODataId), Option<RouteScore>)>);

/// What a probe learned about one candidate route.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouteScore {
    /// Link hops from initiator to target.
    pub hops: u64,
    /// Bottleneck unreserved bandwidth along the route (Gbit/s).
    pub residual_gbps: f64,
    /// Live connections sharing at least one link with the route.
    pub blast_radius: u64,
}

/// How probed candidates are ranked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScoreMode {
    /// Congestion-aware: widest residual first, then hops, then blast
    /// radius, then tightest fit.
    #[default]
    Congestion,
    /// Legacy hop-count-only ranking (A/B baseline for benches): hops, then
    /// tightest fit.
    HopsOnly,
}

struct ProbeMetrics {
    batches: Arc<ofmf_obs::Counter>,
    pairs: Arc<ofmf_obs::Counter>,
    failed: Arc<ofmf_obs::Counter>,
    cache_hit: Arc<ofmf_obs::Counter>,
    cache_miss: Arc<ofmf_obs::Counter>,
}

fn probe_metrics() -> &'static ProbeMetrics {
    static METRICS: std::sync::OnceLock<ProbeMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| ProbeMetrics {
        batches: ofmf_obs::counter("ofmf.composer.probe.batches.total"),
        pairs: ofmf_obs::counter("ofmf.composer.probe.pairs.total"),
        failed: ofmf_obs::counter("ofmf.composer.probe.failed.total"),
        cache_hit: ofmf_obs::counter("ofmf.composer.probe.cache_hit.total"),
        cache_miss: ofmf_obs::counter("ofmf.composer.probe.cache_miss.total"),
    })
}

/// Cached probe results for one fabric at one topology generation.
/// `None` scores are cached too: an unroutable pair stays unroutable until
/// the topology changes, so re-probing it every compose is wasted work.
struct FabricCache {
    generation: u64,
    scores: BTreeMap<(ODataId, ODataId), Option<RouteScore>>,
}

/// The probing engine: owns the per-fabric result cache and the dispatch
/// policy (batched-parallel vs sequential per-candidate baseline).
pub struct Prober {
    cache: Mutex<BTreeMap<String, FabricCache>>,
    sequential: bool,
    mode: ScoreMode,
}

impl Default for Prober {
    fn default() -> Self {
        Prober::new()
    }
}

impl Prober {
    /// Batched-parallel, congestion-aware prober (production default).
    pub fn new() -> Self {
        Prober {
            cache: Mutex::new(BTreeMap::new()),
            sequential: false,
            mode: ScoreMode::Congestion,
        }
    }

    /// Switch to the sequential per-candidate baseline (one `ProbeRoute`
    /// round-trip per uncached candidate, no cross-fabric parallelism).
    /// Kept for A/B comparison, like `EventService::with_linear_matching`.
    #[must_use]
    pub fn with_sequential_probing(mut self) -> Self {
        self.sequential = true;
        self
    }

    /// Override the ranking mode (benches compare congestion-aware against
    /// the legacy hop-count-only ranking).
    #[must_use]
    pub fn with_score_mode(mut self, mode: ScoreMode) -> Self {
        self.mode = mode;
        self
    }

    /// Whether this prober runs the sequential baseline.
    pub fn is_sequential(&self) -> bool {
        self.sequential
    }

    /// The ranking mode in use.
    pub fn score_mode(&self) -> ScoreMode {
        self.mode
    }

    /// Drop cached results for one fabric (the composer calls this after
    /// binding or unbinding there — the reservation change moved residuals).
    pub fn invalidate_fabric(&self, fabric: &str) {
        self.cache.lock().remove(fabric);
    }

    /// Drop the whole cache.
    pub fn invalidate_all(&self) {
        self.cache.lock().clear();
    }

    /// Cached pair count for a fabric (test observation).
    pub fn cached_pairs(&self, fabric: &str) -> usize {
        self.cache.lock().get(fabric).map(|c| c.scores.len()).unwrap_or(0)
    }

    /// Probe `(fabric, initiator, target)` triples, returning one score slot
    /// per input in input order (`None` = unroutable or probe failed) plus
    /// the fabrics whose batches failed outright (for span annotation).
    pub fn probe_pairs(
        &self,
        ofmf: &Ofmf,
        requests: &[(String, ODataId, ODataId)],
    ) -> (Vec<Option<RouteScore>>, Vec<String>) {
        let m = probe_metrics();
        let mut results: Vec<Option<Option<RouteScore>>> = vec![None; requests.len()];

        // Phase 1: consult the cache, collect misses per fabric. The lock is
        // released before any agent traffic.
        let mut misses: BTreeMap<String, Vec<(ODataId, ODataId)>> = BTreeMap::new();
        {
            let cache = self.cache.lock();
            for (i, (fabric, ini, tgt)) in requests.iter().enumerate() {
                let key = (ini.clone(), tgt.clone());
                match cache.get(fabric).and_then(|fc| fc.scores.get(&key)) {
                    Some(score) => {
                        m.cache_hit.inc();
                        // ofmf-lint: allow(no-panic-path, "i enumerates requests and results was sized to requests.len()")
                        results[i] = Some(*score);
                    }
                    None => {
                        m.cache_miss.inc();
                        let pairs = misses.entry(fabric.clone()).or_default();
                        if !pairs.contains(&key) {
                            pairs.push(key);
                        }
                    }
                }
            }
        }
        if misses.is_empty() {
            return (results.into_iter().map(|r| r.unwrap_or(None)).collect(), Vec::new());
        }

        // Phase 2: dispatch. Batched mode sends one ProbeRoutes per fabric,
        // all fabrics in parallel; sequential baseline sends one ProbeRoute
        // per pair, one after another.
        let mut failed_fabrics: Vec<String> = Vec::new();
        let mut fresh: BTreeMap<String, FreshBatch> = BTreeMap::new();
        if self.sequential {
            for (fabric, pairs) in &misses {
                let mut scored = Vec::with_capacity(pairs.len());
                let mut generation = 0u64;
                let mut fabric_ok = false;
                for (ini, tgt) in pairs {
                    m.batches.inc();
                    m.pairs.inc();
                    let resp = ofmf.apply(
                        fabric,
                        &AgentOp::ProbeRoute {
                            initiator: ini.clone(),
                            target: tgt.clone(),
                        },
                    );
                    match resp {
                        Ok(r) => {
                            fabric_ok = true;
                            if let Some(p) = r.payload.as_ref() {
                                if let Some(g) = p.get("TopologyGeneration").and_then(Value::as_u64) {
                                    generation = g;
                                }
                            }
                            scored.push(((ini.clone(), tgt.clone()), score_from_payload(r.payload.as_ref())));
                        }
                        // Conflict = "no healthy route": a real answer, cacheable.
                        Err(redfish_model::RedfishError::Conflict(_)) => {
                            fabric_ok = true;
                            scored.push(((ini.clone(), tgt.clone()), None));
                        }
                        Err(_) => {
                            m.failed.inc();
                        }
                    }
                }
                if fabric_ok {
                    fresh.insert(fabric.clone(), (generation, scored));
                } else {
                    failed_fabrics.push(fabric.clone());
                }
            }
        } else {
            let ops: Vec<(String, AgentOp)> = misses
                .iter()
                .map(|(fabric, pairs)| (fabric.clone(), AgentOp::ProbeRoutes { pairs: pairs.clone() }))
                .collect();
            m.batches.add(ops.len() as u64);
            m.pairs.add(misses.values().map(|p| p.len() as u64).sum());
            let responses = ofmf.apply_parallel(&ops);
            for ((fabric, pairs), resp) in misses.iter().zip(responses) {
                match resp {
                    Ok(r) => {
                        let payload = r.payload.unwrap_or(Value::Null);
                        let generation = payload.get("TopologyGeneration").and_then(Value::as_u64).unwrap_or(0);
                        let empty = Vec::new();
                        let entries = payload.get("Results").and_then(Value::as_array).unwrap_or(&empty);
                        let scored = pairs
                            .iter()
                            .enumerate()
                            .map(|(j, key)| (key.clone(), score_from_payload(entries.get(j))))
                            .collect();
                        fresh.insert(fabric.clone(), (generation, scored));
                    }
                    Err(_) => {
                        m.failed.inc();
                        failed_fabrics.push(fabric.clone());
                    }
                }
            }
        }

        // Phase 3: install fresh results (re-acquiring the lock) and fill
        // the remaining slots.
        {
            let mut cache = self.cache.lock();
            for (fabric, (generation, scored)) in &fresh {
                let fc = cache.entry(fabric.clone()).or_insert_with(|| FabricCache {
                    generation: *generation,
                    scores: BTreeMap::new(),
                });
                if fc.generation != *generation {
                    // The fabric moved under us: everything older is stale.
                    fc.generation = *generation;
                    fc.scores.clear();
                }
                for (key, score) in scored {
                    fc.scores.insert(key.clone(), *score);
                }
            }
        }
        for (i, (fabric, ini, tgt)) in requests.iter().enumerate() {
            // ofmf-lint: allow(no-panic-path, "i enumerates requests and results was sized to requests.len()")
            if results[i].is_none() {
                let key = (ini.clone(), tgt.clone());
                let hit = fresh
                    .get(fabric)
                    .and_then(|(_, scored)| scored.iter().find(|(k, _)| *k == key))
                    .map(|(_, s)| *s);
                // ofmf-lint: allow(no-panic-path, "i enumerates requests and results was sized to requests.len()")
                results[i] = Some(hit.unwrap_or(None));
            }
        }
        (results.into_iter().map(|r| r.unwrap_or(None)).collect(), failed_fabrics)
    }
}

/// Extract a [`RouteScore`] from a per-pair probe payload; `None` for
/// missing payloads or `{"Error": ...}` entries.
fn score_from_payload(v: Option<&Value>) -> Option<RouteScore> {
    let v = v?;
    if v.get("Error").is_some() {
        return None;
    }
    Some(RouteScore {
        hops: v.get("Hops")?.as_u64()?,
        residual_gbps: v.get("ResidualGbps").and_then(Value::as_f64).unwrap_or(f64::MAX),
        blast_radius: v.get("BlastRadius").and_then(Value::as_u64).unwrap_or(0),
    })
}

/// One placement candidate after the fit filter: index into the caller's
/// pool slice plus the facts scoring needs.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Index into the caller's pool slice.
    pub index: usize,
    /// Owning fabric.
    pub fabric: String,
    /// Target endpoint resource id.
    pub endpoint: ODataId,
    /// Free capacity for tightest-fit ranking (0 for whole-device grants).
    pub free: u64,
}

/// Outcome of a scored selection, including which fabrics were skipped
/// because their probe batches failed (surfaced on the placement span).
pub struct Selection {
    /// Winning candidate's `index`, if any candidate survived.
    pub index: Option<usize>,
    /// Fabrics whose probe batch failed outright.
    pub skipped_fabrics: Vec<String>,
}

/// Rank probed candidates: congestion-aware order is `(residual desc, hops
/// asc, blast asc, free asc, index asc)`; hop-count-only drops the
/// congestion terms (legacy ranking). `total_cmp` keeps the order total
/// (and therefore the pick deterministic) even for degenerate scores.
fn better(mode: ScoreMode, a: (&RouteScore, u64, usize), b: (&RouteScore, u64, usize)) -> bool {
    let (sa, free_a, ia) = a;
    let (sb, free_b, ib) = b;
    let ord = match mode {
        ScoreMode::Congestion => sb
            .residual_gbps
            .total_cmp(&sa.residual_gbps)
            .then(sa.hops.cmp(&sb.hops))
            .then(sa.blast_radius.cmp(&sb.blast_radius))
            .then(free_a.cmp(&free_b))
            .then(ia.cmp(&ib)),
        ScoreMode::HopsOnly => sa.hops.cmp(&sb.hops).then(free_a.cmp(&free_b)).then(ia.cmp(&ib)),
    };
    ord == std::cmp::Ordering::Less
}

/// Probe every candidate through `prober` and pick the congestion-aware
/// winner. Candidates whose probes failed (agent down, batch dropped)
/// degrade to *unprobed* and rank after every probed candidate in input
/// order, so placement still succeeds when probing cannot.
pub fn choose_probed(
    prober: &Prober,
    ofmf: &Ofmf,
    initiator_by_fabric: &BTreeMap<String, ODataId>,
    candidates: &[Candidate],
) -> Selection {
    let requests: Vec<(String, ODataId, ODataId)> = candidates
        .iter()
        .filter_map(|c| {
            initiator_by_fabric
                .get(&c.fabric)
                .map(|ini| (c.fabric.clone(), ini.clone(), c.endpoint.clone()))
        })
        .collect();
    if requests.len() != candidates.len() {
        // Callers filter on initiator reachability; a mismatch is a bug.
        return Selection {
            index: None,
            skipped_fabrics: Vec::new(),
        };
    }
    let (scores, skipped_fabrics) = prober.probe_pairs(ofmf, &requests);
    let mode = prober.score_mode();
    let mut best_probed: Option<(RouteScore, u64, usize)> = None;
    let mut best_unprobed: Option<usize> = None;
    for (pos, (cand, score)) in candidates.iter().zip(&scores).enumerate() {
        match score {
            Some(s) => {
                let challenger = (s, cand.free, pos);
                let wins = match &best_probed {
                    None => true,
                    Some((bs, bf, bp)) => better(mode, challenger, (bs, *bf, *bp)),
                };
                if wins {
                    best_probed = Some((*s, cand.free, pos));
                }
            }
            None => {
                // Unroutable pairs stay excluded; only *failed* probes (the
                // fabric never answered) degrade to unprobed scoring.
                if skipped_fabrics.contains(&cand.fabric) && best_unprobed.is_none() {
                    best_unprobed = Some(pos);
                }
            }
        }
    }
    let winner = best_probed.map(|(_, _, pos)| pos).or(best_unprobed);
    Selection {
        // ofmf-lint: allow(no-panic-path, "pos came from enumerate() over this same candidates slice")
        index: winner.map(|pos| candidates[pos].index),
        skipped_fabrics,
    }
}
