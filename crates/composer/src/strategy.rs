//! Allocation strategies: how the composer picks targets from the pools.
//!
//! The strategies differ along the classic placement trade-offs:
//!
//! * **FirstFit** — O(1)-ish, fragments pools, fastest.
//! * **BestFit** — minimizes leftover fragments (least free capacity that
//!   still fits), slower, keeps large pools intact for large requests.
//! * **TopologyAware** — probes the fabric route from the compute node to
//!   each candidate and picks by `(residual bandwidth, hops, blast radius)`
//!   through the shared scored-candidate pipeline in [`crate::probe`]:
//!   uncached candidates are probed in one batched round-trip per fabric,
//!   fabrics in parallel, behind a generation-keyed result cache.
//!
//! The three `choose_*` entry points here keep their original signatures and
//! run against an ephemeral prober (no cache reuse across calls); the
//! composer itself holds a long-lived [`Prober`] and calls the `*_with`
//! variants so repeated composes hit the cache.

use crate::inventory::{GpuPool, MemoryPool, StoragePoolView};
use crate::probe::{choose_probed, Candidate, Prober};
use ofmf_core::Ofmf;
use redfish_model::odata::ODataId;
use std::collections::BTreeMap;

/// Strategy selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// First candidate that fits.
    #[default]
    FirstFit,
    /// Tightest candidate that fits.
    BestFit,
    /// Congestion-aware: widest residual bandwidth, then fewest hops, then
    /// smallest blast radius; ties broken by tightest fit.
    TopologyAware,
}

impl Strategy {
    /// All strategies (ablation benches).
    pub const ALL: [Strategy; 3] = [Strategy::FirstFit, Strategy::BestFit, Strategy::TopologyAware];

    /// Stable lowercase label (metric names, CLI output).
    pub fn label(self) -> &'static str {
        match self {
            Strategy::FirstFit => "first_fit",
            Strategy::BestFit => "best_fit",
            Strategy::TopologyAware => "topology_aware",
        }
    }

    /// Index into [`Strategy::ALL`].
    pub fn index(self) -> usize {
        match self {
            Strategy::FirstFit => 0,
            Strategy::BestFit => 1,
            Strategy::TopologyAware => 2,
        }
    }
}

/// Choose a memory pool for `size_mib`, honoring the strategy. `initiator`
/// maps fabric id → the compute node's endpoint on that fabric.
pub fn choose_memory<'a>(
    strategy: Strategy,
    pools: &'a [MemoryPool],
    size_mib: u64,
    ofmf: &Ofmf,
    initiator_by_fabric: &BTreeMap<String, ODataId>,
) -> Option<&'a MemoryPool> {
    choose_memory_with(&Prober::new(), strategy, pools, size_mib, ofmf, initiator_by_fabric).0
}

/// [`choose_memory`] against a caller-owned [`Prober`] (cache reuse across
/// composes). Also reports fabrics skipped because their probe batch failed.
pub fn choose_memory_with<'a>(
    prober: &Prober,
    strategy: Strategy,
    pools: &'a [MemoryPool],
    size_mib: u64,
    ofmf: &Ofmf,
    initiator_by_fabric: &BTreeMap<String, ODataId>,
) -> (Option<&'a MemoryPool>, Vec<String>) {
    let fits = |p: &&MemoryPool| p.free_mib >= size_mib && initiator_by_fabric.contains_key(&p.fabric);
    match strategy {
        Strategy::FirstFit => (pools.iter().find(fits), Vec::new()),
        Strategy::BestFit => (pools.iter().filter(fits).min_by_key(|p| p.free_mib), Vec::new()),
        Strategy::TopologyAware => {
            let candidates: Vec<Candidate> = pools
                .iter()
                .enumerate()
                .filter(|(_, p)| fits(p))
                .map(|(i, p)| Candidate {
                    index: i,
                    fabric: p.fabric.clone(),
                    endpoint: p.endpoint.clone(),
                    free: p.free_mib,
                })
                .collect();
            let sel = choose_probed(prober, ofmf, initiator_by_fabric, &candidates);
            // ofmf-lint: allow(no-panic-path, "Selection.index came from enumerate() over these same pools")
            (sel.index.map(|i| &pools[i]), sel.skipped_fabrics)
        }
    }
}

/// Choose a storage pool for `bytes`.
pub fn choose_storage<'a>(
    strategy: Strategy,
    pools: &'a [StoragePoolView],
    bytes: u64,
    ofmf: &Ofmf,
    initiator_by_fabric: &BTreeMap<String, ODataId>,
) -> Option<&'a StoragePoolView> {
    choose_storage_with(&Prober::new(), strategy, pools, bytes, ofmf, initiator_by_fabric).0
}

/// [`choose_storage`] against a caller-owned [`Prober`].
pub fn choose_storage_with<'a>(
    prober: &Prober,
    strategy: Strategy,
    pools: &'a [StoragePoolView],
    bytes: u64,
    ofmf: &Ofmf,
    initiator_by_fabric: &BTreeMap<String, ODataId>,
) -> (Option<&'a StoragePoolView>, Vec<String>) {
    let fits = |p: &&StoragePoolView| p.free_bytes >= bytes && initiator_by_fabric.contains_key(&p.fabric);
    match strategy {
        Strategy::FirstFit => (pools.iter().find(fits), Vec::new()),
        Strategy::BestFit => (pools.iter().filter(fits).min_by_key(|p| p.free_bytes), Vec::new()),
        Strategy::TopologyAware => {
            let candidates: Vec<Candidate> = pools
                .iter()
                .enumerate()
                .filter(|(_, p)| fits(p))
                .map(|(i, p)| Candidate {
                    index: i,
                    fabric: p.fabric.clone(),
                    endpoint: p.endpoint.clone(),
                    free: p.free_bytes,
                })
                .collect();
            let sel = choose_probed(prober, ofmf, initiator_by_fabric, &candidates);
            // ofmf-lint: allow(no-panic-path, "Selection.index came from enumerate() over these same pools")
            (sel.index.map(|i| &pools[i]), sel.skipped_fabrics)
        }
    }
}

/// Choose an unassigned GPU.
pub fn choose_gpu<'a>(
    strategy: Strategy,
    pools: &'a [GpuPool],
    ofmf: &Ofmf,
    initiator_by_fabric: &BTreeMap<String, ODataId>,
) -> Option<&'a GpuPool> {
    choose_gpu_with(&Prober::new(), strategy, pools, ofmf, initiator_by_fabric).0
}

/// [`choose_gpu`] against a caller-owned [`Prober`].
pub fn choose_gpu_with<'a>(
    prober: &Prober,
    strategy: Strategy,
    pools: &'a [GpuPool],
    ofmf: &Ofmf,
    initiator_by_fabric: &BTreeMap<String, ODataId>,
) -> (Option<&'a GpuPool>, Vec<String>) {
    let fits = |p: &&GpuPool| !p.assigned && initiator_by_fabric.contains_key(&p.fabric);
    match strategy {
        // Whole-device grants have no "tightness", so BestFit degenerates to
        // FirstFit (unchanged from the pre-pipeline behavior).
        Strategy::FirstFit | Strategy::BestFit => (pools.iter().find(fits), Vec::new()),
        Strategy::TopologyAware => {
            let candidates: Vec<Candidate> = pools
                .iter()
                .enumerate()
                .filter(|(_, p)| fits(p))
                .map(|(i, p)| Candidate {
                    index: i,
                    fabric: p.fabric.clone(),
                    endpoint: p.endpoint.clone(),
                    free: 0,
                })
                .collect();
            let sel = choose_probed(prober, ofmf, initiator_by_fabric, &candidates);
            // ofmf-lint: allow(no-panic-path, "Selection.index came from enumerate() over these same pools")
            (sel.index.map(|i| &pools[i]), sel.skipped_fabrics)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{BTreeMap, HashMap};
    use std::sync::Arc;

    fn pool(fabric: &str, name: &str, total: u64, free: u64) -> MemoryPool {
        MemoryPool {
            fabric: fabric.to_string(),
            endpoint: ODataId::new(format!("/redfish/v1/Fabrics/{fabric}/Endpoints/{name}-ep")),
            domain: ODataId::new(format!("/redfish/v1/Chassis/{name}/MemoryDomains/dom0")),
            total_mib: total,
            free_mib: free,
        }
    }

    fn no_ofmf() -> Arc<Ofmf> {
        Ofmf::new("strategy-test", HashMap::new(), 1)
    }

    fn ini_map(fabric: &str) -> BTreeMap<String, ODataId> {
        let mut m = BTreeMap::new();
        m.insert(
            fabric.to_string(),
            ODataId::new(format!("/redfish/v1/Fabrics/{fabric}/Endpoints/cn00-ep")),
        );
        m
    }

    #[test]
    fn first_fit_takes_first_that_fits() {
        let pools = vec![
            pool("F", "a", 100, 10),
            pool("F", "b", 100, 50),
            pool("F", "c", 100, 90),
        ];
        let o = no_ofmf();
        let chosen = choose_memory(Strategy::FirstFit, &pools, 40, &o, &ini_map("F")).unwrap();
        assert_eq!(chosen.domain, pools[1].domain);
    }

    #[test]
    fn best_fit_takes_tightest() {
        let pools = vec![
            pool("F", "a", 100, 90),
            pool("F", "b", 100, 45),
            pool("F", "c", 100, 50),
        ];
        let o = no_ofmf();
        let chosen = choose_memory(Strategy::BestFit, &pools, 40, &o, &ini_map("F")).unwrap();
        assert_eq!(chosen.domain, pools[1].domain);
    }

    #[test]
    fn nothing_fits_returns_none() {
        let pools = vec![pool("F", "a", 100, 10)];
        let o = no_ofmf();
        assert!(choose_memory(Strategy::FirstFit, &pools, 40, &o, &ini_map("F")).is_none());
        assert!(choose_memory(Strategy::BestFit, &pools, 40, &o, &ini_map("F")).is_none());
    }

    #[test]
    fn pools_on_unreachable_fabrics_are_skipped() {
        // Initiator only has an endpoint on fabric G; pool is on F.
        let pools = vec![pool("F", "a", 100, 90)];
        let o = no_ofmf();
        assert!(choose_memory(Strategy::FirstFit, &pools, 40, &o, &ini_map("G")).is_none());
    }

    #[test]
    fn gpu_choice_skips_assigned() {
        let mk = |name: &str, assigned| GpuPool {
            fabric: "F".to_string(),
            endpoint: ODataId::new(format!("/e/{name}")),
            processor: ODataId::new(format!("/p/{name}")),
            assigned,
        };
        let pools = vec![mk("g0", true), mk("g1", false)];
        let o = no_ofmf();
        let chosen = choose_gpu(Strategy::FirstFit, &pools, &o, &ini_map("F")).unwrap();
        assert_eq!(chosen.processor.as_str(), "/p/g1");
    }

    #[test]
    fn topology_aware_degrades_to_first_fit_when_fabric_unreachable() {
        // No agent is registered for fabric F, so the probe batch fails
        // outright. Placement must degrade to unprobed scoring (first
        // candidate in input order) and name the skipped fabric, instead of
        // silently returning None as the pre-pipeline code did.
        let pools = vec![pool("F", "a", 100, 90), pool("F", "b", 100, 50)];
        let o = no_ofmf();
        let prober = Prober::new();
        let (chosen, skipped) = choose_memory_with(&prober, Strategy::TopologyAware, &pools, 40, &o, &ini_map("F"));
        assert_eq!(chosen.unwrap().domain, pools[0].domain);
        assert_eq!(skipped, vec!["F".to_string()]);
    }
}
