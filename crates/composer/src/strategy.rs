//! Allocation strategies: how the composer picks targets from the pools.
//!
//! The strategies differ along the classic placement trade-offs:
//!
//! * **FirstFit** — O(1)-ish, fragments pools, fastest.
//! * **BestFit** — minimizes leftover fragments (least free capacity that
//!   still fits), slower, keeps large pools intact for large requests.
//! * **TopologyAware** — probes the fabric route from the compute node to
//!   each candidate and picks the fewest-hops target that fits; pays one
//!   agent round-trip per candidate for lower data-plane latency.

use crate::inventory::{GpuPool, MemoryPool, StoragePoolView};
use ofmf_core::agent::AgentOp;
use ofmf_core::Ofmf;
use redfish_model::odata::ODataId;
use serde_json::Value;

/// Strategy selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// First candidate that fits.
    #[default]
    FirstFit,
    /// Tightest candidate that fits.
    BestFit,
    /// Fewest fabric hops from the initiator; ties broken by tightest fit.
    TopologyAware,
}

impl Strategy {
    /// All strategies (ablation benches).
    pub const ALL: [Strategy; 3] = [Strategy::FirstFit, Strategy::BestFit, Strategy::TopologyAware];

    /// Stable lowercase label (metric names, CLI output).
    pub fn label(self) -> &'static str {
        match self {
            Strategy::FirstFit => "first_fit",
            Strategy::BestFit => "best_fit",
            Strategy::TopologyAware => "topology_aware",
        }
    }

    /// Index into [`Strategy::ALL`].
    pub fn index(self) -> usize {
        match self {
            Strategy::FirstFit => 0,
            Strategy::BestFit => 1,
            Strategy::TopologyAware => 2,
        }
    }
}

/// Probe the hop count between two endpoints on `fabric`; `None` when the
/// route is unavailable or the agent refuses.
fn probe_hops(ofmf: &Ofmf, fabric: &str, initiator: &ODataId, target: &ODataId) -> Option<u64> {
    let resp = ofmf
        .apply(
            fabric,
            &AgentOp::ProbeRoute {
                initiator: initiator.clone(),
                target: target.clone(),
            },
        )
        .ok()?;
    resp.payload?.get("Hops").and_then(Value::as_u64)
}

/// Choose a memory pool for `size_mib`, honoring the strategy. `initiator`
/// maps fabric id → the compute node's endpoint on that fabric.
pub fn choose_memory<'a>(
    strategy: Strategy,
    pools: &'a [MemoryPool],
    size_mib: u64,
    ofmf: &Ofmf,
    initiator_by_fabric: &std::collections::BTreeMap<String, ODataId>,
) -> Option<&'a MemoryPool> {
    let fits = |p: &&MemoryPool| p.free_mib >= size_mib && initiator_by_fabric.contains_key(&p.fabric);
    match strategy {
        Strategy::FirstFit => pools.iter().find(fits),
        Strategy::BestFit => pools.iter().filter(fits).min_by_key(|p| p.free_mib),
        Strategy::TopologyAware => pools
            .iter()
            .filter(fits)
            .filter_map(|p| {
                let ini = initiator_by_fabric.get(&p.fabric)?;
                let hops = probe_hops(ofmf, &p.fabric, ini, &p.endpoint)?;
                Some((hops, p.free_mib, p))
            })
            .min_by_key(|(hops, free, _)| (*hops, *free))
            .map(|(_, _, p)| p),
    }
}

/// Choose a storage pool for `bytes`.
pub fn choose_storage<'a>(
    strategy: Strategy,
    pools: &'a [StoragePoolView],
    bytes: u64,
    ofmf: &Ofmf,
    initiator_by_fabric: &std::collections::BTreeMap<String, ODataId>,
) -> Option<&'a StoragePoolView> {
    let fits = |p: &&StoragePoolView| p.free_bytes >= bytes && initiator_by_fabric.contains_key(&p.fabric);
    match strategy {
        Strategy::FirstFit => pools.iter().find(fits),
        Strategy::BestFit => pools.iter().filter(fits).min_by_key(|p| p.free_bytes),
        Strategy::TopologyAware => pools
            .iter()
            .filter(fits)
            .filter_map(|p| {
                let ini = initiator_by_fabric.get(&p.fabric)?;
                let hops = probe_hops(ofmf, &p.fabric, ini, &p.endpoint)?;
                Some((hops, p.free_bytes, p))
            })
            .min_by_key(|(hops, free, _)| (*hops, *free))
            .map(|(_, _, p)| p),
    }
}

/// Choose an unassigned GPU.
pub fn choose_gpu<'a>(
    strategy: Strategy,
    pools: &'a [GpuPool],
    ofmf: &Ofmf,
    initiator_by_fabric: &std::collections::BTreeMap<String, ODataId>,
) -> Option<&'a GpuPool> {
    let fits = |p: &&GpuPool| !p.assigned && initiator_by_fabric.contains_key(&p.fabric);
    match strategy {
        Strategy::FirstFit | Strategy::BestFit => pools.iter().find(fits),
        Strategy::TopologyAware => pools
            .iter()
            .filter(fits)
            .filter_map(|p| {
                let ini = initiator_by_fabric.get(&p.fabric)?;
                let hops = probe_hops(ofmf, &p.fabric, ini, &p.endpoint)?;
                Some((hops, p))
            })
            .min_by_key(|(hops, _)| *hops)
            .map(|(_, p)| p),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{BTreeMap, HashMap};
    use std::sync::Arc;

    fn pool(fabric: &str, name: &str, total: u64, free: u64) -> MemoryPool {
        MemoryPool {
            fabric: fabric.to_string(),
            endpoint: ODataId::new(format!("/redfish/v1/Fabrics/{fabric}/Endpoints/{name}-ep")),
            domain: ODataId::new(format!("/redfish/v1/Chassis/{name}/MemoryDomains/dom0")),
            total_mib: total,
            free_mib: free,
        }
    }

    fn no_ofmf() -> Arc<Ofmf> {
        Ofmf::new("strategy-test", HashMap::new(), 1)
    }

    fn ini_map(fabric: &str) -> BTreeMap<String, ODataId> {
        let mut m = BTreeMap::new();
        m.insert(
            fabric.to_string(),
            ODataId::new(format!("/redfish/v1/Fabrics/{fabric}/Endpoints/cn00-ep")),
        );
        m
    }

    #[test]
    fn first_fit_takes_first_that_fits() {
        let pools = vec![
            pool("F", "a", 100, 10),
            pool("F", "b", 100, 50),
            pool("F", "c", 100, 90),
        ];
        let o = no_ofmf();
        let chosen = choose_memory(Strategy::FirstFit, &pools, 40, &o, &ini_map("F")).unwrap();
        assert_eq!(chosen.domain, pools[1].domain);
    }

    #[test]
    fn best_fit_takes_tightest() {
        let pools = vec![
            pool("F", "a", 100, 90),
            pool("F", "b", 100, 45),
            pool("F", "c", 100, 50),
        ];
        let o = no_ofmf();
        let chosen = choose_memory(Strategy::BestFit, &pools, 40, &o, &ini_map("F")).unwrap();
        assert_eq!(chosen.domain, pools[1].domain);
    }

    #[test]
    fn nothing_fits_returns_none() {
        let pools = vec![pool("F", "a", 100, 10)];
        let o = no_ofmf();
        assert!(choose_memory(Strategy::FirstFit, &pools, 40, &o, &ini_map("F")).is_none());
        assert!(choose_memory(Strategy::BestFit, &pools, 40, &o, &ini_map("F")).is_none());
    }

    #[test]
    fn pools_on_unreachable_fabrics_are_skipped() {
        // Initiator only has an endpoint on fabric G; pool is on F.
        let pools = vec![pool("F", "a", 100, 90)];
        let o = no_ofmf();
        assert!(choose_memory(Strategy::FirstFit, &pools, 40, &o, &ini_map("G")).is_none());
    }

    #[test]
    fn gpu_choice_skips_assigned() {
        let mk = |name: &str, assigned| GpuPool {
            fabric: "F".to_string(),
            endpoint: ODataId::new(format!("/e/{name}")),
            processor: ODataId::new(format!("/p/{name}")),
            assigned,
        };
        let pools = vec![mk("g0", true), mk("g1", false)];
        let o = no_ofmf();
        let chosen = choose_gpu(Strategy::FirstFit, &pools, &o, &ini_map("F")).unwrap();
        assert_eq!(chosen.processor.as_str(), "/p/g1");
    }
}
