//! # composer
//!
//! The OFMF **Composability Manager** — the layer the paper places between
//! clients and the OFMF services: "The Composability Layer manages hardware
//! resources to best provide run-time computational performance, energy
//! efficiency, and resource monitoring by applying policies and updating
//! subscribed clients with events."
//!
//! * [`inventory`] — a live view of free pools (compute nodes, fabric
//!   memory, GPUs, NVMe capacity) derived from the unified Redfish tree.
//! * [`request`] — composition requests and the resulting
//!   [`request::ComposedSystem`] records.
//! * [`strategy`] — allocation strategies: first-fit, best-fit and
//!   topology-aware (hop-minimizing via agent route probes).
//! * [`policy`] — placement policies: anti-affinity spreading, consolidation
//!   for power-gating, capacity headroom.
//! * [`composer`] — the [`composer::Composer`] itself: compose / decompose,
//!   dynamic reprovisioning (grow memory under OOM pressure, attach storage
//!   under I/O thrash), and event-driven fail-over recovery.
//! * [`accounting`] — stranded-resource and energy accounting comparing
//!   composable against statically provisioned infrastructure (Fig. 1).
//! * [`blocks`] — publishes the inventory as standard Redfish
//!   `ResourceBlock`s under the CompositionService.
//! * [`energy`] — power-gates fully idle pool devices and wakes them on
//!   demand.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accounting;
pub mod blocks;
pub mod composer;
pub mod energy;
pub mod inventory;
pub mod policy;
pub mod probe;
pub mod request;
pub mod strategy;

pub use composer::Composer;
pub use inventory::Inventory;
pub use request::{ComposedSystem, CompositionRequest};
pub use strategy::Strategy;
