//! Property tests: policy arithmetic, accounting bounds, and the composer's
//! conservation law (compose ∘ decompose = identity on the inventory).

use composer::accounting::{composable_outcome, heterogeneous_mix, static_outcome, PowerModel, StaticNodeShape};
use composer::inventory::MemoryPool;
use composer::policy::PolicySet;
use composer::{Composer, CompositionRequest, Strategy};
use ofmf_agents::flavors::{cxl_agent, infiniband_agent, nvmeof_agent, RackShape};
use proptest::prelude::*;
use redfish_model::odata::ODataId;
use std::sync::Arc;

fn demo_rig(seed: u64) -> DemoRig {
    let ofmf = ofmf_core::Ofmf::new("prop-rig", std::collections::HashMap::new(), seed);
    let shape = RackShape::default();
    ofmf.register_agent(Arc::new(cxl_agent("CXL0", &shape, 1 << 20, seed ^ 1)))
        .unwrap();
    ofmf.register_agent(Arc::new(nvmeof_agent("NVME0", &shape, 1 << 40, seed ^ 2)))
        .unwrap();
    ofmf.register_agent(Arc::new(infiniband_agent("IB0", &shape, "A100", seed ^ 3)))
        .unwrap();
    DemoRig { ofmf }
}

struct DemoRig {
    ofmf: Arc<ofmf_core::Ofmf>,
}

fn pool(total: u64, free: u64) -> MemoryPool {
    MemoryPool {
        fabric: "F".into(),
        endpoint: ODataId::new("/e"),
        domain: ODataId::new("/d"),
        total_mib: total,
        free_mib: free.min(total),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A spread plan always sums to exactly the demand, never uses more
    /// pools than the cap, and never takes more from a pool than offered.
    #[test]
    fn spread_plan_is_exact_and_bounded(
        frees in prop::collection::vec(0u64..5000, 1..8),
        demand in 1u64..20_000,
        cap in 1usize..8,
        headroom in 0.0f64..0.5,
    ) {
        let policy = PolicySet { memory_headroom: headroom, max_memory_spread: cap, ..PolicySet::default() };
        let pools: Vec<MemoryPool> = frees.iter().map(|&f| pool(5000, f)).collect();
        let refs: Vec<&MemoryPool> = pools.iter().collect();
        match policy.spread_plan(&refs, demand) {
            Some(plan) => {
                let sum: u64 = plan.iter().map(|(_, s)| s).sum();
                prop_assert_eq!(sum, demand);
                prop_assert!(plan.len() <= cap);
                for (i, take) in &plan {
                    prop_assert!(*take <= policy.offered_mib(refs[*i]));
                    prop_assert!(*take > 0);
                }
                // No pool used twice.
                let mut seen: Vec<usize> = plan.iter().map(|(i, _)| *i).collect();
                seen.sort_unstable();
                seen.dedup();
                prop_assert_eq!(seen.len(), plan.len());
            }
            None => {
                // Refusal must be justified: the top-`cap` offers don't cover it.
                let mut offers: Vec<u64> = refs.iter().map(|p| policy.offered_mib(p)).collect();
                offers.sort_unstable_by(|a, b| b.cmp(a));
                let best: u64 = offers.iter().take(cap).sum();
                prop_assert!(best < demand, "refused {demand} though {best} was offered");
            }
        }
    }

    /// Accounting outcomes are always within physical bounds, for both
    /// provisioning models and any mix.
    #[test]
    fn accounting_outcomes_bounded(n in 1usize..200, seed in any::<u64>()) {
        let jobs = heterogeneous_mix(n, seed);
        let power = PowerModel::default();
        let shape = StaticNodeShape { cores: 32, memory_gib: 384, gpus: 2 };
        let st = static_outcome(&jobs, shape, n, &power);
        let total_mem: u64 = jobs.iter().map(|j| j.memory_gib).sum();
        let total_gpus: u32 = jobs.iter().map(|j| j.gpus).sum();
        let co = composable_outcome(&jobs, n, 32, total_mem.max(1), total_gpus, &power);
        for o in [&st, &co] {
            prop_assert!((0.0..=1.0).contains(&o.core_utilization));
            prop_assert!((0.0..=1.0).contains(&o.memory_utilization));
            prop_assert!((0.0..=1.0).contains(&o.gpu_utilization));
            prop_assert!((0.0..=1.0).contains(&o.stranded_fraction));
            prop_assert!(o.power_watts >= 0.0);
            prop_assert!(o.rejected_jobs <= n);
        }
    }
}

/// Three memory fabrics plus GPUs: one topology-aware choose fans a probe
/// batch out across all three in parallel.
fn ab_rig(seed: u64) -> Arc<ofmf_core::Ofmf> {
    let ofmf = ofmf_core::Ofmf::new("prop-ab-rig", std::collections::HashMap::new(), seed);
    let shape = RackShape::default();
    for (fid, salt) in [("CXL0", 1u64), ("CXL1", 2), ("CXL2", 3)] {
        ofmf.register_agent(Arc::new(cxl_agent(fid, &shape, 1 << 20, seed ^ salt)))
            .unwrap();
    }
    ofmf.register_agent(Arc::new(infiniband_agent("IB0", &shape, "A100", seed ^ 4)))
        .unwrap();
    ofmf
}

proptest! {
    // The live-stack property is expensive; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Batched parallel probing is a pure performance optimization: for any
    /// request mix against twin rigs under the same (uniform) congestion,
    /// the batched composer and the sequential per-candidate baseline make
    /// identical placement decisions and leave identical fabric state.
    #[test]
    fn batched_probing_places_like_sequential_baseline(
        mems in prop::collection::vec(64u64..2048, 1..5),
        bw in 0.0f64..32.0,
        gpus in 0u32..2,
    ) {
        let batched = Composer::new(ab_rig(4242), Strategy::TopologyAware);
        let sequential = Composer::new(ab_rig(4242), Strategy::TopologyAware).with_sequential_probing();
        prop_assert!(!batched.prober().is_sequential());
        prop_assert!(sequential.prober().is_sequential());
        for (i, &m) in mems.iter().enumerate() {
            let mut req = CompositionRequest::compute_only(&format!("ab{i}"), 8, 8)
                .with_fabric_memory_mib(m)
                .with_memory_bandwidth_gbps(bw);
            if i == 0 {
                req = req.with_gpus(gpus).with_gpu_bandwidth_gbps(bw);
            }
            let key = |c: &composer::ComposedSystem| {
                c.bindings
                    .iter()
                    .map(|b| (b.fabric.clone(), b.resource.as_str().to_string(), b.size))
                    .collect::<Vec<_>>()
            };
            match (batched.compose(&req), sequential.compose(&req)) {
                (Ok(a), Ok(b)) => prop_assert_eq!(key(&a), key(&b), "request {}", i),
                (Err(a), Err(b)) => prop_assert_eq!(a.http_status(), b.http_status()),
                (a, b) => prop_assert!(false, "divergent outcomes: {:?} vs {:?}", a.map(|c| key(&c)), b.map(|c| key(&c))),
            }
        }
    }

    /// Conservation: for any satisfiable request mix, composing then
    /// decomposing everything restores the exact inventory.
    #[test]
    fn compose_decompose_is_identity(
        mems in prop::collection::vec(1u64..4096, 1..4),
        gpus in 0u32..2,
        storage in prop::collection::vec(0u64..(1u64<<30), 0..2),
    ) {
        let rig = demo_rig(777);
        let composer = Composer::new(Arc::clone(&rig.ofmf), Strategy::BestFit);
        let before = composer.inventory();
        let mut composed = Vec::new();
        for (i, &m) in mems.iter().enumerate() {
            let mut req = CompositionRequest::compute_only(&format!("p{i}"), 8, 8)
                .with_fabric_memory_mib(m);
            if i == 0 {
                req = req.with_gpus(gpus);
                if let Some(&s) = storage.first() {
                    req = req.with_storage_bytes(s);
                }
            }
            match composer.compose(&req) {
                Ok(c) => composed.push(c),
                Err(e) => prop_assert_eq!(e.http_status(), 507, "only capacity refusals allowed"),
            }
        }
        for c in &composed {
            composer.decompose(&c.system).unwrap();
        }
        let after = composer.inventory();
        prop_assert_eq!(before.compute.len(), after.compute.len());
        prop_assert_eq!(before.free_memory_mib(), after.free_memory_mib());
        prop_assert_eq!(before.free_gpus(), after.free_gpus());
        prop_assert_eq!(before.free_storage_bytes(), after.free_storage_bytes());
        prop_assert!(rig.ofmf.registry.dangling_links().is_empty());
    }
}
