//! End-to-end Composability Manager tests over live agents.

use composer::request::BindingKind;
use composer::{Composer, CompositionRequest, Strategy};
use fabric_sim::failure::Fault;
use fabric_sim::ids::SwitchId;
use ofmf_agents::flavors::{cxl_agent, infiniband_agent, nvmeof_agent, RackShape};
use ofmf_core::Ofmf;
use redfish_model::odata::ODataId;
use redfish_model::RedfishError;
use std::collections::HashMap;
use std::sync::Arc;

fn rig() -> (Arc<Ofmf>, Arc<ofmf_agents::SimAgent>) {
    let o = Ofmf::new("comp-uuid", HashMap::new(), 5);
    let shape = RackShape::default();
    let cxl = Arc::new(cxl_agent("CXL0", &shape, 1 << 20, 1));
    o.register_agent(Arc::clone(&cxl) as Arc<dyn ofmf_core::Agent>).unwrap();
    o.register_agent(Arc::new(nvmeof_agent("NVME0", &shape, 1 << 40, 2)))
        .unwrap();
    o.register_agent(Arc::new(infiniband_agent("IB0", &shape, "A100", 3)))
        .unwrap();
    (o, cxl)
}

#[test]
fn compose_full_system_and_decompose() {
    let (o, _) = rig();
    let c = Composer::new(Arc::clone(&o), Strategy::FirstFit);
    let req = CompositionRequest::compute_only("job42", 32, 64)
        .with_fabric_memory_mib(128 * 1024)
        .with_gpus(1)
        .with_storage_bytes(1 << 39);
    let composed = c.compose(&req).unwrap();

    assert_eq!(composed.bound_memory_mib(), 128 * 1024);
    assert_eq!(composed.bound_gpus(), 1);
    assert_eq!(composed.bound_storage_bytes(), 1 << 39);
    assert!(o.registry.exists(&composed.system));
    let doc = o.registry.get(&composed.system).unwrap().body;
    assert_eq!(doc["SystemType"], "Composed");
    // 128 local + 128 fabric GiB.
    assert_eq!(doc["MemorySummary"]["TotalSystemMemoryGiB"], 128 + 128);
    // Resource block links point at real resources.
    for l in doc["Links"]["ResourceBlocks"].as_array().unwrap() {
        let id = ODataId::new(l["@odata.id"].as_str().unwrap());
        assert!(o.registry.exists(&id), "{id} missing");
    }
    // GPU marked assigned.
    let gpu_binding = composed.bindings.iter().find(|b| b.kind == BindingKind::Gpu).unwrap();
    let gpu_doc = o.registry.get(&gpu_binding.resource).unwrap().body;
    assert_eq!(gpu_doc["Oem"]["OFMF"]["AssignedTo"], composed.system.as_str());

    // Inventory reflects the consumption.
    let inv = c.inventory();
    assert_eq!(inv.compute.len(), 3, "one node bound");
    assert_eq!(inv.free_memory_mib(), (2 << 20) - 128 * 1024);
    assert_eq!(inv.free_gpus(), 1);

    // Decompose returns everything.
    c.decompose(&composed.system).unwrap();
    assert!(!o.registry.exists(&composed.system));
    let inv = c.inventory();
    assert_eq!(inv.compute.len(), 4);
    assert_eq!(inv.free_memory_mib(), 2 << 20);
    assert_eq!(inv.free_gpus(), 2);
    assert_eq!(inv.free_storage_bytes(), 2 << 40);
}

#[test]
fn insufficient_memory_rolls_back_cleanly() {
    let (o, _) = rig();
    let c = Composer::new(Arc::clone(&o), Strategy::FirstFit);
    // More memory than both appliances together.
    let req = CompositionRequest::compute_only("greedy", 8, 8).with_fabric_memory_mib(3 << 20);
    let err = c.compose(&req).unwrap_err();
    assert_eq!(err.http_status(), 507);
    // Nothing leaked: no zones/connections remain on CXL0.
    let zones = o
        .registry
        .members(&ODataId::new("/redfish/v1/Fabrics/CXL0/Zones"))
        .unwrap();
    assert!(zones.is_empty());
    assert_eq!(c.inventory().free_memory_mib(), 2 << 20);
}

#[test]
fn gpu_exhaustion_rolls_back_memory_binding() {
    let (o, _) = rig();
    let c = Composer::new(Arc::clone(&o), Strategy::FirstFit);
    // 3 GPUs requested but only 2 exist: memory must be released again.
    let req = CompositionRequest::compute_only("gpuhog", 8, 8)
        .with_fabric_memory_mib(1024)
        .with_gpus(3);
    assert_eq!(c.compose(&req).unwrap_err().http_status(), 507);
    assert_eq!(c.inventory().free_memory_mib(), 2 << 20, "memory binding rolled back");
    let cons = o
        .registry
        .members(&ODataId::new("/redfish/v1/Fabrics/CXL0/Connections"))
        .unwrap();
    assert!(cons.is_empty());
}

#[test]
fn spread_memory_uses_multiple_appliances() {
    let (o, _) = rig();
    let c = Composer::new(Arc::clone(&o), Strategy::FirstFit);
    // 1.5x one appliance's capacity, spread allowed.
    let req = CompositionRequest::compute_only("spread", 8, 8)
        .with_fabric_memory_mib((1 << 20) + (1 << 19))
        .with_spread_memory();
    let composed = c.compose(&req).unwrap();
    let mem_bindings: Vec<_> = composed
        .bindings
        .iter()
        .filter(|b| b.kind == BindingKind::Memory)
        .collect();
    assert_eq!(mem_bindings.len(), 2, "two appliances used");
    let domains: std::collections::BTreeSet<&str> = mem_bindings.iter().map(|b| b.resource.as_str()).collect();
    assert_eq!(domains.len(), 2, "chunks on distinct appliances");
    assert_eq!(composed.bound_memory_mib(), (1 << 20) + (1 << 19));
}

#[test]
fn grow_memory_oom_mitigation() {
    let (o, _) = rig();
    let c = Composer::new(Arc::clone(&o), Strategy::BestFit);
    let composed = c
        .compose(&CompositionRequest::compute_only("job1", 8, 8).with_fabric_memory_mib(1024))
        .unwrap();
    let before = o.registry.get(&composed.system).unwrap().body["MemorySummary"]["TotalSystemMemoryGiB"]
        .as_u64()
        .unwrap();
    c.grow_memory(&composed.system, 64 * 1024).unwrap();
    let after = o.registry.get(&composed.system).unwrap().body["MemorySummary"]["TotalSystemMemoryGiB"]
        .as_u64()
        .unwrap();
    assert_eq!(after, before + 64);
    let live = c.find(&composed.system).unwrap();
    assert_eq!(live.bound_memory_mib(), 1024 + 64 * 1024);
    // Growth of a non-existent composition fails.
    assert!(matches!(
        c.grow_memory(&ODataId::new("/redfish/v1/Systems/ghost"), 1),
        Err(RedfishError::NotFound(_))
    ));
}

#[test]
fn attach_storage_io_mitigation() {
    let (o, _) = rig();
    let c = Composer::new(Arc::clone(&o), Strategy::FirstFit);
    let composed = c.compose(&CompositionRequest::compute_only("job1", 8, 8)).unwrap();
    c.attach_storage(&composed.system, 1 << 38).unwrap();
    let live = c.find(&composed.system).unwrap();
    assert_eq!(live.bound_storage_bytes(), 1 << 38);
    // A volume document exists.
    let vols = o
        .registry
        .members(&ODataId::new("/redfish/v1/StorageServices/nvme00/Volumes"))
        .unwrap();
    assert_eq!(vols.len(), 1);
}

#[test]
fn reconcile_rebinds_lost_memory() {
    let (o, cxl) = rig();
    let c = Composer::new(Arc::clone(&o), Strategy::FirstFit);
    let composed = c
        .compose(&CompositionRequest::compute_only("job1", 8, 8).with_fabric_memory_mib(2048))
        .unwrap();
    let mem = composed
        .bindings
        .iter()
        .find(|b| b.kind == BindingKind::Memory)
        .unwrap()
        .clone();

    // Kill every switch so the connection is lost, then restore so the
    // rebind has paths to work with.
    let n_switches = { 4 }; // 2 spines + 2 leaves
    for s in 0..n_switches {
        cxl.inject_fault(Fault::SwitchDown(SwitchId(s)));
    }
    o.poll(); // agent reports the lost connection; docs removed
    assert!(!o.registry.exists(&mem.connection), "connection doc removed");
    for s in 0..n_switches {
        cxl.inject_fault(Fault::SwitchUp(SwitchId(s)));
    }
    o.poll();

    let (repaired, lost) = c.reconcile();
    assert_eq!((repaired, lost), (1, 0));
    let live = c.find(&composed.system).unwrap();
    assert_eq!(live.bound_memory_mib(), 2048, "same capacity rebound");
    assert!(live.bindings.iter().all(|b| o.registry.exists(&b.connection)));
}

#[test]
fn compositions_are_isolated() {
    let (o, _) = rig();
    let c = Composer::new(Arc::clone(&o), Strategy::FirstFit);
    let a = c
        .compose(&CompositionRequest::compute_only("a", 8, 8).with_fabric_memory_mib(1024))
        .unwrap();
    let b = c
        .compose(&CompositionRequest::compute_only("b", 8, 8).with_fabric_memory_mib(1024))
        .unwrap();
    assert_ne!(a.node, b.node, "distinct physical nodes");
    c.decompose(&a.system).unwrap();
    // b untouched.
    let live = c.find(&b.system).unwrap();
    assert!(o.registry.exists(&live.bindings[0].connection));
}

#[test]
fn qos_reservations_gate_composition() {
    let (o, _) = rig();
    let c = Composer::new(Arc::clone(&o), Strategy::FirstFit);
    // CXL access links are 256 G: a 200 G reservation fits…
    let a = c
        .compose(
            &CompositionRequest::compute_only("qos-a", 8, 8)
                .with_fabric_memory_mib(1024)
                .with_memory_bandwidth_gbps(200.0),
        )
        .unwrap();
    // …but a second 200 G to the *same* appliance from another node still
    // fits (different access links), while an absurd reservation fails
    // cleanly and rolls back.
    let err = c
        .compose(
            &CompositionRequest::compute_only("qos-hog", 8, 8)
                .with_fabric_memory_mib(1024)
                .with_memory_bandwidth_gbps(10_000.0),
        )
        .unwrap_err();
    assert!(err.http_status() == 409 || err.http_status() == 507, "{err}");
    // No leaked zones from the failed attempt (only qos-a's one binding).
    let zones = o
        .registry
        .members(&redfish_model::odata::ODataId::new("/redfish/v1/Fabrics/CXL0/Zones"))
        .unwrap();
    assert_eq!(zones.len(), 1);
    c.decompose(&a.system).unwrap();
}

#[test]
fn all_strategies_compose_successfully() {
    for strategy in Strategy::ALL {
        let (o, _) = rig();
        let c = Composer::new(Arc::clone(&o), strategy);
        let req = CompositionRequest::compute_only("s", 8, 8)
            .with_fabric_memory_mib(4096)
            .with_gpus(1);
        let composed = c.compose(&req).unwrap();
        assert_eq!(composed.bound_memory_mib(), 4096, "{strategy:?}");
        c.decompose(&composed.system).unwrap();
    }
}
