//! OFMF-B6: fail-over cost versus fabric size — route recomputation after
//! a link/switch failure on rings of growing size ("dynamic network
//! fail-over" per the abstract), plus raw routing throughput, plus the
//! supervisor-layer ablation: composition success rate and p99 compose
//! latency under injected agent heartbeat flapping (OFMF-B6b).

use composer::{Composer, CompositionRequest, Strategy};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fabric_sim::device::Device;
use fabric_sim::failure::Fault;
use fabric_sim::ids::{LinkId, SwitchId};
use fabric_sim::routing::route;
use fabric_sim::topology::{presets, TopologyBuilder};
use fabric_sim::{FabricConfig, FabricSim};
use ofmf_agents::flavors::{cxl_agent, RackShape};
use ofmf_agents::{ChaosAgent, ChaosConfig};
use ofmf_core::{Agent, Ofmf};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

fn ring_sim(switches: usize) -> FabricSim {
    let mut devices: Vec<Device> = presets::compute_nodes(2, 8, 16);
    devices.extend(presets::memory_appliances(2, 1 << 20));
    let topo = TopologyBuilder::new().ring(switches, devices);
    FabricSim::new(FabricConfig::new("RING", "CXL", 1), topo)
}

fn bench_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing");
    for &switches in &[4usize, 16, 64, 256] {
        let sim = ring_sim(switches);
        let from = sim.topology().initiator_endpoints()[0];
        let to = sim.topology().target_endpoints()[1];
        group.bench_with_input(BenchmarkId::new("ring", switches), &switches, |b, _| {
            b.iter(|| std::hint::black_box(route(sim.topology(), from, to).expect("connected")));
        });
    }
    group.finish();
}

fn bench_failover(c: &mut Criterion) {
    let mut group = c.benchmark_group("failover_reroute");
    group.sample_size(20);
    for &switches in &[4usize, 16, 64, 256] {
        group.bench_with_input(BenchmarkId::new("ring", switches), &switches, |b, &switches| {
            b.iter_batched(
                || {
                    // Fresh fabric with one live cross-ring connection.
                    let mut sim = ring_sim(switches);
                    let members: BTreeSet<_> = (0..sim.topology().endpoints.len() as u32)
                        .map(fabric_sim::ids::EndpointId)
                        .collect();
                    let zone = sim.create_zone("z", members).unwrap();
                    let from = sim.topology().initiator_endpoints()[0];
                    let to = sim.topology().target_endpoints()[1];
                    let conn = sim.connect("c", zone, from, to, 64).unwrap();
                    // The first trunk on the programmed path.
                    let link = sim.connection(conn).unwrap().path.links[1];
                    (sim, link)
                },
                |(mut sim, link): (FabricSim, LinkId)| std::hint::black_box(sim.inject(Fault::LinkDown(link))),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_switch_loss_storm(c: &mut Criterion) {
    // Many connections, one switch dies: cost of re-validating everything.
    let mut group = c.benchmark_group("switch_loss_storm");
    group.sample_size(10);
    for &conns in &[8usize, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(conns), &conns, |b, &conns| {
            b.iter_batched(
                || {
                    let mut devices: Vec<Device> = presets::compute_nodes(4, 8, 16);
                    devices.extend(presets::memory_appliances(2, 1 << 30));
                    let topo = TopologyBuilder::new().leaf_spine(2, 2, devices);
                    let mut sim = FabricSim::new(FabricConfig::new("LS", "CXL", 1), topo);
                    let members: BTreeSet<_> = (0..sim.topology().endpoints.len() as u32)
                        .map(fabric_sim::ids::EndpointId)
                        .collect();
                    let zone = sim.create_zone("z", members).unwrap();
                    let inits = sim.topology().initiator_endpoints();
                    let targets = sim.topology().target_endpoints();
                    for i in 0..conns {
                        sim.connect(
                            &format!("c{i}"),
                            zone,
                            inits[i % inits.len()],
                            targets[i % targets.len()],
                            1,
                        )
                        .unwrap();
                    }
                    sim
                },
                |mut sim: FabricSim| std::hint::black_box(sim.inject(Fault::SwitchDown(SwitchId(0)))),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

/// One CXL fabric behind a [`ChaosAgent`] with the given heartbeat flap
/// probability (in percent), plus a composer over it.
fn flap_rig(seed: u64, flap_pct: u32) -> (Arc<Ofmf>, Arc<ChaosAgent>, Composer) {
    let ofmf = Ofmf::new("ofmf-flap-bench", HashMap::new(), seed);
    let chaos = ChaosConfig::quiet(seed ^ 0xF1A9)
        .with_flap_rate(f64::from(flap_pct) / 100.0)
        .with_drop_rate(f64::from(flap_pct) / 100.0);
    let agent = Arc::new(
        ChaosAgent::new(
            Arc::new(cxl_agent("CXL0", &RackShape::default(), 1 << 20, seed)) as Arc<dyn Agent>,
            chaos,
        )
        .with_clock(Arc::clone(&ofmf.clock)),
    );
    ofmf.register_agent(Arc::clone(&agent) as Arc<dyn Agent>)
        .expect("fresh rig");
    let composer = Composer::new(Arc::clone(&ofmf), Strategy::FirstFit);
    (ofmf, agent, composer)
}

/// One compose→decompose cycle with a poll in between (heartbeat flaps and
/// recoveries land on the poll). Returns whether the compose succeeded.
fn flap_cycle(ofmf: &Ofmf, composer: &Composer, i: usize) -> bool {
    ofmf.poll();
    let req = CompositionRequest::compute_only(&format!("flap{i}"), 8, 8).with_fabric_memory_mib(256);
    match composer.compose(&req) {
        Ok(c) => {
            let _ = composer.decompose(&c.system);
            true
        }
        Err(_) => false,
    }
}

fn bench_agent_flap(c: &mut Criterion) {
    let mut group = c.benchmark_group("agent_flap_compose");
    group.sample_size(20);
    for &flap_pct in &[0u32, 1, 5] {
        group.bench_with_input(BenchmarkId::new("flap_pct", flap_pct), &flap_pct, |b, &pct| {
            let (ofmf, _agent, composer) = flap_rig(61, pct);
            let mut i = 0usize;
            b.iter(|| {
                i += 1;
                std::hint::black_box(flap_cycle(&ofmf, &composer, i))
            });
        });
    }
    group.finish();

    // Summary table for EXPERIMENTS.md: success rate and p99 compose
    // latency over a fixed cycle count per flap rate.
    const CYCLES: usize = 400;
    println!("\nagent_flap_compose summary ({CYCLES} compose cycles per rate)");
    println!(
        "{:>9} {:>12} {:>14} {:>12}",
        "flap_pct", "success", "success_rate", "p99_us"
    );
    for &flap_pct in &[0u32, 1, 5] {
        let (ofmf, _agent, composer) = flap_rig(62, flap_pct);
        for i in 0..20 {
            // Warm-up outside the timed window (allocator + registry caches).
            let _ = flap_cycle(&ofmf, &composer, CYCLES + i);
        }
        let mut latencies_ns: Vec<u128> = Vec::with_capacity(CYCLES);
        let mut ok = 0usize;
        for i in 0..CYCLES {
            let t0 = std::time::Instant::now();
            if flap_cycle(&ofmf, &composer, i) {
                ok += 1;
            }
            latencies_ns.push(t0.elapsed().as_nanos());
        }
        latencies_ns.sort_unstable();
        let p99 = latencies_ns[(latencies_ns.len() * 99) / 100 - 1] as f64 / 1_000.0;
        println!(
            "{:>9} {:>12} {:>13.1}% {:>12.1}",
            flap_pct,
            format!("{ok}/{CYCLES}"),
            100.0 * ok as f64 / CYCLES as f64,
            p99
        );
    }
}

criterion_group!(
    benches,
    bench_routing,
    bench_failover,
    bench_switch_loss_storm,
    bench_agent_flap
);
criterion_main!(benches);
