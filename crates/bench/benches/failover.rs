//! OFMF-B6: fail-over cost versus fabric size — route recomputation after
//! a link/switch failure on rings of growing size ("dynamic network
//! fail-over" per the abstract), plus raw routing throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fabric_sim::device::Device;
use fabric_sim::failure::Fault;
use fabric_sim::ids::{LinkId, SwitchId};
use fabric_sim::routing::route;
use fabric_sim::topology::{presets, TopologyBuilder};
use fabric_sim::{FabricConfig, FabricSim};
use std::collections::BTreeSet;

fn ring_sim(switches: usize) -> FabricSim {
    let mut devices: Vec<Device> = presets::compute_nodes(2, 8, 16);
    devices.extend(presets::memory_appliances(2, 1 << 20));
    let topo = TopologyBuilder::new().ring(switches, devices);
    FabricSim::new(FabricConfig::new("RING", "CXL", 1), topo)
}

fn bench_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing");
    for &switches in &[4usize, 16, 64, 256] {
        let sim = ring_sim(switches);
        let from = sim.topology().initiator_endpoints()[0];
        let to = sim.topology().target_endpoints()[1];
        group.bench_with_input(BenchmarkId::new("ring", switches), &switches, |b, _| {
            b.iter(|| std::hint::black_box(route(sim.topology(), from, to).expect("connected")));
        });
    }
    group.finish();
}

fn bench_failover(c: &mut Criterion) {
    let mut group = c.benchmark_group("failover_reroute");
    group.sample_size(20);
    for &switches in &[4usize, 16, 64, 256] {
        group.bench_with_input(BenchmarkId::new("ring", switches), &switches, |b, &switches| {
            b.iter_batched(
                || {
                    // Fresh fabric with one live cross-ring connection.
                    let mut sim = ring_sim(switches);
                    let members: BTreeSet<_> = (0..sim.topology().endpoints.len() as u32)
                        .map(fabric_sim::ids::EndpointId)
                        .collect();
                    let zone = sim.create_zone("z", members).unwrap();
                    let from = sim.topology().initiator_endpoints()[0];
                    let to = sim.topology().target_endpoints()[1];
                    let conn = sim.connect("c", zone, from, to, 64).unwrap();
                    // The first trunk on the programmed path.
                    let link = sim.connection(conn).unwrap().path.links[1];
                    (sim, link)
                },
                |(mut sim, link): (FabricSim, LinkId)| std::hint::black_box(sim.inject(Fault::LinkDown(link))),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_switch_loss_storm(c: &mut Criterion) {
    // Many connections, one switch dies: cost of re-validating everything.
    let mut group = c.benchmark_group("switch_loss_storm");
    group.sample_size(10);
    for &conns in &[8usize, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(conns), &conns, |b, &conns| {
            b.iter_batched(
                || {
                    let mut devices: Vec<Device> = presets::compute_nodes(4, 8, 16);
                    devices.extend(presets::memory_appliances(2, 1 << 30));
                    let topo = TopologyBuilder::new().leaf_spine(2, 2, devices);
                    let mut sim = FabricSim::new(FabricConfig::new("LS", "CXL", 1), topo);
                    let members: BTreeSet<_> = (0..sim.topology().endpoints.len() as u32)
                        .map(fabric_sim::ids::EndpointId)
                        .collect();
                    let zone = sim.create_zone("z", members).unwrap();
                    let inits = sim.topology().initiator_endpoints();
                    let targets = sim.topology().target_endpoints();
                    for i in 0..conns {
                        sim.connect(
                            &format!("c{i}"),
                            zone,
                            inits[i % inits.len()],
                            targets[i % targets.len()],
                            1,
                        )
                        .unwrap();
                    }
                    sim
                },
                |mut sim: FabricSim| std::hint::black_box(sim.inject(Fault::SwitchDown(SwitchId(0)))),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_routing, bench_failover, bench_switch_loss_storm);
criterion_main!(benches);
