//! OFMF-B1: resource-tree operation throughput (GET / PATCH / POST) as the
//! unified tree grows — the scalability requirement §III-A states ("the
//! management layer must be scalable to handle … management information
//! from large numbers of resources").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use redfish_model::odata::ODataId;
use redfish_model::Registry;
use serde_json::json;

fn tree_with(n: usize) -> (Registry, Vec<ODataId>) {
    let reg = Registry::new();
    let root = ODataId::new("/redfish/v1");
    reg.create(&root, json!({"Name": "root"})).unwrap();
    let col = root.child("Systems");
    reg.create_collection(&col, "#ComputerSystemCollection.ComputerSystemCollection", "Systems")
        .unwrap();
    let ids: Vec<ODataId> = (0..n)
        .map(|i| {
            let id = col.child(&format!("sys{i:06}"));
            reg.create(
                &id,
                json!({
                    "@odata.type": "#ComputerSystem.v1_20_0.ComputerSystem",
                    "Id": format!("sys{i:06}"),
                    "Name": format!("node {i}"),
                    "Status": {"State": "Enabled", "Health": "OK"},
                    "ProcessorSummary": {"Count": 2, "CoreCount": 56},
                }),
            )
            .unwrap();
            id
        })
        .collect();
    (reg, ids)
}

fn bench_tree_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_ops");
    for &size in &[100usize, 1_000, 10_000] {
        let (reg, ids) = tree_with(size);
        group.throughput(Throughput::Elements(1));

        group.bench_with_input(BenchmarkId::new("get", size), &size, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let id = &ids[i % ids.len()];
                i += 1;
                std::hint::black_box(reg.get(id).unwrap());
            });
        });

        group.bench_with_input(BenchmarkId::new("patch", size), &size, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let id = &ids[i % ids.len()];
                i += 1;
                reg.patch(id, &json!({"Oem": {"Bench": i}}), None).unwrap();
            });
        });

        group.bench_with_input(BenchmarkId::new("create_delete", size), &size, |b, _| {
            let col = ODataId::new("/redfish/v1/Systems");
            b.iter(|| {
                let id = col.child("ephemeral");
                reg.create(&id, json!({"Name": "e"})).unwrap();
                reg.delete(&id).unwrap();
            });
        });
    }
    group.finish();
}

/// A tree with `n` systems spread across several top-level collections, on
/// a registry with the given stripe count — the shape where sharding pays.
fn striped_tree(n: usize, shards: usize) -> (Registry, Vec<ODataId>) {
    const TOPS: &[&str] = &["Systems", "Chassis", "Fabrics", "StorageServices"];
    let reg = Registry::with_shards(shards);
    let root = ODataId::new("/redfish/v1");
    reg.create(&root, json!({"Name": "root"})).unwrap();
    for t in TOPS {
        reg.create_collection(&root.child(t), "#Collection.Collection", t)
            .unwrap();
    }
    let ids: Vec<ODataId> = (0..n)
        .map(|i| {
            let id = root.child(TOPS[i % TOPS.len()]).child(&format!("r{i:06}"));
            reg.create(
                &id,
                json!({
                    "@odata.type": "#Resource.v1_0_0.Resource",
                    "Id": format!("r{i:06}"),
                    "Name": format!("resource {i}"),
                    "Status": {"State": "Enabled", "Health": "OK"},
                }),
            )
            .unwrap();
            id
        })
        .collect();
    (reg, ids)
}

/// The GET wire path under concurrent mixed read/write load, old design vs
/// new: `global_uncached` is one lock stripe with the wire cache disabled
/// (the previous single-`RwLock` registry), `sharded_cached` is 16 stripes
/// with the ETag-keyed cache, and `sharded_cached_wal` is the same layout
/// with a write-ahead journal attached (group-commit `batch:5` fsync) so
/// every writer mutation also pays the durability path. Two background
/// writer threads continuously mount/tear down 32-resource subtrees under
/// `Systems` while the measured thread serves hot GETs of other
/// collections — agents churning inventory while managers browse. The
/// durable-vs-in-memory gap (`sharded_cached_wal` vs `sharded_cached`) is
/// the EXPERIMENTS.md "WAL overhead" row.
fn bench_sharded_vs_global(c: &mut Criterion) {
    use std::sync::atomic::{AtomicBool, Ordering};
    const BATCH: usize = 1_000;
    let mut group = c.benchmark_group("tree_ops_mixed_rw");
    group.throughput(Throughput::Elements(BATCH as u64));
    for &(shards, cache, wal, name) in &[
        (1usize, false, false, "global_uncached"),
        (16usize, true, false, "sharded_cached"),
        (16usize, true, true, "sharded_cached_wal"),
    ] {
        let (reg, ids) = striped_tree(10_000, shards);
        reg.set_wire_cache(cache);
        let wal_dir = std::env::temp_dir().join(format!("ofmf-bench-treeops-wal-{}", std::process::id()));
        if wal {
            let _ = std::fs::remove_dir_all(&wal_dir);
            let journal = ofmf_wal::Wal::open(&wal_dir, ofmf_wal::FsyncPolicy::Batch(5)).expect("temp WAL dir");
            reg.set_journal(Some(std::sync::Arc::new(journal)));
        }
        let reg = std::sync::Arc::new(reg);
        let stop = std::sync::Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..2usize)
            .map(|t| {
                let reg = std::sync::Arc::clone(&reg);
                let stop = std::sync::Arc::clone(&stop);
                std::thread::spawn(move || {
                    let col = ODataId::new("/redfish/v1/Systems");
                    let mut i = 0usize;
                    while !stop.load(Ordering::Relaxed) {
                        let base = col.child(&format!("eph{t}-{i}"));
                        reg.create(&base, json!({"Name": "ephemeral"})).unwrap();
                        for k in 0..32 {
                            reg.create(&base.child(&format!("sub{k}")), json!({"Name": "sub"}))
                                .unwrap();
                        }
                        reg.delete_subtree(&base);
                        i += 1;
                    }
                })
            })
            .collect();
        group.bench_function(name, |b| {
            let mut i = 0usize;
            b.iter(|| {
                for _ in 0..BATCH {
                    // A 64-resource hot set off the churned Systems
                    // collection (index ≡ 0 mod 4 stripes into Systems).
                    let mut k = (i * 13) % 64;
                    if k.is_multiple_of(4) {
                        k += 1;
                    }
                    i += 1;
                    std::hint::black_box(reg.wire_bytes(&ids[k]).unwrap());
                }
            });
        });
        stop.store(true, Ordering::Relaxed);
        for w in writers {
            w.join().unwrap();
        }
        if wal {
            reg.set_journal(None);
            let _ = std::fs::remove_dir_all(&wal_dir);
        }
    }
    group.finish();
}

/// Serialized-bytes GET with the ETag-keyed wire cache on vs off (every GET
/// pays a clone + `serde_json::to_vec` when off — the pre-cache behaviour).
/// Each iteration sweeps a 64-resource hot set many times, the
/// hot-collection traffic shape of telemetry consumers.
fn bench_wire_cache(c: &mut Criterion) {
    const BATCH: usize = 1_024;
    let (reg, ids) = striped_tree(10_000, 16);
    let mut group = c.benchmark_group("tree_ops_wire_cache");
    group.throughput(Throughput::Elements(BATCH as u64));
    for &on in &[true, false] {
        reg.set_wire_cache(on);
        let name = if on { "cache_on" } else { "cache_off" };
        group.bench_function(name, |b| {
            let mut i = 0usize;
            b.iter(|| {
                for _ in 0..BATCH {
                    let id = &ids[i % 64]; // hot working set
                    i += 1;
                    std::hint::black_box(reg.wire_bytes(id).unwrap());
                }
            });
        });
    }
    reg.set_wire_cache(true);
    group.finish();
}

fn bench_concurrent_readers(c: &mut Criterion) {
    let (reg, ids) = tree_with(10_000);
    let reg = std::sync::Arc::new(reg);
    let mut group = c.benchmark_group("tree_ops_concurrent");
    for &threads in &[1usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("readers", threads), &threads, |b, &threads| {
            b.iter(|| {
                std::thread::scope(|s| {
                    for t in 0..threads {
                        let reg = std::sync::Arc::clone(&reg);
                        let ids = &ids;
                        s.spawn(move || {
                            for i in 0..100 {
                                let id = &ids[(t * 131 + i) % ids.len()];
                                std::hint::black_box(reg.get(id).unwrap());
                            }
                        });
                    }
                });
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_tree_ops,
    bench_concurrent_readers,
    bench_sharded_vs_global,
    bench_wire_cache
);
criterion_main!(benches);
