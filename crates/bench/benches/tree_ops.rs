//! OFMF-B1: resource-tree operation throughput (GET / PATCH / POST) as the
//! unified tree grows — the scalability requirement §III-A states ("the
//! management layer must be scalable to handle … management information
//! from large numbers of resources").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use redfish_model::odata::ODataId;
use redfish_model::Registry;
use serde_json::json;

fn tree_with(n: usize) -> (Registry, Vec<ODataId>) {
    let reg = Registry::new();
    let root = ODataId::new("/redfish/v1");
    reg.create(&root, json!({"Name": "root"})).unwrap();
    let col = root.child("Systems");
    reg.create_collection(&col, "#ComputerSystemCollection.ComputerSystemCollection", "Systems")
        .unwrap();
    let ids: Vec<ODataId> = (0..n)
        .map(|i| {
            let id = col.child(&format!("sys{i:06}"));
            reg.create(
                &id,
                json!({
                    "@odata.type": "#ComputerSystem.v1_20_0.ComputerSystem",
                    "Id": format!("sys{i:06}"),
                    "Name": format!("node {i}"),
                    "Status": {"State": "Enabled", "Health": "OK"},
                    "ProcessorSummary": {"Count": 2, "CoreCount": 56},
                }),
            )
            .unwrap();
            id
        })
        .collect();
    (reg, ids)
}

fn bench_tree_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_ops");
    for &size in &[100usize, 1_000, 10_000] {
        let (reg, ids) = tree_with(size);
        group.throughput(Throughput::Elements(1));

        group.bench_with_input(BenchmarkId::new("get", size), &size, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let id = &ids[i % ids.len()];
                i += 1;
                std::hint::black_box(reg.get(id).unwrap());
            });
        });

        group.bench_with_input(BenchmarkId::new("patch", size), &size, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let id = &ids[i % ids.len()];
                i += 1;
                reg.patch(id, &json!({"Oem": {"Bench": i}}), None).unwrap();
            });
        });

        group.bench_with_input(BenchmarkId::new("create_delete", size), &size, |b, _| {
            let col = ODataId::new("/redfish/v1/Systems");
            b.iter(|| {
                let id = col.child("ephemeral");
                reg.create(&id, json!({"Name": "e"})).unwrap();
                reg.delete(&id).unwrap();
            });
        });
    }
    group.finish();
}

fn bench_concurrent_readers(c: &mut Criterion) {
    let (reg, ids) = tree_with(10_000);
    let reg = std::sync::Arc::new(reg);
    let mut group = c.benchmark_group("tree_ops_concurrent");
    for &threads in &[1usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("readers", threads), &threads, |b, &threads| {
            b.iter(|| {
                std::thread::scope(|s| {
                    for t in 0..threads {
                        let reg = std::sync::Arc::clone(&reg);
                        let ids = &ids;
                        s.spawn(move || {
                            for i in 0..100 {
                                let id = &ids[(t * 131 + i) % ids.len()];
                                std::hint::black_box(reg.get(id).unwrap());
                            }
                        });
                    }
                });
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tree_ops, bench_concurrent_readers);
criterion_main!(benches);
