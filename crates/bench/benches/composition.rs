//! OFMF-B3: composition latency versus pool size and allocation strategy —
//! the ablation DESIGN.md calls out (first-fit vs best-fit vs
//! topology-aware), plus the stranded-resource accounting of Fig. 1.

use composer::accounting::{composable_outcome, heterogeneous_mix, static_outcome, PowerModel, StaticNodeShape};
use composer::{Composer, CompositionRequest, Strategy};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ofmf_bench::bench_rig;
use std::sync::Arc;

fn bench_compose_decompose(c: &mut Criterion) {
    let mut group = c.benchmark_group("composition");
    group.sample_size(20);
    for &targets in &[2usize, 8, 32] {
        for strategy in Strategy::ALL {
            let ofmf = bench_rig(8, targets, 7);
            let composer = Composer::new(Arc::clone(&ofmf), strategy);
            let req = CompositionRequest::compute_only("bench", 8, 8)
                .with_fabric_memory_mib(1024)
                .with_storage_bytes(1 << 30);
            group.bench_with_input(BenchmarkId::new(format!("{strategy:?}"), targets), &targets, |b, _| {
                b.iter(|| {
                    let s = composer.compose(&req).expect("fits");
                    composer.decompose(&s.system).expect("tracked");
                });
            });
        }
    }
    group.finish();
}

fn bench_inventory_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("inventory_scan");
    for &targets in &[2usize, 16, 64] {
        let ofmf = bench_rig(16, targets, 3);
        let composer = Composer::new(Arc::clone(&ofmf), Strategy::FirstFit);
        group.bench_with_input(BenchmarkId::from_parameter(targets), &targets, |b, _| {
            b.iter(|| std::hint::black_box(composer.inventory()));
        });
    }
    group.finish();
}

fn bench_accounting(c: &mut Criterion) {
    // The Fig. 1 analytic comparison as a bench: static vs composable over
    // a 1k-job mix.
    let jobs = heterogeneous_mix(1024, 5);
    let power = PowerModel::default();
    let shape = StaticNodeShape {
        cores: 32,
        memory_gib: 384,
        gpus: 2,
    };
    let total_mem: u64 = jobs.iter().map(|j| j.memory_gib).sum();
    let total_gpus: u32 = jobs.iter().map(|j| j.gpus).sum();
    let mut group = c.benchmark_group("fig1_accounting");
    group.bench_function("static", |b| {
        b.iter(|| std::hint::black_box(static_outcome(&jobs, shape, jobs.len(), &power)))
    });
    group.bench_function("composable", |b| {
        b.iter(|| {
            std::hint::black_box(composable_outcome(
                &jobs,
                jobs.len(),
                32,
                total_mem + total_mem / 10,
                total_gpus + 2,
                &power,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_compose_decompose, bench_inventory_scan, bench_accounting);
criterion_main!(benches);
