//! OFMF-B7: tracing-overhead ablation without socket noise.
//!
//! The socket-level `rest_throughput` ablation compares ~60 µs round trips
//! whose run-to-run scatter exceeds the instrumentation budget being
//! measured. This harness drives `Router::handle` in-process, so the
//! on/off delta is the cost of the observability layer itself: root span,
//! per-layer child spans, latency histograms + exemplars, and the flight
//! recorder's completion path.

use criterion::{criterion_group, criterion_main, Criterion};
use ofmf_bench::bench_rig;
use ofmf_rest::http::{HttpVersion, Method, Request};
use ofmf_rest::Router;
use std::collections::BTreeMap;
use std::sync::Arc;

fn probe(c: &mut Criterion) {
    let ofmf = bench_rig(8, 2, 3);
    let router = Router::new(Arc::clone(&ofmf), false);
    let req = Request {
        method: Method::Get,
        path: "/redfish/v1/Systems/cn00".into(),
        query: None,
        headers: BTreeMap::new(),
        body: Vec::new(),
        version: HttpVersion::Http11,
    };
    let mut group = c.benchmark_group("span_probe");
    group.sample_size(50);
    group.bench_function("handle_obs_on", |b| {
        ofmf_obs::set_enabled(true);
        b.iter(|| assert_eq!(router.handle(&req).status, 200));
    });
    group.bench_function("handle_obs_off", |b| {
        ofmf_obs::set_enabled(false);
        b.iter(|| assert_eq!(router.handle(&req).status, 200));
        ofmf_obs::set_enabled(true);
    });
    group.finish();
}

criterion_group!(benches, probe);
criterion_main!(benches);
