//! OFMF-B2: event fan-out cost versus subscriber count — the
//! subscription-based central repository at scale.
//!
//! The headline comparison is `indexed` vs `linear` at 16/64/256 *filtered*
//! subscribers: the same subscription population routed through the routing
//! index versus the pre-index full scan (`with_linear_matching()`), same
//! binary. `broadcast` keeps the legacy all-wildcard shape (where the index
//! cannot skip anyone and the win comes from shared zero-copy batches).
//!
//! `OFMF_BENCH_QUICK=1` shrinks sample counts so CI can smoke-run the full
//! harness in seconds (catching panics/deadlocks, not regressions).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ofmf_core::clock::Clock;
use ofmf_core::events::EventService;
use ofmf_core::tree::bootstrap;
use redfish_model::odata::ODataId;
use redfish_model::resources::events::{EventEnvelope, EventType};
use redfish_model::Registry;
use std::sync::Arc;

fn quick() -> bool {
    std::env::var("OFMF_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// A routing population shaped like a real deployment: most subscribers are
/// composed-system clients watching the handful of resources that make up
/// their own system (a System, its Chassis, its storage service, its
/// manager, its resource blocks, its tasks — six origin filters across six
/// collections); a fixed pair of fabric operators (the composer and an ops
/// dashboard) watch the fabric the bench publishes into — operator
/// subscriptions are O(1) per deployment, client subscriptions are the
/// scaling axis. Returns the service plus the watcher receivers
/// (the only queues a filtered publish can land in). `filtered=false`
/// makes everyone a wildcard (broadcast shape) and returns every receiver.
#[allow(clippy::type_complexity)]
fn service_with_subs(
    n: usize,
    filtered: bool,
    linear: bool,
) -> (
    EventService,
    Vec<crossbeam::channel::Receiver<EventEnvelope>>,
    Vec<crossbeam::channel::Receiver<EventEnvelope>>,
) {
    let reg = Registry::new();
    bootstrap(&reg, "bench").unwrap();
    let mut svc = EventService::new(Arc::new(Clock::manual())).with_queue_depth(1024);
    if linear {
        svc = svc.with_linear_matching();
    }
    let mut watchers = Vec::new();
    let mut others = Vec::new();
    for i in 0..n {
        let (types, origins, watches) = if filtered {
            if i < 2 {
                (
                    vec![EventType::Alert],
                    vec![ODataId::new("/redfish/v1/Fabrics/CXL0")],
                    true,
                )
            } else {
                (
                    vec![EventType::Alert],
                    vec![
                        ODataId::new(format!("/redfish/v1/Systems/job{i}")),
                        ODataId::new(format!("/redfish/v1/Chassis/encl{i}")),
                        ODataId::new(format!("/redfish/v1/StorageServices/ss{i}")),
                        ODataId::new(format!("/redfish/v1/Managers/bmc{i}")),
                        ODataId::new(format!("/redfish/v1/CompositionService/ResourceBlocks/rb{i}")),
                        ODataId::new(format!("/redfish/v1/TaskService/Tasks/t{i}")),
                    ],
                    false,
                )
            }
        } else {
            (vec![], vec![], true)
        };
        let (_, rx) = svc.subscribe(&reg, &format!("channel://s{i}"), types, origins).unwrap();
        if watches {
            watchers.push(rx);
        } else {
            others.push(rx);
        }
    }
    (svc, watchers, others)
}

fn bench_fanout(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_fanout");
    if quick() {
        group.sample_size(10);
    }
    let origin = ODataId::new("/redfish/v1/Fabrics/CXL0/Switches/sw0");
    for &subs in &[16usize, 64, 256] {
        group.throughput(Throughput::Elements(subs as u64));
        for (label, linear) in [("indexed", false), ("linear", true)] {
            group.bench_with_input(BenchmarkId::new(label, subs), &subs, |b, &subs| {
                let (svc, watchers, _others) = service_with_subs(subs, true, linear);
                b.iter(|| {
                    svc.publish(EventType::Alert, &origin, "bench", "Warning");
                    // Drain the only queues a delivery can land in, so they
                    // never fill (identical work for both variants).
                    for rx in &watchers {
                        while rx.try_recv().is_ok() {}
                    }
                });
            });
        }
        group.bench_with_input(BenchmarkId::new("broadcast", subs), &subs, |b, &subs| {
            let (svc, watchers, _others) = service_with_subs(subs, false, false);
            b.iter(|| {
                svc.publish(EventType::Alert, &origin, "bench", "Warning");
                for rx in &watchers {
                    while rx.try_recv().is_ok() {}
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fanout);
criterion_main!(benches);
