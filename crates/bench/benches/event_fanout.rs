//! OFMF-B2: event fan-out cost versus subscriber count, filtered and
//! unfiltered — the subscription-based central repository at scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ofmf_core::clock::Clock;
use ofmf_core::events::EventService;
use ofmf_core::tree::bootstrap;
use redfish_model::odata::ODataId;
use redfish_model::resources::events::EventType;
use redfish_model::Registry;
use std::sync::Arc;

fn service_with_subs(
    n: usize,
    filtered: bool,
) -> (
    EventService,
    Vec<crossbeam::channel::Receiver<redfish_model::resources::events::Event>>,
) {
    let reg = Registry::new();
    bootstrap(&reg, "bench").unwrap();
    let svc = EventService::new(Arc::new(Clock::manual())).with_queue_depth(1024);
    let rxs = (0..n)
        .map(|i| {
            let (types, origins) = if filtered {
                // Half the subscribers filter on a fabric that never fires.
                if i % 2 == 0 {
                    (vec![EventType::Alert], vec![ODataId::new("/redfish/v1/Fabrics/CXL0")])
                } else {
                    (vec![EventType::Alert], vec![ODataId::new("/redfish/v1/Fabrics/NOPE")])
                }
            } else {
                (vec![], vec![])
            };
            let (_, rx) = svc.subscribe(&reg, &format!("channel://s{i}"), types, origins).unwrap();
            rx
        })
        .collect();
    (svc, rxs)
}

fn bench_fanout(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_fanout");
    let origin = ODataId::new("/redfish/v1/Fabrics/CXL0/Switches/sw0");
    for &subs in &[1usize, 16, 128, 1024] {
        group.throughput(Throughput::Elements(subs as u64));
        group.bench_with_input(BenchmarkId::new("broadcast", subs), &subs, |b, &subs| {
            let (svc, rxs) = service_with_subs(subs, false);
            b.iter(|| {
                svc.publish(EventType::Alert, &origin, "bench", "Warning");
                // Drain so queues never fill.
                for rx in &rxs {
                    while rx.try_recv().is_ok() {}
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("filtered_half", subs), &subs, |b, &subs| {
            let (svc, rxs) = service_with_subs(subs, true);
            b.iter(|| {
                svc.publish(EventType::Alert, &origin, "bench", "Warning");
                for rx in &rxs {
                    while rx.try_recv().is_ok() {}
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fanout);
criterion_main!(benches);
