//! OFMF-B5: requests/second through the real HTTP stack (socket → parser →
//! router → tree → serializer), keep-alive.
//!
//! Two measurements:
//!
//! * A criterion group timing single-connection request kinds (plus the
//!   observability and wire-cache ablations).
//! * A self-timed concurrency sweep pitting the epoll event loop against
//!   the thread-pool baseline at 64–1024 concurrent keep-alive
//!   connections, reporting aggregate req/s, how many of the clients were
//!   ever served (the thread-pool collapse mode is starvation: its workers
//!   pin to the first few keep-alive connections), and request-latency
//!   percentiles across the served population. A final scenario runs the
//!   event loop over its connection cap and counts `503` sheds.
//!
//! `OFMF_BENCH_QUICK=1` shrinks sample counts, window lengths and the
//! sweep so CI can smoke-run the full harness.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ofmf_bench::bench_rig;
use ofmf_rest::{Backend, HttpClient, RestServer, Router, ServerConfig};
use serde_json::json;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn quick() -> bool {
    std::env::var("OFMF_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty())
}

fn bench_rest(c: &mut Criterion) {
    let ofmf = bench_rig(8, 2, 3);
    let router = Arc::new(Router::new(Arc::clone(&ofmf), false));
    let server = RestServer::start("127.0.0.1:0", router, 4).expect("bind");
    let addr = server.addr();

    let mut group = c.benchmark_group("rest_throughput");
    group.throughput(Throughput::Elements(1));
    group.sample_size(if quick() { 10 } else { 30 });

    group.bench_function("get_service_root", |b| {
        let mut client = HttpClient::new(addr);
        b.iter(|| {
            let r = client.get("/redfish/v1").unwrap();
            assert_eq!(r.status, 200);
        });
    });

    group.bench_function("get_system", |b| {
        let mut client = HttpClient::new(addr);
        b.iter(|| {
            let r = client.get("/redfish/v1/Systems/cn00").unwrap();
            assert_eq!(r.status, 200);
        });
    });

    group.bench_function("patch_system", |b| {
        let mut client = HttpClient::new(addr);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let r = client
                .patch("/redfish/v1/Systems/cn00", &json!({"Oem": {"Bench": i}}))
                .unwrap();
            assert_eq!(r.status, 200);
        });
    });

    group.bench_function("expand_collection", |b| {
        let mut client = HttpClient::new(addr);
        b.iter(|| {
            let r = client.get("/redfish/v1/Systems?$expand=.").unwrap();
            assert_eq!(r.status, 200);
        });
    });

    // Instrumentation ablation: the same hot GET with the observability
    // layer globally disabled. Comparing against `get_system` bounds the
    // cost of counters + latency histograms + the event ring (<5% target).
    group.bench_function("get_system_obs_off", |b| {
        ofmf_obs::set_enabled(false);
        let mut client = HttpClient::new(addr);
        b.iter(|| {
            let r = client.get("/redfish/v1/Systems/cn00").unwrap();
            assert_eq!(r.status, 200);
        });
        ofmf_obs::set_enabled(true);
    });

    // Backend ablation: the same hot GET served by the blocking thread-pool
    // baseline instead of the epoll event loop.
    group.bench_function("get_system_threadpool", |b| {
        let pool = RestServer::start_thread_pool("127.0.0.1:0", Arc::new(Router::new(Arc::clone(&ofmf), false)), 4)
            .expect("bind");
        let mut client = HttpClient::new(pool.addr());
        b.iter(|| {
            let r = client.get("/redfish/v1/Systems/cn00").unwrap();
            assert_eq!(r.status, 200);
        });
        drop(client);
        pool.shutdown();
    });

    // Wire-cache ablation: the same hot GET with the registry's ETag-keyed
    // serialized-body cache disabled, so every request re-clones and
    // re-serializes the document (the pre-cache behaviour).
    group.bench_function("get_system_cache_off", |b| {
        ofmf.registry.set_wire_cache(false);
        let mut client = HttpClient::new(addr);
        b.iter(|| {
            let r = client.get("/redfish/v1/Systems/cn00").unwrap();
            assert_eq!(r.status, 200);
        });
        ofmf.registry.set_wire_cache(true);
    });

    group.finish();
    server.shutdown();
}

const SWEEP_REQUEST: &[u8] = b"GET /redfish/v1/Systems/cn00 HTTP/1.1\r\nHost: bench\r\n\r\n";

/// Read one HTTP response off `stream`, carrying leftover bytes in `buf`.
/// Returns the status code.
fn read_response(stream: &mut TcpStream, buf: &mut Vec<u8>) -> std::io::Result<u16> {
    let mut tmp = [0u8; 8192];
    let head_end = loop {
        if let Some(p) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break p + 4;
        }
        let n = stream.read(&mut tmp)?;
        if n == 0 {
            return Err(std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "closed"));
        }
        buf.extend_from_slice(&tmp[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"))?;
    let body_len: usize = head
        .lines()
        .find_map(|l| {
            let (k, v) = l.split_once(':')?;
            k.eq_ignore_ascii_case("content-length")
                .then(|| v.trim().parse().ok())?
        })
        .unwrap_or(0);
    while buf.len() < head_end + body_len {
        let n = stream.read(&mut tmp)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "closed mid-body",
            ));
        }
        buf.extend_from_slice(&tmp[..n]);
    }
    buf.drain(..head_end + body_len);
    Ok(status)
}

struct SweepResult {
    completed: u64,
    shed: u64,
    served_clients: usize,
    window: Duration,
    latencies_ns: Vec<u64>,
    /// Responses each client completed inside the window, sorted ascending
    /// — the fairness distribution (a starved client scores 0).
    per_client: Vec<u64>,
}

/// Drive `conns` keep-alive clients against `addr` for `window`, counting
/// completed responses (and 503 sheds) inside the timed window only.
fn drive_clients(addr: SocketAddr, conns: usize, warmup: Duration, window: Duration) -> SweepResult {
    let stop = Arc::new(AtomicBool::new(false));
    let counting = Arc::new(AtomicBool::new(false));
    let completed = Arc::new(AtomicU64::new(0));
    let shed = Arc::new(AtomicU64::new(0));

    let handles: Vec<_> = (0..conns)
        .map(|_| {
            let stop = Arc::clone(&stop);
            let counting = Arc::clone(&counting);
            let completed = Arc::clone(&completed);
            let shed = Arc::clone(&shed);
            std::thread::spawn(move || {
                let mut served_any = false;
                let mut lat = Vec::new();
                while !stop.load(Ordering::Acquire) {
                    let Ok(mut s) = TcpStream::connect_timeout(&addr, Duration::from_millis(250)) else {
                        std::thread::sleep(Duration::from_millis(20));
                        continue;
                    };
                    let _ = s.set_read_timeout(Some(Duration::from_millis(500)));
                    let _ = s.set_nodelay(true);
                    let mut buf = Vec::new();
                    while !stop.load(Ordering::Acquire) {
                        let start = Instant::now();
                        if s.write_all(SWEEP_REQUEST).is_err() {
                            break;
                        }
                        match read_response(&mut s, &mut buf) {
                            Ok(503) => {
                                if counting.load(Ordering::Acquire) {
                                    shed.fetch_add(1, Ordering::AcqRel);
                                }
                                // Shed connections are closed by the server;
                                // back off before reconnecting.
                                std::thread::sleep(Duration::from_millis(50));
                                break;
                            }
                            Ok(_) => {
                                served_any = true;
                                if counting.load(Ordering::Acquire) {
                                    completed.fetch_add(1, Ordering::AcqRel);
                                    lat.push(start.elapsed().as_nanos() as u64);
                                }
                            }
                            // Starved (read timeout) or disconnected: retry
                            // on a fresh connection.
                            Err(_) => break,
                        }
                    }
                }
                (served_any, lat)
            })
        })
        .collect();

    std::thread::sleep(warmup);
    counting.store(true, Ordering::Release);
    let started = Instant::now();
    std::thread::sleep(window);
    counting.store(false, Ordering::Release);
    let measured = started.elapsed();
    stop.store(true, Ordering::Release);

    let mut served_clients = 0;
    let mut latencies_ns = Vec::new();
    let mut per_client = Vec::new();
    for h in handles {
        if let Ok((served, lat)) = h.join() {
            served_clients += usize::from(served);
            per_client.push(lat.len() as u64);
            latencies_ns.extend(lat);
        }
    }
    latencies_ns.sort_unstable();
    per_client.sort_unstable();
    SweepResult {
        completed: completed.load(Ordering::Acquire),
        shed: shed.load(Ordering::Acquire),
        served_clients,
        window: measured,
        latencies_ns,
        per_client,
    }
}

fn percentile_ms(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[idx.min(sorted_ns.len() - 1)] as f64 / 1e6
}

fn backend_label(b: Backend) -> &'static str {
    match b {
        Backend::Epoll => "epoll",
        Backend::ThreadPool => "threads",
    }
}

fn sweep_concurrency(_c: &mut Criterion) {
    println!("\n== rest_concurrency ==");
    let (conn_counts, warmup, window): (&[usize], _, _) = if quick() {
        (&[16, 64], Duration::from_millis(150), Duration::from_millis(400))
    } else {
        (&[64, 256, 1024], Duration::from_millis(300), Duration::from_secs(2))
    };

    for backend in [Backend::ThreadPool, Backend::Epoll] {
        for &conns in conn_counts {
            let ofmf = bench_rig(8, 2, 3);
            let router = Arc::new(Router::new(Arc::clone(&ofmf), false));
            let server = RestServer::start_with(
                "127.0.0.1:0",
                router,
                ServerConfig {
                    workers: 4,
                    max_connections: 4096,
                    backend,
                },
            )
            .expect("bind");
            let r = drive_clients(server.addr(), conns, warmup, window);
            let secs = r.window.as_secs_f64();
            let rps = r.completed as f64 / secs;
            let median_client = r.per_client.get(r.per_client.len() / 2).copied().unwrap_or(0) as f64 / secs;
            println!(
                "rest_concurrency/{}/{conns}: {rps:.0} req/s, served {}/{conns} clients, \
                 median client {median_client:.0} req/s, p50 {:.2} ms, p99 {:.2} ms",
                backend_label(backend),
                r.served_clients,
                percentile_ms(&r.latencies_ns, 0.50),
                percentile_ms(&r.latencies_ns, 0.99),
            );
            server.shutdown();
        }
    }

    // Over-cap behavior: the event loop must answer — not queue — beyond
    // its connection cap, so every client sees either a 200 or a fast 503.
    let cap = 16;
    let clients = if quick() { 32 } else { 64 };
    let ofmf = bench_rig(8, 2, 3);
    let router = Arc::new(Router::new(Arc::clone(&ofmf), false));
    let server = RestServer::start_with(
        "127.0.0.1:0",
        router,
        ServerConfig {
            workers: 4,
            max_connections: cap,
            backend: Backend::Epoll,
        },
    )
    .expect("bind");
    let r = drive_clients(server.addr(), clients, warmup, window);
    println!(
        "rest_concurrency/load_shed cap={cap} clients={clients}: {} completed, {} shed (503 + Retry-After)",
        r.completed, r.shed
    );
    assert!(
        r.completed > 0 && r.shed > 0,
        "over-cap run must both serve within the cap and shed beyond it (completed={}, shed={})",
        r.completed,
        r.shed
    );
    server.shutdown();
}

criterion_group!(benches, bench_rest, sweep_concurrency);
criterion_main!(benches);
