//! OFMF-B5: requests/second through the real HTTP stack (socket → parser →
//! router → tree → serializer), keep-alive.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ofmf_bench::bench_rig;
use ofmf_rest::{HttpClient, RestServer, Router};
use serde_json::json;
use std::sync::Arc;

fn bench_rest(c: &mut Criterion) {
    let ofmf = bench_rig(8, 2, 3);
    let router = Arc::new(Router::new(Arc::clone(&ofmf), false));
    let server = RestServer::start("127.0.0.1:0", router, 4).expect("bind");
    let addr = server.addr();

    let mut group = c.benchmark_group("rest_throughput");
    group.throughput(Throughput::Elements(1));
    group.sample_size(30);

    group.bench_function("get_service_root", |b| {
        let mut client = HttpClient::new(addr);
        b.iter(|| {
            let r = client.get("/redfish/v1").unwrap();
            assert_eq!(r.status, 200);
        });
    });

    group.bench_function("get_system", |b| {
        let mut client = HttpClient::new(addr);
        b.iter(|| {
            let r = client.get("/redfish/v1/Systems/cn00").unwrap();
            assert_eq!(r.status, 200);
        });
    });

    group.bench_function("patch_system", |b| {
        let mut client = HttpClient::new(addr);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let r = client
                .patch("/redfish/v1/Systems/cn00", &json!({"Oem": {"Bench": i}}))
                .unwrap();
            assert_eq!(r.status, 200);
        });
    });

    group.bench_function("expand_collection", |b| {
        let mut client = HttpClient::new(addr);
        b.iter(|| {
            let r = client.get("/redfish/v1/Systems?$expand=.").unwrap();
            assert_eq!(r.status, 200);
        });
    });

    // Instrumentation ablation: the same hot GET with the observability
    // layer globally disabled. Comparing against `get_system` bounds the
    // cost of counters + latency histograms + the event ring (<5% target).
    group.bench_function("get_system_obs_off", |b| {
        ofmf_obs::set_enabled(false);
        let mut client = HttpClient::new(addr);
        b.iter(|| {
            let r = client.get("/redfish/v1/Systems/cn00").unwrap();
            assert_eq!(r.status, 200);
        });
        ofmf_obs::set_enabled(true);
    });

    // Wire-cache ablation: the same hot GET with the registry's ETag-keyed
    // serialized-body cache disabled, so every request re-clones and
    // re-serializes the document (the pre-cache behaviour).
    group.bench_function("get_system_cache_off", |b| {
        ofmf.registry.set_wire_cache(false);
        let mut client = HttpClient::new(addr);
        b.iter(|| {
            let r = client.get("/redfish/v1/Systems/cn00").unwrap();
            assert_eq!(r.status, 200);
        });
        ofmf.registry.set_wire_cache(true);
    });

    group.finish();
    server.shutdown();
}

criterion_group!(benches, bench_rest);
criterion_main!(benches);
