//! OFMF-B9: congestion-aware placement at scale.
//!
//! Two scenarios:
//!
//! 1. **probe_sweep** — one topology-aware placement decision over a
//!    multi-appliance estate (full mode: 1 000 fabrics / 10 000 endpoints /
//!    ~100 000 Redfish resources; `OFMF_BENCH_QUICK=1` shrinks to 8
//!    fabrics). Compares the batched-parallel probe pipeline (one
//!    `ProbeRoutes` round-trip per fabric, fabrics fanned out in parallel)
//!    against the sequential per-candidate baseline
//!    (`Prober::with_sequential_probing`, one supervised `ProbeRoute` per
//!    candidate). Each agent round-trip carries 1 ms of service-clock
//!    latency, so the deterministic speedup metric is round-trip cost;
//!    the batched path must be ≥5× cheaper, and both paths must pick the
//!    same pool.
//! 2. **gpu_contention** — eight 32-GPU systems composed concurrently on a
//!    switch-cascade GPU fabric with twice the GPUs needed. Congestion-aware
//!    scoring (residual bandwidth first) must strictly beat hop-count-only
//!    scoring on aggregate effective bandwidth: hop counts tie across
//!    appliances, so hop-only placement packs the first uplinks while the
//!    residual-aware scorer spreads reservations across all of them.

use composer::probe::{Prober, ScoreMode};
use composer::strategy::choose_memory_with;
use composer::{Composer, CompositionRequest, Strategy};
use fabric_sim::device::{Device, DeviceKind};
use fabric_sim::topology::{presets, Attach, Topology, TopologyBuilder};
use fabric_sim::{FabricConfig, FabricSim};
use ofmf_agents::{ChaosAgent, ChaosConfig, SimAgent};
use ofmf_core::Ofmf;
use redfish_model::enums::Protocol;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

fn quick() -> bool {
    std::env::var("OFMF_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty())
}

// ------------------------------------------------------------- probe sweep

const SWEEP_TARGETS: usize = 8;

/// One memory fabric of the sweep estate. Compute nodes keep the shared
/// `cn00`/`cn01` names (one node spans every fabric), but appliances get
/// estate-unique names — each is distinct hardware with its own chassis.
fn mem_fabric(i: usize, seed: u64) -> SimAgent {
    let mut devices = presets::compute_nodes(2, 8, 16);
    devices.extend((0..SWEEP_TARGETS).map(|j| {
        Device::new(
            format!("p{i:04}m{j:02}"),
            DeviceKind::MemoryAppliance { capacity_mib: 1 << 20 },
        )
    }));
    let topo = TopologyBuilder::new()
        .access_gbps(256.0)
        .trunk_gbps(512.0)
        .leaf_spine(1, 2, devices);
    SimAgent::new(
        FabricSim::new(FabricConfig::new(&format!("CXL{i:04}"), "CXL", seed), topo),
        Protocol::CXL,
    )
}

fn probe_sweep() {
    let (fabrics, iters) = if quick() { (8usize, 2u32) } else { (1000, 3) };
    let ofmf = Ofmf::new("placement-bench", HashMap::new(), 11);
    for i in 0..fabrics {
        // Every agent round-trip costs 1 ms of service-clock latency — the
        // management-network hop an in-process sim otherwise hides, and the
        // cost batching exists to amortize.
        let agent = ChaosAgent::new(
            Arc::new(mem_fabric(i, 11 ^ i as u64)),
            ChaosConfig::quiet(11 ^ i as u64).with_delay_ms(1),
        )
        .with_clock(Arc::clone(&ofmf.clock));
        ofmf.register_agent(Arc::new(agent)).expect("fresh rig");
    }
    let composer = Composer::new(Arc::clone(&ofmf), Strategy::TopologyAware);
    let inv = composer.inventory();
    let initiators = &inv.compute[0].endpoints;
    assert_eq!(
        inv.memory.len(),
        fabrics * SWEEP_TARGETS,
        "every appliance is a candidate"
    );
    println!(
        "placement/probe_sweep: {} fabrics, {} endpoints, {} resources, {} candidate pools",
        fabrics,
        fabrics * (2 + SWEEP_TARGETS),
        ofmf.registry.len(),
        inv.memory.len()
    );

    // One cold placement decision: every candidate pool probed. Warm = the
    // same decision again with the cache intact. Service-clock ms counts
    // agent round-trips; wall ms is the CPU cost of the pipeline itself.
    let sweep = |prober: &Prober| -> (u64, f64, f64, String) {
        let mut svc = u64::MAX;
        let mut cold = f64::INFINITY;
        let mut warm = f64::INFINITY;
        let mut picked = String::new();
        for _ in 0..iters {
            prober.invalidate_all();
            let clock0 = ofmf.clock.now_ms();
            let t = Instant::now();
            let (chosen, skipped) =
                choose_memory_with(prober, Strategy::TopologyAware, &inv.memory, 64, &ofmf, initiators);
            cold = cold.min(t.elapsed().as_secs_f64());
            svc = svc.min(ofmf.clock.now_ms() - clock0);
            assert!(skipped.is_empty(), "no fabric may fail its probe batch: {skipped:?}");
            picked = chosen.expect("a pool fits").domain.as_str().to_string();
            let t = Instant::now();
            let (again, _) = choose_memory_with(prober, Strategy::TopologyAware, &inv.memory, 64, &ofmf, initiators);
            warm = warm.min(t.elapsed().as_secs_f64());
            assert_eq!(again.expect("cache hit").domain.as_str(), picked);
        }
        (svc, cold, warm, picked)
    };

    let (seq_svc, seq_cold, seq_warm, seq_pick) = sweep(&Prober::new().with_sequential_probing());
    let (bat_svc, bat_cold, bat_warm, bat_pick) = sweep(&Prober::new());
    assert_eq!(bat_pick, seq_pick, "batched and sequential probing must agree");
    let speedup = seq_svc as f64 / bat_svc as f64;
    println!(
        "placement/probe_sweep: sequential {seq_svc} round-trip ms ({:.1} ms wall cold / {:.2} warm), \
         batched {bat_svc} round-trip ms ({:.1} ms wall cold / {:.2} warm) — speedup {speedup:.1}x",
        seq_cold * 1e3,
        seq_warm * 1e3,
        bat_cold * 1e3,
        bat_warm * 1e3,
    );
    // One ProbeRoutes batch per fabric replaces one ProbeRoute per
    // candidate: 8 supervised round-trips collapse into 1, deterministically
    // on the service clock (wall-clock parallel fan-out comes on top, capped
    // by available cores).
    assert!(
        speedup >= 5.0,
        "batched probing must cut supervised round-trips ≥5x, got {speedup:.1}x"
    );
}

// ---------------------------------------------------------- GPU contention

/// A cascade GPU fabric with GPUs attached **consecutively** per appliance
/// (not round-robin), so hop-only tie-breaking by candidate index really
/// does pack the first appliances' uplinks.
fn gpu_cascade(appliances: usize, gpus_per_app: usize, nodes: usize, seed: u64) -> SimAgent {
    let mut topo = Topology::new();
    let head = topo.add_switch("head", 128);
    let apps: Vec<_> = (0..appliances)
        .map(|i| topo.add_switch(format!("app{i}"), 96))
        .collect();
    for &a in &apps {
        topo.add_link(Attach::Switch(head), Attach::Switch(a), 512.0, 500);
    }
    // Fat access links on both ends: the shared appliance uplinks (512
    // Gbps), not a device's own access link, must be every probed path's
    // bottleneck — otherwise min-residual ties across appliances and the
    // congestion score cannot discriminate.
    for d in presets::compute_nodes(nodes, 8, 16) {
        topo.attach_device(head, d, 4096.0, 500);
    }
    for (i, d) in presets::gpus(appliances * gpus_per_app, "A100", 40)
        .into_iter()
        .enumerate()
    {
        topo.attach_device(apps[i / gpus_per_app], d, 1024.0, 500);
    }
    SimAgent::new(
        FabricSim::new(FabricConfig::new("GPU0", "InfiniBand", seed), topo),
        Protocol::InfiniBand,
    )
}

fn gpu_contention() {
    let (systems, gpus_per_system, appliances) = if quick() { (4usize, 8u32, 4usize) } else { (8, 32, 8) };
    // Twice the GPUs needed: placement has real freedom to pack or spread.
    // Each appliance holds two systems' worth, so hop-only index tie-breaking
    // stacks two systems per uplink while the residual-aware scorer peels
    // off to an idle appliance as soon as reservations debit the first.
    let gpus_per_app = (systems * gpus_per_system as usize * 2) / appliances;

    let run = |mode: ScoreMode| -> f64 {
        let agent = Arc::new(gpu_cascade(appliances, gpus_per_app, systems, 21));
        let ofmf = Ofmf::new("placement-contention", HashMap::new(), 21);
        ofmf.register_agent(Arc::clone(&agent) as Arc<dyn ofmf_core::Agent>)
            .expect("fresh rig");
        let composer =
            Composer::new(Arc::clone(&ofmf), Strategy::TopologyAware).with_prober(Prober::new().with_score_mode(mode));
        std::thread::scope(|s| {
            for i in 0..systems {
                let composer = &composer;
                s.spawn(move || {
                    let req = CompositionRequest::compute_only(&format!("hpc{i}"), 8, 8)
                        .with_gpus(gpus_per_system)
                        .with_gpu_bandwidth_gbps(4.0);
                    // Concurrent composes race for the same GPUs: a loser's
                    // bind hits 507 (the grant went to another system) and
                    // retries against a fresh inventory snapshot, like any
                    // real client of the CompositionService.
                    let mut last = None;
                    for _ in 0..64 {
                        match composer.compose(&req) {
                            Ok(_) => return,
                            Err(e) if e.http_status() == 507 => last = Some(e),
                            Err(e) => panic!("compose failed: {e}"),
                        }
                    }
                    panic!("compose kept losing the GPU race: {last:?}");
                });
            }
        });
        agent.with_sim(|sim| sim.aggregate_effective_gbps())
    };

    let hops_only = run(ScoreMode::HopsOnly);
    let congestion = run(ScoreMode::Congestion);
    println!(
        "placement/gpu_contention: {systems} x {gpus_per_system}-GPU systems on {appliances} appliances — \
         aggregate effective bandwidth: hop-count-only {hops_only:.0} Gbps, congestion-aware {congestion:.0} Gbps \
         ({:.2}x)",
        congestion / hops_only
    );
    assert!(
        congestion > hops_only,
        "congestion-aware placement must strictly beat hop-count-only on aggregate bandwidth \
         ({congestion:.0} vs {hops_only:.0} Gbps)"
    );
}

fn main() {
    probe_sweep();
    gpu_contention();
    ofmf_bench::finish_obs();
}
