//! OFMF-B8: write-ahead-log cost model — append throughput per fsync
//! policy, and cold-boot replay time as the journal grows. The recovery
//! requirement bounds the second: a journal of 100k mutations must replay
//! into a full resource tree in under two seconds, or restart-based
//! fail-over stops being cheaper than re-discovery.
//!
//! `OFMF_BENCH_QUICK=1` shrinks sample counts so CI can smoke-run the full
//! harness in seconds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ofmf_wal::{FsyncPolicy, Wal, WalRecord};
use redfish_model::odata::ODataId;
use redfish_model::{replay, Registry};
use serde_json::json;
use std::path::PathBuf;

fn quick() -> bool {
    std::env::var("OFMF_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// A fresh per-run scratch directory (criterion forks nothing, so the pid
/// plus a tag is collision-free).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ofmf-bench-wal-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Journal `n` registry mutations the way the live tree does: a root, a
/// collection, then member creates with occasional patches — the shape a
/// real control plane leaves behind.
fn journal_with(dir: &PathBuf, n: usize, policy: FsyncPolicy) -> std::sync::Arc<Wal> {
    let wal = std::sync::Arc::new(Wal::open(dir, policy).expect("temp WAL dir"));
    let reg = Registry::new();
    reg.set_journal(Some(std::sync::Arc::clone(&wal)));
    let root = ODataId::new("/redfish/v1");
    reg.create(&root, json!({"Name": "root"})).expect("fresh tree");
    let col = root.child("Systems");
    reg.create_collection(&col, "#ComputerSystemCollection.ComputerSystemCollection", "Systems")
        .expect("fresh tree");
    for i in 0..n {
        let id = col.child(&format!("sys{i:06}"));
        reg.create(
            &id,
            json!({
                "@odata.type": "#ComputerSystem.v1_20_0.ComputerSystem",
                "Id": format!("sys{i:06}"),
                "Name": format!("node {i}"),
                "Status": {"State": "Enabled", "Health": "OK"},
            }),
        )
        .expect("unique member ids");
        if i % 8 == 0 {
            reg.patch(&id, &json!({"Oem": {"Boot": i}}), None)
                .expect("member exists");
        }
    }
    wal.flush().expect("drain batch before measuring");
    wal
}

/// Append throughput per fsync policy: `off` is the in-memory write path
/// plus framing, `batch:5` amortizes one fsync over the commit group,
/// `always` pays the device round-trip per record.
fn bench_append_policies(c: &mut Criterion) {
    const BATCH: usize = 256;
    let mut group = c.benchmark_group("wal_append");
    group.throughput(Throughput::Elements(BATCH as u64));
    if quick() {
        group.sample_size(10);
    }
    for &(policy, name) in &[
        (FsyncPolicy::Off, "off"),
        (FsyncPolicy::Batch(5), "batch_5ms"),
        (FsyncPolicy::Always, "always"),
    ] {
        if quick() && matches!(policy, FsyncPolicy::Always) {
            continue; // device-bound; dominates CI smoke time for no signal
        }
        let dir = scratch(&format!("append-{name}"));
        let wal = Wal::open(&dir, policy).expect("temp WAL dir");
        let mut i = 0usize;
        group.bench_function(name, |b| {
            b.iter(|| {
                for _ in 0..BATCH {
                    wal.append(&WalRecord::Patch {
                        id: format!("/redfish/v1/Systems/sys{:06}", i % 4096),
                        delta: json!({"Oem": {"Bench": i}}),
                        etag: i as u64,
                    })
                    .expect("journal healthy");
                    i += 1;
                }
            });
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

/// Cold-boot replay: decode the full journal and fold it into a fresh
/// registry, exactly what `Ofmf::with_wal` does at process start. The
/// 100k point is the acceptance bound (< 2 s wall).
fn bench_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_replay");
    group.sample_size(10);
    let sizes: &[usize] = if quick() { &[10_000] } else { &[10_000, 100_000] };
    for &n in sizes {
        let dir = scratch(&format!("replay-{n}"));
        let wal = journal_with(&dir, n, FsyncPolicy::Off);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("boot", n), &n, |b, _| {
            b.iter(|| {
                let records = wal.replay().expect("journal intact").records;
                let reg = Registry::new();
                let applied = replay::apply_all(&reg, &records);
                std::hint::black_box((applied, reg.len()));
            });
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

/// Snapshot compaction cost: fold the live log into `snapshot.bin` while
/// the tree keeps its full size — the background-checkpoint price.
fn bench_snapshot(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_snapshot");
    group.sample_size(10);
    let n = if quick() { 2_000 } else { 10_000 };
    let dir = scratch("snapshot");
    let wal = journal_with(&dir, n, FsyncPolicy::Off);
    let reg = Registry::new();
    replay::apply_all(&reg, &wal.replay().expect("journal intact").records);
    group.bench_function(&format!("compact_{n}"), |b| {
        b.iter(|| {
            let written = wal
                .snapshot_with(|| {
                    let mut recs = Vec::new();
                    reg.for_each(|id, node| {
                        recs.push(WalRecord::InstallResource {
                            id: id.as_str().to_string(),
                            body: node.body.clone(),
                            etag: node.etag.0,
                            is_collection: node.is_collection,
                        });
                    });
                    recs
                })
                .expect("snapshot dir writable");
            std::hint::black_box(written);
        });
    });
    let _ = std::fs::remove_dir_all(&dir);
    group.finish();
}

criterion_group!(benches, bench_append_policies, bench_replay, bench_snapshot);
criterion_main!(benches);
