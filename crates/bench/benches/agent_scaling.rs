//! OFMF-B4: agent fan-out — discovery and zone-apply cost as the number of
//! managed fabrics grows (the OFMF "is capable of interfacing with multiple
//! fabric managers by means of a set of agents").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ofmf_agents::flavors::{cxl_agent, RackShape};
use ofmf_core::agent::AgentOp;
use ofmf_core::Ofmf;
use redfish_model::odata::ODataId;
use serde_json::json;
use std::collections::HashMap;
use std::sync::Arc;

fn rig_with_fabrics(n: usize) -> Arc<Ofmf> {
    let ofmf = Ofmf::new("agent-bench", HashMap::new(), 1);
    let shape = RackShape::default();
    for i in 0..n {
        ofmf.register_agent(Arc::new(cxl_agent(&format!("CXL{i}"), &shape, 1 << 20, i as u64)))
            .expect("unique ids");
    }
    ofmf
}

fn bench_registration(c: &mut Criterion) {
    let mut group = c.benchmark_group("agent_registration");
    group.sample_size(10);
    for &fabrics in &[1usize, 8, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(fabrics), &fabrics, |b, &fabrics| {
            b.iter(|| std::hint::black_box(rig_with_fabrics(fabrics)));
        });
    }
    group.finish();
}

fn bench_zone_apply_across_fabrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("zone_apply");
    group.sample_size(20);
    for &fabrics in &[1usize, 8, 32] {
        let ofmf = rig_with_fabrics(fabrics);
        group.bench_with_input(BenchmarkId::from_parameter(fabrics), &fabrics, |b, &fabrics| {
            let mut i = 0usize;
            b.iter(|| {
                let f = format!("CXL{}", i % fabrics);
                i += 1;
                let zones = ODataId::new(format!("/redfish/v1/Fabrics/{f}/Zones"));
                let zone = ofmf
                    .post(
                        &zones,
                        &json!({"Links": {"Endpoints": [
                            {"@odata.id": format!("/redfish/v1/Fabrics/{f}/Endpoints/cn00-ep")},
                            {"@odata.id": format!("/redfish/v1/Fabrics/{f}/Endpoints/mem00-ep")},
                        ]}}),
                    )
                    .unwrap();
                ofmf.delete(&zone).unwrap();
            });
        });
    }
    group.finish();
}

fn bench_poll_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("poll_cycle");
    group.sample_size(20);
    for &fabrics in &[1usize, 8, 32] {
        let ofmf = rig_with_fabrics(fabrics);
        group.bench_with_input(BenchmarkId::from_parameter(fabrics), &fabrics, |b, _| {
            b.iter(|| std::hint::black_box(ofmf.poll()));
        });
    }
    group.finish();
}

fn bench_probe_route(c: &mut Criterion) {
    let ofmf = rig_with_fabrics(1);
    c.bench_function("probe_route", |b| {
        let op = AgentOp::ProbeRoute {
            initiator: ODataId::new("/redfish/v1/Fabrics/CXL0/Endpoints/cn00-ep"),
            target: ODataId::new("/redfish/v1/Fabrics/CXL0/Endpoints/mem00-ep"),
        };
        b.iter(|| std::hint::black_box(ofmf.apply("CXL0", &op).unwrap()));
    });
}

criterion_group!(
    benches,
    bench_registration,
    bench_zone_apply_across_fabrics,
    bench_poll_cycle,
    bench_probe_route
);
criterion_main!(benches);
