//! OFMF-B4: agent fan-out — discovery and zone-apply cost as the number of
//! managed fabrics grows (the OFMF "is capable of interfacing with multiple
//! fabric managers by means of a set of agents"), plus concurrent telemetry
//! ingest throughput: the lock-striped series store (`sharded`, the
//! default 16 stripes) against the single-lock layout (`with_shards(1)`,
//! `global`) at 1/4/16 ingesting threads.
//!
//! `OFMF_BENCH_QUICK=1` shrinks sample counts so CI can smoke-run the full
//! harness in seconds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ofmf_agents::flavors::{cxl_agent, RackShape};
use ofmf_core::agent::{AgentMetric, AgentOp};
use ofmf_core::clock::Clock;
use ofmf_core::events::EventService;
use ofmf_core::telemetry::{TelemetryService, Threshold};
use ofmf_core::Ofmf;
use redfish_model::odata::ODataId;
use serde_json::json;
use std::collections::HashMap;
use std::sync::Arc;

fn quick() -> bool {
    std::env::var("OFMF_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty())
}

fn rig_with_fabrics(n: usize) -> Arc<Ofmf> {
    let ofmf = Ofmf::new("agent-bench", HashMap::new(), 1);
    let shape = RackShape::default();
    for i in 0..n {
        ofmf.register_agent(Arc::new(cxl_agent(&format!("CXL{i}"), &shape, 1 << 20, i as u64)))
            .expect("unique ids");
    }
    ofmf
}

fn bench_registration(c: &mut Criterion) {
    let mut group = c.benchmark_group("agent_registration");
    group.sample_size(10);
    for &fabrics in &[1usize, 8, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(fabrics), &fabrics, |b, &fabrics| {
            b.iter(|| std::hint::black_box(rig_with_fabrics(fabrics)));
        });
    }
    group.finish();
}

fn bench_zone_apply_across_fabrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("zone_apply");
    group.sample_size(20);
    for &fabrics in &[1usize, 8, 32] {
        let ofmf = rig_with_fabrics(fabrics);
        group.bench_with_input(BenchmarkId::from_parameter(fabrics), &fabrics, |b, &fabrics| {
            let mut i = 0usize;
            b.iter(|| {
                let f = format!("CXL{}", i % fabrics);
                i += 1;
                let zones = ODataId::new(format!("/redfish/v1/Fabrics/{f}/Zones"));
                let zone = ofmf
                    .post(
                        &zones,
                        &json!({"Links": {"Endpoints": [
                            {"@odata.id": format!("/redfish/v1/Fabrics/{f}/Endpoints/cn00-ep")},
                            {"@odata.id": format!("/redfish/v1/Fabrics/{f}/Endpoints/mem00-ep")},
                        ]}}),
                    )
                    .unwrap();
                ofmf.delete(&zone).unwrap();
            });
        });
    }
    group.finish();
}

fn bench_poll_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("poll_cycle");
    group.sample_size(20);
    for &fabrics in &[1usize, 8, 32] {
        let ofmf = rig_with_fabrics(fabrics);
        group.bench_with_input(BenchmarkId::from_parameter(fabrics), &fabrics, |b, _| {
            b.iter(|| std::hint::black_box(ofmf.poll()));
        });
    }
    group.finish();
}

fn bench_probe_route(c: &mut Criterion) {
    let ofmf = rig_with_fabrics(1);
    c.bench_function("probe_route", |b| {
        let op = AgentOp::ProbeRoute {
            initiator: ODataId::new("/redfish/v1/Fabrics/CXL0/Endpoints/cn00-ep"),
            target: ODataId::new("/redfish/v1/Fabrics/CXL0/Endpoints/mem00-ep"),
        };
        b.iter(|| std::hint::black_box(ofmf.apply("CXL0", &op).unwrap()));
    });
}

fn bench_telemetry_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_ingest");
    group.sample_size(if quick() { 10 } else { 20 });
    // Each thread plays one fabric poller: its own metric names (different
    // technologies expose different counters), a few origins per metric.
    const BATCH: usize = 64;
    const ROUNDS: usize = 50;
    let batches_for = |threads: usize| -> Vec<Vec<AgentMetric>> {
        (0..threads)
            .map(|t| {
                let names: Vec<Arc<str>> = (0..4)
                    .map(|m| Arc::from(format!("Fabric{t}Metric{m}").as_str()))
                    .collect();
                (0..BATCH)
                    .map(|i| AgentMetric {
                        metric_id: Arc::clone(&names[i % names.len()]),
                        origin: ODataId::new(format!("/redfish/v1/Fabrics/F{t}/Switches/sw{}", i % 8)),
                        value: i as f64,
                    })
                    .collect()
            })
            .collect()
    };
    for &threads in &[1usize, 4, 16] {
        group.throughput(Throughput::Elements((threads * ROUNDS * BATCH) as u64));
        for (label, shards) in [("sharded", 16usize), ("global", 1)] {
            group.bench_with_input(BenchmarkId::new(label, threads), &threads, |b, &threads| {
                let clock = Arc::new(Clock::manual());
                let tel = Arc::new(TelemetryService::new(Arc::clone(&clock)).with_shards(shards));
                // A realistic alerting config: one threshold rule per metric
                // the fleet exposes (64 rules at 16 fabrics). Limits sit above
                // every sample so the bench measures the check, not fan-out.
                for t in 0..16 {
                    for m in 0..4 {
                        tel.add_threshold(Threshold {
                            metric_id: format!("Fabric{t}Metric{m}"),
                            upper: 1e12,
                            severity: "Warning".to_string(),
                        });
                    }
                }
                let ev = Arc::new(EventService::new(clock));
                let batches = batches_for(threads);
                b.iter(|| {
                    let handles: Vec<_> = batches
                        .iter()
                        .map(|batch| {
                            let tel = Arc::clone(&tel);
                            let ev = Arc::clone(&ev);
                            let batch = batch.clone();
                            std::thread::spawn(move || {
                                for _ in 0..ROUNDS {
                                    std::hint::black_box(tel.ingest(&batch, &ev));
                                }
                            })
                        })
                        .collect();
                    for h in handles {
                        h.join().unwrap();
                    }
                });
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_registration,
    bench_zone_apply_across_fabrics,
    bench_poll_cycle,
    bench_probe_route,
    bench_telemetry_ingest
);
criterion_main!(benches);
