//! # ofmf-bench
//!
//! Harnesses regenerating every table and figure of the supplied paper
//! text, plus system benchmarks for the OFMF itself (which the paper does
//! not quantify). See `DESIGN.md` §3 for the experiment index and
//! `EXPERIMENTS.md` for paper-vs-measured records.
//!
//! Binaries (tables/figures):
//!
//! | target | artifact |
//! |---|---|
//! | `table1_profiles` | Table I — performance profiles & isolation |
//! | `table2_hpl_params` | Table II — HPL parameters by node count |
//! | `table3_ior_params` | Table III — IOR parameters |
//! | `fig_process_layout` | Fig. `process-layout` — experiment classes |
//! | `fig_multinode` | Fig. `multinode` — HPL runtime ±95 % CI |
//! | `fig_variance` | Fig. `multinode-variance` — idle-daemon overhead |
//! | `fig_stranded` | Fig. 1 — composable vs static efficiency |
//!
//! Criterion benches (OFMF system behaviour + ablations): `tree_ops`,
//! `event_fanout`, `composition`, `agent_scaling`, `rest_throughput`,
//! `failover`.

#![forbid(unsafe_code)]

use ofmf_agents::flavors::{cxl_agent, infiniband_agent, nvmeof_agent, RackShape};
use ofmf_core::Ofmf;
use std::collections::HashMap;
use std::sync::Arc;

/// Boot an OFMF with three fabrics at a given rack scale (used by benches).
pub fn bench_rig(compute_nodes: usize, targets: usize, seed: u64) -> Arc<Ofmf> {
    let shape = RackShape {
        compute_nodes,
        targets,
        leaves: (compute_nodes / 8).max(2),
        spines: 2,
        ..RackShape::default()
    };
    let ofmf = Ofmf::new("bench-rig", HashMap::new(), seed);
    ofmf.register_agent(Arc::new(cxl_agent("CXL0", &shape, 1 << 20, seed ^ 1)))
        .expect("fresh rig");
    ofmf.register_agent(Arc::new(nvmeof_agent("NVME0", &shape, 1 << 40, seed ^ 2)))
        .expect("fresh rig");
    ofmf.register_agent(Arc::new(infiniband_agent("IB0", &shape, "A100", seed ^ 3)))
        .expect("fresh rig");
    ofmf
}

/// Parse `--obs-json <path>` (or `--obs-json=<path>`) from the process args.
pub fn obs_json_arg() -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--obs-json" {
            return args.next();
        }
        if let Some(p) = a.strip_prefix("--obs-json=") {
            return Some(p.to_string());
        }
    }
    None
}

/// If `--obs-json <path>` was given, dump the global metrics snapshot there.
/// Every bench binary calls this at the end of `main`.
pub fn finish_obs() {
    if let Some(path) = obs_json_arg() {
        let json = ofmf_obs::global().snapshot().to_json();
        match std::fs::write(&path, json) {
            Ok(()) => eprintln!("wrote metrics snapshot to {path}"),
            Err(e) => eprintln!("warning: could not write {path}: {e}"),
        }
    }
}

/// Render a simple aligned table to stdout.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let parts: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("| {} |", parts.join(" | "));
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    println!(
        "|{}|",
        widths.iter().map(|w| "-".repeat(w + 2)).collect::<Vec<_>>().join("|")
    );
    for row in rows {
        line(row.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_rig_boots() {
        let o = bench_rig(8, 2, 1);
        assert_eq!(o.fabric_ids().len(), 3);
    }
}
