//! Regenerates **Fig. `multinode`**: HPL execution times with and without
//! IOR co-located in the partition, with 95 % confidence intervals, for all
//! five experiment classes across node counts 1…128.
//!
//! Run with: `cargo run --release -p ofmf-bench --bin fig_multinode`

use cluster_sim::experiment::{run, ExperimentClass, ExperimentPlan};
use cluster_sim::node::NodeSpec;
use ofmf_bench::print_table;

fn main() {
    let spec = NodeSpec::thunderx2();
    let plan = ExperimentPlan::paper(20230615);
    eprintln!(
        "running {} classes × {:?} HPL sizes × {} reps ({} for Matching Lustre)…",
        plan.classes.len(),
        plan.node_counts,
        plan.reps,
        plan.lustre_reps
    );
    let t0 = std::time::Instant::now();
    let results = run(&plan, &spec);
    eprintln!("sweep finished in {:.1}s\n", t0.elapsed().as_secs_f64());

    println!("Fig. multinode — HPL execution time (seconds, mean [95% CI])\n");
    let mut rows = Vec::new();
    for &n in &plan.node_counts {
        let base = results
            .iter()
            .find(|r| r.class == ExperimentClass::HplOnly && r.n == n)
            .unwrap();
        for class in ExperimentClass::ALL {
            let r = results.iter().find(|r| r.class == class && r.n == n).unwrap();
            rows.push(vec![
                n.to_string(),
                class.label().to_string(),
                format!("{}", r.runtime.n),
                format!("{:.1}", r.runtime.mean),
                format!("[{:.1}, {:.1}]", r.runtime.ci_low, r.runtime.ci_high),
                format!("{:+.1}%", r.runtime.rel_diff(&base.runtime) * 100.0),
            ]);
        }
    }
    print_table(&["n", "class", "reps", "mean (s)", "95% CI", "vs HPL-Only"], &rows);

    // The paper's headline claims, checked against this run.
    let at = |c: ExperimentClass, n: usize| &results.iter().find(|r| r.class == c && r.n == n).unwrap().runtime;
    println!("\nheadline checks (paper's reported ranges):");
    let single = at(ExperimentClass::SingleBeeond, 128).rel_diff(at(ExperimentClass::HplOnly, 128));
    println!(
        "  Single BeeOND @128 vs HPL-Only:          {:+.1}%   (paper: +7 – +13%)",
        single * 100.0
    );
    let nometa = at(ExperimentClass::MatchingBeeondNoMeta, 128).rel_diff(at(ExperimentClass::HplOnly, 128));
    println!(
        "  Matching BeeOND (no meta) @128 vs HPL-Only: {:+.1}%   (paper: +47 – +52%)",
        nometa * 100.0
    );
    let meta_delta = at(ExperimentClass::MatchingBeeond, 128).rel_diff(at(ExperimentClass::MatchingBeeondNoMeta, 128));
    let overlap = at(ExperimentClass::MatchingBeeond, 128).overlaps(at(ExperimentClass::MatchingBeeondNoMeta, 128));
    println!(
        "  Matching vs no-meta @128:                {:+.1}%, CIs overlap: {}   (paper: no definitive difference)",
        meta_delta * 100.0,
        overlap
    );
    ofmf_bench::finish_obs();
}
