//! Extension harness — the experiment the paper *promises*: "a simple
//! variation of this experiment will definitively show whether this link
//! exists. Such an experiment will be run and reported for an accepted
//! version of this paper."
//!
//! The variation: HPL with idle BeeOND daemons vs HPL with **no daemons at
//! all and no IOR anywhere** — removing the Lustre-IOR confound the paper
//! could not eliminate. If HPL-with-idle-daemons is still significantly
//! slower, the idle-daemon overhead link is established.

use cluster_sim::interference::{hpl_runtime_s, NodeNoise};
use cluster_sim::node::NodeSpec;
use cluster_sim::stats::Summary;
use cluster_sim::workload::hpl::derive_params;
use ofmf_bench::print_table;
use rayon::prelude::*;

fn main() {
    let spec = NodeSpec::thunderx2();
    let reps = 10usize;
    println!("Definitive idle-daemon experiment: HPL-only ± idle BeeOND daemons");
    println!("(no IOR anywhere — the Lustre confound of Fig. multinode-variance is gone)\n");

    let mut rows = Vec::new();
    let mut costs = Vec::new();
    for &n in &[1usize, 2, 4, 8, 16, 32, 64, 128] {
        let params = derive_params(&spec, n);
        let clean = vec![NodeNoise::default(); n];
        let daemons: Vec<NodeNoise> = (0..n)
            .map(|_| NodeNoise {
                idle_daemons: true,
                oss_rho: 0.0,
                mds_rho: 0.0,
            })
            .collect();
        let t_clean: Vec<f64> = (0..reps)
            .into_par_iter()
            .map(|r| hpl_runtime_s(&params, &spec, &clean, 0xC1EA0 + (n * 131 + r) as u64))
            .collect();
        let t_daemon: Vec<f64> = (0..reps)
            .into_par_iter()
            .map(|r| hpl_runtime_s(&params, &spec, &daemons, 0xDAE0 + (n * 131 + r) as u64))
            .collect();
        let c = Summary::of(&t_clean);
        let d = Summary::of(&t_daemon);
        let cost = d.rel_diff(&c);
        costs.push((n, cost, !d.overlaps(&c)));
        rows.push(vec![
            n.to_string(),
            format!("{:.1} [{:.1},{:.1}]", c.mean, c.ci_low, c.ci_high),
            format!("{:.1} [{:.1},{:.1}]", d.mean, d.ci_low, d.ci_high),
            format!("{:+.2}%", cost * 100.0),
            if d.overlaps(&c) { "no".into() } else { "yes".into() },
        ]);
    }
    print_table(
        &["n", "no daemons (s)", "idle daemons (s)", "overhead", "significant"],
        &rows,
    );

    let significant_large = costs.iter().filter(|(n, _, sig)| *n >= 16 && *sig).count();
    println!(
        "\nverdict: the link {} — idle daemons cost real runtime at {}/{} of the ≥16-node scales,",
        if significant_large >= 3 {
            "EXISTS"
        } else {
            "is not established"
        },
        significant_large,
        costs.iter().filter(|(n, _, _)| *n >= 16).count(),
    );
    println!("with the confound removed (no Lustre IOR in the control).");
    ofmf_bench::finish_obs();
}
