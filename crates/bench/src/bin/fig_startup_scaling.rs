//! Extension harness: BeeOND filesystem assembly/teardown time versus
//! allocation size — the §III-B claim "assembled … in under 3 seconds and
//! disassembled and erased in under 6 seconds, regardless of the scale".

use cluster_sim::lifecycle::{sweep, timing};
use cluster_sim::stats::Summary;
use ofmf_bench::print_table;

fn main() {
    println!("BeeOND lifecycle timing vs allocation size (paper budgets: <3 s / <6 s)\n");
    let sizes = [1usize, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];
    // Several seeds per size to show the spread.
    let mut rows = Vec::new();
    for &n in &sizes {
        let assemble: Vec<f64> = (0..12u64)
            .map(|s| cluster_sim::lifecycle::assemble_s(n, s * 7919 + n as u64))
            .collect();
        let teardown: Vec<f64> = (0..12u64)
            .map(|s| cluster_sim::lifecycle::teardown_s(n, s * 104729 + n as u64))
            .collect();
        let a = Summary::of(&assemble);
        let t = Summary::of(&teardown);
        rows.push(vec![
            n.to_string(),
            format!("{:.2} [{:.2}, {:.2}]", a.mean, a.ci_low, a.ci_high),
            format!("{:.2} [{:.2}, {:.2}]", t.mean, t.ci_low, t.ci_high),
            if a.mean < 3.0 { "✓".into() } else { "✗".into() },
            if t.mean < 6.0 { "✓".into() } else { "✗".into() },
        ]);
    }
    print_table(&["nodes", "assembly (s)", "teardown (s)", "<3s", "<6s"], &rows);

    let one = sweep(&[1], 1)[0].clone();
    let big = sweep(&[1024], 1)[0].clone();
    println!(
        "\nscale-freeness: assembly grows only {:+.1}% from 1 to 1024 nodes",
        (big.assembly_s / one.assembly_s - 1.0) * 100.0
    );
    println!("structure: serialized phases (mgmtd → storage → meta → mount), each phase");
    println!(
        "parallel across nodes; teardown dominated by the XFS reformat ({:.1} s)",
        timing::REFORMAT_S
    );
    ofmf_bench::finish_obs();
}
