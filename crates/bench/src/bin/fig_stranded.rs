//! Regenerates **Fig. 1** ("More Efficiency is Composable HPC Use of
//! Resources"): utilization, stranded-resource fraction and power draw of
//! statically provisioned nodes versus composable pools over the same
//! heterogeneous job mix — both analytically (accounting model) and
//! end-to-end through the live Composability Manager.

use composer::accounting::{composable_outcome, heterogeneous_mix, static_outcome, PowerModel, StaticNodeShape};
use composer::{Composer, CompositionRequest, Strategy};
use ofmf_agents::flavors::RackShape;
use ofmf_bench::print_table;
use std::sync::Arc;

fn main() {
    println!("Fig. 1 — static worst-case provisioning vs composable pools\n");

    // --- analytic model over a large mix ---
    let jobs = heterogeneous_mix(256, 1);
    let power = PowerModel::default();
    // Static: every node provisioned for the hungriest job in the mix.
    let shape = StaticNodeShape {
        cores: 32,
        memory_gib: jobs.iter().map(|j| j.memory_gib).max().unwrap(),
        gpus: jobs.iter().map(|j| j.gpus).max().unwrap(),
    };
    let st = static_outcome(&jobs, shape, jobs.len(), &power);
    // Composable: pools sized to aggregate demand + 10 % headroom.
    let total_mem: u64 = jobs.iter().map(|j| j.memory_gib).sum();
    let total_gpus: u32 = jobs.iter().map(|j| j.gpus).sum();
    let co = composable_outcome(
        &jobs,
        jobs.len(),
        32,
        total_mem + total_mem / 10,
        total_gpus + 2,
        &power,
    );

    let pct = |x: f64| format!("{:.1}%", x * 100.0);
    let rows = vec![
        vec![
            "core utilization".into(),
            pct(st.core_utilization),
            pct(co.core_utilization),
        ],
        vec![
            "memory utilization".into(),
            pct(st.memory_utilization),
            pct(co.memory_utilization),
        ],
        vec![
            "GPU utilization".into(),
            pct(st.gpu_utilization),
            pct(co.gpu_utilization),
        ],
        vec![
            "stranded fraction".into(),
            pct(st.stranded_fraction),
            pct(co.stranded_fraction),
        ],
        vec![
            "power draw".into(),
            format!("{:.0} kW", st.power_watts / 1000.0),
            format!("{:.0} kW", co.power_watts / 1000.0),
        ],
        vec![
            "rejected jobs".into(),
            st.rejected_jobs.to_string(),
            co.rejected_jobs.to_string(),
        ],
    ];
    println!("analytic model: 256-job heterogeneous mix, worst-case static nodes\n");
    print_table(&["metric", "static", "composable"], &rows);
    println!(
        "\npower saved by composability: {:.1}%",
        (1.0 - co.power_watts / st.power_watts) * 100.0
    );

    // --- end-to-end through the live stack ---
    println!("\nend-to-end: composing a job wave through the live OFMF stack\n");
    let shape = RackShape {
        compute_nodes: 8,
        targets: 2,
        leaves: 2,
        spines: 2,
        ..RackShape::default()
    };
    let rig = ofmf_repro_rig(&shape);
    let composer = Composer::new(Arc::clone(&rig), Strategy::BestFit);
    let mut composed = 0;
    let mut rejected = 0;
    for i in 0..10 {
        let req = CompositionRequest::compute_only(&format!("wave{i}"), 8, 8).with_fabric_memory_mib(192 * 1024); // 192 GiB each; pools hold 2 TiB
        match composer.compose(&req) {
            Ok(_) => composed += 1,
            Err(_) => rejected += 1,
        }
    }
    let inv = composer.inventory();
    println!("  composed {composed} systems, rejected {rejected} (nodes exhausted first)");
    println!(
        "  pool memory utilization: {:.1}%",
        (1.0 - inv.free_memory_mib() as f64 / (2.0 * (1u64 << 20) as f64)) * 100.0
    );
    println!("  note: with static 192-GiB-per-node provisioning the same wave would");
    println!("  have required every node to carry worst-case DRAM.");
    ofmf_bench::finish_obs();
}

fn ofmf_repro_rig(shape: &RackShape) -> Arc<ofmf_core::Ofmf> {
    use ofmf_agents::flavors::{cxl_agent, nvmeof_agent};
    let ofmf = ofmf_core::Ofmf::new("fig-stranded", std::collections::HashMap::new(), 9);
    ofmf.register_agent(Arc::new(cxl_agent("CXL0", shape, 1 << 20, 1)))
        .unwrap();
    ofmf.register_agent(Arc::new(nvmeof_agent("NVME0", shape, 1 << 40, 2)))
        .unwrap();
    ofmf
}
