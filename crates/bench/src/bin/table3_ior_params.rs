//! Regenerates **Table III**: the IOR invocation, plus the offered write
//! load it induces on the object-storage daemons.

use cluster_sim::interference::calib;
use cluster_sim::workload::ior::IorParams;
use ofmf_bench::print_table;

fn main() {
    println!("Table III — IOR parameters\n");
    let p = IorParams::default();
    let rows = vec![
        vec![
            "[srun] -n".into(),
            "Processes (per node)".into(),
            p.procs_per_node.to_string(),
        ],
        vec![
            "-t".into(),
            "Transfer size (bytes)".into(),
            p.transfer_bytes.to_string(),
        ],
        vec![
            "-T".into(),
            "Maximum run duration (minutes)".into(),
            p.max_duration_min.to_string(),
        ],
        vec![
            "-D".into(),
            "Stonewalling deadline (seconds)".into(),
            p.stonewall_s.to_string(),
        ],
        vec!["-i".into(), "Test repetitions".into(), p.repetitions.to_string()],
        vec!["-e".into(), "Sync after each write phase".into(), "enabled".into()],
        vec!["-C".into(), "Reorder tasks".into(), "enabled".into()],
        vec!["-w".into(), "Perform write test".into(), "enabled".into()],
        vec!["-a".into(), "Access method".into(), p.access.into()],
        vec!["-s".into(), "Number of segments".into(), p.segments.to_string()],
        vec!["-F".into(), "Use file-per-process".into(), "enabled".into()],
        vec!["-Y".into(), "Sync after every write".into(), "enabled".into()],
    ];
    print_table(&["Parameter", "Description", "Value"], &rows);

    println!("\nequivalent invocation:\n  {}", p.command_line());
    println!("\ninduced load model:");
    println!("  per-op latency:        {:.0} µs", calib::WRITE_LATENCY_S * 1e6);
    println!(
        "  per-process rate:      {:.0} ops/s",
        p.ops_per_process_per_s(calib::WRITE_LATENCY_S)
    );
    println!(
        "  per-node offered rate: {:.0} ops/s ({} procs)",
        p.node_ops_per_s(calib::WRITE_LATENCY_S),
        p.procs_per_node
    );
    println!("  files created per node: {} (file-per-process)", p.files_per_node());
    ofmf_bench::finish_obs();
}
