//! Regenerates **Table I**: performance profiles, representative
//! benchmarks, and the measured degree of isolation.

use cluster_sim::workload::profiles::{table_i, Isolation};
use ofmf_bench::print_table;

fn main() {
    println!("Table I — performance profiles and measured isolation\n");
    let rows: Vec<Vec<String>> = table_i()
        .into_iter()
        .map(|r| {
            vec![
                format!("{:?}", r.profile),
                r.description.to_string(),
                r.benchmark.to_string(),
                format!("{:.1}%", r.slowdown * 100.0),
                match r.isolation {
                    Isolation::Strong => "Strong".to_string(),
                    Isolation::MediumToStrong => "Medium-to-Strong".to_string(),
                    Isolation::Weak => "Weak".to_string(),
                },
            ]
        })
        .collect();
    print_table(
        &["Profile", "Description", "Benchmark", "Self-contention", "Isolation"],
        &rows,
    );
    println!("\npaper's classes: CPU=Strong, Memory=Strong, Network=Medium-to-Strong,");
    println!("IOPs=Weak, Bandwidth=Weak, Metadata=Weak");
    ofmf_bench::finish_obs();
}
