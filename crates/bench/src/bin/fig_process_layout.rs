//! Regenerates **Fig. `process-layout`**: the five experiment
//! configurations as an executable plan, rendered as node-role maps.

use cluster_sim::experiment::{ExperimentClass, Layout, NodeRole};

fn role_char(r: NodeRole) -> char {
    match r {
        NodeRole::Hpl => 'H',
        NodeRole::Ior => 'I',
        NodeRole::Separator => 'S',
    }
}

fn main() {
    println!("Fig. process-layout — experiment configurations (n = 8 HPL nodes)\n");
    println!("H = HPL node   I = IOR node   S = separator task   *M = BeeOND mgmt/MDS node\n");
    for class in ExperimentClass::ALL {
        let l = Layout::build(class, 8);
        let (k, m) = class.k_m(8);
        let map: String = l
            .roles
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let c = role_char(*r);
                if Some(i) == l.mds_node {
                    format!("[{c}M]")
                } else {
                    format!("[{c} ]")
                }
            })
            .collect();
        println!(
            "{:26} k={k} m={m:>2}  alloc={:>2}  {}",
            class.label(),
            l.allocation_size(),
            map
        );
        println!(
            "{:26} beeond daemons: {:9} ior target: {}",
            "",
            if class.loads_beeond() { "loaded" } else { "none" },
            match (class.ior_on_beeond(), m) {
                (_, 0) => "none (control)",
                (true, _) => "BeeOND (node-local)",
                (false, _) => "external Lustre",
            }
        );
        println!();
    }
    ofmf_bench::finish_obs();
}
