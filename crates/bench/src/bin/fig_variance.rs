//! Regenerates **Fig. `multinode-variance`**: the detailed comparison of
//! HPL-only (idle BeeOND daemons loaded) against Matching Lustre (IOR
//! running, but *no* BeeOND daemons) — the paper's surprising
//! "idle daemons are not free" finding.
//!
//! Run with: `cargo run --release -p ofmf-bench --bin fig_variance`

use cluster_sim::experiment::{run, ExperimentClass, ExperimentPlan};
use cluster_sim::node::NodeSpec;
use ofmf_bench::print_table;

fn main() {
    let spec = NodeSpec::thunderx2();
    let mut plan = ExperimentPlan::paper(77);
    plan.classes = vec![ExperimentClass::HplOnly, ExperimentClass::MatchingLustre];
    // The detail figure benefits from more repetitions.
    plan.reps = 10;
    plan.lustre_reps = 10;
    eprintln!(
        "running the detail comparison ({:?} nodes × {} reps)…",
        plan.node_counts, plan.reps
    );
    let results = run(&plan, &spec);

    println!("Fig. multinode-variance — HPL-only (idle daemons) vs Lustre+IOR (no daemons)\n");
    let mut rows = Vec::new();
    for &n in &plan.node_counts {
        let hpl = results
            .iter()
            .find(|r| r.class == ExperimentClass::HplOnly && r.n == n)
            .unwrap();
        let lustre = results
            .iter()
            .find(|r| r.class == ExperimentClass::MatchingLustre && r.n == n)
            .unwrap();
        let overhead = hpl.runtime.rel_diff(&lustre.runtime);
        rows.push(vec![
            n.to_string(),
            format!(
                "{:.1} [{:.1},{:.1}]",
                hpl.runtime.mean, hpl.runtime.ci_low, hpl.runtime.ci_high
            ),
            format!(
                "{:.1} [{:.1},{:.1}]",
                lustre.runtime.mean, lustre.runtime.ci_low, lustre.runtime.ci_high
            ),
            format!("{:+.2}%", overhead * 100.0),
            if hpl.runtime.overlaps(&lustre.runtime) {
                "no".into()
            } else {
                "yes".into()
            },
        ]);
    }
    print_table(
        &[
            "n",
            "HPL-only (idle daemons)",
            "Matching Lustre (no daemons)",
            "idle-daemon cost",
            "significant",
        ],
        &rows,
    );

    let cost = |n: usize| {
        let hpl = results
            .iter()
            .find(|r| r.class == ExperimentClass::HplOnly && r.n == n)
            .unwrap();
        let lustre = results
            .iter()
            .find(|r| r.class == ExperimentClass::MatchingLustre && r.n == n)
            .unwrap();
        hpl.runtime.rel_diff(&lustre.runtime)
    };
    println!("\nheadline checks:");
    println!(
        "  idle-daemon overhead @64:  {:+.2}%   (paper: 'likely between 0.9 and 2.5%')",
        cost(64) * 100.0
    );
    println!(
        "  growth with scale: @8 {:+.2}%  →  @128 {:+.2}%   (paper: 'grows with the size of the job')",
        cost(8) * 100.0,
        cost(128) * 100.0
    );
    ofmf_bench::finish_obs();
}
