//! Regenerates **Table II**: HPL parameters by node count — derived from
//! the node model and the paper's construction rule, next to the published
//! values.

use cluster_sim::node::NodeSpec;
use cluster_sim::workload::hpl::{derive_params, TABLE_II};
use ofmf_bench::print_table;

fn main() {
    println!("Table II — HPL parameters by node count (derived vs published)\n");
    let spec = NodeSpec::thunderx2();
    let rows: Vec<Vec<String>> = TABLE_II
        .iter()
        .map(|row| {
            let d = derive_params(&spec, row.nodes);
            let t = d.base_runtime_s(&spec);
            vec![
                row.nodes.to_string(),
                d.n.to_string(),
                row.n.to_string(),
                format!("{:+.2}%", (d.n as f64 / row.n as f64 - 1.0) * 100.0),
                format!("{}x{}", d.p, d.q),
                format!("{}x{}", row.p, row.q),
                format!("{:.0}s", t),
            ]
        })
        .collect();
    print_table(
        &[
            "Nodes",
            "N (derived)",
            "N (paper)",
            "ΔN",
            "PxQ (derived)",
            "PxQ (paper)",
            "base runtime",
        ],
        &rows,
    );
    println!("\nconstruction: N₁ from the node's observed HPL memory fill (≈48.3% of");
    println!("128 GiB), then N ∝ 2^(k/3) per doubling (work-preserving), grid doubles");
    println!("P then Q alternately from 7x8 (56 ranks/node).");
    ofmf_bench::finish_obs();
}
