//! Multi-threaded stress test for the sharded registry.
//!
//! Concurrent writers hammer different top-level subtrees (and each other's)
//! with create/patch/delete/delete-subtree while readers sweep the whole
//! tree; afterwards the registry's core invariants must hold:
//!
//! * **link closure** — no `{"@odata.id": …}` reference dangles;
//! * **membership consistency** — every collection's `Members` list matches
//!   the resources that actually exist under it, and
//!   `Members@odata.count` matches its length;
//! * **ETag monotonicity** — the version observed for any one resource id
//!   never goes backwards, and every mutation bumps it;
//! * **wire-cache coherence** — cached GET bytes always carry the ETag of
//!   the body they serialize.

use redfish_model::odata::ODataId;
use redfish_model::registry::Registry;
use serde_json::{json, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;

const TOPS: &[&str] = &["Systems", "Chassis", "Fabrics", "StorageServices", "TaskService"];
const WRITERS: usize = 8;
const READERS: usize = 4;
const OPS_PER_WRITER: usize = 400;

fn bootstrap(reg: &Registry) -> ODataId {
    let root = ODataId::new("/redfish/v1");
    reg.create(
        &root,
        json!({"@odata.type": "#ServiceRoot.v1_15_0.ServiceRoot", "Name": "OFMF"}),
    )
    .unwrap();
    for t in TOPS {
        reg.create_collection(&root.child(t), "#Collection.Collection", t)
            .unwrap();
    }
    root
}

/// Deterministic per-thread PRNG (xorshift) — no `rand` dependency.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn pick<T: Copy>(&mut self, xs: &[T]) -> T {
        xs[(self.next() as usize) % xs.len()]
    }
}

#[test]
fn concurrent_mixed_load_preserves_invariants() {
    let reg = Arc::new(Registry::new());
    let root = bootstrap(&reg);
    let barrier = Arc::new(Barrier::new(WRITERS + READERS));
    let etag_regressions = Arc::new(AtomicU64::new(0));

    let mut handles = Vec::new();
    for w in 0..WRITERS {
        let reg = Arc::clone(&reg);
        let root = root.clone();
        let barrier = Arc::clone(&barrier);
        let regressions = Arc::clone(&etag_regressions);
        handles.push(thread::spawn(move || {
            let mut rng = Rng(0x9E37_79B9u64.wrapping_mul(w as u64 + 1) | 1);
            let mut last_etag: std::collections::HashMap<ODataId, u64> = Default::default();
            barrier.wait();
            for op in 0..OPS_PER_WRITER {
                let top = root.child(rng.pick(TOPS));
                // Each writer owns ids prefixed with its index, so two
                // writers never create/delete the same path — but they do
                // share parents, collections, and shards constantly.
                let id = top.child(&format!("w{w}-{}", rng.next() % 8));
                match op % 5 {
                    0 | 1 => {
                        if let Ok(e) = reg.create(&id, json!({"Name": id.leaf(), "Writer": w})) {
                            let prev = last_etag.insert(id.clone(), e.0);
                            if prev.is_some_and(|p| e.0 <= p) {
                                regressions.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    2 => {
                        if let Ok(e) = reg.patch(&id, &json!({"Op": op}), None) {
                            let prev = last_etag.insert(id.clone(), e.0);
                            if prev.is_some_and(|p| e.0 <= p) {
                                regressions.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    3 => {
                        // Grow a sub-resource then tear the subtree down.
                        let child = id.child("Ports").child("p0");
                        if reg.exists(&id) {
                            let _ = reg.create(&child, json!({"Name": "p0"}));
                            reg.delete_subtree(&id);
                            last_etag.remove(&id);
                        }
                    }
                    _ => {
                        let _ = reg.delete(&id);
                        last_etag.remove(&id);
                    }
                }
                // Read-your-writes through the cache path.
                if reg.exists(&id) {
                    if let Ok((bytes, etag)) = reg.wire_bytes(&id) {
                        let v: Value = serde_json::from_slice(&bytes).expect("cached bytes are valid JSON");
                        assert_eq!(
                            v["@odata.etag"].as_str().unwrap(),
                            etag.to_header(),
                            "cached bytes must carry the etag they were serialized under"
                        );
                    }
                }
            }
        }));
    }

    for r in 0..READERS {
        let reg = Arc::clone(&reg);
        let root = root.clone();
        let barrier = Arc::clone(&barrier);
        handles.push(thread::spawn(move || {
            let mut rng = Rng(0xDEAD_BEEFu64.wrapping_mul(r as u64 + 1) | 1);
            barrier.wait();
            for _ in 0..OPS_PER_WRITER {
                let top = root.child(rng.pick(TOPS));
                // Collection snapshot must be self-consistent even mid-churn.
                if let Ok(col) = reg.get(&top) {
                    let members = col.body["Members"].as_array().unwrap().len();
                    let count = col.body["Members@odata.count"].as_u64().unwrap() as usize;
                    assert_eq!(members, count, "Members vs count diverged on {top}");
                }
                let _ = reg.wire_bytes(&top);
                let _ = reg.ids_under(&top);
            }
        }));
    }

    for h in handles {
        h.join().expect("stress thread panicked");
    }

    assert_eq!(
        etag_regressions.load(Ordering::Relaxed),
        0,
        "per-resource etags must be strictly monotonic"
    );

    // Quiescent invariants.
    assert!(reg.dangling_links().is_empty(), "link closure violated");
    for t in TOPS {
        let col = root.child(t);
        let body = reg.get(&col).unwrap().body;
        let members: Vec<ODataId> = body["Members"]
            .as_array()
            .unwrap()
            .iter()
            .map(|m| ODataId::new(m["@odata.id"].as_str().unwrap()))
            .collect();
        assert_eq!(
            members.len(),
            body["Members@odata.count"].as_u64().unwrap() as usize,
            "{t}: count mismatch"
        );
        for m in &members {
            assert!(reg.exists(m), "{t}: member {m} listed but missing");
        }
        // Every direct child that exists is listed exactly once.
        for id in reg.ids_under(&col) {
            if id.parent().as_ref() == Some(&col) {
                assert_eq!(
                    members.iter().filter(|m| *m == &id).count(),
                    1,
                    "{t}: {id} not listed exactly once"
                );
            }
        }
    }

    // Cache stats sanity: the mixed load produced traffic on both sides.
    let (hits, misses) = reg.wire_cache_stats();
    assert!(misses > 0, "stress must exercise cache fills");
    assert!(hits + misses > 0);
}

#[test]
fn concurrent_load_on_single_shard_registry_matches() {
    // The degenerate 1-shard configuration must uphold the same invariants
    // (it is the baseline the benchmarks compare against).
    let reg = Arc::new(Registry::with_shards(1));
    let root = bootstrap(&reg);
    let barrier = Arc::new(Barrier::new(4));
    let mut handles = Vec::new();
    for w in 0..4 {
        let reg = Arc::clone(&reg);
        let root = root.clone();
        let barrier = Arc::clone(&barrier);
        handles.push(thread::spawn(move || {
            let mut rng = Rng(w as u64 * 7919 + 1);
            barrier.wait();
            for i in 0..200 {
                let id = root.child(rng.pick(TOPS)).child(&format!("s{w}-{}", rng.next() % 4));
                match i % 3 {
                    0 => {
                        let _ = reg.create(&id, json!({"Name": id.leaf()}));
                    }
                    1 => {
                        let _ = reg.patch(&id, &json!({"I": i}), None);
                    }
                    _ => {
                        let _ = reg.delete(&id);
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().expect("thread panicked");
    }
    assert!(reg.dangling_links().is_empty());
    for t in TOPS {
        let body = reg.get(&root.child(t)).unwrap().body;
        assert_eq!(
            body["Members"].as_array().unwrap().len(),
            body["Members@odata.count"].as_u64().unwrap() as usize
        );
    }
}

/// With `--features lockcheck`, assert the stress suite leaves the
/// process-global lock-acquisition graph acyclic. The graph only ever
/// accumulates edges, so re-driving the mixed workload here and then
/// checking covers this binary's full locking surface regardless of the
/// order the harness ran the other tests in.
#[cfg(feature = "lockcheck")]
#[test]
fn lock_order_graph_is_cycle_free_after_stress() {
    concurrent_mixed_load_preserves_invariants();
    let report = parking_lot::lock_order_report();
    assert!(
        report.cycles.is_empty(),
        "potential deadlock witnessed by registry stress:\n{}",
        report.render()
    );
}
