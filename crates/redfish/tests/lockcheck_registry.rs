//! Lock-order discipline check for the 16-way sharded registry: concurrent
//! creates, deletes, patches, whole-tree reads, and multi-shard write spans
//! must leave the lockcheck graph acyclic — `write_span` sorts its shard
//! indices ascending, so every multi-shard acquisition agrees on order.

#![cfg(feature = "lockcheck")]

use redfish_model::odata::ODataId;
use redfish_model::registry::Registry;
use serde_json::json;
use std::sync::Arc;

#[test]
fn concurrent_multi_shard_ops_are_cycle_free() {
    let reg = Arc::new(Registry::new());
    let root = ODataId::new("/redfish/v1/Chassis");
    reg.create_collection(&root, "#ChassisCollection.ChassisCollection", "Chassis")
        .expect("collection");

    let mut handles = Vec::new();
    for t in 0..4u64 {
        let reg = Arc::clone(&reg);
        let root = root.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..60u64 {
                let id = root.child(&format!("c{t}-{i}"));
                // create / unlink spans the child's and the parent's shard:
                // a genuine multi-shard write on most iterations.
                reg.create(&id, json!({"Name": "ch"})).expect("create");
                let _ = reg.patch(&id, &json!({"AssetTag": format!("t{i}")}), None);
                let _ = reg.get(&id);
                if i % 3 == 0 {
                    let _ = reg.delete(&id);
                }
                if i % 16 == 0 {
                    // Whole-tree snapshot: read-locks every shard ascending.
                    let _ = reg.ids_under(&ODataId::new("/redfish/v1"));
                }
            }
        }));
    }
    for h in handles {
        h.join().expect("registry thread");
    }

    let report = parking_lot::lock_order_report();
    assert!(
        report.cycles.is_empty(),
        "ascending-stripe registry discipline must be acyclic:\n{}",
        report.render()
    );
}
