//! Property tests: registry and merge-patch invariants.

use proptest::prelude::*;
use redfish_model::odata::{ETag, ODataId};
use redfish_model::patch::merge_patch;
use redfish_model::{RedfishError, Registry};
use serde_json::{json, Value};

/// A small alphabet of member ids so operations collide often.
fn member_id() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["a", "b", "c", "d", "e"]).prop_map(str::to_string)
}

#[derive(Debug, Clone)]
enum Op {
    Create(String),
    Patch(String, i64),
    Delete(String),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        member_id().prop_map(Op::Create),
        (member_id(), any::<i64>()).prop_map(|(m, v)| Op::Patch(m, v)),
        member_id().prop_map(Op::Delete),
    ]
}

fn setup() -> (Registry, ODataId) {
    let reg = Registry::new();
    let root = ODataId::new("/redfish/v1");
    reg.create(&root, json!({"Name": "root"})).unwrap();
    let col = root.child("Things");
    reg.create_collection(&col, "#ThingCollection.ThingCollection", "Things")
        .unwrap();
    (reg, col)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After any operation sequence, the collection's Members list matches
    /// exactly the set of live children, and the count member matches.
    #[test]
    fn collection_membership_is_consistent(ops in prop::collection::vec(op(), 1..60)) {
        let (reg, col) = setup();
        let mut live: std::collections::BTreeSet<String> = Default::default();
        for o in ops {
            match o {
                Op::Create(m) => {
                    let r = reg.create(&col.child(&m), json!({"Name": m}));
                    match r {
                        Ok(_) => { prop_assert!(live.insert(m)); }
                        Err(RedfishError::AlreadyExists(_)) => { prop_assert!(live.contains(&m)); }
                        Err(e) => return Err(TestCaseError::fail(format!("create: {e}"))),
                    }
                }
                Op::Patch(m, v) => {
                    let r = reg.patch(&col.child(&m), &json!({"Value": v}), None);
                    prop_assert_eq!(r.is_ok(), live.contains(&m));
                }
                Op::Delete(m) => {
                    let r = reg.delete(&col.child(&m));
                    prop_assert_eq!(r.is_ok(), live.remove(&m));
                }
            }
            // Invariant check after every step.
            let members = reg.members(&col).unwrap();
            let member_set: std::collections::BTreeSet<String> =
                members.iter().map(|m| m.leaf().to_string()).collect();
            prop_assert_eq!(&member_set, &live);
            let body = reg.get(&col).unwrap().body;
            prop_assert_eq!(body["Members@odata.count"].as_u64().unwrap() as usize, live.len());
        }
    }

    /// ETags only ever move forward, and a successful conditional patch
    /// with the observed tag always succeeds exactly once.
    #[test]
    fn etags_are_monotonic(values in prop::collection::vec(any::<i32>(), 1..30)) {
        let (reg, col) = setup();
        let id = col.child("x");
        let mut last = reg.create(&id, json!({"Name": "x"})).unwrap();
        for v in values {
            let tag = reg.get(&id).unwrap().etag;
            prop_assert!(tag.0 >= last.0);
            let new = reg.patch(&id, &json!({"V": v}), Some(tag)).unwrap();
            prop_assert!(new.0 > tag.0);
            // Replaying the same conditional patch must now fail.
            let replay = reg.patch(&id, &json!({"V": v}), Some(tag));
            let stale = matches!(replay, Err(RedfishError::PreconditionFailed { .. }));
            prop_assert!(stale);
            last = new;
        }
    }

    /// RFC 7386: applying the same patch twice equals applying it once
    /// (merge-patch is idempotent for any document/patch pair).
    #[test]
    fn merge_patch_is_idempotent(doc in arb_json(3), patch in arb_json(3)) {
        let mut once = doc.clone();
        merge_patch(&mut once, &patch);
        let mut twice = once.clone();
        merge_patch(&mut twice, &patch);
        prop_assert_eq!(once, twice);
    }

    /// Merging into an empty document prunes every null-valued *member*
    /// (nulls inside arrays are data and are copied verbatim per RFC 7386).
    #[test]
    fn no_null_members_survive_merge(doc in arb_json(3)) {
        let mut out = json!({});
        merge_patch(&mut out, &doc);
        prop_assert!(!has_null_member(&out), "{out}");
    }

    /// Wire ETag headers round-trip for any version.
    #[test]
    fn etag_header_roundtrip(v in any::<u64>()) {
        let t = ETag(v);
        prop_assert_eq!(ETag::parse_header(&t.to_header()), Some(t));
    }

    /// ODataId parent/child round-trips for valid member names.
    #[test]
    fn odata_child_parent_roundtrip(seg in "[a-zA-Z0-9_.-]{1,16}") {
        let base = ODataId::new("/redfish/v1/Systems");
        let child = base.child(&seg);
        prop_assert_eq!(child.parent().unwrap(), base);
        prop_assert_eq!(child.leaf(), seg.as_str());
    }
}

/// True if any *object member* is null (array elements don't count: merge
/// semantics only delete members, array values are opaque data).
fn has_null_member(v: &Value) -> bool {
    match v {
        Value::Object(m) => m.values().any(|x| x.is_null() || has_null_member(x)),
        _ => false,
    }
}

/// Small arbitrary JSON documents (objects at the top level).
fn arb_json(depth: u32) -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i32>().prop_map(|i| json!(i)),
        "[a-z]{0,6}".prop_map(|s| json!(s)),
    ];
    leaf.prop_recursive(depth, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..3).prop_map(Value::Array),
            prop::collection::btree_map("[a-c]{1}", inner, 0..4).prop_map(|m| Value::Object(m.into_iter().collect())),
        ]
    })
}
