//! Property test for WAL durability: for ANY sequence of registry
//! mutations — with snapshot compactions interleaved at arbitrary points —
//! replay(snapshot + WAL suffix) reconstructs a tree identical to the live
//! one: same resources, same bodies, same ETags, same `Members` lists and
//! counts, same link closure, and an ETag allocator that resumes above
//! every allocated value.

use proptest::prelude::*;
use redfish_model::odata::ODataId;
use redfish_model::replay::apply_all;
use redfish_model::Registry;
use serde_json::json;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Small alphabets so operations collide often.
fn member_id() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["a", "b", "c", "d"]).prop_map(str::to_string)
}

fn collection() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["Systems", "Chassis", "Fabrics"]).prop_map(str::to_string)
}

#[derive(Debug, Clone)]
enum Op {
    Create(String, String),
    CreateChild(String, String),
    Patch(String, String, i64),
    Replace(String, String, i64),
    Delete(String, String),
    DeleteSubtree(String, String),
    Snapshot,
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (collection(), member_id()).prop_map(|(c, m)| Op::Create(c, m)),
        (collection(), member_id()).prop_map(|(c, m)| Op::CreateChild(c, m)),
        (collection(), member_id(), any::<i64>()).prop_map(|(c, m, v)| Op::Patch(c, m, v)),
        (collection(), member_id(), any::<i64>()).prop_map(|(c, m, v)| Op::Replace(c, m, v)),
        (collection(), member_id()).prop_map(|(c, m)| Op::Delete(c, m)),
        (collection(), member_id()).prop_map(|(c, m)| Op::DeleteSubtree(c, m)),
        Just(Op::Snapshot),
    ]
}

static CASE: AtomicU64 = AtomicU64::new(0);

fn wal_dir() -> PathBuf {
    std::env::temp_dir().join(format!(
        "ofmf-prop-wal-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ))
}

fn seeded_with_journal(wal: &Arc<ofmf_wal::Wal>) -> Registry {
    let reg = Registry::new();
    // Journal from the very first create, as `Ofmf::with_wal` does on a
    // fresh boot: the bootstrap itself must be replayable.
    reg.set_journal(Some(Arc::clone(wal)));
    let root = ODataId::new("/redfish/v1");
    reg.create(&root, json!({"Name": "root"})).unwrap();
    for c in ["Systems", "Chassis", "Fabrics"] {
        reg.create_collection(&root.child(c), "#C.C", c).unwrap();
    }
    reg
}

fn assert_trees_identical(live: &Registry, replayed: &Registry) -> Result<(), TestCaseError> {
    let mut l = Vec::new();
    live.for_each(|id, node| l.push((id.clone(), node.clone())));
    let mut r = Vec::new();
    replayed.for_each(|id, node| r.push((id.clone(), node.clone())));
    prop_assert_eq!(l.len(), r.len(), "resource counts differ");
    for ((lid, lnode), (rid, rnode)) in l.iter().zip(r.iter()) {
        prop_assert_eq!(lid, rid);
        prop_assert_eq!(&lnode.etag, &rnode.etag, "etag mismatch at {}", lid);
        prop_assert_eq!(&lnode.body, &rnode.body, "body mismatch at {}", lid);
        prop_assert_eq!(lnode.is_collection, rnode.is_collection);
    }
    // Link closure carries over (both should be empty of dangling links).
    prop_assert_eq!(live.dangling_links(), replayed.dangling_links());
    prop_assert_eq!(
        live.etag_seq(),
        replayed.etag_seq(),
        "allocator must resume identically"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn replay_of_snapshot_plus_wal_suffix_equals_live_tree(ops in prop::collection::vec(op(), 1..70)) {
        let dir = wal_dir();
        let _ = std::fs::remove_dir_all(&dir);
        let wal = Arc::new(ofmf_wal::Wal::open(&dir, ofmf_wal::FsyncPolicy::Off).unwrap());
        let live = seeded_with_journal(&wal);
        let root = ODataId::new("/redfish/v1");

        for o in &ops {
            match o {
                Op::Create(c, m) => {
                    let _ = live.create(&root.child(c).child(m), json!({"Name": m.as_str()}));
                }
                Op::CreateChild(c, m) => {
                    let _ = live.create(&root.child(c).child(m).child("Sub"), json!({"Name": "sub"}));
                }
                Op::Patch(c, m, v) => {
                    let _ = live.patch(&root.child(c).child(m), &json!({"Value": v}), None);
                }
                Op::Replace(c, m, v) => {
                    let _ = live.replace(&root.child(c).child(m), json!({"Name": m.as_str(), "Value": v}));
                }
                Op::Delete(c, m) => {
                    let _ = live.delete(&root.child(c).child(m));
                }
                Op::DeleteSubtree(c, m) => {
                    let _ = live.delete_subtree(&root.child(c).child(m));
                }
                Op::Snapshot => {
                    wal.snapshot_with(|| live.snapshot_records()).unwrap();
                }
            }
        }

        // Boot: replay everything the journal holds into a fresh registry.
        let replayed = Registry::new();
        let replay = wal.replay().unwrap();
        prop_assert_eq!(replay.torn_tails, 0);
        apply_all(&replayed, &replay.records);
        assert_trees_identical(&live, &replayed)?;

        // And replaying the same journal AGAIN over the result is a no-op
        // (record idempotency, the property the rotate-then-collect
        // snapshot scheme relies on).
        apply_all(&replayed, &replay.records);
        assert_trees_identical(&live, &replayed)?;

        let _ = std::fs::remove_dir_all(&dir);
    }
}
