//! Redfish URI path helpers.
//!
//! The OFMF mounts every fabric and resource under a single tree rooted at
//! `/redfish/v1`. These helpers build and inspect those canonical paths.

use crate::odata::ODataId;

/// The service root URI.
pub const SERVICE_ROOT: &str = "/redfish/v1";

/// Well-known top-level collections under the service root.
pub mod top {
    /// Computer systems (physical and composed).
    pub const SYSTEMS: &str = "/redfish/v1/Systems";
    /// Physical enclosures.
    pub const CHASSIS: &str = "/redfish/v1/Chassis";
    /// Fabrics (one per managed interconnect).
    pub const FABRICS: &str = "/redfish/v1/Fabrics";
    /// Swordfish storage services.
    pub const STORAGE_SERVICES: &str = "/redfish/v1/StorageServices";
    /// Event service singleton.
    pub const EVENT_SERVICE: &str = "/redfish/v1/EventService";
    /// Event subscriptions collection.
    pub const SUBSCRIPTIONS: &str = "/redfish/v1/EventService/Subscriptions";
    /// Task service singleton.
    pub const TASK_SERVICE: &str = "/redfish/v1/TaskService";
    /// Task collection.
    pub const TASKS: &str = "/redfish/v1/TaskService/Tasks";
    /// Session service singleton.
    pub const SESSION_SERVICE: &str = "/redfish/v1/SessionService";
    /// Sessions collection.
    pub const SESSIONS: &str = "/redfish/v1/SessionService/Sessions";
    /// Telemetry service singleton.
    pub const TELEMETRY_SERVICE: &str = "/redfish/v1/TelemetryService";
    /// Metric reports collection.
    pub const METRIC_REPORTS: &str = "/redfish/v1/TelemetryService/MetricReports";
    /// Composition service singleton.
    pub const COMPOSITION_SERVICE: &str = "/redfish/v1/CompositionService";
    /// Resource blocks available for composition.
    pub const RESOURCE_BLOCKS: &str = "/redfish/v1/CompositionService/ResourceBlocks";
    /// Managers collection (the OFMF itself is a manager).
    pub const MANAGERS: &str = "/redfish/v1/Managers";
    /// The OFMF manager singleton.
    pub const OFMF_MANAGER: &str = "/redfish/v1/Managers/OFMF";
    /// The OFMF event log entries collection.
    pub const EVENT_LOG_ENTRIES: &str = "/redfish/v1/Managers/OFMF/LogServices/EventLog/Entries";
    /// Live observability metric reports of the OFMF manager.
    pub const OBS_METRIC_REPORTS: &str = "/redfish/v1/Managers/OFMF/MetricReports";
    /// Observability log entries (the in-process event ring).
    pub const OBS_LOG_ENTRIES: &str = "/redfish/v1/Managers/OFMF/LogServices/Observability/Entries";
    /// Flight-recorder trace entries (retained span trees).
    pub const OBS_TRACE_ENTRIES: &str = "/redfish/v1/Managers/OFMF/LogServices/Tracing/Entries";
    /// The `CompositionService.Compose` action target.
    pub const COMPOSE_ACTION: &str = "/redfish/v1/CompositionService/Actions/CompositionService.Compose";
}

/// Split a path into its segments, ignoring empty segments.
pub fn segments(path: &str) -> Vec<&str> {
    path.split('/').filter(|s| !s.is_empty()).collect()
}

/// True if `path` is the service root or below it.
pub fn in_service_tree(path: &str) -> bool {
    ODataId::new(path).is_under(&ODataId::new(SERVICE_ROOT))
}

/// Derive the fabric id from any path under `/redfish/v1/Fabrics/{id}/...`.
pub fn fabric_id_of(path: &str) -> Option<&str> {
    let segs = segments(path);
    match segs.as_slice() {
        ["redfish", "v1", "Fabrics", id, ..] => Some(id),
        _ => None,
    }
}

/// Validate a client-supplied member id: non-empty, ASCII alphanumerics plus
/// `-`, `_`, `.`; never contains a path separator. Returns `false` for ids
/// that could escape their collection.
pub fn valid_member_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= 128
        && id
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
        && id != "."
        && id != ".."
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segments_skip_empties() {
        assert_eq!(segments("/redfish/v1//Systems/"), vec!["redfish", "v1", "Systems"]);
        assert!(segments("/").is_empty());
    }

    #[test]
    fn fabric_extraction() {
        assert_eq!(fabric_id_of("/redfish/v1/Fabrics/CXL0/Switches/sw1"), Some("CXL0"));
        assert_eq!(fabric_id_of("/redfish/v1/Systems/cn01"), None);
    }

    #[test]
    fn member_id_validation() {
        assert!(valid_member_id("cn-01.rack2"));
        assert!(!valid_member_id(""));
        assert!(!valid_member_id("a/b"));
        assert!(!valid_member_id(".."));
        assert!(!valid_member_id("спутник"));
    }

    #[test]
    fn service_tree_membership() {
        assert!(in_service_tree("/redfish/v1"));
        assert!(in_service_tree("/redfish/v1/Systems/x"));
        assert!(!in_service_tree("/redfish/v2/Systems"));
        assert!(!in_service_tree("/favicon.ico"));
    }
}
