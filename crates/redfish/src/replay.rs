//! Replay of write-ahead-log records into a [`Registry`].
//!
//! Replay is **ETag-exact**: every journaled mutation carries the ETag(s)
//! the live operation allocated (the target's, and the parent
//! collection's when linking/unlinking bumped one), and replay pins those
//! values instead of re-allocating. That makes the replayed tree
//! byte-identical to the live one — including `@odata.etag` headers —
//! regardless of how concurrent writers interleaved across stripes, and
//! it makes every record idempotent (replaying a record twice, e.g. once
//! from a snapshot and once from the live segment it overlaps, converges
//! to the same state).

use crate::odata::{ETag, ODataId};
use crate::registry::Registry;
use ofmf_wal::WalRecord;

/// Apply one registry-kind record to `reg`. Returns `false` (and does
/// nothing) for records belonging to other subsystems — the caller feeds
/// the full journal through and routes the rest itself.
pub fn apply_record(reg: &Registry, rec: &WalRecord) -> bool {
    match rec {
        WalRecord::Create {
            id,
            body,
            etag,
            is_collection,
            parent_etag,
        } => {
            let id = ODataId::new(id.as_str());
            reg.install(&id, body.clone(), ETag(*etag), *is_collection);
            reg.set_parent_link_raw(&id, true, parent_etag.map(ETag));
            true
        }
        WalRecord::Patch { id, delta, etag } => {
            reg.patch_raw(&ODataId::new(id.as_str()), delta, ETag(*etag));
            true
        }
        WalRecord::Replace { id, body, etag } => {
            reg.replace_raw(&ODataId::new(id.as_str()), body.clone(), ETag(*etag));
            true
        }
        WalRecord::Delete { id, parent_etag } => {
            let id = ODataId::new(id.as_str());
            reg.remove_raw(&id, false);
            reg.set_parent_link_raw(&id, false, parent_etag.map(ETag));
            true
        }
        WalRecord::DeleteSubtree { id, parent_etag } => {
            let id = ODataId::new(id.as_str());
            reg.remove_raw(&id, true);
            reg.set_parent_link_raw(&id, false, parent_etag.map(ETag));
            true
        }
        WalRecord::InstallResource {
            id,
            body,
            etag,
            is_collection,
        } => {
            reg.install(&ODataId::new(id.as_str()), body.clone(), ETag(*etag), *is_collection);
            true
        }
        WalRecord::EtagFloor { seq } => {
            reg.ensure_etag_floor(*seq);
            true
        }
        _ => false,
    }
}

/// The highest ETag value this record pins, if any. After replaying a
/// journal, the allocator must resume *above* the maximum ceiling seen so
/// no ETag is ever reused.
pub fn record_etag_ceiling(rec: &WalRecord) -> Option<u64> {
    match rec {
        WalRecord::Create { etag, parent_etag, .. } => Some((*etag).max(parent_etag.unwrap_or(0))),
        WalRecord::Patch { etag, .. } | WalRecord::Replace { etag, .. } | WalRecord::InstallResource { etag, .. } => {
            Some(*etag)
        }
        WalRecord::Delete { parent_etag, .. } | WalRecord::DeleteSubtree { parent_etag, .. } => *parent_etag,
        WalRecord::EtagFloor { seq } => seq.checked_sub(1),
        _ => None,
    }
}

/// Replay every registry-kind record of `records` in order and resume the
/// ETag allocator past the highest recorded value. Non-registry records
/// are skipped. Returns how many records applied.
pub fn apply_all(reg: &Registry, records: &[WalRecord]) -> usize {
    let mut applied = 0usize;
    let mut ceiling = 0u64;
    for rec in records {
        if apply_record(reg, rec) {
            applied += 1;
        }
        if let Some(c) = record_etag_ceiling(rec) {
            ceiling = ceiling.max(c);
        }
    }
    reg.ensure_etag_floor(ceiling.saturating_add(1));
    applied
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn seeded() -> Registry {
        let r = Registry::new();
        let root = ODataId::new("/redfish/v1");
        r.create(&root, json!({"Name": "root"})).unwrap();
        r.create_collection(&root.child("Systems"), "#C.C", "Systems").unwrap();
        r
    }

    /// Compare two registries resource-by-resource, ETags included.
    fn assert_trees_identical(a: &Registry, b: &Registry) {
        let mut left = Vec::new();
        a.for_each(|id, node| left.push((id.clone(), node.clone())));
        let mut right = Vec::new();
        b.for_each(|id, node| right.push((id.clone(), node.clone())));
        assert_eq!(left, right);
        assert_eq!(a.etag_seq(), b.etag_seq());
    }

    #[test]
    fn journaled_mutations_replay_to_identical_tree() {
        let dir = std::env::temp_dir().join(format!("ofmf-replay-unit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let wal = std::sync::Arc::new(ofmf_wal::Wal::open(&dir, ofmf_wal::FsyncPolicy::Off).unwrap());
        let live = Registry::new();
        live.set_journal(Some(wal.clone()));

        let root = ODataId::new("/redfish/v1");
        live.create(&root, json!({"Name": "root"})).unwrap();
        let col = root.child("Systems");
        live.create_collection(&col, "#C.C", "Systems").unwrap();
        live.create(&col.child("a"), json!({"Name": "a"})).unwrap();
        live.create(&col.child("b"), json!({"Name": "b", "Status": {"Health": "OK"}}))
            .unwrap();
        live.patch(&col.child("b"), &json!({"Status": {"Health": "Warning"}}), None)
            .unwrap();
        live.replace(&col.child("a"), json!({"Name": "a2"})).unwrap();
        live.delete(&col.child("a")).unwrap();
        live.create(&col.child("c"), json!({"Name": "c"})).unwrap();
        live.create(&col.child("c").child("Sub"), json!({"Name": "sub"}))
            .unwrap();
        live.delete_subtree(&col.child("c"));

        let replayed = Registry::new();
        let records = wal.replay().unwrap().records;
        assert!(apply_all(&replayed, &records) > 0);
        assert_trees_identical(&live, &replayed);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_is_idempotent() {
        let r = seeded();
        let rec = WalRecord::Create {
            id: "/redfish/v1/Systems/a".to_string(),
            body: json!({"@odata.id": "/redfish/v1/Systems/a", "Name": "a"}),
            etag: 50,
            is_collection: false,
            parent_etag: Some(51),
        };
        apply_record(&r, &rec);
        apply_record(&r, &rec);
        let col = ODataId::new("/redfish/v1/Systems");
        assert_eq!(r.members(&col).unwrap().len(), 1, "double replay must not double-link");
        assert_eq!(r.get(&col).unwrap().etag, ETag(51));
        assert_eq!(r.get(&col.child("a")).unwrap().etag, ETag(50));
    }

    #[test]
    fn etag_floor_prevents_reuse() {
        let r = seeded();
        apply_all(
            &r,
            &[WalRecord::Patch {
                id: "/redfish/v1".to_string(),
                delta: json!({"Name": "root2"}),
                etag: 99,
            }],
        );
        let e = r
            .create(&ODataId::new("/redfish/v1/Systems/x"), json!({"Name": "x"}))
            .unwrap();
        assert!(e.0 >= 100, "allocator must resume above replayed etags, got {e:?}");
    }
}
