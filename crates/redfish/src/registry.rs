//! The in-memory Redfish resource tree.
//!
//! "An HPC disaggregated infrastructure is represented under a single
//! Redfish tree that includes all the fabrics and resources available."
//! (§III-A). The [`Registry`] is that tree: a concurrent, path-keyed store of
//! JSON resource documents with ETag versioning, Redfish collection
//! semantics, merge-PATCH and link-integrity checking.
//!
//! Concurrency model (see *Rust Atomics and Locks*): a single
//! `parking_lot::RwLock` over an ordered map. OFMF transactions are small
//! and stateless, so reader-writer locking on the whole tree keeps the
//! invariants trivial to state (each operation is atomic) while supporting
//! many concurrent readers; write critical sections never allocate
//! unboundedly or call out to agents.

use crate::error::{RedfishError, RedfishResult};
use crate::odata::{ETag, ODataId};
use crate::patch::{first_read_only_violation, merge_patch};
use crate::path::valid_member_id;
use parking_lot::RwLock;
use serde_json::{json, Map, Value};
use std::collections::BTreeMap;

/// A resource document plus its registry metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredResource {
    /// The JSON document, including `@odata.*` members.
    pub body: Value,
    /// Current version tag; bumped on every mutation.
    pub etag: ETag,
    /// Whether the resource is a Redfish collection (maintains `Members`).
    pub is_collection: bool,
}

impl StoredResource {
    /// The `@odata.type` member, if present.
    pub fn odata_type(&self) -> Option<&str> {
        self.body.get("@odata.type").and_then(Value::as_str)
    }

    /// Body with the `@odata.etag` member refreshed to the current version.
    pub fn wire_body(&self) -> Value {
        let mut b = self.body.clone();
        if let Some(obj) = b.as_object_mut() {
            obj.insert("@odata.etag".to_string(), Value::String(self.etag.to_header()));
        }
        b
    }
}

#[derive(Debug, Default)]
struct Tree {
    nodes: BTreeMap<ODataId, StoredResource>,
}

impl Tree {
    /// Range bounds covering exactly the strict descendants of `id`:
    /// every descendant path starts with `{id}/`, and `'0'` is the
    /// successor byte of `'/'`, so `[{id}/, {id}0)` is tight. (A plain
    /// `take_while(is_under)` scan from `id` would stop early at sibling
    /// keys like `{id}-x` or `{id}.y`, which sort between `id` and `{id}/`.)
    fn descendants(&self, id: &ODataId) -> impl Iterator<Item = (&ODataId, &StoredResource)> {
        let lo = crate::odata::ODataId::raw(format!("{}/", id.as_str()));
        let hi = crate::odata::ODataId::raw(format!("{}0", id.as_str()));
        self.nodes.range(lo..hi)
    }

    fn has_descendants(&self, id: &ODataId) -> bool {
        self.descendants(id).next().is_some()
    }
}

/// The concurrent Redfish resource tree.
///
/// All operations are linearizable; mutations bump the target's ETag and,
/// for membership changes, the parent collection's ETag as well.
#[derive(Debug, Default)]
pub struct Registry {
    tree: RwLock<Tree>,
}

impl Registry {
    /// An empty registry (no service root; see `ofmf-core` for bootstrap).
    pub fn new() -> Self {
        Registry::default()
    }

    /// Number of resources currently stored.
    pub fn len(&self) -> usize {
        self.tree.read().nodes.len()
    }

    /// True if no resources are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert a non-collection resource at `id`.
    ///
    /// The body's `@odata.id` member is forced to `id`. Fails with
    /// `AlreadyExists` if the path is taken. If the parent is a collection,
    /// the new resource is appended to its `Members`.
    pub fn create(&self, id: &ODataId, mut body: Value) -> RedfishResult<ETag> {
        if !body.is_object() {
            return Err(RedfishError::BadRequest("resource body must be a JSON object".into()));
        }
        if !valid_member_id(id.leaf()) {
            return Err(RedfishError::BadRequest(format!("invalid member id '{}'", id.leaf())));
        }
        body.as_object_mut()
            .expect("checked object")
            .insert("@odata.id".to_string(), Value::String(id.as_str().to_string()));

        let mut t = self.tree.write();
        if t.nodes.contains_key(id) {
            return Err(RedfishError::AlreadyExists(id.clone()));
        }
        let stored = StoredResource {
            body,
            etag: ETag::INITIAL,
            is_collection: false,
        };
        t.nodes.insert(id.clone(), stored);
        Self::link_into_parent(&mut t, id);
        Ok(ETag::INITIAL)
    }

    /// Insert a Redfish collection resource at `id`.
    ///
    /// A collection maintains `Members` / `Members@odata.count` members that
    /// the registry keeps consistent as children are created and deleted.
    pub fn create_collection(&self, id: &ODataId, odata_type: &str, name: &str) -> RedfishResult<ETag> {
        let body = json!({
            "@odata.id": id.as_str(),
            "@odata.type": odata_type,
            "Name": name,
            "Members": [],
            "Members@odata.count": 0,
        });
        let mut t = self.tree.write();
        if t.nodes.contains_key(id) {
            return Err(RedfishError::AlreadyExists(id.clone()));
        }
        t.nodes.insert(
            id.clone(),
            StoredResource {
                body,
                etag: ETag::INITIAL,
                is_collection: true,
            },
        );
        Self::link_into_parent(&mut t, id);
        Ok(ETag::INITIAL)
    }

    fn link_into_parent(t: &mut Tree, id: &ODataId) {
        let Some(parent) = id.parent() else { return };
        let Some(p) = t.nodes.get_mut(&parent) else { return };
        if !p.is_collection {
            return;
        }
        let members = p
            .body
            .get_mut("Members")
            .and_then(Value::as_array_mut)
            .expect("collection has Members array");
        members.push(json!({"@odata.id": id.as_str()}));
        let count = members.len();
        p.body["Members@odata.count"] = json!(count);
        p.etag = p.etag.bumped();
    }

    fn unlink_from_parent(t: &mut Tree, id: &ODataId) {
        let Some(parent) = id.parent() else { return };
        let Some(p) = t.nodes.get_mut(&parent) else { return };
        if !p.is_collection {
            return;
        }
        let members = p
            .body
            .get_mut("Members")
            .and_then(Value::as_array_mut)
            .expect("collection has Members array");
        members.retain(|m| m["@odata.id"].as_str() != Some(id.as_str()));
        let count = members.len();
        p.body["Members@odata.count"] = json!(count);
        p.etag = p.etag.bumped();
    }

    /// Fetch a resource (clone of its stored form).
    pub fn get(&self, id: &ODataId) -> RedfishResult<StoredResource> {
        self.tree
            .read()
            .nodes
            .get(id)
            .cloned()
            .ok_or_else(|| RedfishError::NotFound(id.clone()))
    }

    /// True if a resource exists at `id`.
    pub fn exists(&self, id: &ODataId) -> bool {
        self.tree.read().nodes.contains_key(id)
    }

    /// Apply an RFC 7386 merge patch to the resource at `id`.
    ///
    /// * Rejects patches touching read-only members (`Id`, `@odata.*`, …).
    /// * If `if_match` is supplied, the patch only applies when it equals
    ///   the current ETag (412 otherwise).
    /// * Returns the new ETag.
    pub fn patch(&self, id: &ODataId, patch: &Value, if_match: Option<ETag>) -> RedfishResult<ETag> {
        if !patch.is_object() {
            return Err(RedfishError::BadRequest("patch body must be a JSON object".into()));
        }
        if let Some(m) = first_read_only_violation(patch) {
            return Err(RedfishError::BadRequest(format!("member '{m}' is read-only")));
        }
        let mut t = self.tree.write();
        let node = t.nodes.get_mut(id).ok_or_else(|| RedfishError::NotFound(id.clone()))?;
        if let Some(tag) = if_match {
            if tag != node.etag {
                return Err(RedfishError::PreconditionFailed {
                    id: id.clone(),
                    supplied: tag.to_header(),
                });
            }
        }
        merge_patch(&mut node.body, patch);
        node.etag = node.etag.bumped();
        Ok(node.etag)
    }

    /// Replace the whole body (used by agents re-publishing a resource).
    /// Read-only identity members are preserved. Bumps the ETag.
    pub fn replace(&self, id: &ODataId, mut body: Value) -> RedfishResult<ETag> {
        if !body.is_object() {
            return Err(RedfishError::BadRequest("resource body must be a JSON object".into()));
        }
        let mut t = self.tree.write();
        let node = t.nodes.get_mut(id).ok_or_else(|| RedfishError::NotFound(id.clone()))?;
        body.as_object_mut()
            .expect("checked object")
            .insert("@odata.id".to_string(), Value::String(id.as_str().to_string()));
        node.body = body;
        node.etag = node.etag.bumped();
        Ok(node.etag)
    }

    /// Delete the resource at `id`.
    ///
    /// Collections may only be deleted when empty; deleting a non-collection
    /// resource that still has children fails with `Conflict`.
    pub fn delete(&self, id: &ODataId) -> RedfishResult<()> {
        let mut t = self.tree.write();
        let node = t.nodes.get(id).ok_or_else(|| RedfishError::NotFound(id.clone()))?;
        if node.is_collection {
            let n = node.body["Members@odata.count"].as_u64().unwrap_or(0);
            if n > 0 {
                return Err(RedfishError::Conflict(format!("collection {id} is not empty")));
            }
        }
        if t.has_descendants(id) {
            return Err(RedfishError::Conflict(format!("resource {id} has child resources")));
        }
        t.nodes.remove(id);
        Self::unlink_from_parent(&mut t, id);
        Ok(())
    }

    /// Delete `id` and every resource underneath it (agent unmount).
    /// Returns the number of resources removed.
    pub fn delete_subtree(&self, id: &ODataId) -> usize {
        let mut t = self.tree.write();
        let mut doomed: Vec<ODataId> = t.descendants(id).map(|(k, _)| k.clone()).collect();
        if t.nodes.contains_key(id) {
            doomed.push(id.clone());
        }
        for d in &doomed {
            t.nodes.remove(d);
        }
        if !doomed.is_empty() {
            Self::unlink_from_parent(&mut t, id);
        }
        doomed.len()
    }

    /// Ids of the direct members of the collection at `id`.
    pub fn members(&self, id: &ODataId) -> RedfishResult<Vec<ODataId>> {
        let t = self.tree.read();
        let node = t.nodes.get(id).ok_or_else(|| RedfishError::NotFound(id.clone()))?;
        if !node.is_collection {
            return Err(RedfishError::MethodNotAllowed(format!("{id} is not a collection")));
        }
        Ok(node.body["Members"]
            .as_array()
            .expect("collection has Members")
            .iter()
            .filter_map(|m| m["@odata.id"].as_str().map(ODataId::new))
            .collect())
    }

    /// All resource ids under `prefix` (inclusive), in path order.
    pub fn ids_under(&self, prefix: &ODataId) -> Vec<ODataId> {
        let t = self.tree.read();
        let mut out = Vec::new();
        if t.nodes.contains_key(prefix) {
            out.push(prefix.clone());
        }
        out.extend(t.descendants(prefix).map(|(k, _)| k.clone()));
        out
    }

    /// All ids whose `@odata.type` starts with `type_prefix`
    /// (e.g. `#Endpoint.` matches every Endpoint version).
    pub fn ids_of_type(&self, type_prefix: &str) -> Vec<ODataId> {
        self.tree
            .read()
            .nodes
            .iter()
            .filter(|(_, n)| n.odata_type().is_some_and(|t| t.starts_with(type_prefix)))
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// Verify that every `{"@odata.id": ...}` reference anywhere in the tree
    /// points at an existing resource. Returns the list of dangling links.
    ///
    /// `LogEntry` resources are exempt: log entries are historical records
    /// whose `OriginOfCondition` may legitimately outlive the resource it
    /// described (a lost connection, a deleted zone).
    pub fn dangling_links(&self) -> Vec<(ODataId, ODataId)> {
        let t = self.tree.read();
        let mut dangling = Vec::new();
        for (id, node) in &t.nodes {
            if node.odata_type().is_some_and(|ty| ty.starts_with("#LogEntry.")) {
                continue;
            }
            let mut stack = vec![&node.body];
            while let Some(v) = stack.pop() {
                match v {
                    Value::Object(m) => {
                        if m.len() == 1 {
                            if let Some(Value::String(target)) = m.get("@odata.id") {
                                let target_id = ODataId::new(target.as_str());
                                if &target_id != id && !t.nodes.contains_key(&target_id) {
                                    dangling.push((id.clone(), target_id));
                                }
                                continue;
                            }
                        }
                        for (k, child) in m {
                            // Skip the resource's own identity member.
                            if k == "@odata.id" {
                                continue;
                            }
                            stack.push(child);
                        }
                    }
                    Value::Array(a) => stack.extend(a.iter()),
                    _ => {}
                }
            }
        }
        dangling
    }

    /// Run `f` over every stored resource (read lock held for the duration;
    /// `f` must be fast and must not reenter the registry).
    pub fn for_each<F: FnMut(&ODataId, &StoredResource)>(&self, mut f: F) {
        let t = self.tree.read();
        for (id, node) in &t.nodes {
            f(id, node);
        }
    }

    /// Produce an expanded view of a collection: the collection body with
    /// each member's body inlined (the `$expand` query option).
    pub fn expand(&self, id: &ODataId) -> RedfishResult<Value> {
        let t = self.tree.read();
        let node = t.nodes.get(id).ok_or_else(|| RedfishError::NotFound(id.clone()))?;
        if !node.is_collection {
            return Ok(node.wire_body());
        }
        let mut body = node.wire_body();
        let mut expanded = Vec::new();
        if let Some(members) = node.body["Members"].as_array() {
            for m in members {
                if let Some(mid) = m["@odata.id"].as_str() {
                    if let Some(child) = t.nodes.get(&ODataId::new(mid)) {
                        expanded.push(child.wire_body());
                    }
                }
            }
        }
        body["Members"] = Value::Array(expanded);
        Ok(body)
    }
}

/// Convenience: build a `{"@odata.id": …}` map value.
pub fn link_value(id: &ODataId) -> Value {
    let mut m = Map::new();
    m.insert("@odata.id".to_string(), Value::String(id.as_str().to_string()));
    Value::Object(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg_with_collection() -> (Registry, ODataId) {
        let r = Registry::new();
        let root = ODataId::new("/redfish/v1");
        r.create(
            &root,
            json!({"@odata.type": "#ServiceRoot.v1_15_0.ServiceRoot", "Id": "RootService", "Name": "OFMF"}),
        )
        .unwrap();
        let col = root.child("Systems");
        r.create_collection(&col, "#ComputerSystemCollection.ComputerSystemCollection", "Systems")
            .unwrap();
        (r, col)
    }

    #[test]
    fn create_links_into_parent_collection() {
        let (r, col) = reg_with_collection();
        let id = col.child("cn01");
        r.create(
            &id,
            json!({"@odata.type": "#ComputerSystem.v1_20_0.ComputerSystem", "Id": "cn01", "Name": "cn01"}),
        )
        .unwrap();
        let members = r.members(&col).unwrap();
        assert_eq!(members, vec![id.clone()]);
        let col_body = r.get(&col).unwrap().body;
        assert_eq!(col_body["Members@odata.count"], 1);
    }

    #[test]
    fn duplicate_create_conflicts() {
        let (r, col) = reg_with_collection();
        let id = col.child("cn01");
        r.create(&id, json!({"Name": "a"})).unwrap();
        assert!(matches!(
            r.create(&id, json!({"Name": "b"})),
            Err(RedfishError::AlreadyExists(_))
        ));
    }

    #[test]
    fn patch_bumps_etag_and_merges() {
        let (r, col) = reg_with_collection();
        let id = col.child("cn01");
        let e1 = r.create(&id, json!({"Name": "a", "Oem": {"x": 1}})).unwrap();
        let e2 = r.patch(&id, &json!({"Oem": {"y": 2}}), None).unwrap();
        assert!(e2.0 > e1.0);
        let body = r.get(&id).unwrap().body;
        assert_eq!(body["Oem"], json!({"x": 1, "y": 2}));
    }

    #[test]
    fn patch_rejects_read_only_and_stale_etag() {
        let (r, col) = reg_with_collection();
        let id = col.child("cn01");
        let e = r.create(&id, json!({"Name": "a"})).unwrap();
        assert!(matches!(
            r.patch(&id, &json!({"Id": "evil"}), None),
            Err(RedfishError::BadRequest(_))
        ));
        assert!(matches!(
            r.patch(&id, &json!({"Name": "b"}), Some(ETag(e.0 + 5))),
            Err(RedfishError::PreconditionFailed { .. })
        ));
        // Correct etag applies.
        r.patch(&id, &json!({"Name": "b"}), Some(e)).unwrap();
        assert_eq!(r.get(&id).unwrap().body["Name"], "b");
    }

    #[test]
    fn delete_unlinks_from_collection() {
        let (r, col) = reg_with_collection();
        let id = col.child("cn01");
        r.create(&id, json!({"Name": "a"})).unwrap();
        r.delete(&id).unwrap();
        assert!(r.members(&col).unwrap().is_empty());
        assert!(!r.exists(&id));
    }

    #[test]
    fn delete_nonempty_collection_conflicts() {
        let (r, col) = reg_with_collection();
        r.create(&col.child("cn01"), json!({"Name": "a"})).unwrap();
        assert!(matches!(r.delete(&col), Err(RedfishError::Conflict(_))));
    }

    #[test]
    fn delete_resource_with_children_conflicts() {
        let (r, col) = reg_with_collection();
        let sys = col.child("cn01");
        r.create(&sys, json!({"Name": "a"})).unwrap();
        r.create(&sys.child("Processors"), json!({"Name": "procs"})).unwrap();
        assert!(matches!(r.delete(&sys), Err(RedfishError::Conflict(_))));
        assert_eq!(r.delete_subtree(&sys), 2);
        assert!(!r.exists(&sys));
        assert!(r.members(&col).unwrap().is_empty());
    }

    #[test]
    fn dangling_link_detection() {
        let (r, col) = reg_with_collection();
        let id = col.child("cn01");
        r.create(
            &id,
            json!({"Name": "a", "Links": {"Chassis": [{"@odata.id": "/redfish/v1/Chassis/missing"}]}}),
        )
        .unwrap();
        let d = r.dangling_links();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].0, id);
        assert_eq!(d[0].1, ODataId::new("/redfish/v1/Chassis/missing"));
    }

    #[test]
    fn expand_inlines_members() {
        let (r, col) = reg_with_collection();
        r.create(&col.child("cn01"), json!({"Name": "a"})).unwrap();
        r.create(&col.child("cn02"), json!({"Name": "b"})).unwrap();
        let v = r.expand(&col).unwrap();
        let members = v["Members"].as_array().unwrap();
        assert_eq!(members.len(), 2);
        assert_eq!(members[0]["Name"], "a");
    }

    #[test]
    fn invalid_member_id_rejected() {
        let (r, col) = reg_with_collection();
        let bad = ODataId::new(format!("{}/{}", col.as_str(), "a b"));
        assert!(matches!(
            r.create(&bad, json!({"Name": "x"})),
            Err(RedfishError::BadRequest(_))
        ));
    }

    #[test]
    fn wire_body_carries_current_etag() {
        let (r, col) = reg_with_collection();
        let id = col.child("cn01");
        r.create(&id, json!({"Name": "a"})).unwrap();
        r.patch(&id, &json!({"Name": "b"}), None).unwrap();
        let s = r.get(&id).unwrap();
        assert_eq!(s.wire_body()["@odata.etag"], s.etag.to_header());
    }

    #[test]
    fn ids_of_type_matches_prefix() {
        let (r, col) = reg_with_collection();
        r.create(
            &col.child("cn01"),
            json!({"@odata.type": "#ComputerSystem.v1_20_0.ComputerSystem"}),
        )
        .unwrap();
        let ids = r.ids_of_type("#ComputerSystem.");
        assert_eq!(ids.len(), 1);
    }
}
