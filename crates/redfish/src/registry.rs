//! The in-memory Redfish resource tree.
//!
//! "An HPC disaggregated infrastructure is represented under a single
//! Redfish tree that includes all the fabrics and resources available."
//! (§III-A). The [`Registry`] is that tree: a concurrent, path-keyed store of
//! JSON resource documents with ETag versioning, Redfish collection
//! semantics, merge-PATCH and link-integrity checking.
//!
//! # Concurrency model
//!
//! The tree is **lock-striped by subtree**: every resource hashes to a shard
//! by its top-level collection segment (`Systems`, `Chassis`, `Fabrics`,
//! `StorageServices`, `TaskService`, …), each shard guarded by its own
//! `parking_lot::RwLock` over an ordered map. An agent mounting or tearing
//! down its fabric subtree therefore never blocks readers of other subtrees.
//! Because a resource and all of its descendants share the same top-level
//! segment, subtree scans (delete-subtree, `ids_under`) stay single-shard;
//! only the handful of root documents (`/redfish/v1` itself) span shards.
//!
//! Cross-shard operations — linking a new resource into a parent collection
//! that lives in another shard, link-integrity sweeps, whole-tree iteration
//! — acquire the shards they need in ascending shard-index order, which
//! keeps the registry deadlock-free and every operation linearizable (all
//! locks are held for the full critical section).
//!
//! # ETags and the wire-body cache
//!
//! ETags are allocated from a single registry-wide monotonic counter, so a
//! `(resource id, ETag)` pair uniquely identifies one immutable document
//! state — even across delete/recreate cycles. That uniqueness is what makes
//! the **wire-body cache** safe: the serialized bytes of `wire_body()` are
//! memoized per resource keyed by ETag, and a cached entry is served only
//! when its ETag equals the ETag read under the shard lock. Hot GETs
//! (service root, collections, telemetry consumers) skip the deep clone and
//! re-serialization entirely; any mutation allocates a new ETag and thereby
//! invalidates the stale bytes.

use crate::error::{RedfishError, RedfishResult};
use crate::odata::{ETag, ODataId};
use crate::patch::{first_read_only_violation, merge_patch};
use crate::path::valid_member_id;
use ofmf_wal::{Wal, WalRecord};
use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};
use serde_json::{json, Map, Value};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Default number of lock stripes. Top-level Redfish collections are few
/// (a dozen or so), so 16 stripes keep collisions rare without bloating the
/// lock table.
pub const DEFAULT_SHARDS: usize = 16;

/// Per-shard cap on cached wire bodies. When full, the shard's cache is
/// flushed wholesale (epoch-style) — simple, bounded, and hot entries are
/// re-admitted on the next read.
const WIRE_CACHE_CAP: usize = 4096;

/// A resource document plus its registry metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredResource {
    /// The JSON document, including `@odata.*` members.
    pub body: Value,
    /// Current version tag; a fresh registry-unique value on every mutation.
    pub etag: ETag,
    /// Whether the resource is a Redfish collection (maintains `Members`).
    pub is_collection: bool,
}

impl StoredResource {
    /// The `@odata.type` member, if present.
    pub fn odata_type(&self) -> Option<&str> {
        self.body.get("@odata.type").and_then(Value::as_str)
    }

    /// Body with the `@odata.etag` member refreshed to the current version.
    pub fn wire_body(&self) -> Value {
        let mut b = self.body.clone();
        if let Some(obj) = b.as_object_mut() {
            obj.insert("@odata.etag".to_string(), Value::String(self.etag.to_header()));
        }
        b
    }
}

#[derive(Debug, Default)]
struct Tree {
    nodes: BTreeMap<ODataId, StoredResource>,
}

impl Tree {
    /// Range bounds covering exactly the strict descendants of `id`:
    /// every descendant path starts with `{id}/`, and `'0'` is the
    /// successor byte of `'/'`, so `[{id}/, {id}0)` is tight. (A plain
    /// `take_while(is_under)` scan from `id` would stop early at sibling
    /// keys like `{id}-x` or `{id}.y`, which sort between `id` and `{id}/`.)
    fn descendants(&self, id: &ODataId) -> impl Iterator<Item = (&ODataId, &StoredResource)> {
        let lo = crate::odata::ODataId::raw(format!("{}/", id.as_str()));
        let hi = crate::odata::ODataId::raw(format!("{}0", id.as_str()));
        self.nodes.range(lo..hi)
    }

    fn has_descendants(&self, id: &ODataId) -> bool {
        self.descendants(id).next().is_some()
    }
}

/// Cached wire entry: (etag value, serialized wire body).
type WireEntry = (u64, Arc<[u8]>);

/// One lock stripe: a slice of the tree plus its serialized-body cache.
#[derive(Debug, Default)]
struct Shard {
    tree: RwLock<Tree>,
    /// resource id → cached wire entry. Entries are only served when the
    /// etag matches the live one; stale entries are overwritten on the
    /// next cache fill or dropped on delete.
    wire: RwLock<HashMap<ODataId, WireEntry>>,
}

/// The shard key of a path: the first segment below the service root
/// (`Systems`, `Fabrics`, …). Root documents (`/redfish/v1`, `/redfish`,
/// `/`) key to the empty string; paths outside the service tree key by
/// their first segment so a subtree always shares one shard.
fn shard_key(path: &str) -> &str {
    if let Some(rest) = path.strip_prefix("/redfish/v1/") {
        rest.split('/').next().unwrap_or("")
    } else if path == "/redfish/v1" || path == "/redfish" || path == "/" {
        ""
    } else {
        path.trim_start_matches('/').split('/').next().unwrap_or("")
    }
}

/// FNV-1a over the shard key — deterministic across runs and platforms.
fn key_hash(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// True if descendants of `id` may live in *any* shard (only the root
/// documents above the top-level collections qualify).
fn spans_all_shards(id: &ODataId) -> bool {
    shard_key(id.as_str()).is_empty()
}

/// The concurrent Redfish resource tree.
///
/// All operations are linearizable; mutations give the target a fresh
/// registry-unique ETag and, for membership changes, the parent collection
/// as well.
#[derive(Debug)]
pub struct Registry {
    shards: Vec<Shard>,
    /// Next ETag value; registry-unique and monotonically increasing.
    etag_seq: AtomicU64,
    cache_enabled: AtomicBool,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    /// Optional write-ahead journal. Mutations append their logical record
    /// while still holding the stripe write lock, so the journal preserves
    /// per-stripe mutation order. Lock order: stripe → journal → WAL file
    /// mutex (the WAL mutex is a leaf).
    journal: RwLock<Option<Arc<Wal>>>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::with_shards(DEFAULT_SHARDS)
    }
}

impl Registry {
    /// An empty registry with the default stripe count (no service root;
    /// see `ofmf-core` for bootstrap).
    pub fn new() -> Self {
        Registry::default()
    }

    /// An empty registry with an explicit stripe count (`1` degenerates to
    /// the old single-global-lock behaviour; used by benchmarks to measure
    /// the sharding win).
    pub fn with_shards(n: usize) -> Self {
        let n = n.max(1);
        Registry {
            shards: (0..n).map(|_| Shard::default()).collect(),
            etag_seq: AtomicU64::new(1),
            cache_enabled: AtomicBool::new(true),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            journal: RwLock::new(None),
        }
    }

    /// Attach (or detach) the write-ahead journal. Attach *after* replay:
    /// replayed mutations go through the raw install paths and are never
    /// re-journaled.
    pub fn set_journal(&self, wal: Option<Arc<Wal>>) {
        *self.journal.write() = wal;
    }

    /// Append a record to the attached journal, if any. Called with the
    /// relevant stripe write lock held so the journal observes mutations
    /// to one stripe in their true order.
    fn journal_record(&self, rec: &WalRecord) {
        if let Some(w) = self.journal.read().as_ref() {
            w.record(rec);
        }
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Enable or disable the serialized wire-body cache (benchmarks ablate
    /// it; disabling also drops all cached bytes).
    pub fn set_wire_cache(&self, enabled: bool) {
        self.cache_enabled.store(enabled, Ordering::Release);
        if !enabled {
            for s in &self.shards {
                s.wire.write().clear();
            }
        }
    }

    /// `(hits, misses)` of the wire-body cache since boot.
    pub fn wire_cache_stats(&self) -> (u64, u64) {
        (
            // ofmf-lint: allow(atomic-ordering-audit, "statistics counter; no cross-thread handoff depends on it")
            self.cache_hits.load(Ordering::Relaxed),
            // ofmf-lint: allow(atomic-ordering-audit, "statistics counter; no cross-thread handoff depends on it")
            self.cache_misses.load(Ordering::Relaxed),
        )
    }

    fn shard_of(&self, id: &ODataId) -> usize {
        (key_hash(shard_key(id.as_str())) as usize) % self.shards.len()
    }

    fn next_etag(&self) -> ETag {
        ETag(self.etag_seq.fetch_add(1, Ordering::Relaxed))
    }

    /// Write-lock the given shard indices in ascending order (deadlock-free
    /// against every other multi-shard acquisition, which also ascends).
    fn write_span(&self, mut idx: Vec<usize>) -> WriteSpan<'_> {
        idx.sort_unstable();
        idx.dedup();
        WriteSpan {
            // ofmf-lint: allow(no-panic-path, "indices come from shard_of, already reduced mod shards.len()")
            guards: idx.into_iter().map(|i| (i, self.shards[i].tree.write())).collect(), // ofmf-lint: allow(lock-discipline, "idx is sorted ascending above; every multi-shard span ascends")
        }
    }

    /// Write-lock every shard (root-spanning subtree operations).
    fn write_all(&self) -> WriteSpan<'_> {
        self.write_span((0..self.shards.len()).collect())
    }

    /// Read-lock every shard in ascending order: a consistent snapshot for
    /// whole-tree reads (link sweeps, type scans, iteration).
    fn read_all(&self) -> Vec<RwLockReadGuard<'_, Tree>> {
        self.shards.iter().map(|s| s.tree.read()).collect() // ofmf-lint: allow(lock-discipline, "shards are visited in ascending index order on every multi-shard path")
    }

    /// Drop the cached wire body of `id` (after delete; mutations in place
    /// are already invalidated by the ETag bump, but dropping keeps the
    /// cache tight).
    fn uncache(&self, id: &ODataId) {
        // ofmf-lint: allow(no-panic-path, "shard_of reduces the hash mod shards.len()")
        self.shards[self.shard_of(id)].wire.write().remove(id);
    }

    /// Number of resources currently stored.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.tree.read().nodes.len()).sum() // ofmf-lint: allow(lock-discipline, "shards are visited in ascending index order on every multi-shard path")
    }

    /// True if no resources are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert a non-collection resource at `id`.
    ///
    /// The body's `@odata.id` member is forced to `id`. Fails with
    /// `AlreadyExists` if the path is taken. If the parent is a collection,
    /// the new resource is appended to its `Members`.
    pub fn create(&self, id: &ODataId, mut body: Value) -> RedfishResult<ETag> {
        if !body.is_object() {
            return Err(RedfishError::BadRequest("resource body must be a JSON object".into()));
        }
        if !valid_member_id(id.leaf()) {
            return Err(RedfishError::BadRequest(format!("invalid member id '{}'", id.leaf())));
        }
        body.as_object_mut()
            // ofmf-lint: allow(no-panic-path, "is_object was checked at the top of the function")
            .expect("checked object")
            .insert("@odata.id".to_string(), Value::String(id.as_str().to_string()));
        self.insert_new(id, body, false)
    }

    /// Insert a Redfish collection resource at `id`.
    ///
    /// A collection maintains `Members` / `Members@odata.count` members that
    /// the registry keeps consistent as children are created and deleted.
    pub fn create_collection(&self, id: &ODataId, odata_type: &str, name: &str) -> RedfishResult<ETag> {
        let body = json!({
            "@odata.id": id.as_str(),
            "@odata.type": odata_type,
            "Name": name,
            "Members": [],
            "Members@odata.count": 0,
        });
        self.insert_new(id, body, true)
    }

    fn insert_new(&self, id: &ODataId, body: Value, is_collection: bool) -> RedfishResult<ETag> {
        let me = self.shard_of(id);
        let mut span = match id.parent() {
            Some(p) => self.write_span(vec![me, self.shard_of(&p)]),
            None => self.write_span(vec![me]),
        };
        if span.tree(me).nodes.contains_key(id) {
            return Err(RedfishError::AlreadyExists(id.clone()));
        }
        let etag = self.next_etag();
        span.tree(me).nodes.insert(
            id.clone(),
            StoredResource {
                body,
                etag,
                is_collection,
            },
        );
        let parent_etag = self.link_into_parent(&mut span, id);
        if self.journal.read().is_some() {
            if let Some(node) = span.tree(me).nodes.get(id) {
                self.journal_record(&WalRecord::Create {
                    id: id.as_str().to_string(),
                    body: node.body.clone(),
                    etag: etag.0,
                    is_collection,
                    parent_etag: parent_etag.map(|e| e.0),
                });
            }
        }
        Ok(etag)
    }

    /// Append `id` to its parent collection's `Members`, when the parent is
    /// a collection. Returns the parent's freshly allocated ETag, if one
    /// was bumped.
    fn link_into_parent(&self, span: &mut WriteSpan<'_>, id: &ODataId) -> Option<ETag> {
        let parent = id.parent()?;
        let pshard = self.shard_of(&parent);
        let p = span.tree(pshard).nodes.get_mut(&parent)?;
        if !p.is_collection {
            return None;
        }
        let members = p
            .body
            .get_mut("Members")
            .and_then(Value::as_array_mut)
            // ofmf-lint: allow(no-panic-path, "create_collection always installs a Members array; is_collection was checked")
            .expect("collection has Members array");
        members.push(json!({"@odata.id": id.as_str()}));
        let count = members.len();
        p.body["Members@odata.count"] = json!(count);
        p.etag = self.next_etag();
        Some(p.etag)
    }

    /// Remove `id` from its parent collection's `Members`. Returns the
    /// parent's freshly allocated ETag, if one was bumped.
    fn unlink_from_parent(&self, span: &mut WriteSpan<'_>, id: &ODataId) -> Option<ETag> {
        let parent = id.parent()?;
        let pshard = self.shard_of(&parent);
        let p = span.tree(pshard).nodes.get_mut(&parent)?;
        if !p.is_collection {
            return None;
        }
        let members = p
            .body
            .get_mut("Members")
            .and_then(Value::as_array_mut)
            // ofmf-lint: allow(no-panic-path, "create_collection always installs a Members array; is_collection was checked")
            .expect("collection has Members array");
        members.retain(|m| m["@odata.id"].as_str() != Some(id.as_str()));
        let count = members.len();
        p.body["Members@odata.count"] = json!(count);
        p.etag = self.next_etag();
        Some(p.etag)
    }

    /// Fetch a resource (clone of its stored form).
    pub fn get(&self, id: &ODataId) -> RedfishResult<StoredResource> {
        // ofmf-lint: allow(no-panic-path, "shard_of reduces the hash mod shards.len()")
        self.shards[self.shard_of(id)]
            .tree
            .read()
            .nodes
            .get(id)
            .cloned()
            .ok_or_else(|| RedfishError::NotFound(id.clone()))
    }

    /// The serialized wire body of `id` (the bytes a GET returns) plus its
    /// current ETag, served from the per-shard cache when the cached ETag
    /// matches the live one. ETags are registry-unique, so a cached entry
    /// can never alias a different document state — not even across a
    /// delete/recreate of the same path.
    pub fn wire_bytes(&self, id: &ODataId) -> RedfishResult<(Arc<[u8]>, ETag)> {
        // ofmf-lint: allow(no-panic-path, "shard_of reduces the hash mod shards.len()")
        let shard = &self.shards[self.shard_of(id)];
        let cache_on = self.cache_enabled.load(Ordering::Acquire);
        let t = shard.tree.read();
        let node = t.nodes.get(id).ok_or_else(|| RedfishError::NotFound(id.clone()))?;
        let etag = node.etag;
        if cache_on {
            if let Some((v, cached)) = shard.wire.read().get(id) {
                if *v == etag.0 {
                    self.cache_hits.fetch_add(1, Ordering::Relaxed);
                    return Ok((Arc::clone(cached), etag));
                }
            }
        }
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
        let bytes: Arc<[u8]> = serde_json::to_vec(&node.wire_body())
            .map_err(|e| RedfishError::Internal(format!("serialize {id}: {e}")))?
            .into();
        if cache_on {
            // Inserted while still holding the tree read lock: delete and
            // delete_subtree take the tree write lock before they uncache(),
            // so they cannot interleave between the existence check above
            // and this insert — the cache never accumulates entries for
            // deleted ids. Lock order (tree before wire) matches the hit
            // path above; no path acquires the tree lock while holding the
            // wire lock.
            let mut wire = shard.wire.write();
            if wire.len() >= WIRE_CACHE_CAP && !wire.contains_key(id) {
                wire.clear();
            }
            wire.insert(id.clone(), (etag.0, Arc::clone(&bytes)));
        }
        Ok((bytes, etag))
    }

    /// True if a resource exists at `id`.
    pub fn exists(&self, id: &ODataId) -> bool {
        // ofmf-lint: allow(no-panic-path, "shard_of reduces the hash mod shards.len()")
        self.shards[self.shard_of(id)].tree.read().nodes.contains_key(id)
    }

    /// Apply an RFC 7386 merge patch to the resource at `id`.
    ///
    /// * Rejects patches touching read-only members (`Id`, `@odata.*`, …).
    /// * If `if_match` is supplied, the patch only applies when it equals
    ///   the current ETag (412 otherwise).
    /// * Returns the new ETag.
    pub fn patch(&self, id: &ODataId, patch: &Value, if_match: Option<ETag>) -> RedfishResult<ETag> {
        if !patch.is_object() {
            return Err(RedfishError::BadRequest("patch body must be a JSON object".into()));
        }
        if let Some(m) = first_read_only_violation(patch) {
            return Err(RedfishError::BadRequest(format!("member '{m}' is read-only")));
        }
        // ofmf-lint: allow(no-panic-path, "shard_of reduces the hash mod shards.len()")
        let mut t = self.shards[self.shard_of(id)].tree.write();
        let node = t.nodes.get_mut(id).ok_or_else(|| RedfishError::NotFound(id.clone()))?;
        if let Some(tag) = if_match {
            if tag != node.etag {
                return Err(RedfishError::PreconditionFailed {
                    id: id.clone(),
                    supplied: tag.to_header(),
                });
            }
        }
        merge_patch(&mut node.body, patch);
        node.etag = self.next_etag();
        self.journal_record(&WalRecord::Patch {
            id: id.as_str().to_string(),
            delta: patch.clone(),
            etag: node.etag.0,
        });
        Ok(node.etag)
    }

    /// Replace the whole body (used by agents re-publishing a resource).
    /// Read-only identity members are preserved. Allocates a fresh ETag.
    pub fn replace(&self, id: &ODataId, mut body: Value) -> RedfishResult<ETag> {
        if !body.is_object() {
            return Err(RedfishError::BadRequest("resource body must be a JSON object".into()));
        }
        // ofmf-lint: allow(no-panic-path, "shard_of reduces the hash mod shards.len()")
        let mut t = self.shards[self.shard_of(id)].tree.write();
        let node = t.nodes.get_mut(id).ok_or_else(|| RedfishError::NotFound(id.clone()))?;
        body.as_object_mut()
            // ofmf-lint: allow(no-panic-path, "is_object was checked at the top of the function")
            .expect("checked object")
            .insert("@odata.id".to_string(), Value::String(id.as_str().to_string()));
        node.body = body;
        node.etag = self.next_etag();
        self.journal_record(&WalRecord::Replace {
            id: id.as_str().to_string(),
            body: node.body.clone(),
            etag: node.etag.0,
        });
        Ok(node.etag)
    }

    /// Delete the resource at `id`.
    ///
    /// Collections may only be deleted when empty; deleting a non-collection
    /// resource that still has children fails with `Conflict`.
    pub fn delete(&self, id: &ODataId) -> RedfishResult<()> {
        let me = self.shard_of(id);
        let mut span = if spans_all_shards(id) {
            self.write_all()
        } else {
            match id.parent() {
                Some(p) => self.write_span(vec![me, self.shard_of(&p)]),
                None => self.write_span(vec![me]),
            }
        };
        {
            let t = span.tree(me);
            let node = t.nodes.get(id).ok_or_else(|| RedfishError::NotFound(id.clone()))?;
            if node.is_collection {
                let n = node.body["Members@odata.count"].as_u64().unwrap_or(0);
                if n > 0 {
                    return Err(RedfishError::Conflict(format!("collection {id} is not empty")));
                }
            }
        }
        let has_children = if spans_all_shards(id) {
            span.trees().any(|t| t.has_descendants(id))
        } else {
            span.tree(me).has_descendants(id)
        };
        if has_children {
            return Err(RedfishError::Conflict(format!("resource {id} has child resources")));
        }
        span.tree(me).nodes.remove(id);
        let parent_etag = self.unlink_from_parent(&mut span, id);
        self.journal_record(&WalRecord::Delete {
            id: id.as_str().to_string(),
            parent_etag: parent_etag.map(|e| e.0),
        });
        drop(span);
        self.uncache(id);
        Ok(())
    }

    /// Delete `id` and every resource underneath it (agent unmount).
    /// Returns the number of resources removed. Atomic: the subtree's
    /// shard(s) stay write-locked for the whole removal.
    pub fn delete_subtree(&self, id: &ODataId) -> usize {
        let me = self.shard_of(id);
        let mut span = if spans_all_shards(id) {
            self.write_all()
        } else {
            match id.parent() {
                Some(p) => self.write_span(vec![me, self.shard_of(&p)]),
                None => self.write_span(vec![me]),
            }
        };
        let mut doomed: Vec<ODataId> = if spans_all_shards(id) {
            let mut v: Vec<ODataId> = Vec::new();
            for t in span.trees() {
                v.extend(t.descendants(id).map(|(k, _)| k.clone()));
            }
            v
        } else {
            span.tree(me).descendants(id).map(|(k, _)| k.clone()).collect()
        };
        if span.tree(me).nodes.contains_key(id) {
            doomed.push(id.clone());
        }
        for d in &doomed {
            let s = self.shard_of(d);
            span.tree(s).nodes.remove(d);
        }
        if !doomed.is_empty() {
            let parent_etag = self.unlink_from_parent(&mut span, id);
            self.journal_record(&WalRecord::DeleteSubtree {
                id: id.as_str().to_string(),
                parent_etag: parent_etag.map(|e| e.0),
            });
        }
        drop(span);
        for d in &doomed {
            self.uncache(d);
        }
        doomed.len()
    }

    /// Ids of the direct members of the collection at `id`.
    pub fn members(&self, id: &ODataId) -> RedfishResult<Vec<ODataId>> {
        // ofmf-lint: allow(no-panic-path, "shard_of reduces the hash mod shards.len()")
        let t = self.shards[self.shard_of(id)].tree.read();
        let node = t.nodes.get(id).ok_or_else(|| RedfishError::NotFound(id.clone()))?;
        if !node.is_collection {
            return Err(RedfishError::MethodNotAllowed(format!("{id} is not a collection")));
        }
        Ok(node.body["Members"]
            .as_array()
            // ofmf-lint: allow(no-panic-path, "create_collection always installs a Members array; is_collection was checked")
            .expect("collection has Members")
            .iter()
            .filter_map(|m| m["@odata.id"].as_str().map(ODataId::new))
            .collect())
    }

    /// All resource ids under `prefix` (inclusive), in path order.
    pub fn ids_under(&self, prefix: &ODataId) -> Vec<ODataId> {
        let mut out = Vec::new();
        if spans_all_shards(prefix) {
            let guards = self.read_all();
            if guards.iter().any(|t| t.nodes.contains_key(prefix)) {
                out.push(prefix.clone());
            }
            for t in &guards {
                out.extend(t.descendants(prefix).map(|(k, _)| k.clone()));
            }
        } else {
            // ofmf-lint: allow(no-panic-path, "shard_of reduces the hash mod shards.len()")
            let t = self.shards[self.shard_of(prefix)].tree.read();
            if t.nodes.contains_key(prefix) {
                out.push(prefix.clone());
            }
            out.extend(t.descendants(prefix).map(|(k, _)| k.clone()));
        }
        out.sort();
        out
    }

    /// All ids whose `@odata.type` starts with `type_prefix`
    /// (e.g. `#Endpoint.` matches every Endpoint version), in path order.
    pub fn ids_of_type(&self, type_prefix: &str) -> Vec<ODataId> {
        let guards = self.read_all();
        let mut out: Vec<ODataId> = guards
            .iter()
            .flat_map(|t| {
                t.nodes
                    .iter()
                    .filter(|(_, n)| n.odata_type().is_some_and(|ty| ty.starts_with(type_prefix)))
                    .map(|(k, _)| k.clone())
            })
            .collect();
        out.sort();
        out
    }

    /// Verify that every `{"@odata.id": ...}` reference anywhere in the tree
    /// points at an existing resource. Returns the list of dangling links.
    /// Takes a consistent read snapshot of every shard.
    ///
    /// `LogEntry` resources are exempt: log entries are historical records
    /// whose `OriginOfCondition` may legitimately outlive the resource it
    /// described (a lost connection, a deleted zone).
    pub fn dangling_links(&self) -> Vec<(ODataId, ODataId)> {
        let guards = self.read_all();
        let contains = |target: &ODataId| {
            let idx = (key_hash(shard_key(target.as_str())) as usize) % guards.len();
            // ofmf-lint: allow(no-panic-path, "idx is reduced mod guards.len() on the line above")
            guards[idx].nodes.contains_key(target)
        };
        let mut dangling = Vec::new();
        for t in &guards {
            for (id, node) in &t.nodes {
                if node.odata_type().is_some_and(|ty| ty.starts_with("#LogEntry.")) {
                    continue;
                }
                let mut stack = vec![&node.body];
                while let Some(v) = stack.pop() {
                    match v {
                        Value::Object(m) => {
                            if m.len() == 1 {
                                if let Some(Value::String(target)) = m.get("@odata.id") {
                                    let target_id = ODataId::new(target.as_str());
                                    if &target_id != id && !contains(&target_id) {
                                        dangling.push((id.clone(), target_id));
                                    }
                                    continue;
                                }
                            }
                            for (k, child) in m {
                                // Skip the resource's own identity member.
                                if k == "@odata.id" {
                                    continue;
                                }
                                stack.push(child);
                            }
                        }
                        Value::Array(a) => stack.extend(a.iter()),
                        _ => {}
                    }
                }
            }
        }
        dangling.sort();
        dangling
    }

    /// Run `f` over every stored resource in path order (all shard read
    /// locks held for the duration; `f` must be fast and must not reenter
    /// the registry).
    pub fn for_each<F: FnMut(&ODataId, &StoredResource)>(&self, mut f: F) {
        let guards = self.read_all();
        let mut all: Vec<(&ODataId, &StoredResource)> = guards.iter().flat_map(|t| t.nodes.iter()).collect();
        all.sort_by(|a, b| a.0.cmp(b.0));
        for (id, node) in all {
            f(id, node);
        }
    }

    /// Produce an expanded view of a collection: the collection body with
    /// each member's body inlined (the `$expand` query option). Members may
    /// live in any shard, so this takes a whole-tree read snapshot.
    pub fn expand(&self, id: &ODataId) -> RedfishResult<Value> {
        let guards = self.read_all();
        let lookup = |rid: &ODataId| {
            let idx = (key_hash(shard_key(rid.as_str())) as usize) % guards.len();
            // ofmf-lint: allow(no-panic-path, "idx is reduced mod guards.len() on the line above")
            guards[idx].nodes.get(rid)
        };
        let node = lookup(id).ok_or_else(|| RedfishError::NotFound(id.clone()))?;
        if !node.is_collection {
            return Ok(node.wire_body());
        }
        let mut body = node.wire_body();
        let mut expanded = Vec::new();
        if let Some(members) = node.body["Members"].as_array() {
            for m in members {
                if let Some(mid) = m["@odata.id"].as_str() {
                    if let Some(child) = lookup(&ODataId::new(mid)) {
                        expanded.push(child.wire_body());
                    }
                }
            }
        }
        body["Members"] = Value::Array(expanded);
        Ok(body)
    }

    // ------------------------------------------------------------------
    // Replay API — raw installs used by WAL/snapshot recovery. These
    // bypass validation, never allocate ETags (records carry the ETag the
    // live mutation allocated) and never journal. They are idempotent so
    // a record that lands both in a snapshot and in the live segment
    // replays to the same state. See `crate::replay`.
    // ------------------------------------------------------------------

    /// Install (or overwrite) a resource verbatim with a recorded ETag.
    /// No parent linking: snapshot installs carry each parent's `Members`
    /// in its own body, and create-replay links explicitly.
    pub fn install(&self, id: &ODataId, body: Value, etag: ETag, is_collection: bool) {
        let me = self.shard_of(id);
        let mut span = self.write_span(vec![me]);
        span.tree(me).nodes.insert(
            id.clone(),
            StoredResource {
                body,
                etag,
                is_collection,
            },
        );
    }

    /// Remove a resource (optionally with its whole subtree) without
    /// emptiness/child checks, unlinking or journaling.
    pub fn remove_raw(&self, id: &ODataId, subtree: bool) {
        let mut span = if spans_all_shards(id) {
            self.write_all()
        } else {
            self.write_span(vec![self.shard_of(id)])
        };
        let mut doomed: Vec<ODataId> = Vec::new();
        if subtree {
            for t in span.trees() {
                doomed.extend(t.descendants(id).map(|(k, _)| k.clone()));
            }
        }
        doomed.push(id.clone());
        for d in &doomed {
            let s = self.shard_of(d);
            span.tree(s).nodes.remove(d);
        }
        drop(span);
        for d in &doomed {
            self.uncache(d);
        }
    }

    /// Re-apply a recorded parent-membership change: append `id` to
    /// (`link=true`) or remove it from (`link=false`) its parent's
    /// `Members`, and pin the parent's ETag to the recorded value. A
    /// `None` ETag means the live mutation bumped no parent (the parent
    /// was not a collection), so membership is left untouched.
    ///
    /// The recorded ETag doubles as the idempotency token: a parent whose
    /// current ETag is already at or past it holds a body that reflects
    /// this mutation (it arrived via a snapshot install or an earlier
    /// pass over the same journal), so the record is skipped outright.
    /// That replaces the old per-record `Members` scan — which made
    /// replaying n creates into one collection O(n²) and blew the
    /// boot-time budget at 100k records — with an O(1) check, and it
    /// stops overlap records from regressing the parent's ETag.
    pub fn set_parent_link_raw(&self, id: &ODataId, link: bool, parent_etag: Option<ETag>) {
        let Some(petag) = parent_etag else { return };
        let Some(parent) = id.parent() else { return };
        let pshard = self.shard_of(&parent);
        let mut span = self.write_span(vec![pshard]);
        let Some(p) = span.tree(pshard).nodes.get_mut(&parent) else {
            return;
        };
        if p.etag >= petag {
            return;
        }
        let Some(members) = p.body.get_mut("Members").and_then(Value::as_array_mut) else {
            return;
        };
        if link {
            members.push(json!({"@odata.id": id.as_str()}));
        } else {
            members.retain(|m| m["@odata.id"].as_str() != Some(id.as_str()));
        }
        let count = members.len();
        p.body["Members@odata.count"] = json!(count);
        p.etag = petag;
    }

    /// Re-apply a recorded merge patch, pinning the recorded ETag.
    pub fn patch_raw(&self, id: &ODataId, delta: &Value, etag: ETag) {
        let me = self.shard_of(id);
        let mut span = self.write_span(vec![me]);
        if let Some(node) = span.tree(me).nodes.get_mut(id) {
            merge_patch(&mut node.body, delta);
            node.etag = etag;
        }
    }

    /// Re-apply a recorded body replacement, pinning the recorded ETag and
    /// preserving the resource's collection flag.
    pub fn replace_raw(&self, id: &ODataId, body: Value, etag: ETag) {
        let me = self.shard_of(id);
        let mut span = self.write_span(vec![me]);
        match span.tree(me).nodes.get_mut(id) {
            Some(node) => {
                node.body = body;
                node.etag = etag;
            }
            None => {
                let is_collection = body.get("Members").is_some();
                span.tree(me).nodes.insert(
                    id.clone(),
                    StoredResource {
                        body,
                        etag,
                        is_collection,
                    },
                );
            }
        }
    }

    /// Raise the ETag allocator so the next allocation is at least `floor`.
    pub fn ensure_etag_floor(&self, floor: u64) {
        self.etag_seq.fetch_max(floor, Ordering::AcqRel);
    }

    /// The next ETag value the allocator would hand out.
    pub fn etag_seq(&self) -> u64 {
        self.etag_seq.load(Ordering::Acquire)
    }

    /// The compacted snapshot of the whole tree: one install record per
    /// resource (path order) plus the allocator floor. Taken under a
    /// consistent all-shard read snapshot.
    pub fn snapshot_records(&self) -> Vec<WalRecord> {
        let mut out = Vec::with_capacity(self.len() + 1);
        self.for_each(|id, node| {
            out.push(WalRecord::InstallResource {
                id: id.as_str().to_string(),
                body: node.body.clone(),
                etag: node.etag.0,
                is_collection: node.is_collection,
            });
        });
        out.push(WalRecord::EtagFloor { seq: self.etag_seq() });
        out
    }
}

/// An ordered set of write-locked shards (ascending shard index).
struct WriteSpan<'a> {
    guards: Vec<(usize, RwLockWriteGuard<'a, Tree>)>,
}

impl WriteSpan<'_> {
    /// The locked tree for shard `idx` (must be part of the span).
    fn tree(&mut self, idx: usize) -> &mut Tree {
        let pos = self
            .guards
            .iter()
            .position(|(i, _)| *i == idx)
            // ofmf-lint: allow(no-panic-path, "callers only pass shard indices they locked into this span")
            .expect("shard is part of the write span");
        // ofmf-lint: allow(no-panic-path, "pos was returned by position() over this same vec")
        &mut self.guards[pos].1
    }

    /// Iterate all locked trees.
    fn trees(&self) -> impl Iterator<Item = &Tree> {
        self.guards.iter().map(|(_, g)| &**g)
    }
}

/// Convenience: build a `{"@odata.id": …}` map value.
pub fn link_value(id: &ODataId) -> Value {
    let mut m = Map::new();
    m.insert("@odata.id".to_string(), Value::String(id.as_str().to_string()));
    Value::Object(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg_with_collection() -> (Registry, ODataId) {
        let r = Registry::new();
        let root = ODataId::new("/redfish/v1");
        r.create(
            &root,
            json!({"@odata.type": "#ServiceRoot.v1_15_0.ServiceRoot", "Id": "RootService", "Name": "OFMF"}),
        )
        .unwrap();
        let col = root.child("Systems");
        r.create_collection(&col, "#ComputerSystemCollection.ComputerSystemCollection", "Systems")
            .unwrap();
        (r, col)
    }

    #[test]
    fn create_links_into_parent_collection() {
        let (r, col) = reg_with_collection();
        let id = col.child("cn01");
        r.create(
            &id,
            json!({"@odata.type": "#ComputerSystem.v1_20_0.ComputerSystem", "Id": "cn01", "Name": "cn01"}),
        )
        .unwrap();
        let members = r.members(&col).unwrap();
        assert_eq!(members, vec![id.clone()]);
        let col_body = r.get(&col).unwrap().body;
        assert_eq!(col_body["Members@odata.count"], 1);
    }

    #[test]
    fn duplicate_create_conflicts() {
        let (r, col) = reg_with_collection();
        let id = col.child("cn01");
        r.create(&id, json!({"Name": "a"})).unwrap();
        assert!(matches!(
            r.create(&id, json!({"Name": "b"})),
            Err(RedfishError::AlreadyExists(_))
        ));
    }

    #[test]
    fn patch_bumps_etag_and_merges() {
        let (r, col) = reg_with_collection();
        let id = col.child("cn01");
        let e1 = r.create(&id, json!({"Name": "a", "Oem": {"x": 1}})).unwrap();
        let e2 = r.patch(&id, &json!({"Oem": {"y": 2}}), None).unwrap();
        assert!(e2.0 > e1.0);
        let body = r.get(&id).unwrap().body;
        assert_eq!(body["Oem"], json!({"x": 1, "y": 2}));
    }

    #[test]
    fn patch_rejects_read_only_and_stale_etag() {
        let (r, col) = reg_with_collection();
        let id = col.child("cn01");
        let e = r.create(&id, json!({"Name": "a"})).unwrap();
        assert!(matches!(
            r.patch(&id, &json!({"Id": "evil"}), None),
            Err(RedfishError::BadRequest(_))
        ));
        assert!(matches!(
            r.patch(&id, &json!({"Name": "b"}), Some(ETag(e.0 + 5000))),
            Err(RedfishError::PreconditionFailed { .. })
        ));
        // Correct etag applies.
        r.patch(&id, &json!({"Name": "b"}), Some(e)).unwrap();
        assert_eq!(r.get(&id).unwrap().body["Name"], "b");
    }

    #[test]
    fn delete_unlinks_from_collection() {
        let (r, col) = reg_with_collection();
        let id = col.child("cn01");
        r.create(&id, json!({"Name": "a"})).unwrap();
        r.delete(&id).unwrap();
        assert!(r.members(&col).unwrap().is_empty());
        assert!(!r.exists(&id));
    }

    #[test]
    fn delete_nonempty_collection_conflicts() {
        let (r, col) = reg_with_collection();
        r.create(&col.child("cn01"), json!({"Name": "a"})).unwrap();
        assert!(matches!(r.delete(&col), Err(RedfishError::Conflict(_))));
    }

    #[test]
    fn delete_resource_with_children_conflicts() {
        let (r, col) = reg_with_collection();
        let sys = col.child("cn01");
        r.create(&sys, json!({"Name": "a"})).unwrap();
        r.create(&sys.child("Processors"), json!({"Name": "procs"})).unwrap();
        assert!(matches!(r.delete(&sys), Err(RedfishError::Conflict(_))));
        assert_eq!(r.delete_subtree(&sys), 2);
        assert!(!r.exists(&sys));
        assert!(r.members(&col).unwrap().is_empty());
    }

    #[test]
    fn dangling_link_detection() {
        let (r, col) = reg_with_collection();
        let id = col.child("cn01");
        r.create(
            &id,
            json!({"Name": "a", "Links": {"Chassis": [{"@odata.id": "/redfish/v1/Chassis/missing"}]}}),
        )
        .unwrap();
        let d = r.dangling_links();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].0, id);
        assert_eq!(d[0].1, ODataId::new("/redfish/v1/Chassis/missing"));
    }

    #[test]
    fn expand_inlines_members() {
        let (r, col) = reg_with_collection();
        r.create(&col.child("cn01"), json!({"Name": "a"})).unwrap();
        r.create(&col.child("cn02"), json!({"Name": "b"})).unwrap();
        let v = r.expand(&col).unwrap();
        let members = v["Members"].as_array().unwrap();
        assert_eq!(members.len(), 2);
        assert_eq!(members[0]["Name"], "a");
    }

    #[test]
    fn invalid_member_id_rejected() {
        let (r, col) = reg_with_collection();
        let bad = ODataId::new(format!("{}/{}", col.as_str(), "a b"));
        assert!(matches!(
            r.create(&bad, json!({"Name": "x"})),
            Err(RedfishError::BadRequest(_))
        ));
    }

    #[test]
    fn wire_body_carries_current_etag() {
        let (r, col) = reg_with_collection();
        let id = col.child("cn01");
        r.create(&id, json!({"Name": "a"})).unwrap();
        r.patch(&id, &json!({"Name": "b"}), None).unwrap();
        let s = r.get(&id).unwrap();
        assert_eq!(s.wire_body()["@odata.etag"], s.etag.to_header());
    }

    #[test]
    fn ids_of_type_matches_prefix() {
        let (r, col) = reg_with_collection();
        r.create(
            &col.child("cn01"),
            json!({"@odata.type": "#ComputerSystem.v1_20_0.ComputerSystem"}),
        )
        .unwrap();
        let ids = r.ids_of_type("#ComputerSystem.");
        assert_eq!(ids.len(), 1);
    }

    // ---------------------------------------------------- sharding + cache

    #[test]
    fn shard_key_groups_subtrees() {
        assert_eq!(shard_key("/redfish/v1/Systems"), "Systems");
        assert_eq!(shard_key("/redfish/v1/Systems/cn01/Processors/p0"), "Systems");
        assert_eq!(shard_key("/redfish/v1/Fabrics/CXL0/Endpoints/ep0"), "Fabrics");
        assert_eq!(shard_key("/redfish/v1"), "");
        assert_eq!(shard_key("/redfish"), "");
        assert_eq!(shard_key("/"), "");
        assert_eq!(shard_key("/x/y"), "x");
        assert_eq!(shard_key("/x"), "x");
    }

    #[test]
    fn single_shard_registry_still_works() {
        let r = Registry::with_shards(1);
        let root = ODataId::new("/redfish/v1");
        r.create(&root, json!({"Name": "root"})).unwrap();
        let col = root.child("Systems");
        r.create_collection(&col, "#C.C", "Systems").unwrap();
        r.create(&col.child("a"), json!({"Name": "a"})).unwrap();
        assert_eq!(r.members(&col).unwrap().len(), 1);
        assert_eq!(r.shard_count(), 1);
    }

    #[test]
    fn wire_bytes_hits_cache_until_mutation() {
        let (r, col) = reg_with_collection();
        let id = col.child("cn01");
        r.create(&id, json!({"Name": "a"})).unwrap();
        let (b1, e1) = r.wire_bytes(&id).unwrap();
        let (b2, e2) = r.wire_bytes(&id).unwrap();
        assert_eq!(e1, e2);
        assert!(Arc::ptr_eq(&b1, &b2), "second read must be served from cache");
        let (hits, _) = r.wire_cache_stats();
        assert!(hits >= 1);

        // A mutation allocates a new etag → cache miss, fresh bytes.
        r.patch(&id, &json!({"Name": "b"}), None).unwrap();
        let (b3, e3) = r.wire_bytes(&id).unwrap();
        assert!(e3.0 > e2.0);
        assert!(!Arc::ptr_eq(&b2, &b3));
        let v: Value = serde_json::from_slice(&b3).unwrap();
        assert_eq!(v["Name"], "b");
        assert_eq!(v["@odata.etag"], e3.to_header());
    }

    #[test]
    fn recreate_after_delete_never_serves_stale_bytes() {
        let (r, col) = reg_with_collection();
        let id = col.child("cn01");
        r.create(&id, json!({"Name": "old"})).unwrap();
        let _ = r.wire_bytes(&id).unwrap(); // populate cache
        r.delete(&id).unwrap();
        r.create(&id, json!({"Name": "new"})).unwrap();
        let (bytes, _) = r.wire_bytes(&id).unwrap();
        let v: Value = serde_json::from_slice(&bytes).unwrap();
        assert_eq!(v["Name"], "new");
    }

    #[test]
    fn wire_cache_can_be_disabled() {
        let (r, col) = reg_with_collection();
        let id = col.child("cn01");
        r.create(&id, json!({"Name": "a"})).unwrap();
        r.set_wire_cache(false);
        let (b1, _) = r.wire_bytes(&id).unwrap();
        let (b2, _) = r.wire_bytes(&id).unwrap();
        assert!(!Arc::ptr_eq(&b1, &b2), "cache disabled → fresh serialization");
        r.set_wire_cache(true);
    }

    #[test]
    fn etags_are_registry_unique_across_resources() {
        let (r, col) = reg_with_collection();
        let e1 = r.create(&col.child("a"), json!({"Name": "a"})).unwrap();
        let e2 = r.create(&col.child("b"), json!({"Name": "b"})).unwrap();
        let e3 = r.patch(&col.child("a"), &json!({"X": 1}), None).unwrap();
        assert!(e1.0 < e2.0 && e2.0 < e3.0, "{e1:?} {e2:?} {e3:?}");
    }

    #[test]
    fn cross_shard_membership_stays_consistent() {
        // Top-level collections live in different shards than the root;
        // creating them links them into nothing (root is not a collection),
        // but fabric children link into the Fabrics collection.
        let r = Registry::new();
        let root = ODataId::new("/redfish/v1");
        r.create(&root, json!({"Name": "root"})).unwrap();
        for top in ["Systems", "Chassis", "Fabrics", "StorageServices", "Tasks"] {
            r.create_collection(&root.child(top), "#C.C", top).unwrap();
        }
        let fabrics = root.child("Fabrics");
        r.create(&fabrics.child("F0"), json!({"Name": "F0"})).unwrap();
        r.create(&fabrics.child("F1"), json!({"Name": "F1"})).unwrap();
        assert_eq!(r.members(&fabrics).unwrap().len(), 2);
        assert_eq!(r.delete_subtree(&fabrics.child("F0")), 1);
        assert_eq!(r.members(&fabrics).unwrap().len(), 1);
        assert!(r.dangling_links().is_empty());
        assert_eq!(r.len(), 7);
    }

    #[test]
    fn root_subtree_delete_spans_all_shards() {
        let (r, col) = reg_with_collection();
        r.create(&col.child("cn01"), json!({"Name": "a"})).unwrap();
        // Deleting the service root's subtree wipes everything.
        let n = r.delete_subtree(&ODataId::new("/redfish/v1"));
        assert_eq!(n, 3);
        assert!(r.is_empty());
    }

    #[test]
    fn for_each_iterates_in_path_order() {
        let (r, col) = reg_with_collection();
        r.create(&col.child("b"), json!({"Name": "b"})).unwrap();
        r.create(&col.child("a"), json!({"Name": "a"})).unwrap();
        let chassis = ODataId::new("/redfish/v1/Chassis");
        r.create_collection(&chassis, "#C.C", "Chassis").unwrap();
        let mut seen = Vec::new();
        r.for_each(|id, _| seen.push(id.clone()));
        let mut sorted = seen.clone();
        sorted.sort();
        assert_eq!(seen, sorted);
        assert_eq!(seen.len(), 5);
    }
}
