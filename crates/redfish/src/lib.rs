//! # redfish-model
//!
//! Strongly-typed DMTF Redfish / SNIA Swordfish data model plus an in-memory,
//! path-keyed **resource registry** (the "Redfish tree") used by the
//! OpenFabrics Management Framework (OFMF).
//!
//! The OFMF paper describes a centralized management layer whose transactions
//! are "stateless and lightweight, consisting of JSON data carried on
//! OData". This crate provides exactly that substrate:
//!
//! * [`odata`] — OData id/type/etag envelope shared by every resource.
//! * [`status`] — the ubiquitous Redfish `Status` object (`Health`, `State`).
//! * [`enums`] — cross-resource enumerations (protocols, power states, …).
//! * [`resources`] — resource schema structs: `ServiceRoot`, `Chassis`,
//!   `ComputerSystem`, `Processor`, `Memory`/`MemoryDomain`/`MemoryChunks`,
//!   Swordfish storage (`StorageService`, `StoragePool`, `Volume`, `Drive`),
//!   fabric objects (`Fabric`, `Switch`, `Port`, `Endpoint`, `Zone`,
//!   `Connection`, `AddressPool`), eventing, tasks, sessions, telemetry.
//! * [`registry`] — the concurrent resource tree: create / read / merge-PATCH
//!   / delete with ETag versioning, Redfish collection semantics and link
//!   integrity checks.
//! * [`patch`] — RFC 7386 JSON merge-patch used for `PATCH` semantics.
//! * [`path`] — Redfish URI path manipulation helpers.
//! * [`error`] — error type carrying the HTTP status and a Redfish
//!   `ExtendedInfo`-style message payload.
//!
//! Every resource struct serializes to the wire format with `@odata.id`,
//! `@odata.type` and `Id`/`Name` members, so a registry populated from these
//! types is directly servable over the REST layer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod enums;
pub mod error;
pub mod odata;
pub mod patch;
pub mod path;
pub mod registry;
pub mod replay;
pub mod resources;
pub mod status;

pub use error::{RedfishError, RedfishResult};
pub use odata::{ETag, ODataId, ResourceHeader};
pub use registry::{Registry, StoredResource};
pub use status::{Health, State, Status};
