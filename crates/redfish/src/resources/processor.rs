//! The `Processor` resource: CPUs, GPUs and other accelerators.

use crate::odata::{ODataId, ResourceHeader};
use crate::resources::Resource;
use crate::status::Status;
use serde::{Deserialize, Serialize};

/// Kind of processing device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ProcessorType {
    /// Central processing unit.
    #[default]
    CPU,
    /// Graphics/compute accelerator.
    GPU,
    /// FPGA accelerator.
    FPGA,
    /// DPU / SmartNIC processor.
    DPU,
}

/// A processing device, either in-node or fabric-attached (a pooled GPU).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Processor {
    /// Common resource members.
    #[serde(flatten)]
    pub header: ResourceHeader,
    /// Device kind.
    #[serde(rename = "ProcessorType")]
    pub processor_type: ProcessorType,
    /// Core count.
    #[serde(rename = "TotalCores")]
    pub total_cores: u32,
    /// Thread count.
    #[serde(rename = "TotalThreads")]
    pub total_threads: u32,
    /// Nominal clock in MHz.
    #[serde(rename = "MaxSpeedMHz")]
    pub max_speed_mhz: u32,
    /// Vendor model string.
    #[serde(rename = "Model")]
    pub model: String,
    /// Health/state.
    #[serde(rename = "Status")]
    pub status: Status,
}

impl Processor {
    /// Build a CPU resource.
    pub fn cpu(collection: &ODataId, id: &str, cores: u32, mhz: u32, model: &str) -> Self {
        Processor {
            header: ResourceHeader::under(collection, id, Self::ODATA_TYPE, id),
            processor_type: ProcessorType::CPU,
            total_cores: cores,
            total_threads: cores * 4, // ThunderX2-style SMT4 default
            max_speed_mhz: mhz,
            model: model.to_string(),
            status: Status::ok(),
        }
    }

    /// Build a fabric-attached GPU resource.
    pub fn gpu(collection: &ODataId, id: &str, model: &str) -> Self {
        Processor {
            header: ResourceHeader::under(collection, id, Self::ODATA_TYPE, id),
            processor_type: ProcessorType::GPU,
            total_cores: 108, // SM count style figure
            total_threads: 108 * 64,
            max_speed_mhz: 1410,
            model: model.to_string(),
            status: Status::ok(),
        }
    }
}

impl Resource for Processor {
    const ODATA_TYPE: &'static str = "#Processor.v1_18_0.Processor";

    fn odata_id(&self) -> &ODataId {
        &self.header.odata_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_and_gpu_shapes() {
        let col = ODataId::new("/redfish/v1/Systems/cn01/Processors");
        let cpu = Processor::cpu(&col, "cpu0", 28, 2200, "ThunderX2 CN9975");
        assert_eq!(cpu.to_value()["ProcessorType"], "CPU");
        assert_eq!(cpu.total_threads, 112);
        let gpu = Processor::gpu(&col, "gpu0", "A100");
        assert_eq!(gpu.to_value()["ProcessorType"], "GPU");
    }
}
