//! Swordfish storage resources: `StorageService`, `StoragePool`, `Volume`
//! and the Redfish `Drive`.
//!
//! The OFMF "implements Redfish and Swordfish through the implementation of
//! a Swordfish Endpoint Emulator"; these types model the storage side of
//! composition — NVMe-oF namespaces carved from JBOF pools and attached to
//! compute endpoints.

use crate::enums::MediaType;
use crate::odata::{Link, ODataId, ResourceHeader};
use crate::resources::Resource;
use crate::status::Status;
use serde::{Deserialize, Serialize};

/// Swordfish capacity bookkeeping (bytes).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Capacity {
    /// Bytes provisioned to consumers.
    #[serde(rename = "AllocatedBytes")]
    pub allocated_bytes: u64,
    /// Bytes consumed (written).
    #[serde(rename = "ConsumedBytes")]
    pub consumed_bytes: u64,
    /// Guaranteed available bytes.
    #[serde(rename = "GuaranteedBytes")]
    pub guaranteed_bytes: u64,
}

/// A Swordfish storage service: the management domain of one storage agent.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StorageService {
    /// Common resource members.
    #[serde(flatten)]
    pub header: ResourceHeader,
    /// Health/state.
    #[serde(rename = "Status")]
    pub status: Status,
    /// Pools collection link.
    #[serde(rename = "StoragePools")]
    pub storage_pools: Link,
    /// Volumes collection link.
    #[serde(rename = "Volumes")]
    pub volumes: Link,
    /// Drives collection link.
    #[serde(rename = "Drives")]
    pub drives: Link,
}

impl StorageService {
    /// Build a service whose sub-collections live under it.
    pub fn new(collection: &ODataId, id: &str) -> Self {
        let me = collection.child(id);
        StorageService {
            header: ResourceHeader::under(collection, id, Self::ODATA_TYPE, id),
            status: Status::ok(),
            storage_pools: Link::to(me.child("StoragePools")),
            volumes: Link::to(me.child("Volumes")),
            drives: Link::to(me.child("Drives")),
        }
    }
}

impl Resource for StorageService {
    const ODATA_TYPE: &'static str = "#StorageService.v1_6_0.StorageService";

    fn odata_id(&self) -> &ODataId {
        &self.header.odata_id
    }
}

/// A pool of raw capacity backed by a set of drives.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StoragePool {
    /// Common resource members.
    #[serde(flatten)]
    pub header: ResourceHeader,
    /// Capacity bookkeeping.
    #[serde(rename = "Capacity")]
    pub capacity: Capacity,
    /// Maximum size a single volume may take from this pool.
    #[serde(rename = "MaxBlockSizeBytes")]
    pub max_block_size_bytes: u64,
    /// Health/state.
    #[serde(rename = "Status")]
    pub status: Status,
}

impl StoragePool {
    /// Build a pool with `total_bytes` of raw capacity, none yet allocated.
    pub fn new(collection: &ODataId, id: &str, total_bytes: u64) -> Self {
        StoragePool {
            header: ResourceHeader::under(collection, id, Self::ODATA_TYPE, id),
            capacity: Capacity {
                allocated_bytes: 0,
                consumed_bytes: 0,
                guaranteed_bytes: total_bytes,
            },
            max_block_size_bytes: 4096,
            status: Status::ok(),
        }
    }

    /// Bytes still unallocated.
    pub fn free_bytes(&self) -> u64 {
        self.capacity
            .guaranteed_bytes
            .saturating_sub(self.capacity.allocated_bytes)
    }
}

impl Resource for StoragePool {
    const ODATA_TYPE: &'static str = "#StoragePool.v1_9_0.StoragePool";

    fn odata_id(&self) -> &ODataId {
        &self.header.odata_id
    }
}

/// A provisioned volume (an NVMe-oF namespace when fabric-attached).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Volume {
    /// Common resource members.
    #[serde(flatten)]
    pub header: ResourceHeader,
    /// Size in bytes.
    #[serde(rename = "CapacityBytes")]
    pub capacity_bytes: u64,
    /// RAID / redundancy class.
    #[serde(rename = "RAIDType")]
    pub raid_type: String,
    /// Health/state.
    #[serde(rename = "Status")]
    pub status: Status,
    /// Link section.
    #[serde(rename = "Links")]
    pub links: VolumeLinks,
}

/// Link section of a volume.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct VolumeLinks {
    /// Endpoints currently granted access.
    #[serde(rename = "ClientEndpoints", default)]
    pub client_endpoints: Vec<Link>,
    /// The pool this volume was carved from.
    #[serde(rename = "StoragePool", skip_serializing_if = "Option::is_none")]
    pub storage_pool: Option<Link>,
}

impl Volume {
    /// Build a RAID0 volume of `capacity_bytes` carved from `pool`.
    pub fn new(collection: &ODataId, id: &str, capacity_bytes: u64, pool: &ODataId) -> Self {
        Volume {
            header: ResourceHeader::under(collection, id, Self::ODATA_TYPE, id),
            capacity_bytes,
            raid_type: "RAID0".to_string(),
            status: Status::ok(),
            links: VolumeLinks {
                client_endpoints: Vec::new(),
                storage_pool: Some(Link::to(pool.clone())),
            },
        }
    }
}

impl Resource for Volume {
    const ODATA_TYPE: &'static str = "#Volume.v1_10_0.Volume";

    fn odata_id(&self) -> &ODataId {
        &self.header.odata_id
    }
}

/// A physical drive inside a JBOF or node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Drive {
    /// Common resource members.
    #[serde(flatten)]
    pub header: ResourceHeader,
    /// Media technology.
    #[serde(rename = "MediaType")]
    pub media_type: MediaType,
    /// Size in bytes.
    #[serde(rename = "CapacityBytes")]
    pub capacity_bytes: u64,
    /// Negotiated interface speed in Gbit/s.
    #[serde(rename = "CapableSpeedGbs")]
    pub capable_speed_gbs: f64,
    /// Health/state.
    #[serde(rename = "Status")]
    pub status: Status,
}

impl Drive {
    /// Build an SSD of `capacity_bytes`.
    pub fn ssd(collection: &ODataId, id: &str, capacity_bytes: u64) -> Self {
        Drive {
            header: ResourceHeader::under(collection, id, Self::ODATA_TYPE, id),
            media_type: MediaType::SSD,
            capacity_bytes,
            capable_speed_gbs: 6.0,
            status: Status::ok(),
        }
    }
}

impl Resource for Drive {
    const ODATA_TYPE: &'static str = "#Drive.v1_17_0.Drive";

    fn odata_id(&self) -> &ODataId {
        &self.header.odata_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_free_bytes_accounting() {
        let col = ODataId::new("/redfish/v1/StorageServices/nvmeof0/StoragePools");
        let mut p = StoragePool::new(&col, "pool0", 1 << 40);
        assert_eq!(p.free_bytes(), 1 << 40);
        p.capacity.allocated_bytes = 1 << 39;
        assert_eq!(p.free_bytes(), 1 << 39);
        p.capacity.allocated_bytes = u64::MAX;
        assert_eq!(p.free_bytes(), 0); // saturates, never underflows
    }

    #[test]
    fn volume_links_back_to_pool() {
        let pools = ODataId::new("/redfish/v1/StorageServices/s0/StoragePools");
        let vols = ODataId::new("/redfish/v1/StorageServices/s0/Volumes");
        let v = Volume::new(&vols, "ns1", 1 << 30, &pools.child("pool0"));
        let j = v.to_value();
        assert_eq!(
            j["Links"]["StoragePool"]["@odata.id"],
            "/redfish/v1/StorageServices/s0/StoragePools/pool0"
        );
    }

    #[test]
    fn drive_wire_shape() {
        let col = ODataId::new("/redfish/v1/StorageServices/s0/Drives");
        let d = Drive::ssd(&col, "ssd0", 894 * 1_000_000_000);
        assert_eq!(d.to_value()["MediaType"], "SSD");
    }
}
