//! Eventing resources: `Event`, `EventDestination` (subscriptions).
//!
//! "The OFMF services provide a subscription-based central repository for
//! telemetry information, provisioning, and event logs." Clients POST an
//! `EventDestination` and receive `Event` payloads whose records carry the
//! origin resource and a message id.

use crate::odata::{Link, ODataId, ResourceHeader};
use crate::resources::Resource;
use serde::{Deserialize, Serialize};
use std::sync::{Arc, OnceLock};

/// Redfish event categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventType {
    /// A resource's state or health changed.
    StatusChange,
    /// A new resource appeared.
    ResourceAdded,
    /// A resource was removed.
    ResourceRemoved,
    /// A resource's non-status members changed.
    ResourceUpdated,
    /// A fault was detected (link down, device failure).
    Alert,
    /// A metric crossed a threshold.
    MetricReport,
}

impl EventType {
    /// All event types, for subscription wildcards.
    pub const ALL: [EventType; 6] = [
        EventType::StatusChange,
        EventType::ResourceAdded,
        EventType::ResourceRemoved,
        EventType::ResourceUpdated,
        EventType::Alert,
        EventType::MetricReport,
    ];
}

/// One record within an event payload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EventRecord {
    /// Category.
    #[serde(rename = "EventType")]
    pub event_type: EventType,
    /// Monotonic id assigned by the event service.
    #[serde(rename = "EventId")]
    pub event_id: String,
    /// Registry message id, e.g. `ResourceEvent.1.0.ResourceCreated`.
    #[serde(rename = "MessageId")]
    pub message_id: String,
    /// Human readable message.
    #[serde(rename = "Message")]
    pub message: String,
    /// Severity: OK / Warning / Critical.
    #[serde(rename = "Severity")]
    pub severity: String,
    /// The resource the event is about.
    #[serde(rename = "OriginOfCondition")]
    pub origin_of_condition: Link,
    /// Milliseconds since service start (simulated wall clock).
    #[serde(rename = "EventTimestamp")]
    pub event_timestamp: u64,
}

impl EventRecord {
    /// Build a record about `origin`.
    pub fn new(
        event_type: EventType,
        event_id: u64,
        origin: &ODataId,
        message: impl Into<String>,
        severity: &str,
        timestamp_ms: u64,
    ) -> Self {
        let message_id = match event_type {
            EventType::StatusChange => "ResourceEvent.1.0.ResourceStatusChanged",
            EventType::ResourceAdded => "ResourceEvent.1.0.ResourceCreated",
            EventType::ResourceRemoved => "ResourceEvent.1.0.ResourceRemoved",
            EventType::ResourceUpdated => "ResourceEvent.1.0.ResourceChanged",
            EventType::Alert => "Platform.1.0.UnhandledExceptionDetected",
            EventType::MetricReport => "TelemetryEvent.1.0.MetricReportReady",
        };
        EventRecord {
            event_type,
            event_id: event_id.to_string(),
            message_id: message_id.to_string(),
            message: message.into(),
            severity: severity.to_string(),
            origin_of_condition: Link::to(origin.clone()),
            event_timestamp: timestamp_ms,
        }
    }
}

/// The payload delivered to a subscriber: a batch of records.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Event {
    /// OData type marker.
    #[serde(rename = "@odata.type")]
    pub odata_type: String,
    /// Batch id.
    #[serde(rename = "Id")]
    pub id: String,
    /// Name.
    #[serde(rename = "Name")]
    pub name: String,
    /// The records.
    #[serde(rename = "Events")]
    pub events: Vec<EventRecord>,
}

impl Event {
    /// Wrap records in a delivery payload.
    pub fn batch(id: u64, events: Vec<EventRecord>) -> Self {
        Event {
            odata_type: "#Event.v1_7_0.Event".to_string(),
            id: id.to_string(),
            name: "OFMF Event Batch".to_string(),
            events,
        }
    }
}

/// The serialized `Events` array of one fan-out, computed at most once and
/// shared by every delivery of that fan-out (subscribers re-use the same
/// bytes instead of each re-serializing the records).
#[derive(Debug, Clone, Default)]
pub struct SharedEventBody(Arc<OnceLock<Result<Arc<str>, String>>>);

impl SharedEventBody {
    /// A fresh, not-yet-serialized body cell.
    pub fn new() -> Self {
        SharedEventBody::default()
    }

    /// The records serialized as a JSON array, computing them on first use.
    /// Every clone of this cell observes the same result.
    fn get_or_serialize(&self, events: &[EventRecord]) -> Result<Arc<str>, String> {
        self.0
            .get_or_init(|| serde_json::to_string(events).map(Arc::from).map_err(|e| e.to_string()))
            .clone()
    }
}

/// The payload actually placed on a subscriber's delivery queue: one
/// immutable batch of records shared (never deep-cloned) across every
/// subscriber of a fan-out, plus a per-delivery batch id kept *out* of the
/// shared body so each subscriber still sees a unique `Id`.
#[derive(Debug, Clone)]
pub struct EventEnvelope {
    /// Per-delivery batch id (unique per subscriber per fan-out).
    pub id: u64,
    /// The records; an `Arc` slice so N subscribers share one allocation.
    pub events: Arc<[EventRecord]>,
    /// Serialized `Events` array, shared across the whole fan-out.
    shared: SharedEventBody,
}

impl EventEnvelope {
    /// Wrap a shared record batch for one delivery.
    pub fn new(id: u64, events: Arc<[EventRecord]>, shared: SharedEventBody) -> Self {
        EventEnvelope { id, events, shared }
    }

    /// The full Redfish `Event` wire document as a JSON string. The records
    /// array is serialized once per fan-out and spliced in; only the tiny
    /// envelope (type/id/name) is formatted per call.
    pub fn wire_json(&self) -> Result<String, String> {
        let records = self.shared.get_or_serialize(&self.events)?;
        Ok(format!(
            "{{\"@odata.type\":\"#Event.v1_7_0.Event\",\"Id\":\"{}\",\"Name\":\"OFMF Event Batch\",\"Events\":{records}}}",
            self.id
        ))
    }

    /// Materialize an owned [`Event`] (deep-clones the records; compat path
    /// for consumers that need the serde struct).
    pub fn to_event(&self) -> Event {
        Event::batch(self.id, self.events.to_vec())
    }
}

/// A subscription registered by a client.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EventDestination {
    /// Common resource members.
    #[serde(flatten)]
    pub header: ResourceHeader,
    /// Delivery URI (opaque to the OFMF core; the REST layer or an
    /// in-process channel interprets it).
    #[serde(rename = "Destination")]
    pub destination: String,
    /// Event categories wanted; empty means all.
    #[serde(rename = "EventTypes", default)]
    pub event_types: Vec<EventType>,
    /// Only deliver events whose origin is under one of these subtrees;
    /// empty means the whole tree.
    #[serde(rename = "OriginResources", default)]
    pub origin_resources: Vec<Link>,
    /// Delivery protocol marker (`Redfish`).
    #[serde(rename = "Protocol")]
    pub protocol: String,
}

impl EventDestination {
    /// Build a subscription.
    pub fn new(
        collection: &ODataId,
        id: &str,
        destination: &str,
        event_types: Vec<EventType>,
        origin_resources: Vec<ODataId>,
    ) -> Self {
        EventDestination {
            header: ResourceHeader::under(collection, id, Self::ODATA_TYPE, id),
            destination: destination.to_string(),
            event_types,
            origin_resources: origin_resources.iter().map(Link::from).collect(),
            protocol: "Redfish".to_string(),
        }
    }

    /// Whether a record about `origin` with `event_type` matches this
    /// subscription's filters.
    pub fn matches(&self, event_type: EventType, origin: &ODataId) -> bool {
        let type_ok = self.event_types.is_empty() || self.event_types.contains(&event_type);
        let origin_ok =
            self.origin_resources.is_empty() || self.origin_resources.iter().any(|l| origin.is_under(&l.odata_id));
        type_ok && origin_ok
    }
}

impl Resource for EventDestination {
    const ODATA_TYPE: &'static str = "#EventDestination.v1_13_0.EventDestination";

    fn odata_id(&self) -> &ODataId {
        &self.header.odata_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::top;

    #[test]
    fn subscription_filters() {
        let subs = ODataId::new(top::SUBSCRIPTIONS);
        let d = EventDestination::new(
            &subs,
            "s1",
            "channel://client1",
            vec![EventType::Alert],
            vec![ODataId::new("/redfish/v1/Fabrics/CXL0")],
        );
        let inside = ODataId::new("/redfish/v1/Fabrics/CXL0/Switches/sw0");
        let outside = ODataId::new("/redfish/v1/Fabrics/IB0/Switches/sw0");
        assert!(d.matches(EventType::Alert, &inside));
        assert!(!d.matches(EventType::Alert, &outside));
        assert!(!d.matches(EventType::ResourceAdded, &inside));
    }

    #[test]
    fn empty_filters_match_everything() {
        let subs = ODataId::new(top::SUBSCRIPTIONS);
        let d = EventDestination::new(&subs, "s1", "channel://c", vec![], vec![]);
        for t in EventType::ALL {
            assert!(d.matches(t, &ODataId::new("/redfish/v1/Anything/x")));
        }
    }

    #[test]
    fn envelope_wire_json_matches_owned_event() {
        let rec = EventRecord::new(
            EventType::Alert,
            3,
            &ODataId::new("/redfish/v1/Fabrics/CXL0"),
            "link down",
            "Critical",
            99,
        );
        let records: Arc<[EventRecord]> = vec![rec.clone()].into();
        let shared = SharedEventBody::new();
        let e1 = EventEnvelope::new(41, Arc::clone(&records), shared.clone());
        let e2 = EventEnvelope::new(42, records, shared);
        let w1: serde_json::Value = serde_json::from_str(&e1.wire_json().unwrap()).unwrap();
        let w2: serde_json::Value = serde_json::from_str(&e2.wire_json().unwrap()).unwrap();
        // Same shared body, per-delivery ids.
        assert_eq!(w1["Id"], "41");
        assert_eq!(w2["Id"], "42");
        assert_eq!(w1["Events"], w2["Events"]);
        // Identical to the serde wire form of the owned Event.
        let owned = serde_json::to_value(e1.to_event()).unwrap();
        assert_eq!(w1, owned);
        assert_eq!(w1["Events"][0]["Severity"], "Critical");
    }

    #[test]
    fn record_message_ids() {
        let r = EventRecord::new(
            EventType::ResourceAdded,
            7,
            &ODataId::new("/redfish/v1/Systems/x"),
            "created",
            "OK",
            123,
        );
        assert_eq!(r.message_id, "ResourceEvent.1.0.ResourceCreated");
        let v = serde_json::to_value(&r).unwrap();
        assert_eq!(v["OriginOfCondition"]["@odata.id"], "/redfish/v1/Systems/x");
    }
}
