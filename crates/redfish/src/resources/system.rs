//! The `ComputerSystem` resource — physical nodes and OFMF-composed systems.

use crate::enums::{PowerState, SystemType};
use crate::odata::{Link, ODataId, ResourceHeader};
use crate::resources::Resource;
use crate::status::Status;
use serde::{Deserialize, Serialize};

/// Summary of processor resources bound to a system.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ProcessorSummary {
    /// Number of processor devices.
    #[serde(rename = "Count")]
    pub count: u32,
    /// Total core count across devices.
    #[serde(rename = "CoreCount")]
    pub core_count: u32,
}

/// Summary of memory resources bound to a system.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MemorySummary {
    /// Total byte-addressable capacity in GiB (local + fabric-attached).
    #[serde(rename = "TotalSystemMemoryGiB")]
    pub total_system_memory_gib: u64,
}

/// A computer system: either a conventional server discovered by an agent or
/// a `Composed` system assembled by the Composability Manager from
/// disaggregated blocks.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ComputerSystem {
    /// Common resource members.
    #[serde(flatten)]
    pub header: ResourceHeader,
    /// Physical, Composed or Virtual.
    #[serde(rename = "SystemType")]
    pub system_type: SystemType,
    /// Power state.
    #[serde(rename = "PowerState")]
    pub power_state: PowerState,
    /// Health/state.
    #[serde(rename = "Status")]
    pub status: Status,
    /// Processor roll-up.
    #[serde(rename = "ProcessorSummary")]
    pub processor_summary: ProcessorSummary,
    /// Memory roll-up.
    #[serde(rename = "MemorySummary")]
    pub memory_summary: MemorySummary,
    /// Link section.
    #[serde(rename = "Links")]
    pub links: SystemLinks,
}

/// Link section of a computer system.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SystemLinks {
    /// Chassis containing the system.
    #[serde(rename = "Chassis", default)]
    pub chassis: Vec<Link>,
    /// Fabric endpoints belonging to this system (its initiator ports).
    #[serde(rename = "Endpoints", default)]
    pub endpoints: Vec<Link>,
    /// Resource blocks composing this system (Composed systems only).
    #[serde(rename = "ResourceBlocks", default)]
    pub resource_blocks: Vec<Link>,
}

impl ComputerSystem {
    /// Build a physical system under the Systems collection.
    pub fn physical(collection: &ODataId, id: &str, cores: u32, memory_gib: u64) -> Self {
        ComputerSystem {
            header: ResourceHeader::under(collection, id, Self::ODATA_TYPE, id),
            system_type: SystemType::Physical,
            power_state: PowerState::On,
            status: Status::ok(),
            processor_summary: ProcessorSummary {
                count: 2,
                core_count: cores,
            },
            memory_summary: MemorySummary {
                total_system_memory_gib: memory_gib,
            },
            links: SystemLinks::default(),
        }
    }

    /// Build a composed system shell (resource blocks are linked in by the
    /// Composability Manager as composition proceeds).
    pub fn composed(collection: &ODataId, id: &str, name: &str) -> Self {
        ComputerSystem {
            header: ResourceHeader::under(collection, id, Self::ODATA_TYPE, name)
                .describe("System composed by the OFMF Composability Manager"),
            system_type: SystemType::Composed,
            power_state: PowerState::Off,
            status: Status::ok().with_state(crate::status::State::Starting),
            processor_summary: ProcessorSummary::default(),
            memory_summary: MemorySummary::default(),
            links: SystemLinks::default(),
        }
    }
}

impl Resource for ComputerSystem {
    const ODATA_TYPE: &'static str = "#ComputerSystem.v1_20_0.ComputerSystem";

    fn odata_id(&self) -> &ODataId {
        &self.header.odata_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composed_system_starts_in_starting_state() {
        let col = ODataId::new("/redfish/v1/Systems");
        let s = ComputerSystem::composed(&col, "job42", "composed for job 42");
        let v = s.to_value();
        assert_eq!(v["SystemType"], "Composed");
        assert_eq!(v["Status"]["State"], "Starting");
        assert_eq!(v["PowerState"], "Off");
    }

    #[test]
    fn physical_system_summaries() {
        let col = ODataId::new("/redfish/v1/Systems");
        let s = ComputerSystem::physical(&col, "cn01", 56, 128);
        assert_eq!(s.processor_summary.core_count, 56);
        assert_eq!(s.to_value()["MemorySummary"]["TotalSystemMemoryGiB"], 128);
    }
}
