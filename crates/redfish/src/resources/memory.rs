//! Memory resources: `Memory` devices, `MemoryDomain`s and `MemoryChunks`.
//!
//! Fabric-attached memory (FAM) is the OFMF's flagship composable resource:
//! a CXL memory appliance exposes a `MemoryDomain` from which the
//! Composability Manager carves `MemoryChunks` and connects them to
//! initiator endpoints — mitigating the out-of-memory failures the paper's
//! introduction motivates.

use crate::enums::MemoryType;
use crate::odata::{Link, ODataId, ResourceHeader};
use crate::resources::Resource;
use crate::status::Status;
use serde::{Deserialize, Serialize};

/// A memory device (DIMM or CXL expander module).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Memory {
    /// Common resource members.
    #[serde(flatten)]
    pub header: ResourceHeader,
    /// Device technology.
    #[serde(rename = "MemoryType")]
    pub memory_type: MemoryType,
    /// Capacity in MiB.
    #[serde(rename = "CapacityMiB")]
    pub capacity_mib: u64,
    /// Operating speed in MT/s.
    #[serde(rename = "OperatingSpeedMhz")]
    pub operating_speed_mhz: u32,
    /// Health/state.
    #[serde(rename = "Status")]
    pub status: Status,
}

impl Memory {
    /// Build a memory device.
    pub fn new(collection: &ODataId, id: &str, memory_type: MemoryType, capacity_mib: u64) -> Self {
        Memory {
            header: ResourceHeader::under(collection, id, Self::ODATA_TYPE, id),
            memory_type,
            capacity_mib,
            operating_speed_mhz: 3200,
            status: Status::ok(),
        }
    }
}

impl Resource for Memory {
    const ODATA_TYPE: &'static str = "#Memory.v1_17_0.Memory";

    fn odata_id(&self) -> &ODataId {
        &self.header.odata_id
    }
}

/// A pool of interleavable memory from which chunks are allocated.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemoryDomain {
    /// Common resource members.
    #[serde(flatten)]
    pub header: ResourceHeader,
    /// Whether chunks may be created via this domain.
    #[serde(rename = "AllowsMemoryChunkCreation")]
    pub allows_memory_chunk_creation: bool,
    /// Whether this domain serves multiple hosts (CXL MLD).
    #[serde(rename = "AllowsBlockProvisioning")]
    pub allows_block_provisioning: bool,
    /// Total capacity of the domain in MiB.
    #[serde(rename = "MemorySizeMiB")]
    pub memory_size_mib: u64,
    /// Health/state.
    #[serde(rename = "Status")]
    pub status: Status,
    /// Link to the chunks collection.
    #[serde(rename = "MemoryChunks")]
    pub memory_chunks: Link,
}

impl MemoryDomain {
    /// Build a domain whose chunks live at `{id}/MemoryChunks`.
    pub fn new(collection: &ODataId, id: &str, memory_size_mib: u64) -> Self {
        let me = collection.child(id);
        MemoryDomain {
            header: ResourceHeader::under(collection, id, Self::ODATA_TYPE, id),
            allows_memory_chunk_creation: true,
            allows_block_provisioning: true,
            memory_size_mib,
            status: Status::ok(),
            memory_chunks: Link::to(me.child("MemoryChunks")),
        }
    }
}

impl Resource for MemoryDomain {
    const ODATA_TYPE: &'static str = "#MemoryDomain.v1_5_0.MemoryDomain";

    fn odata_id(&self) -> &ODataId {
        &self.header.odata_id
    }
}

/// A carved allocation of fabric-attached memory bound (via a `Connection`)
/// to one or more initiator endpoints.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemoryChunk {
    /// Common resource members.
    #[serde(flatten)]
    pub header: ResourceHeader,
    /// Size of the chunk in MiB.
    #[serde(rename = "MemoryChunkSizeMiB")]
    pub memory_chunk_size_mib: u64,
    /// Address-range type; OFMF uses volatile chunks for job memory.
    #[serde(rename = "AddressRangeType")]
    pub address_range_type: String,
    /// Whether the chunk can be shared by multiple initiators.
    #[serde(rename = "Shareable")]
    pub shareable: bool,
    /// Health/state.
    #[serde(rename = "Status")]
    pub status: Status,
    /// Endpoints currently granted access.
    #[serde(rename = "Links")]
    pub links: MemoryChunkLinks,
}

/// Link section of a memory chunk.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MemoryChunkLinks {
    /// Endpoints with access to this chunk.
    #[serde(rename = "Endpoints", default)]
    pub endpoints: Vec<Link>,
}

impl MemoryChunk {
    /// Build a volatile chunk of `size_mib`.
    pub fn volatile(collection: &ODataId, id: &str, size_mib: u64) -> Self {
        MemoryChunk {
            header: ResourceHeader::under(collection, id, Self::ODATA_TYPE, id),
            memory_chunk_size_mib: size_mib,
            address_range_type: "Volatile".to_string(),
            shareable: false,
            status: Status::ok(),
            links: MemoryChunkLinks::default(),
        }
    }
}

impl Resource for MemoryChunk {
    const ODATA_TYPE: &'static str = "#MemoryChunks.v1_6_0.MemoryChunks";

    fn odata_id(&self) -> &ODataId {
        &self.header.odata_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_links_to_chunks_collection() {
        let col = ODataId::new("/redfish/v1/Chassis/mem0/MemoryDomains");
        let d = MemoryDomain::new(&col, "dom0", 4 * 1024 * 1024);
        assert_eq!(
            d.memory_chunks.odata_id.as_str(),
            "/redfish/v1/Chassis/mem0/MemoryDomains/dom0/MemoryChunks"
        );
        assert!(d.allows_memory_chunk_creation);
    }

    #[test]
    fn chunk_wire_shape() {
        let col = ODataId::new("/redfish/v1/Chassis/mem0/MemoryDomains/dom0/MemoryChunks");
        let c = MemoryChunk::volatile(&col, "chunk1", 65536);
        let v = c.to_value();
        assert_eq!(v["MemoryChunkSizeMiB"], 65536);
        assert_eq!(v["AddressRangeType"], "Volatile");
    }

    #[test]
    fn memory_device_capacity() {
        let col = ODataId::new("/redfish/v1/Systems/cn01/Memory");
        let m = Memory::new(&col, "dimm0", MemoryType::CXLAttached, 262_144);
        assert_eq!(m.to_value()["MemoryType"], "CXLAttached");
    }
}
