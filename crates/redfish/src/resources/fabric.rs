//! Fabric resources: `Fabric`, `Switch`, `Port`, `Endpoint`, `Zone`,
//! `Connection` and `AddressPool`.
//!
//! These are the heart of the OFMF model: every managed interconnect appears
//! as one `Fabric` whose `Zone`s control visibility and whose `Connection`s
//! bind initiator endpoints (compute) to target endpoints (memory, storage,
//! accelerators). Agents translate CRUD on these resources into
//! technology-specific fabric-manager operations.

use crate::enums::{AccessCapability, EntityRole, EntityType, Protocol, ZoneType};
use crate::odata::{Link, ODataId, ResourceHeader};
use crate::resources::Resource;
use crate::status::Status;
use serde::{Deserialize, Serialize};

/// One managed interconnect (e.g. a CXL pod, an NVMe-oF storage network).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fabric {
    /// Common resource members.
    #[serde(flatten)]
    pub header: ResourceHeader,
    /// Transport technology of this fabric.
    #[serde(rename = "FabricType")]
    pub fabric_type: Protocol,
    /// Maximum zones the fabric manager supports.
    #[serde(rename = "MaxZones")]
    pub max_zones: u32,
    /// Health/state.
    #[serde(rename = "Status")]
    pub status: Status,
    /// Switches collection link.
    #[serde(rename = "Switches")]
    pub switches: Link,
    /// Endpoints collection link.
    #[serde(rename = "Endpoints")]
    pub endpoints: Link,
    /// Zones collection link.
    #[serde(rename = "Zones")]
    pub zones: Link,
    /// Connections collection link.
    #[serde(rename = "Connections")]
    pub connections: Link,
    /// Address pools collection link.
    #[serde(rename = "AddressPools")]
    pub address_pools: Link,
}

impl Fabric {
    /// Build a fabric with canonical sub-collections under it.
    pub fn new(collection: &ODataId, id: &str, fabric_type: Protocol) -> Self {
        let me = collection.child(id);
        Fabric {
            header: ResourceHeader::under(collection, id, Self::ODATA_TYPE, id)
                .describe(format!("{fabric_type:?} fabric managed by the OFMF")),
            fabric_type,
            max_zones: 1024,
            status: Status::ok(),
            switches: Link::to(me.child("Switches")),
            endpoints: Link::to(me.child("Endpoints")),
            zones: Link::to(me.child("Zones")),
            connections: Link::to(me.child("Connections")),
            address_pools: Link::to(me.child("AddressPools")),
        }
    }
}

impl Resource for Fabric {
    const ODATA_TYPE: &'static str = "#Fabric.v1_3_0.Fabric";

    fn odata_id(&self) -> &ODataId {
        &self.header.odata_id
    }
}

/// A switch within a fabric.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Switch {
    /// Common resource members.
    #[serde(flatten)]
    pub header: ResourceHeader,
    /// Transport technology.
    #[serde(rename = "SwitchType")]
    pub switch_type: Protocol,
    /// Health/state.
    #[serde(rename = "Status")]
    pub status: Status,
    /// Ports collection link.
    #[serde(rename = "Ports")]
    pub ports: Link,
    /// Total number of ports.
    #[serde(rename = "TotalSwitchWidth")]
    pub total_switch_width: u32,
}

impl Switch {
    /// Build a switch with a Ports sub-collection.
    pub fn new(collection: &ODataId, id: &str, switch_type: Protocol, width: u32) -> Self {
        let me = collection.child(id);
        Switch {
            header: ResourceHeader::under(collection, id, Self::ODATA_TYPE, id),
            switch_type,
            status: Status::ok(),
            ports: Link::to(me.child("Ports")),
            total_switch_width: width,
        }
    }
}

impl Resource for Switch {
    const ODATA_TYPE: &'static str = "#Switch.v1_9_0.Switch";

    fn odata_id(&self) -> &ODataId {
        &self.header.odata_id
    }
}

/// A port on a switch or device.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Port {
    /// Common resource members.
    #[serde(flatten)]
    pub header: ResourceHeader,
    /// Protocol carried.
    #[serde(rename = "PortProtocol")]
    pub port_protocol: Protocol,
    /// Nominal speed in Gbit/s.
    #[serde(rename = "CurrentSpeedGbps")]
    pub current_speed_gbps: f64,
    /// Number of lanes.
    #[serde(rename = "Width")]
    pub width: u32,
    /// Whether a cable is attached and trained.
    #[serde(rename = "LinkState")]
    pub link_state: String,
    /// Health/state.
    #[serde(rename = "Status")]
    pub status: Status,
}

impl Port {
    /// Build an enabled port.
    pub fn new(collection: &ODataId, id: &str, protocol: Protocol, gbps: f64) -> Self {
        Port {
            header: ResourceHeader::under(collection, id, Self::ODATA_TYPE, id),
            port_protocol: protocol,
            current_speed_gbps: gbps,
            width: 4,
            link_state: "Enabled".to_string(),
            status: Status::ok(),
        }
    }
}

impl Resource for Port {
    const ODATA_TYPE: &'static str = "#Port.v1_7_0.Port";

    fn odata_id(&self) -> &ODataId {
        &self.header.odata_id
    }
}

/// Describes the device behind an endpoint.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConnectedEntity {
    /// Role the entity plays.
    #[serde(rename = "EntityRole")]
    pub entity_role: EntityRole,
    /// Kind of device.
    #[serde(rename = "EntityType")]
    pub entity_type: EntityType,
    /// Link to the device resource (e.g. a MemoryChunk or Drive).
    #[serde(rename = "EntityLink", skip_serializing_if = "Option::is_none")]
    pub entity_link: Option<Link>,
}

/// A fabric endpoint: the attach point of a device or host to the fabric.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Endpoint {
    /// Common resource members.
    #[serde(flatten)]
    pub header: ResourceHeader,
    /// Protocol spoken by the endpoint.
    #[serde(rename = "EndpointProtocol")]
    pub endpoint_protocol: Protocol,
    /// The entities reachable through the endpoint.
    #[serde(rename = "ConnectedEntities")]
    pub connected_entities: Vec<ConnectedEntity>,
    /// Health/state.
    #[serde(rename = "Status")]
    pub status: Status,
}

impl Endpoint {
    /// Build an initiator endpoint for a compute system.
    pub fn initiator(collection: &ODataId, id: &str, protocol: Protocol, system: &ODataId) -> Self {
        Endpoint {
            header: ResourceHeader::under(collection, id, Self::ODATA_TYPE, id),
            endpoint_protocol: protocol,
            connected_entities: vec![ConnectedEntity {
                entity_role: EntityRole::Initiator,
                entity_type: EntityType::ComputerSystem,
                entity_link: Some(Link::to(system.clone())),
            }],
            status: Status::ok(),
        }
    }

    /// Build a target endpoint for a device resource.
    pub fn target(
        collection: &ODataId,
        id: &str,
        protocol: Protocol,
        entity_type: EntityType,
        device: &ODataId,
    ) -> Self {
        Endpoint {
            header: ResourceHeader::under(collection, id, Self::ODATA_TYPE, id),
            endpoint_protocol: protocol,
            connected_entities: vec![ConnectedEntity {
                entity_role: EntityRole::Target,
                entity_type,
                entity_link: Some(Link::to(device.clone())),
            }],
            status: Status::ok(),
        }
    }

    /// Role of the first connected entity (endpoints modeled here have one).
    pub fn role(&self) -> Option<EntityRole> {
        self.connected_entities.first().map(|e| e.entity_role)
    }
}

impl Resource for Endpoint {
    const ODATA_TYPE: &'static str = "#Endpoint.v1_8_0.Endpoint";

    fn odata_id(&self) -> &ODataId {
        &self.header.odata_id
    }
}

/// A zone: the unit of access control and isolation on a fabric.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Zone {
    /// Common resource members.
    #[serde(flatten)]
    pub header: ResourceHeader,
    /// Zone semantics.
    #[serde(rename = "ZoneType")]
    pub zone_type: ZoneType,
    /// Health/state.
    #[serde(rename = "Status")]
    pub status: Status,
    /// Link section.
    #[serde(rename = "Links")]
    pub links: ZoneLinks,
}

/// Link section of a zone.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ZoneLinks {
    /// Endpoints that are members of the zone.
    #[serde(rename = "Endpoints", default)]
    pub endpoints: Vec<Link>,
}

impl Zone {
    /// Build an endpoint zone containing `endpoints`.
    pub fn of_endpoints(collection: &ODataId, id: &str, endpoints: Vec<Link>) -> Self {
        Zone {
            header: ResourceHeader::under(collection, id, Self::ODATA_TYPE, id),
            zone_type: ZoneType::ZoneOfEndpoints,
            status: Status::ok(),
            links: ZoneLinks { endpoints },
        }
    }
}

impl Resource for Zone {
    const ODATA_TYPE: &'static str = "#Zone.v1_6_0.Zone";

    fn odata_id(&self) -> &ODataId {
        &self.header.odata_id
    }
}

/// A connection: grants initiator endpoints access to target resources.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Connection {
    /// Common resource members.
    #[serde(flatten)]
    pub header: ResourceHeader,
    /// What class of resource is being connected.
    #[serde(rename = "ConnectionType")]
    pub connection_type: String,
    /// Access granted.
    #[serde(rename = "MemoryChunkInfo", skip_serializing_if = "Vec::is_empty", default)]
    pub memory_chunk_info: Vec<ResourceAccess>,
    /// Volumes granted (storage connections).
    #[serde(rename = "VolumeInfo", skip_serializing_if = "Vec::is_empty", default)]
    pub volume_info: Vec<ResourceAccess>,
    /// Health/state.
    #[serde(rename = "Status")]
    pub status: Status,
    /// Link section.
    #[serde(rename = "Links")]
    pub links: ConnectionLinks,
}

/// Grants one access capability over one resource.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResourceAccess {
    /// Access level.
    #[serde(rename = "AccessCapabilities")]
    pub access_capabilities: Vec<AccessCapability>,
    /// The resource being accessed.
    #[serde(rename = "Resource")]
    pub resource: Link,
}

/// Link section of a connection.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ConnectionLinks {
    /// Initiator endpoints.
    #[serde(rename = "InitiatorEndpoints", default)]
    pub initiator_endpoints: Vec<Link>,
    /// Target endpoints.
    #[serde(rename = "TargetEndpoints", default)]
    pub target_endpoints: Vec<Link>,
}

impl Connection {
    /// Build a memory connection granting `initiator` RW access to `chunk`
    /// via `target`.
    pub fn memory(collection: &ODataId, id: &str, initiator: &ODataId, target: &ODataId, chunk: &ODataId) -> Self {
        Connection {
            header: ResourceHeader::under(collection, id, Self::ODATA_TYPE, id),
            connection_type: "Memory".to_string(),
            memory_chunk_info: vec![ResourceAccess {
                access_capabilities: vec![AccessCapability::Read, AccessCapability::ReadWrite],
                resource: Link::to(chunk.clone()),
            }],
            volume_info: Vec::new(),
            status: Status::ok(),
            links: ConnectionLinks {
                initiator_endpoints: vec![Link::to(initiator.clone())],
                target_endpoints: vec![Link::to(target.clone())],
            },
        }
    }

    /// Build a storage connection granting `initiator` RW access to `volume`
    /// via `target`.
    pub fn storage(collection: &ODataId, id: &str, initiator: &ODataId, target: &ODataId, volume: &ODataId) -> Self {
        Connection {
            header: ResourceHeader::under(collection, id, Self::ODATA_TYPE, id),
            connection_type: "Storage".to_string(),
            memory_chunk_info: Vec::new(),
            volume_info: vec![ResourceAccess {
                access_capabilities: vec![AccessCapability::Read, AccessCapability::ReadWrite],
                resource: Link::to(volume.clone()),
            }],
            status: Status::ok(),
            links: ConnectionLinks {
                initiator_endpoints: vec![Link::to(initiator.clone())],
                target_endpoints: vec![Link::to(target.clone())],
            },
        }
    }
}

impl Resource for Connection {
    const ODATA_TYPE: &'static str = "#Connection.v1_3_0.Connection";

    fn odata_id(&self) -> &ODataId {
        &self.header.odata_id
    }
}

/// An address pool used by the fabric manager for endpoint addressing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AddressPool {
    /// Common resource members.
    #[serde(flatten)]
    pub header: ResourceHeader,
    /// First address in the pool.
    #[serde(rename = "RangeStart")]
    pub range_start: u64,
    /// Number of addresses.
    #[serde(rename = "RangeSize")]
    pub range_size: u64,
    /// Health/state.
    #[serde(rename = "Status")]
    pub status: Status,
}

impl AddressPool {
    /// Build an address pool covering `[start, start+size)`.
    pub fn new(collection: &ODataId, id: &str, start: u64, size: u64) -> Self {
        AddressPool {
            header: ResourceHeader::under(collection, id, Self::ODATA_TYPE, id),
            range_start: start,
            range_size: size,
            status: Status::ok(),
        }
    }
}

impl Resource for AddressPool {
    const ODATA_TYPE: &'static str = "#AddressPool.v1_2_0.AddressPool";

    fn odata_id(&self) -> &ODataId {
        &self.header.odata_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::top;

    #[test]
    fn fabric_subcollections_are_under_fabric() {
        let f = Fabric::new(&ODataId::new(top::FABRICS), "CXL0", Protocol::CXL);
        assert_eq!(f.zones.odata_id.as_str(), "/redfish/v1/Fabrics/CXL0/Zones");
        assert!(f.endpoints.odata_id.is_under(f.odata_id()));
    }

    #[test]
    fn endpoint_roles() {
        let eps = ODataId::new("/redfish/v1/Fabrics/CXL0/Endpoints");
        let i = Endpoint::initiator(
            &eps,
            "cn01-ep",
            Protocol::CXL,
            &ODataId::new("/redfish/v1/Systems/cn01"),
        );
        assert_eq!(i.role(), Some(EntityRole::Initiator));
        let t = Endpoint::target(
            &eps,
            "mem0-ep",
            Protocol::CXL,
            EntityType::MemoryChunk,
            &ODataId::new("/redfish/v1/Chassis/mem0"),
        );
        assert_eq!(t.role(), Some(EntityRole::Target));
    }

    #[test]
    fn memory_connection_wire_shape() {
        let cons = ODataId::new("/redfish/v1/Fabrics/CXL0/Connections");
        let c = Connection::memory(
            &cons,
            "c1",
            &ODataId::new("/redfish/v1/Fabrics/CXL0/Endpoints/i"),
            &ODataId::new("/redfish/v1/Fabrics/CXL0/Endpoints/t"),
            &ODataId::new("/redfish/v1/Chassis/mem0/MemoryDomains/d0/MemoryChunks/ch1"),
        );
        let v = c.to_value();
        assert_eq!(v["ConnectionType"], "Memory");
        assert_eq!(v["MemoryChunkInfo"][0]["AccessCapabilities"][1], "ReadWrite");
        assert!(v.get("VolumeInfo").is_none()); // empty vec skipped
    }

    #[test]
    fn zone_of_endpoints_members() {
        let zones = ODataId::new("/redfish/v1/Fabrics/IB0/Zones");
        let z = Zone::of_endpoints(
            &zones,
            "z1",
            vec![
                Link::to("/redfish/v1/Fabrics/IB0/Endpoints/a"),
                Link::to("/redfish/v1/Fabrics/IB0/Endpoints/b"),
            ],
        );
        assert_eq!(z.links.endpoints.len(), 2);
        assert_eq!(z.to_value()["ZoneType"], "ZoneOfEndpoints");
    }
}
