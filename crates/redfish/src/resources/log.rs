//! Log resources: `LogEntry` records under a `LogService`.
//!
//! The OFMF keeps "a subscription-based central repository for telemetry
//! information, provisioning, and event logs" — the event-log half
//! materializes delivered events as `LogEntry` resources under
//! `/redfish/v1/Managers/OFMF/LogServices/EventLog/Entries`.

use crate::odata::{Link, ODataId, ResourceHeader};
use crate::resources::Resource;
use serde::{Deserialize, Serialize};

/// One event-log record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogEntry {
    /// Common resource members.
    #[serde(flatten)]
    pub header: ResourceHeader,
    /// Entry class per the Redfish schema.
    #[serde(rename = "EntryType")]
    pub entry_type: String,
    /// Severity: OK / Warning / Critical.
    #[serde(rename = "Severity")]
    pub severity: String,
    /// Human readable message.
    #[serde(rename = "Message")]
    pub message: String,
    /// Registry message id.
    #[serde(rename = "MessageId")]
    pub message_id: String,
    /// Milliseconds (service clock) of the underlying event.
    #[serde(rename = "Created")]
    pub created_ms: u64,
    /// The resource the event was about.
    #[serde(rename = "Links")]
    pub links: LogEntryLinks,
}

/// Link section of a log entry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogEntryLinks {
    /// Origin of the logged condition.
    #[serde(rename = "OriginOfCondition")]
    pub origin_of_condition: Link,
}

impl LogEntry {
    /// Build an event-class entry.
    pub fn event(
        collection: &ODataId,
        id: &str,
        severity: &str,
        message: &str,
        message_id: &str,
        origin: &ODataId,
        created_ms: u64,
    ) -> Self {
        LogEntry {
            header: ResourceHeader::under(collection, id, Self::ODATA_TYPE, "Event Log Entry"),
            entry_type: "Event".to_string(),
            severity: severity.to_string(),
            message: message.to_string(),
            message_id: message_id.to_string(),
            created_ms,
            links: LogEntryLinks {
                origin_of_condition: Link::to(origin.clone()),
            },
        }
    }
}

impl Resource for LogEntry {
    const ODATA_TYPE: &'static str = "#LogEntry.v1_15_0.LogEntry";

    fn odata_id(&self) -> &ODataId {
        &self.header.odata_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_wire_shape() {
        let col = ODataId::new("/redfish/v1/Managers/OFMF/LogServices/EventLog/Entries");
        let e = LogEntry::event(
            &col,
            "17",
            "Critical",
            "switch sw0 failed",
            "Platform.1.0.UnhandledExceptionDetected",
            &ODataId::new("/redfish/v1/Fabrics/CXL0/Switches/sw0"),
            4242,
        );
        let v = e.to_value();
        assert_eq!(v["EntryType"], "Event");
        assert_eq!(v["Severity"], "Critical");
        assert_eq!(v["Created"], 4242);
        assert_eq!(
            v["Links"]["OriginOfCondition"]["@odata.id"],
            "/redfish/v1/Fabrics/CXL0/Switches/sw0"
        );
    }
}
