//! The `ServiceRoot` resource at `/redfish/v1`.

use crate::odata::{Link, ODataId, ResourceHeader};
use crate::path::{top, SERVICE_ROOT};
use crate::resources::Resource;
use serde::{Deserialize, Serialize};

/// The entry point of the OFMF's unified Redfish tree.
///
/// Lists every top-level service: Systems, Chassis, Fabrics, Swordfish
/// StorageServices, Event/Task/Session/Telemetry services and the
/// CompositionService that the Composability Layer drives.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServiceRoot {
    /// Common resource members.
    #[serde(flatten)]
    pub header: ResourceHeader,
    /// Redfish protocol version implemented.
    #[serde(rename = "RedfishVersion")]
    pub redfish_version: String,
    /// Unique identity of this service instance.
    #[serde(rename = "UUID")]
    pub uuid: String,
    /// Systems collection link.
    #[serde(rename = "Systems")]
    pub systems: Link,
    /// Chassis collection link.
    #[serde(rename = "Chassis")]
    pub chassis: Link,
    /// Fabrics collection link.
    #[serde(rename = "Fabrics")]
    pub fabrics: Link,
    /// Swordfish storage services link.
    #[serde(rename = "StorageServices")]
    pub storage_services: Link,
    /// Event service link.
    #[serde(rename = "EventService")]
    pub event_service: Link,
    /// Task service link.
    #[serde(rename = "TaskService")]
    pub task_service: Link,
    /// Session service link.
    #[serde(rename = "SessionService")]
    pub session_service: Link,
    /// Telemetry service link.
    #[serde(rename = "TelemetryService")]
    pub telemetry_service: Link,
    /// Composition service link.
    #[serde(rename = "CompositionService")]
    pub composition_service: Link,
    /// Managers collection link.
    #[serde(rename = "Managers")]
    pub managers: Link,
}

impl ServiceRoot {
    /// Build the canonical OFMF service root.
    pub fn ofmf(uuid: &str) -> Self {
        ServiceRoot {
            header: ResourceHeader {
                odata_id: ODataId::new(SERVICE_ROOT),
                odata_type: Self::ODATA_TYPE.to_string(),
                id: "RootService".to_string(),
                name: "OpenFabrics Management Framework".to_string(),
                description: Some("Centralized composable management of disaggregated HPC resources".to_string()),
            },
            redfish_version: "1.15.0".to_string(),
            uuid: uuid.to_string(),
            systems: Link::to(top::SYSTEMS),
            chassis: Link::to(top::CHASSIS),
            fabrics: Link::to(top::FABRICS),
            storage_services: Link::to(top::STORAGE_SERVICES),
            event_service: Link::to(top::EVENT_SERVICE),
            task_service: Link::to(top::TASK_SERVICE),
            session_service: Link::to(top::SESSION_SERVICE),
            telemetry_service: Link::to(top::TELEMETRY_SERVICE),
            composition_service: Link::to(top::COMPOSITION_SERVICE),
            managers: Link::to(top::MANAGERS),
        }
    }
}

impl Resource for ServiceRoot {
    const ODATA_TYPE: &'static str = "#ServiceRoot.v1_15_0.ServiceRoot";

    fn odata_id(&self) -> &ODataId {
        &self.header.odata_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_root_wire_shape() {
        let v = ServiceRoot::ofmf("uuid-1").to_value();
        assert_eq!(v["@odata.id"], "/redfish/v1");
        assert_eq!(v["Fabrics"]["@odata.id"], "/redfish/v1/Fabrics");
        assert_eq!(v["RedfishVersion"], "1.15.0");
        assert_eq!(v["CompositionService"]["@odata.id"], "/redfish/v1/CompositionService");
        assert_eq!(v["Managers"]["@odata.id"], "/redfish/v1/Managers");
    }
}
