//! Telemetry resources: `MetricReport` and metric values.
//!
//! Agents stream hardware telemetry (temperatures, port counters,
//! utilization) into the OFMF telemetry service, which aggregates them into
//! periodic `MetricReport`s for subscribed clients.

use crate::odata::{ODataId, ResourceHeader};
use crate::resources::Resource;
use serde::{Deserialize, Serialize};

/// One sampled metric value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricValue {
    /// Metric identifier, e.g. `PortRxBandwidthGbps`.
    #[serde(rename = "MetricId")]
    pub metric_id: String,
    /// The sampled value rendered as a string per the schema.
    #[serde(rename = "MetricValue")]
    pub metric_value: String,
    /// The resource the sample describes.
    #[serde(rename = "MetricProperty")]
    pub metric_property: String,
    /// Milliseconds (service clock) of the sample.
    #[serde(rename = "Timestamp")]
    pub timestamp_ms: u64,
}

impl MetricValue {
    /// Build a sample of a numeric metric.
    pub fn sample(metric_id: &str, value: f64, origin: &ODataId, timestamp_ms: u64) -> Self {
        MetricValue {
            metric_id: metric_id.to_string(),
            metric_value: format!("{value}"),
            metric_property: origin.as_str().to_string(),
            timestamp_ms,
        }
    }

    /// Parse the value back to a float (telemetry consumers).
    pub fn value_f64(&self) -> Option<f64> {
        self.metric_value.parse().ok()
    }
}

/// A generated report: a window of samples.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetricReport {
    /// Common resource members.
    #[serde(flatten)]
    pub header: ResourceHeader,
    /// The samples in this report.
    #[serde(rename = "MetricValues")]
    pub metric_values: Vec<MetricValue>,
    /// Sequence number of the report.
    #[serde(rename = "ReportSequence")]
    pub report_sequence: u64,
}

impl MetricReport {
    /// Build a report.
    pub fn new(collection: &ODataId, id: &str, sequence: u64, values: Vec<MetricValue>) -> Self {
        MetricReport {
            header: ResourceHeader::under(collection, id, Self::ODATA_TYPE, id),
            metric_values: values,
            report_sequence: sequence,
        }
    }
}

impl Resource for MetricReport {
    const ODATA_TYPE: &'static str = "#MetricReport.v1_5_0.MetricReport";

    fn odata_id(&self) -> &ODataId {
        &self.header.odata_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_roundtrips_value() {
        let m = MetricValue::sample("TemperatureCelsius", 61.5, &ODataId::new("/redfish/v1/Chassis/c0"), 99);
        assert_eq!(m.value_f64(), Some(61.5));
        assert_eq!(m.metric_property, "/redfish/v1/Chassis/c0");
    }

    #[test]
    fn report_wire_shape() {
        let col = ODataId::new("/redfish/v1/TelemetryService/MetricReports");
        let r = MetricReport::new(&col, "r1", 3, vec![]);
        let v = r.to_value();
        assert_eq!(v["ReportSequence"], 3);
        assert!(v["MetricValues"].as_array().unwrap().is_empty());
    }
}
