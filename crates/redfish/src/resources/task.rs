//! The `Task` resource: long-running OFMF operations (compositions,
//! large zone changes) exposed with task monitors.

use crate::odata::{ODataId, ResourceHeader};
use crate::resources::Resource;
use serde::{Deserialize, Serialize};
use serde_json::Value;

/// Lifecycle of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum TaskState {
    /// Accepted, not yet started.
    #[default]
    New,
    /// Running.
    Running,
    /// Finished successfully.
    Completed,
    /// Finished with an error.
    Exception,
    /// Cancelled by a client.
    Cancelled,
}

impl TaskState {
    /// Whether the task has reached a terminal state.
    pub fn is_terminal(self) -> bool {
        matches!(self, TaskState::Completed | TaskState::Exception | TaskState::Cancelled)
    }
}

/// A long-running operation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Task {
    /// Common resource members.
    #[serde(flatten)]
    pub header: ResourceHeader,
    /// Lifecycle state.
    #[serde(rename = "TaskState")]
    pub task_state: TaskState,
    /// Percent complete (0-100).
    #[serde(rename = "PercentComplete")]
    pub percent_complete: u8,
    /// Result payload once completed (e.g. the composed system's id).
    #[serde(rename = "Payload", skip_serializing_if = "Option::is_none")]
    pub payload: Option<Value>,
    /// Human readable messages accumulated during execution.
    #[serde(rename = "Messages", default)]
    pub messages: Vec<String>,
}

impl Task {
    /// Build a new (not yet started) task.
    pub fn new(collection: &ODataId, id: &str, name: &str) -> Self {
        Task {
            header: ResourceHeader::under(collection, id, Self::ODATA_TYPE, name),
            task_state: TaskState::New,
            percent_complete: 0,
            payload: None,
            messages: Vec::new(),
        }
    }
}

impl Resource for Task {
    const ODATA_TYPE: &'static str = "#Task.v1_7_0.Task";

    fn odata_id(&self) -> &ODataId {
        &self.header.odata_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_states() {
        assert!(!TaskState::New.is_terminal());
        assert!(!TaskState::Running.is_terminal());
        assert!(TaskState::Completed.is_terminal());
        assert!(TaskState::Exception.is_terminal());
        assert!(TaskState::Cancelled.is_terminal());
    }

    #[test]
    fn task_wire_shape() {
        let t = Task::new(&ODataId::new("/redfish/v1/TaskService/Tasks"), "42", "Compose job42");
        let v = t.to_value();
        assert_eq!(v["TaskState"], "New");
        assert_eq!(v["PercentComplete"], 0);
        assert!(v.get("Payload").is_none());
    }
}
