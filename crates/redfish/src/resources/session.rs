//! The `Session` resource: authenticated client sessions.

use crate::odata::{ODataId, ResourceHeader};
use crate::resources::Resource;
use serde::{Deserialize, Serialize};

/// An authenticated session created by `POST /redfish/v1/SessionService/Sessions`.
///
/// The token itself is returned in the `X-Auth-Token` header, never in the
/// resource body (mirroring the Redfish spec).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Session {
    /// Common resource members.
    #[serde(flatten)]
    pub header: ResourceHeader,
    /// The authenticated user.
    #[serde(rename = "UserName")]
    pub user_name: String,
    /// Milliseconds (service clock) when the session was created.
    #[serde(rename = "CreatedTime")]
    pub created_time_ms: u64,
}

impl Session {
    /// Build a session resource.
    pub fn new(collection: &ODataId, id: &str, user: &str, created_time_ms: u64) -> Self {
        Session {
            header: ResourceHeader::under(collection, id, Self::ODATA_TYPE, "User Session"),
            user_name: user.to_string(),
            created_time_ms,
        }
    }
}

impl Resource for Session {
    const ODATA_TYPE: &'static str = "#Session.v1_6_0.Session";

    fn odata_id(&self) -> &ODataId {
        &self.header.odata_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_has_no_token_in_body() {
        let s = Session::new(&ODataId::new("/redfish/v1/SessionService/Sessions"), "1", "admin", 5);
        let v = s.to_value();
        assert_eq!(v["UserName"], "admin");
        assert!(v.get("Token").is_none());
        assert!(v.get("XAuthToken").is_none());
    }
}
