//! The `Chassis` resource: physical enclosures (nodes, JBOFs, memory
//! appliances, switch boxes).

use crate::enums::PowerState;
use crate::odata::{Link, ODataId, ResourceHeader};
use crate::resources::Resource;
use crate::status::Status;
use serde::{Deserialize, Serialize};

/// Physical container types relevant to a disaggregated rack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ChassisType {
    /// Rack-mount server sled.
    #[default]
    Sled,
    /// Full rack.
    Rack,
    /// Drive enclosure (Just-a-Bunch-Of-Flash).
    StorageEnclosure,
    /// Memory appliance enclosure.
    Enclosure,
    /// Switch chassis.
    Module,
}

/// A physical enclosure in the managed infrastructure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Chassis {
    /// Common resource members.
    #[serde(flatten)]
    pub header: ResourceHeader,
    /// Kind of enclosure.
    #[serde(rename = "ChassisType")]
    pub chassis_type: ChassisType,
    /// Manufacturer string.
    #[serde(rename = "Manufacturer")]
    pub manufacturer: String,
    /// Model string.
    #[serde(rename = "Model")]
    pub model: String,
    /// Serial number.
    #[serde(rename = "SerialNumber")]
    pub serial_number: String,
    /// Current power state.
    #[serde(rename = "PowerState")]
    pub power_state: PowerState,
    /// Health/state.
    #[serde(rename = "Status")]
    pub status: Status,
    /// Systems contained by / associated with this chassis.
    #[serde(rename = "Links")]
    pub links: ChassisLinks,
}

/// Link section of a chassis.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ChassisLinks {
    /// Computer systems housed in the chassis.
    #[serde(rename = "ComputerSystems", default)]
    pub computer_systems: Vec<Link>,
}

impl Chassis {
    /// Build a chassis under the given collection.
    pub fn new(collection: &ODataId, id: &str, chassis_type: ChassisType, model: &str) -> Self {
        Chassis {
            header: ResourceHeader::under(collection, id, Self::ODATA_TYPE, id),
            chassis_type,
            manufacturer: "OpenFabrics Simulated Hardware".to_string(),
            model: model.to_string(),
            serial_number: format!("SN-{id}"),
            power_state: PowerState::On,
            status: Status::ok(),
            links: ChassisLinks::default(),
        }
    }
}

impl Resource for Chassis {
    const ODATA_TYPE: &'static str = "#Chassis.v1_23_0.Chassis";

    fn odata_id(&self) -> &ODataId {
        &self.header.odata_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chassis_wire_shape() {
        let c = Chassis::new(
            &ODataId::new("/redfish/v1/Chassis"),
            "jbof0",
            ChassisType::StorageEnclosure,
            "JBOF-64",
        );
        let v = c.to_value();
        assert_eq!(v["@odata.id"], "/redfish/v1/Chassis/jbof0");
        assert_eq!(v["ChassisType"], "StorageEnclosure");
        assert_eq!(v["PowerState"], "On");
        assert_eq!(v["Status"]["State"], "Enabled");
    }
}
