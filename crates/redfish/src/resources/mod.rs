//! Redfish / Swordfish resource schema types.
//!
//! Each submodule models one schema family. All types serialize to the wire
//! shape mandated by the DMTF/SNIA schemas (PascalCase members, `@odata.*`
//! annotations) and can be inserted into the [`crate::registry::Registry`]
//! via [`Resource::to_value`].

pub mod chassis;
pub mod events;
pub mod fabric;
pub mod log;
pub mod memory;
pub mod processor;
pub mod service_root;
pub mod session;
pub mod storage;
pub mod system;
pub mod task;
pub mod telemetry;

use crate::odata::ODataId;
use serde::Serialize;
use serde_json::Value;

/// Implemented by every schema struct in this module tree.
pub trait Resource: Serialize {
    /// The `@odata.type` string of this schema version.
    const ODATA_TYPE: &'static str;

    /// The canonical URI of this instance.
    fn odata_id(&self) -> &ODataId;

    /// Serialize to the registry/wire JSON document.
    fn to_value(&self) -> Value {
        // ofmf-lint: allow(no-panic-path, "the vendored serde_json::to_value wraps to_json and is Ok-infallible")
        serde_json::to_value(self).expect("schema types always serialize")
    }
}

pub use chassis::Chassis;
pub use events::{Event, EventDestination, EventRecord, EventType};
pub use fabric::{AddressPool, Connection, Endpoint, Fabric, Port, Switch, Zone};
pub use log::LogEntry;
pub use memory::{Memory, MemoryChunk, MemoryDomain};
pub use processor::Processor;
pub use service_root::ServiceRoot;
pub use session::Session;
pub use storage::{Capacity, Drive, StoragePool, StorageService, Volume};
pub use system::ComputerSystem;
pub use task::{Task, TaskState};
pub use telemetry::{MetricReport, MetricValue};
