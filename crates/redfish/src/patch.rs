//! RFC 7386 JSON merge-patch.
//!
//! Redfish `PATCH` semantics are merge semantics: objects merge recursively,
//! `null` deletes a member, and any non-object value (including arrays)
//! replaces the target wholesale.

use serde_json::{Map, Value};

/// Apply `patch` to `target` in place, per RFC 7386.
pub fn merge_patch(target: &mut Value, patch: &Value) {
    match patch {
        Value::Object(patch_map) => {
            if !target.is_object() {
                *target = Value::Object(Map::new());
            }
            let Some(target_map) = target.as_object_mut() else {
                return; // unreachable: target was just coerced to an object
            };
            for (k, v) in patch_map {
                if v.is_null() {
                    target_map.remove(k);
                } else {
                    merge_patch(target_map.entry(k.clone()).or_insert(Value::Null), v);
                }
            }
        }
        other => {
            *target = other.clone();
        }
    }
}

/// Compute the set of top-level member names a patch would modify.
///
/// The registry uses this to reject PATCHes that touch read-only members
/// (`@odata.id`, `Id`, …) before applying anything.
pub fn touched_members(patch: &Value) -> Vec<&str> {
    match patch {
        Value::Object(m) => m.keys().map(String::as_str).collect(),
        _ => Vec::new(),
    }
}

/// Members that the Redfish specification forbids clients from patching.
pub const READ_ONLY_MEMBERS: [&str; 5] = ["@odata.id", "@odata.type", "@odata.etag", "Id", "Members"];

/// Return the first read-only member a patch attempts to touch, if any.
pub fn first_read_only_violation(patch: &Value) -> Option<&str> {
    touched_members(patch)
        .into_iter()
        .find(|m| READ_ONLY_MEMBERS.contains(m))
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn merges_nested_objects() {
        let mut t = json!({"a": {"b": 1, "c": 2}, "d": 3});
        merge_patch(&mut t, &json!({"a": {"b": 9}}));
        assert_eq!(t, json!({"a": {"b": 9, "c": 2}, "d": 3}));
    }

    #[test]
    fn null_deletes_member() {
        let mut t = json!({"a": 1, "b": 2});
        merge_patch(&mut t, &json!({"a": null}));
        assert_eq!(t, json!({"b": 2}));
    }

    #[test]
    fn arrays_replace_wholesale() {
        let mut t = json!({"a": [1, 2, 3]});
        merge_patch(&mut t, &json!({"a": [9]}));
        assert_eq!(t, json!({"a": [9]}));
    }

    #[test]
    fn scalar_replaces_object() {
        let mut t = json!({"a": {"deep": true}});
        merge_patch(&mut t, &json!({"a": 5}));
        assert_eq!(t, json!({"a": 5}));
    }

    #[test]
    fn patch_onto_non_object_coerces() {
        let mut t = json!(42);
        merge_patch(&mut t, &json!({"a": 1}));
        assert_eq!(t, json!({"a": 1}));
    }

    #[test]
    fn detects_read_only_violation() {
        assert_eq!(first_read_only_violation(&json!({"Id": "x"})), Some("Id"));
        assert_eq!(first_read_only_violation(&json!({"Name": "x"})), None);
        assert_eq!(
            first_read_only_violation(&json!({"@odata.etag": "y", "Name": "x"})),
            Some("@odata.etag")
        );
    }

    #[test]
    fn empty_patch_is_identity() {
        let orig = json!({"a": {"b": [1,2]}, "c": null});
        let mut t = orig.clone();
        merge_patch(&mut t, &json!({}));
        assert_eq!(t, orig);
    }
}
