//! OData envelope types shared by every Redfish resource.
//!
//! Redfish payloads are JSON documents annotated with OData control
//! information: `@odata.id` (the canonical URI of the resource),
//! `@odata.type` (the schema type, e.g. `#ComputerSystem.v1_20_0.ComputerSystem`)
//! and `@odata.etag` (opaque version tag used for optimistic concurrency).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Canonical URI identifying a resource within the Redfish tree, e.g.
/// `/redfish/v1/Systems/cn01`.
///
/// `ODataId` is a thin newtype over `String` that normalizes trailing
/// slashes away so that `/redfish/v1/Systems/` and `/redfish/v1/Systems`
/// compare equal, as required by the Redfish specification.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ODataId(String);

impl ODataId {
    /// Create a new id, normalizing any trailing slash.
    pub fn new(raw: impl Into<String>) -> Self {
        let mut s: String = raw.into();
        while s.len() > 1 && s.ends_with('/') {
            s.pop();
        }
        ODataId(s)
    }

    /// The string form of the id.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Append a child segment, e.g. `/redfish/v1/Systems` + `cn01`.
    pub fn child(&self, segment: &str) -> ODataId {
        ODataId::new(format!("{}/{}", self.0, segment))
    }

    /// The parent id, if any (`/redfish/v1` has parent `/redfish`).
    pub fn parent(&self) -> Option<ODataId> {
        let idx = self.0.rfind('/')?;
        if idx == 0 {
            if self.0.len() > 1 {
                return Some(ODataId::new("/"));
            }
            return None;
        }
        // ofmf-lint: allow(no-panic-path, "idx is the byte offset of a '/' found in this string; slicing at it is valid")
        Some(ODataId::new(&self.0[..idx]))
    }

    /// The final path segment (the resource's `Id` member by convention).
    pub fn leaf(&self) -> &str {
        self.0.rsplit('/').next().unwrap_or("")
    }

    /// True if `self` is `other` or a descendant of `other`.
    pub fn is_under(&self, other: &ODataId) -> bool {
        self == other || (self.0.starts_with(other.as_str()) && self.0.as_bytes().get(other.0.len()) == Some(&b'/'))
    }

    /// Crate-internal: wrap a raw string *without* normalization. Used by
    /// the registry to build exclusive range bounds (`{path}/`, `{path}0`)
    /// that normalization would destroy.
    pub(crate) fn raw(s: String) -> ODataId {
        ODataId(s)
    }
}

impl fmt::Display for ODataId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ODataId {
    fn from(s: &str) -> Self {
        ODataId::new(s)
    }
}

impl From<String> for ODataId {
    fn from(s: String) -> Self {
        ODataId::new(s)
    }
}

/// Opaque entity tag for optimistic concurrency control.
///
/// The registry bumps a monotonically increasing version on every mutation;
/// the wire form is the Redfish weak-validator style `W/"<n>"`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ETag(pub u64);

impl ETag {
    /// Initial tag for a freshly created resource.
    pub const INITIAL: ETag = ETag(1);

    /// The next tag after a mutation.
    #[must_use]
    pub fn bumped(self) -> ETag {
        ETag(self.0 + 1)
    }

    /// Wire form, e.g. `W/"7"`.
    pub fn to_header(self) -> String {
        format!("W/\"{}\"", self.0)
    }

    /// Parse the wire form produced by [`ETag::to_header`]. Also accepts a
    /// bare strong validator `"7"`.
    pub fn parse_header(s: &str) -> Option<ETag> {
        let s = s.trim();
        let s = s.strip_prefix("W/").unwrap_or(s);
        let s = s.strip_prefix('"')?.strip_suffix('"')?;
        s.parse().ok().map(ETag)
    }
}

/// The members common to every Redfish resource: identity, schema type,
/// human name and optional description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceHeader {
    /// Canonical URI (`@odata.id`).
    #[serde(rename = "@odata.id")]
    pub odata_id: ODataId,
    /// Schema type (`@odata.type`), e.g. `#Fabric.v1_3_0.Fabric`.
    #[serde(rename = "@odata.type")]
    pub odata_type: String,
    /// Resource identifier within its collection.
    #[serde(rename = "Id")]
    pub id: String,
    /// Human readable name.
    #[serde(rename = "Name")]
    pub name: String,
    /// Optional free-form description.
    #[serde(rename = "Description", skip_serializing_if = "Option::is_none")]
    pub description: Option<String>,
}

impl ResourceHeader {
    /// Build a header for a resource living under `collection`.
    pub fn under(collection: &ODataId, id: &str, odata_type: &str, name: &str) -> Self {
        ResourceHeader {
            odata_id: collection.child(id),
            odata_type: odata_type.to_string(),
            id: id.to_string(),
            name: name.to_string(),
            description: None,
        }
    }

    /// Attach a description (builder style).
    #[must_use]
    pub fn describe(mut self, d: impl Into<String>) -> Self {
        self.description = Some(d.into());
        self
    }
}

/// A reference to another resource, serialized as `{"@odata.id": "..."}`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Link {
    /// The target resource URI.
    #[serde(rename = "@odata.id")]
    pub odata_id: ODataId,
}

impl Link {
    /// Reference the given id.
    pub fn to(id: impl Into<ODataId>) -> Self {
        Link { odata_id: id.into() }
    }
}

impl From<&ODataId> for Link {
    fn from(id: &ODataId) -> Self {
        Link { odata_id: id.clone() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn odata_id_normalizes_trailing_slash() {
        assert_eq!(ODataId::new("/redfish/v1/"), ODataId::new("/redfish/v1"));
        assert_eq!(ODataId::new("/").as_str(), "/");
    }

    #[test]
    fn odata_id_child_and_parent_roundtrip() {
        let base = ODataId::new("/redfish/v1/Systems");
        let child = base.child("cn01");
        assert_eq!(child.as_str(), "/redfish/v1/Systems/cn01");
        assert_eq!(child.parent().unwrap(), base);
        assert_eq!(child.leaf(), "cn01");
    }

    #[test]
    fn odata_id_is_under_requires_segment_boundary() {
        let a = ODataId::new("/redfish/v1/Systems");
        let b = ODataId::new("/redfish/v1/Systems/cn01");
        let c = ODataId::new("/redfish/v1/SystemsExtra");
        assert!(b.is_under(&a));
        assert!(a.is_under(&a));
        assert!(!c.is_under(&a));
        assert!(!a.is_under(&b));
    }

    #[test]
    fn etag_header_roundtrip() {
        let t = ETag(42);
        assert_eq!(ETag::parse_header(&t.to_header()), Some(t));
        assert_eq!(ETag::parse_header("\"7\""), Some(ETag(7)));
        assert_eq!(ETag::parse_header("garbage"), None);
    }

    #[test]
    fn header_serializes_odata_members() {
        let h = ResourceHeader::under(
            &ODataId::new("/redfish/v1/Fabrics"),
            "CXL0",
            "#Fabric.v1_3_0.Fabric",
            "CXL fabric 0",
        );
        let v = serde_json::to_value(&h).unwrap();
        assert_eq!(v["@odata.id"], "/redfish/v1/Fabrics/CXL0");
        assert_eq!(v["@odata.type"], "#Fabric.v1_3_0.Fabric");
        assert_eq!(v["Id"], "CXL0");
    }

    #[test]
    fn parent_of_root() {
        assert_eq!(ODataId::new("/redfish").parent(), Some(ODataId::new("/")));
        assert_eq!(ODataId::new("/").parent(), None);
    }
}
