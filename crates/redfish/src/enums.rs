//! Cross-resource Redfish enumerations.
//!
//! These mirror the DMTF schema enumerations that the OFMF relies on to
//! describe heterogeneous fabrics and disaggregated components in a
//! vendor-neutral way.

use serde::{Deserialize, Serialize};

/// Fabric / transport protocol of a port, endpoint or connection.
///
/// The OFMF's whole purpose is to hide these behind one API: "enable client
/// Managers to efficiently connect workloads with resources … without having
/// to worry about the underlying network technology".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Protocol {
    /// Compute Express Link (memory pooling, accelerators).
    CXL,
    /// Gen-Z memory-semantic fabric (legacy; absorbed by CXL).
    GenZ,
    /// InfiniBand.
    InfiniBand,
    /// Ethernet (including RoCE).
    Ethernet,
    /// PCI Express.
    PCIe,
    /// NVMe over Fabrics.
    NVMeOverFabrics,
    /// Plain (local) NVMe.
    NVMe,
    /// TCP/IP overlay.
    TCP,
}

impl Protocol {
    /// All protocols the simulator models.
    pub const ALL: [Protocol; 8] = [
        Protocol::CXL,
        Protocol::GenZ,
        Protocol::InfiniBand,
        Protocol::Ethernet,
        Protocol::PCIe,
        Protocol::NVMeOverFabrics,
        Protocol::NVMe,
        Protocol::TCP,
    ];

    /// Whether endpoints on this protocol can expose byte-addressable memory.
    pub fn supports_memory_semantics(self) -> bool {
        matches!(self, Protocol::CXL | Protocol::GenZ | Protocol::PCIe)
    }

    /// Whether this protocol carries block-storage traffic.
    pub fn supports_block_storage(self) -> bool {
        matches!(
            self,
            Protocol::NVMeOverFabrics | Protocol::NVMe | Protocol::Ethernet | Protocol::InfiniBand | Protocol::TCP
        )
    }
}

/// Power state of a chassis or system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum PowerState {
    /// Powered on.
    #[default]
    On,
    /// Powered off.
    Off,
    /// Powering on.
    PoweringOn,
    /// Powering off.
    PoweringOff,
    /// Suspended to RAM.
    Paused,
}

/// Reset actions accepted by `ComputerSystem.Reset`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResetType {
    /// Power on.
    On,
    /// Orderly shutdown then off.
    GracefulShutdown,
    /// Immediate power removal.
    ForceOff,
    /// Orderly restart.
    GracefulRestart,
    /// Immediate restart.
    ForceRestart,
    /// Non-maskable interrupt.
    Nmi,
    /// Power cycle.
    PowerCycle,
}

/// The role an endpoint plays in a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EntityRole {
    /// Source of requests (e.g. a compute node's initiator port).
    Initiator,
    /// Services requests (e.g. a memory appliance or NVMe subsystem).
    Target,
    /// Both roles.
    Both,
}

/// What kind of device an endpoint represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EntityType {
    /// A processor/compute node.
    Processor,
    /// A block-storage drive.
    Drive,
    /// A byte-addressable memory device (e.g. CXL Type-3).
    MemoryChunk,
    /// An accelerator (GPU).
    Accelerator,
    /// A network controller / NIC.
    NetworkController,
    /// A storage subsystem (NVMe-oF subsystem).
    StorageSubsystem,
    /// A whole computer system.
    ComputerSystem,
}

/// Zone semantics per the Redfish `Zone` schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum ZoneType {
    /// Default zone containing unassigned endpoints.
    Default,
    /// Zone of endpoints — the common access-control grouping.
    #[default]
    ZoneOfEndpoints,
    /// Zone of zones (hierarchical composition).
    ZoneOfZones,
    /// Zone of resource blocks used for composition requests.
    ZoneOfResourceBlocks,
}

/// Access capability granted by a `Connection`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessCapability {
    /// Read only.
    Read,
    /// Read and write.
    ReadWrite,
}

/// Type of a `ComputerSystem`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum SystemType {
    /// A conventional physical server.
    #[default]
    Physical,
    /// A system composed from disaggregated resource blocks — the OFMF's
    /// raison d'être.
    Composed,
    /// A virtual machine.
    Virtual,
}

/// Memory device technology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum MemoryType {
    /// Conventional DRAM.
    #[default]
    DRAM,
    /// Non-volatile DIMM.
    #[serde(rename = "NVDIMM_N")]
    NvdimmN,
    /// CXL-attached memory expander (Type-3 / MLD).
    CXLAttached,
    /// Storage-class memory.
    IntelOptane,
}

/// Type of a drive's media.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum MediaType {
    /// NAND flash SSD.
    #[default]
    SSD,
    /// Spinning disk.
    HDD,
    /// Storage-class memory device.
    SCM,
}

/// Direction of a metric's better-ness, used by telemetry consumers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MetricDirection {
    /// Higher values are better (e.g. bandwidth).
    HigherIsBetter,
    /// Lower values are better (e.g. latency, temperature).
    LowerIsBetter,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_capabilities() {
        assert!(Protocol::CXL.supports_memory_semantics());
        assert!(!Protocol::CXL.supports_block_storage());
        assert!(Protocol::NVMeOverFabrics.supports_block_storage());
        assert!(!Protocol::NVMeOverFabrics.supports_memory_semantics());
        assert!(Protocol::InfiniBand.supports_block_storage());
    }

    #[test]
    fn enums_serialize_as_schema_strings() {
        assert_eq!(
            serde_json::to_value(Protocol::NVMeOverFabrics).unwrap(),
            "NVMeOverFabrics"
        );
        assert_eq!(
            serde_json::to_value(ZoneType::ZoneOfEndpoints).unwrap(),
            "ZoneOfEndpoints"
        );
        assert_eq!(serde_json::to_value(ResetType::ForceRestart).unwrap(), "ForceRestart");
    }

    #[test]
    fn all_protocols_roundtrip_serde() {
        for p in Protocol::ALL {
            let v = serde_json::to_value(p).unwrap();
            let back: Protocol = serde_json::from_value(v).unwrap();
            assert_eq!(back, p);
        }
    }
}
