//! The Redfish `Status` object: health and lifecycle state of a resource.

use serde::{Deserialize, Serialize};

/// Health of a resource as reported by its provider.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Health {
    /// Resource is functioning normally.
    #[default]
    OK,
    /// Resource is functioning but in a degraded manner (e.g. one of two
    /// redundant links lost).
    Warning,
    /// Resource is not functioning.
    Critical,
}

impl Health {
    /// Combine two health values pessimistically (used when rolling up the
    /// health of an aggregate from its members).
    #[must_use]
    pub fn worst(self, other: Health) -> Health {
        use Health::*;
        match (self, other) {
            (Critical, _) | (_, Critical) => Critical,
            (Warning, _) | (_, Warning) => Warning,
            _ => OK,
        }
    }
}

/// Lifecycle state of a resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum State {
    /// Fully operational.
    #[default]
    Enabled,
    /// Administratively disabled.
    Disabled,
    /// Present but not yet initialized.
    StandbyOffline,
    /// Being initialized or composed.
    Starting,
    /// Resource is absent (slot exists, device does not).
    Absent,
    /// The resource is reserved by a composition request but not yet bound.
    Reserved,
    /// Permanently unavailable (e.g. failed hardware awaiting service).
    UnavailableOffline,
    /// Deferring to another resource for management.
    Deferring,
    /// In service/maintenance mode.
    InTest,
    /// Update in progress.
    Updating,
    /// Qualified/quiesced state used during fail-over.
    Quiesced,
}

impl State {
    /// Whether a resource in this state may be bound into a new composition.
    pub fn is_allocatable(self) -> bool {
        matches!(self, State::Enabled | State::StandbyOffline)
    }
}

/// The composite `Status` member present on nearly every Redfish resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Status {
    /// Health of this resource alone.
    #[serde(rename = "Health")]
    pub health: Health,
    /// Worst health of this resource and all its dependents.
    #[serde(rename = "HealthRollup", skip_serializing_if = "Option::is_none")]
    pub health_rollup: Option<Health>,
    /// Lifecycle state.
    #[serde(rename = "State")]
    pub state: State,
}

impl Status {
    /// Enabled + OK.
    pub fn ok() -> Status {
        Status::default()
    }

    /// Enabled + Critical.
    pub fn critical() -> Status {
        Status {
            health: Health::Critical,
            health_rollup: None,
            state: State::Enabled,
        }
    }

    /// Absent resource (no health reported in rollup).
    pub fn absent() -> Status {
        Status {
            health: Health::OK,
            health_rollup: None,
            state: State::Absent,
        }
    }

    /// Builder: set the state.
    #[must_use]
    pub fn with_state(mut self, state: State) -> Status {
        self.state = state;
        self
    }

    /// Builder: set the health.
    #[must_use]
    pub fn with_health(mut self, health: Health) -> Status {
        self.health = health;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worst_health_ordering() {
        assert_eq!(Health::OK.worst(Health::Warning), Health::Warning);
        assert_eq!(Health::Warning.worst(Health::Critical), Health::Critical);
        assert_eq!(Health::OK.worst(Health::OK), Health::OK);
        assert_eq!(Health::Critical.worst(Health::OK), Health::Critical);
    }

    #[test]
    fn allocatable_states() {
        assert!(State::Enabled.is_allocatable());
        assert!(State::StandbyOffline.is_allocatable());
        assert!(!State::Absent.is_allocatable());
        assert!(!State::Reserved.is_allocatable());
        assert!(!State::UnavailableOffline.is_allocatable());
    }

    #[test]
    fn status_serializes_pascal_case() {
        let v = serde_json::to_value(Status::ok()).unwrap();
        assert_eq!(v["Health"], "OK");
        assert_eq!(v["State"], "Enabled");
        assert!(v.get("HealthRollup").is_none());
    }
}
