//! Error type carrying an HTTP status code and a Redfish-style message
//! payload (`error.@Message.ExtendedInfo`).

use crate::odata::ODataId;
use serde_json::{json, Value};
use std::fmt;

/// Result alias used across the crate.
pub type RedfishResult<T> = Result<T, RedfishError>;

/// Errors produced by registry operations and service handlers.
///
/// Each variant maps to the HTTP status code the Redfish specification
/// prescribes and renders to a spec-shaped JSON error body via
/// [`RedfishError::to_body`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RedfishError {
    /// 404 — the URI does not name a resource.
    NotFound(ODataId),
    /// 409 — a resource already exists at the URI.
    AlreadyExists(ODataId),
    /// 412 — the supplied `If-Match` ETag did not match.
    PreconditionFailed {
        /// Resource whose ETag mismatched.
        id: ODataId,
        /// ETag the caller supplied, in wire form.
        supplied: String,
    },
    /// 400 — the request body is not acceptable for the target.
    BadRequest(String),
    /// 400 — a query parameter carried a value of the wrong type
    /// (e.g. `$top=abc`), per DSP0266.
    QueryParameterValueTypeError {
        /// The offending query parameter, e.g. `$top`.
        parameter: String,
        /// The value the caller supplied.
        value: String,
    },
    /// 400 — a referenced resource link points at nothing.
    DanglingLink {
        /// The resource holding the bad link.
        from: ODataId,
        /// The missing target.
        to: ODataId,
    },
    /// 405 — the operation is not allowed on this resource (e.g. DELETE on
    /// a collection, PATCH on a read-only resource).
    MethodNotAllowed(String),
    /// 409 — the operation conflicts with resource state (e.g. deleting a
    /// zone that still has connections).
    Conflict(String),
    /// 401 — missing or invalid session credentials.
    Unauthorized,
    /// 503 — the responsible agent is not reachable.
    AgentUnavailable(String),
    /// 503 — the agent's circuit breaker is Open; retry after the cooldown.
    CircuitOpen {
        /// Fabric whose breaker is open.
        fabric: String,
        /// Milliseconds until the breaker admits a probe (drives the
        /// `Retry-After` header).
        retry_after_ms: u64,
    },
    /// 503 — the REST front end is at its connection cap and is shedding
    /// load; retry after the advertised interval.
    Busy {
        /// Seconds the client should wait before reconnecting (drives the
        /// `Retry-After` header).
        retry_after_secs: u64,
    },
    /// 507 — a composition request cannot be satisfied from available pools.
    InsufficientResources(String),
    /// 500 — internal invariant violation.
    Internal(String),
}

impl RedfishError {
    /// HTTP status code prescribed by the Redfish specification.
    pub fn http_status(&self) -> u16 {
        match self {
            RedfishError::NotFound(_) => 404,
            RedfishError::AlreadyExists(_) | RedfishError::Conflict(_) => 409,
            RedfishError::PreconditionFailed { .. } => 412,
            RedfishError::BadRequest(_)
            | RedfishError::DanglingLink { .. }
            | RedfishError::QueryParameterValueTypeError { .. } => 400,
            RedfishError::MethodNotAllowed(_) => 405,
            RedfishError::Unauthorized => 401,
            RedfishError::AgentUnavailable(_) | RedfishError::CircuitOpen { .. } | RedfishError::Busy { .. } => 503,
            RedfishError::InsufficientResources(_) => 507,
            RedfishError::Internal(_) => 500,
        }
    }

    /// Registry message id in the `Base.1.x.MessageId` style.
    pub fn message_id(&self) -> &'static str {
        match self {
            RedfishError::NotFound(_) => "Base.1.0.ResourceMissingAtURI",
            RedfishError::AlreadyExists(_) => "Base.1.0.ResourceAlreadyExists",
            RedfishError::PreconditionFailed { .. } => "Base.1.0.PreconditionFailed",
            RedfishError::BadRequest(_) => "Base.1.0.MalformedJSON",
            RedfishError::QueryParameterValueTypeError { .. } => "Base.1.0.QueryParameterValueTypeError",
            RedfishError::DanglingLink { .. } => "Base.1.0.ResourceMissingAtURI",
            RedfishError::MethodNotAllowed(_) => "Base.1.0.OperationNotAllowed",
            RedfishError::Conflict(_) => "Base.1.0.ResourceInUse",
            RedfishError::Unauthorized => "Base.1.0.NoValidSession",
            RedfishError::AgentUnavailable(_) | RedfishError::CircuitOpen { .. } | RedfishError::Busy { .. } => {
                "Base.1.0.ServiceTemporarilyUnavailable"
            }
            RedfishError::InsufficientResources(_) => "Base.1.0.InsufficientResources",
            RedfishError::Internal(_) => "Base.1.0.InternalError",
        }
    }

    /// Seconds a client should wait before retrying, for errors where the
    /// REST layer advertises a `Retry-After` header.
    pub fn retry_after_secs(&self) -> Option<u64> {
        match self {
            RedfishError::CircuitOpen { retry_after_ms, .. } => Some(retry_after_ms.div_ceil(1000).max(1)),
            RedfishError::AgentUnavailable(_) => Some(1),
            RedfishError::Busy { retry_after_secs } => Some((*retry_after_secs).max(1)),
            _ => None,
        }
    }

    /// Render the spec-shaped error body.
    pub fn to_body(&self) -> Value {
        json!({
            "error": {
                "code": self.message_id(),
                "message": self.to_string(),
                "@Message.ExtendedInfo": [{
                    "MessageId": self.message_id(),
                    "Message": self.to_string(),
                    "Severity": if self.http_status() >= 500 { "Critical" } else { "Warning" },
                    "Resolution": "Consult the OFMF documentation for the failing operation."
                }]
            }
        })
    }
}

impl fmt::Display for RedfishError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RedfishError::NotFound(id) => write!(f, "no resource at {id}"),
            RedfishError::AlreadyExists(id) => write!(f, "resource already exists at {id}"),
            RedfishError::PreconditionFailed { id, supplied } => {
                write!(f, "etag {supplied} does not match current version of {id}")
            }
            RedfishError::BadRequest(m) => write!(f, "bad request: {m}"),
            RedfishError::QueryParameterValueTypeError { parameter, value } => {
                write!(f, "the value '{value}' for query parameter {parameter} is of a different type than the parameter can accept")
            }
            RedfishError::DanglingLink { from, to } => {
                write!(f, "resource {from} links to missing resource {to}")
            }
            RedfishError::MethodNotAllowed(m) => write!(f, "operation not allowed: {m}"),
            RedfishError::Conflict(m) => write!(f, "conflict: {m}"),
            RedfishError::Unauthorized => write!(f, "missing or invalid session credentials"),
            RedfishError::AgentUnavailable(m) => write!(f, "agent unavailable: {m}"),
            RedfishError::CircuitOpen { fabric, retry_after_ms } => {
                write!(
                    f,
                    "circuit breaker open for fabric {fabric}; retry in {retry_after_ms} ms"
                )
            }
            RedfishError::Busy { retry_after_secs } => {
                write!(f, "server at connection capacity; retry in {retry_after_secs} s")
            }
            RedfishError::InsufficientResources(m) => {
                write!(f, "insufficient resources to satisfy request: {m}")
            }
            RedfishError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for RedfishError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_codes_match_spec() {
        assert_eq!(RedfishError::NotFound(ODataId::new("/x")).http_status(), 404);
        assert_eq!(RedfishError::Unauthorized.http_status(), 401);
        assert_eq!(RedfishError::InsufficientResources("mem".into()).http_status(), 507);
        assert_eq!(
            RedfishError::PreconditionFailed {
                id: ODataId::new("/x"),
                supplied: "W/\"1\"".into()
            }
            .http_status(),
            412
        );
    }

    #[test]
    fn body_is_spec_shaped() {
        let b = RedfishError::NotFound(ODataId::new("/redfish/v1/Nope")).to_body();
        assert!(b["error"]["code"].as_str().unwrap().starts_with("Base."));
        assert!(b["error"]["@Message.ExtendedInfo"].as_array().unwrap().len() == 1);
    }
}
