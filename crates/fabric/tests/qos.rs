//! Bandwidth-reservation (QoS) tests: admission control, accounting,
//! QoS-aware fail-over.

use fabric_sim::failure::Fault;
use fabric_sim::ids::{EndpointId, LinkId};
use fabric_sim::topology::{presets, Attach, TopologyBuilder};
use fabric_sim::{FabricConfig, FabricSim};
use std::collections::BTreeSet;

/// 2 compute + 2 memory devices on a 2×2 leaf–spine; access 100 G, trunks
/// 400 G.
fn sim() -> FabricSim {
    let mut devs = presets::compute_nodes(2, 8, 16);
    devs.extend(presets::memory_appliances(2, 1 << 20));
    let topo = TopologyBuilder::new()
        .access_gbps(100.0)
        .trunk_gbps(400.0)
        .leaf_spine(2, 2, devs);
    FabricSim::new(FabricConfig::new("QOS", "CXL", 1), topo)
}

fn zone_all(s: &mut FabricSim) -> fabric_sim::ids::ZoneId {
    let members: BTreeSet<EndpointId> = (0..s.topology().endpoints.len() as u32).map(EndpointId).collect();
    s.create_zone("all", members).unwrap()
}

#[test]
fn reservations_account_and_release() {
    let mut s = sim();
    let z = zone_all(&mut s);
    let cn = s.topology().initiator_endpoints()[0];
    let mem = s.topology().target_endpoints()[0];
    let c = s.connect_qos("c", z, cn, mem, 64, 40.0).unwrap();
    let path = s.connection(c).unwrap().path.clone();
    for l in &path.links {
        assert_eq!(s.reserved_gbps(*l), 40.0);
    }
    s.disconnect(c).unwrap();
    for l in &path.links {
        assert_eq!(s.reserved_gbps(*l), 0.0);
    }
}

#[test]
fn admission_control_rejects_oversubscription() {
    let mut s = sim();
    let z = zone_all(&mut s);
    let cn = s.topology().initiator_endpoints()[0];
    let mem = s.topology().target_endpoints()[0];
    // The access link is 100 G: a 60 G + another 60 G cannot share it.
    s.connect_qos("a", z, cn, mem, 1, 60.0).unwrap();
    let err = s.connect_qos("b", z, cn, mem, 1, 60.0).unwrap_err();
    assert!(matches!(err, fabric_sim::fabric::FabricError::Unroutable { .. }));
    // A 30 G fits alongside.
    s.connect_qos("c", z, cn, mem, 1, 30.0).unwrap();
    // Best-effort connections are always admitted.
    s.connect("d", z, cn, mem, 1).unwrap();
}

#[test]
fn qos_failover_respects_reservations() {
    let mut s = sim();
    let z = zone_all(&mut s);
    // cn00 on leaf0, mem01 on leaf1: cross-spine path.
    let cn = s.topology().initiator_endpoints()[0];
    let mem = s.topology().target_endpoints()[1];
    let c = s.connect_qos("c", z, cn, mem, 1, 50.0).unwrap();
    let before = s.connection(c).unwrap().path.clone();
    // Find a trunk on the path and kill it; the connection must fail over
    // and re-reserve on the new path.
    let trunk = before
        .links
        .iter()
        .find(|l| {
            let e = &s.topology().links[l.index()];
            matches!((e.a, e.b), (Attach::Switch(_), Attach::Switch(_)))
        })
        .copied()
        .expect("crosses a trunk");
    let (fo, lost) = s.inject(Fault::LinkDown(trunk));
    assert_eq!((fo, lost), (1, 0));
    let after = s.connection(c).unwrap().path.clone();
    assert_ne!(before.links, after.links);
    for l in &after.links {
        assert_eq!(s.reserved_gbps(*l), 50.0, "re-reserved on the new path");
    }
    assert_eq!(s.reserved_gbps(trunk), 0.0, "old trunk released");
}

#[test]
fn saturated_alternate_path_loses_the_connection() {
    let mut s = sim();
    let z = zone_all(&mut s);
    let cn = s.topology().initiator_endpoints()[0];
    let mem0 = s.topology().target_endpoints()[0]; // leaf0 (same leaf as cn00)
    let mem1 = s.topology().target_endpoints()[1]; // leaf1 (cross-spine)
                                                   // 70 G via spine for mem1 and 70 G local for mem0 share cn00's access
                                                   // link (100 G)? No — that link would be oversubscribed; use separate
                                                   // initiators instead.
    let cn1 = s.topology().initiator_endpoints()[1]; // leaf1
                                                     // cn1(leaf1) → mem0(leaf0) crosses a spine with 90 G.
    let c = s.connect_qos("hog", z, cn1, mem0, 1, 90.0).unwrap();
    let path = s.connection(c).unwrap().path.clone();
    let spine_used: Vec<LinkId> = path
        .links
        .iter()
        .filter(|l| {
            let e = &s.topology().links[l.index()];
            matches!((e.a, e.b), (Attach::Switch(_), Attach::Switch(_)))
        })
        .copied()
        .collect();
    assert!(!spine_used.is_empty());
    // cn00's access link also carries 90 G now? No: different initiator.
    // Saturate the *other* spine's trunks by a second 350 G connection so a
    // fail-over of `c` has nowhere to go (trunk residual < 90 G).
    let c2 = s.connect_qos("filler", z, cn, mem1, 1, 90.0).unwrap();
    let filler_path = s.connection(c2).unwrap().path.clone();
    // Kill the trunk `c` uses. Its only alternative spine is carrying the
    // filler; whether it fits depends on residuals — with 400 G trunks both
    // fit, so instead kill the access link to prove loss handling.
    let access = path.links[0];
    let (_fo, lost) = s.inject(Fault::LinkDown(access));
    // cn1's access link died: no path at all → connection lost, everything
    // released.
    assert_eq!(lost, 1);
    // The lost connection's reservation is released everywhere it was the
    // only holder; links shared with the filler keep the filler's 90 G.
    for l in &path.links {
        let expect = if filler_path.links.contains(l) { 90.0 } else { 0.0 };
        assert_eq!(s.reserved_gbps(*l), expect, "link {l}");
    }
    // The filler is untouched.
    for l in &filler_path.links {
        assert_eq!(s.reserved_gbps(*l), 90.0);
    }
    let _ = spine_used;
}

#[test]
fn residual_reporting() {
    let mut s = sim();
    let z = zone_all(&mut s);
    let cn = s.topology().initiator_endpoints()[0];
    let mem = s.topology().target_endpoints()[0];
    let c = s.connect_qos("c", z, cn, mem, 1, 25.0).unwrap();
    let l = s.connection(c).unwrap().path.links[0];
    let cap = s.topology().links[l.index()].bandwidth_gbps;
    assert_eq!(s.residual_gbps(l), cap - 25.0);
}
