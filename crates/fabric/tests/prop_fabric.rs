//! Property tests: routing validity, fail-over safety, capacity
//! conservation on random topologies under random fault sequences.

use fabric_sim::device::{Device, DeviceKind};
use fabric_sim::failure::Fault;
use fabric_sim::ids::{EndpointId, LinkId, SwitchId};
use fabric_sim::routing::{path_healthy, route};
use fabric_sim::topology::{presets, TopologyBuilder};
use fabric_sim::{FabricConfig, FabricSim};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn arb_topology() -> impl Strategy<Value = fabric_sim::Topology> {
    (2usize..6, 2usize..5, 1usize..5, 1usize..4).prop_flat_map(|(spines, leaves, nodes, mems)| {
        prop_oneof![
            Just((spines, leaves, nodes, mems, true)),
            Just((spines, leaves, nodes, mems, false)),
        ]
        .prop_map(move |(s, l, n, m, leaf_spine)| {
            let mut devs = presets::compute_nodes(n, 8, 16);
            devs.extend(presets::memory_appliances(m, 4096));
            if leaf_spine {
                TopologyBuilder::new().leaf_spine(s, l, devs)
            } else {
                TopologyBuilder::new().ring((s + l).max(3), devs)
            }
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any route the router returns is actually traversable: contiguous,
    /// healthy, endpoint-to-endpoint.
    #[test]
    fn routes_are_valid(topo in arb_topology()) {
        let inits = topo.initiator_endpoints();
        let targets = topo.target_endpoints();
        for &i in &inits {
            for &t in &targets {
                if let Some(p) = route(&topo, i, t) {
                    prop_assert!(path_healthy(&topo, &p, i));
                    prop_assert!(p.bandwidth_gbps > 0.0);
                    // Hop latencies add up.
                    let sum: u64 = p.links.iter().map(|l| topo.links[l.index()].latency_ns).sum();
                    prop_assert_eq!(sum, p.latency_ns);
                }
            }
        }
    }

    /// Under any fault sequence, every connection the fabric still reports
    /// has a healthy programmed path, and device capacity accounting stays
    /// conserved (allocated + free == total).
    #[test]
    fn failover_never_leaves_broken_connections(
        topo in arb_topology(),
        faults in prop::collection::vec((0u32..64, any::<bool>()), 0..24),
    ) {
        let links = topo.links.len();
        let switches = topo.switches.len();
        let mut sim = FabricSim::new(FabricConfig::new("P", "CXL", 1), topo);
        let all: BTreeSet<EndpointId> =
            (0..sim.topology().endpoints.len() as u32).map(EndpointId).collect();
        let zone = sim.create_zone("all", all).unwrap();

        // Establish as many 1-unit connections as possible.
        let inits = sim.topology().initiator_endpoints();
        let targets = sim.topology().target_endpoints();
        for (k, (&i, &t)) in inits.iter().zip(targets.iter().cycle()).enumerate() {
            let _ = sim.connect(&format!("c{k}"), zone, i, t, 1);
        }

        for (raw, down) in faults {
            let fault = if raw % 2 == 0 {
                let l = raw % links.max(1) as u32;
                if down { Fault::LinkDown(LinkId(l)) } else { Fault::LinkUp(LinkId(l)) }
            } else {
                let s = raw % switches.max(1) as u32;
                if down { Fault::SwitchDown(SwitchId(s)) } else { Fault::SwitchUp(SwitchId(s)) }
            };
            sim.inject(fault);

            // Every surviving connection's path is healthy.
            for (cid, initiator, _) in sim.connections() {
                let c = sim.connection(cid).unwrap();
                prop_assert!(
                    path_healthy(sim.topology(), &c.path, initiator),
                    "connection {cid} has a broken path after {fault:?}"
                );
            }
            // Capacity conservation on every device.
            for d in &sim.topology().devices {
                prop_assert!(d.allocated() <= d.total_capacity());
                prop_assert_eq!(d.allocated() + d.free_capacity(), d.total_capacity());
            }
        }
    }

    /// Allocate/release sequences never oversubscribe and always restore.
    #[test]
    fn device_capacity_conservation(sizes in prop::collection::vec(1u64..2000, 1..40)) {
        let mut d = Device::new("m", DeviceKind::MemoryAppliance { capacity_mib: 10_000 });
        let mut handles = Vec::new();
        for s in sizes {
            match d.allocate(s) {
                Ok(h) => handles.push(h),
                Err(_) => {
                    prop_assert!(d.free_capacity() < s, "refusal only when it truly doesn't fit");
                }
            }
            prop_assert!(d.allocated() <= 10_000);
        }
        for h in handles {
            d.release(h).unwrap();
        }
        prop_assert_eq!(d.free_capacity(), 10_000);
        prop_assert_eq!(d.allocation_count(), 0);
    }

    /// Telemetry sampling is a pure function of (seed, tick, topology).
    #[test]
    fn telemetry_deterministic(seed in any::<u64>()) {
        let mk = || {
            let mut devs = presets::compute_nodes(2, 8, 16);
            devs.extend(presets::gpus(1, "A100", 40));
            TopologyBuilder::new().star(devs)
        };
        let t1 = mk();
        let t2 = mk();
        let mut s1 = fabric_sim::telemetry::Sampler::new(seed);
        let mut s2 = fabric_sim::telemetry::Sampler::new(seed);
        prop_assert_eq!(s1.sample_all(&t1), s2.sample_all(&t2));
        prop_assert_eq!(s1.sample_all(&t1), s2.sample_all(&t2));
    }
}
