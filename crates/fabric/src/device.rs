//! Device models: the disaggregated components behind fabric endpoints.
//!
//! Each device kind carries its allocatable capacity and tracks outstanding
//! allocations, because the whole point of composability is carving shared
//! pools (memory chunks, NVMe namespaces, GPU grants) out of these devices.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// What a device is and what it can provide.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DeviceKind {
    /// A compute node (initiator): cores and local memory.
    ComputeNode {
        /// Physical cores.
        cores: u32,
        /// Local DRAM in GiB.
        memory_gib: u64,
    },
    /// A pooled GPU (target).
    Gpu {
        /// Marketing model name.
        model: String,
        /// Device memory in GiB.
        memory_gib: u64,
    },
    /// A CXL Type-3 memory appliance (target): pool of byte-addressable
    /// capacity carved into chunks.
    MemoryAppliance {
        /// Total capacity in MiB.
        capacity_mib: u64,
    },
    /// An NVMe-oF subsystem (target): pool of block capacity carved into
    /// namespaces.
    NvmeSubsystem {
        /// Total capacity in bytes.
        capacity_bytes: u64,
    },
}

impl DeviceKind {
    /// Whether the device initiates traffic (compute) or serves it.
    pub fn is_initiator(&self) -> bool {
        matches!(self, DeviceKind::ComputeNode { .. })
    }
}

/// Errors from device capacity operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceError {
    /// Requested more capacity than remains.
    Insufficient {
        /// Amount requested.
        requested: u64,
        /// Amount available.
        available: u64,
    },
    /// Allocation handle not found.
    UnknownAllocation(u64),
    /// Operation not valid for this device kind.
    WrongKind,
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceError::Insufficient { requested, available } => {
                write!(f, "requested {requested} but only {available} available")
            }
            DeviceError::UnknownAllocation(h) => write!(f, "no allocation with handle {h}"),
            DeviceError::WrongKind => write!(f, "operation not valid for this device kind"),
        }
    }
}

impl std::error::Error for DeviceError {}

/// A device instance with capacity bookkeeping.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Device {
    /// Stable name used for Redfish ids.
    pub name: String,
    /// What the device is.
    pub kind: DeviceKind,
    /// Whether the device is currently reachable/functional.
    pub healthy: bool,
    /// Outstanding allocations: handle → size (MiB for memory appliances,
    /// bytes for NVMe subsystems, always 1 for GPU grants).
    allocations: BTreeMap<u64, u64>,
    next_handle: u64,
}

impl Device {
    /// Create a healthy device.
    pub fn new(name: impl Into<String>, kind: DeviceKind) -> Self {
        Device {
            name: name.into(),
            kind,
            healthy: true,
            allocations: BTreeMap::new(),
            next_handle: 1,
        }
    }

    /// Total allocatable capacity (units per kind; 1 for a GPU, 0 for a
    /// compute node, which is never carved).
    pub fn total_capacity(&self) -> u64 {
        match &self.kind {
            DeviceKind::ComputeNode { .. } => 0,
            DeviceKind::Gpu { .. } => 1,
            DeviceKind::MemoryAppliance { capacity_mib } => *capacity_mib,
            DeviceKind::NvmeSubsystem { capacity_bytes } => *capacity_bytes,
        }
    }

    /// Capacity currently allocated.
    pub fn allocated(&self) -> u64 {
        self.allocations.values().sum()
    }

    /// Capacity still free.
    pub fn free_capacity(&self) -> u64 {
        self.total_capacity().saturating_sub(self.allocated())
    }

    /// Carve `size` units out of the device. GPUs only accept `size == 1`
    /// and at most one outstanding grant (whole-device assignment).
    pub fn allocate(&mut self, size: u64) -> Result<u64, DeviceError> {
        match &self.kind {
            DeviceKind::ComputeNode { .. } => return Err(DeviceError::WrongKind),
            DeviceKind::Gpu { .. } if size != 1 => return Err(DeviceError::WrongKind),
            _ => {}
        }
        let free = self.free_capacity();
        if size > free {
            return Err(DeviceError::Insufficient {
                requested: size,
                available: free,
            });
        }
        let handle = self.next_handle;
        self.next_handle += 1;
        self.allocations.insert(handle, size);
        Ok(handle)
    }

    /// Return an allocation to the pool.
    pub fn release(&mut self, handle: u64) -> Result<u64, DeviceError> {
        self.allocations
            .remove(&handle)
            .ok_or(DeviceError::UnknownAllocation(handle))
    }

    /// Size of an outstanding allocation.
    pub fn allocation_size(&self, handle: u64) -> Option<u64> {
        self.allocations.get(&handle).copied()
    }

    /// Number of outstanding allocations.
    pub fn allocation_count(&self) -> usize {
        self.allocations.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_appliance_carving() {
        let mut d = Device::new("mem0", DeviceKind::MemoryAppliance { capacity_mib: 1000 });
        let h1 = d.allocate(600).unwrap();
        assert_eq!(d.free_capacity(), 400);
        assert!(matches!(
            d.allocate(500),
            Err(DeviceError::Insufficient { available: 400, .. })
        ));
        d.release(h1).unwrap();
        assert_eq!(d.free_capacity(), 1000);
    }

    #[test]
    fn gpu_whole_device_grant() {
        let mut g = Device::new(
            "gpu0",
            DeviceKind::Gpu {
                model: "A100".into(),
                memory_gib: 40,
            },
        );
        assert!(matches!(g.allocate(2), Err(DeviceError::WrongKind)));
        let h = g.allocate(1).unwrap();
        assert!(matches!(g.allocate(1), Err(DeviceError::Insufficient { .. })));
        g.release(h).unwrap();
        assert_eq!(g.free_capacity(), 1);
    }

    #[test]
    fn compute_node_is_not_carvable() {
        let mut c = Device::new(
            "cn0",
            DeviceKind::ComputeNode {
                cores: 56,
                memory_gib: 128,
            },
        );
        assert!(matches!(c.allocate(1), Err(DeviceError::WrongKind)));
        assert_eq!(c.total_capacity(), 0);
        assert!(c.kind.is_initiator());
    }

    #[test]
    fn release_unknown_handle_fails() {
        let mut d = Device::new("mem0", DeviceKind::MemoryAppliance { capacity_mib: 10 });
        assert!(matches!(d.release(99), Err(DeviceError::UnknownAllocation(99))));
    }

    #[test]
    fn handles_are_unique_across_release() {
        let mut d = Device::new("mem0", DeviceKind::MemoryAppliance { capacity_mib: 100 });
        let h1 = d.allocate(10).unwrap();
        d.release(h1).unwrap();
        let h2 = d.allocate(10).unwrap();
        assert_ne!(h1, h2);
    }
}
