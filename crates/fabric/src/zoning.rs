//! Zones and connections: the fabric-manager state an Agent manipulates.
//!
//! A **zone** is a visibility group of endpoints; a **connection** binds an
//! initiator endpoint to a target endpoint *and* to a concrete allocation on
//! the target device (a memory chunk handle, an NVMe namespace handle, or a
//! whole-GPU grant). Connections are only legal between endpoints that share
//! a zone — the enforcement real fabric managers provide.

use crate::ids::{ConnectionId, EndpointId, ZoneId};
use crate::routing::Path;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A zone: a named set of endpoints.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ZoneState {
    /// Stable name used for Redfish ids.
    pub name: String,
    /// Member endpoints.
    pub members: BTreeSet<EndpointId>,
}

/// An established connection.
#[derive(Debug, Clone)]
pub struct ConnectionState {
    /// Stable name used for Redfish ids.
    pub name: String,
    /// The initiator endpoint.
    pub initiator: EndpointId,
    /// The target endpoint.
    pub target: EndpointId,
    /// Allocation handle on the target device backing this connection.
    pub allocation: u64,
    /// Units allocated (MiB / bytes / 1 for GPU).
    pub size: u64,
    /// The zone that authorized the connection.
    pub zone: ZoneId,
    /// The currently programmed route.
    pub path: Path,
    /// Bandwidth reserved along the path (Gbit/s; 0 = best effort).
    pub reserved_gbps: f64,
    /// Number of times the connection has failed over to a new path.
    pub failover_count: u32,
}

/// Errors from zoning operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZoningError {
    /// Zone id does not exist.
    UnknownZone(ZoneId),
    /// Connection id does not exist.
    UnknownConnection(ConnectionId),
    /// Initiator and target are not both members of the zone.
    NotZoned {
        /// Offending endpoint.
        endpoint: EndpointId,
        /// The zone checked.
        zone: ZoneId,
    },
    /// The zone still authorizes live connections.
    ZoneInUse(ZoneId),
}

impl std::fmt::Display for ZoningError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZoningError::UnknownZone(z) => write!(f, "unknown zone {z}"),
            ZoningError::UnknownConnection(c) => write!(f, "unknown connection {c}"),
            ZoningError::NotZoned { endpoint, zone } => {
                write!(f, "endpoint {endpoint} is not a member of zone {zone}")
            }
            ZoningError::ZoneInUse(z) => write!(f, "zone {z} still authorizes connections"),
        }
    }
}

impl std::error::Error for ZoningError {}

/// Zoning/connection tables for one fabric.
#[derive(Debug, Default)]
pub struct ZoningTable {
    zones: BTreeMap<ZoneId, ZoneState>,
    connections: BTreeMap<ConnectionId, ConnectionState>,
    next_zone: u32,
    next_conn: u32,
}

impl ZoningTable {
    /// Empty table.
    pub fn new() -> Self {
        ZoningTable::default()
    }

    /// Create a zone over `members`.
    pub fn create_zone(&mut self, name: impl Into<String>, members: BTreeSet<EndpointId>) -> ZoneId {
        let id = ZoneId(self.next_zone);
        self.next_zone += 1;
        self.zones.insert(
            id,
            ZoneState {
                name: name.into(),
                members,
            },
        );
        id
    }

    /// Look up a zone.
    pub fn zone(&self, id: ZoneId) -> Result<&ZoneState, ZoningError> {
        self.zones.get(&id).ok_or(ZoningError::UnknownZone(id))
    }

    /// Add an endpoint to an existing zone.
    pub fn add_to_zone(&mut self, id: ZoneId, ep: EndpointId) -> Result<(), ZoningError> {
        self.zones
            .get_mut(&id)
            .ok_or(ZoningError::UnknownZone(id))?
            .members
            .insert(ep);
        Ok(())
    }

    /// Delete a zone; fails while any connection still references it.
    pub fn delete_zone(&mut self, id: ZoneId) -> Result<(), ZoningError> {
        if !self.zones.contains_key(&id) {
            return Err(ZoningError::UnknownZone(id));
        }
        if self.connections.values().any(|c| c.zone == id) {
            return Err(ZoningError::ZoneInUse(id));
        }
        self.zones.remove(&id);
        Ok(())
    }

    /// Validate that both endpoints are members of `zone`, then record the
    /// connection. The caller supplies the routed path and the allocation it
    /// already carved on the target device.
    #[allow(clippy::too_many_arguments)]
    pub fn connect(
        &mut self,
        name: impl Into<String>,
        zone: ZoneId,
        initiator: EndpointId,
        target: EndpointId,
        allocation: u64,
        size: u64,
        path: Path,
        reserved_gbps: f64,
    ) -> Result<ConnectionId, ZoningError> {
        let z = self.zones.get(&zone).ok_or(ZoningError::UnknownZone(zone))?;
        for ep in [initiator, target] {
            if !z.members.contains(&ep) {
                return Err(ZoningError::NotZoned { endpoint: ep, zone });
            }
        }
        let id = ConnectionId(self.next_conn);
        self.next_conn += 1;
        self.connections.insert(
            id,
            ConnectionState {
                name: name.into(),
                initiator,
                target,
                allocation,
                size,
                zone,
                path,
                reserved_gbps,
                failover_count: 0,
            },
        );
        Ok(id)
    }

    /// Remove a connection, returning its state (so the caller can release
    /// the device allocation).
    pub fn disconnect(&mut self, id: ConnectionId) -> Result<ConnectionState, ZoningError> {
        self.connections.remove(&id).ok_or(ZoningError::UnknownConnection(id))
    }

    /// Look up a connection.
    pub fn connection(&self, id: ConnectionId) -> Result<&ConnectionState, ZoningError> {
        self.connections.get(&id).ok_or(ZoningError::UnknownConnection(id))
    }

    /// Mutable connection access (fail-over updates).
    pub fn connection_mut(&mut self, id: ConnectionId) -> Result<&mut ConnectionState, ZoningError> {
        self.connections.get_mut(&id).ok_or(ZoningError::UnknownConnection(id))
    }

    /// Iterate all connections.
    pub fn connections(&self) -> impl Iterator<Item = (ConnectionId, &ConnectionState)> {
        self.connections.iter().map(|(k, v)| (*k, v))
    }

    /// Iterate all zones.
    pub fn zones(&self) -> impl Iterator<Item = (ZoneId, &ZoneState)> {
        self.zones.iter().map(|(k, v)| (*k, v))
    }

    /// Connection count.
    pub fn connection_count(&self) -> usize {
        self.connections.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path0() -> Path {
        Path {
            links: Vec::new(),
            latency_ns: 0,
            bandwidth_gbps: 100.0,
        }
    }

    fn set(eps: &[u32]) -> BTreeSet<EndpointId> {
        eps.iter().map(|&e| EndpointId(e)).collect()
    }

    #[test]
    fn connect_requires_zone_membership() {
        let mut t = ZoningTable::new();
        let z = t.create_zone("z", set(&[0, 1]));
        assert!(t
            .connect("c", z, EndpointId(0), EndpointId(1), 1, 64, path0(), 0.0)
            .is_ok());
        let err = t
            .connect("c2", z, EndpointId(0), EndpointId(2), 1, 64, path0(), 0.0)
            .unwrap_err();
        assert_eq!(
            err,
            ZoningError::NotZoned {
                endpoint: EndpointId(2),
                zone: z
            }
        );
    }

    #[test]
    fn zone_deletion_blocked_while_in_use() {
        let mut t = ZoningTable::new();
        let z = t.create_zone("z", set(&[0, 1]));
        let c = t
            .connect("c", z, EndpointId(0), EndpointId(1), 1, 64, path0(), 0.0)
            .unwrap();
        assert_eq!(t.delete_zone(z), Err(ZoningError::ZoneInUse(z)));
        t.disconnect(c).unwrap();
        assert!(t.delete_zone(z).is_ok());
        assert!(matches!(t.zone(z), Err(ZoningError::UnknownZone(_))));
    }

    #[test]
    fn disconnect_returns_allocation() {
        let mut t = ZoningTable::new();
        let z = t.create_zone("z", set(&[0, 1]));
        let c = t
            .connect("c", z, EndpointId(0), EndpointId(1), 42, 1024, path0(), 0.0)
            .unwrap();
        let st = t.disconnect(c).unwrap();
        assert_eq!(st.allocation, 42);
        assert_eq!(st.size, 1024);
        assert!(matches!(t.disconnect(c), Err(ZoningError::UnknownConnection(_))));
    }

    #[test]
    fn grow_zone_membership() {
        let mut t = ZoningTable::new();
        let z = t.create_zone("z", set(&[0]));
        assert!(t
            .connect("c", z, EndpointId(0), EndpointId(9), 1, 1, path0(), 0.0)
            .is_err());
        t.add_to_zone(z, EndpointId(9)).unwrap();
        assert!(t
            .connect("c", z, EndpointId(0), EndpointId(9), 1, 1, path0(), 0.0)
            .is_ok());
    }
}
