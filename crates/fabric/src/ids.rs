//! Typed indices for fabric entities.
//!
//! Using dedicated newtypes (rather than bare `usize`) makes it impossible
//! to index the switch table with an endpoint id — the kind of mix-up a
//! fabric manager cannot afford.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
        pub struct $name(pub u32);

        impl $name {
            /// The raw index.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// A switch in the fabric graph.
    SwitchId, "sw"
);
id_type!(
    /// An inter-switch or switch-to-endpoint link.
    LinkId, "link"
);
id_type!(
    /// An endpoint: the attach point of a device to the fabric.
    EndpointId, "ep"
);
id_type!(
    /// A device behind an endpoint.
    DeviceId, "dev"
);
id_type!(
    /// A zone (visibility/access-control group of endpoints).
    ZoneId, "zone"
);
id_type!(
    /// An established initiator→target connection.
    ConnectionId, "conn"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_prefix() {
        assert_eq!(SwitchId(3).to_string(), "sw3");
        assert_eq!(EndpointId(0).to_string(), "ep0");
        assert_eq!(ConnectionId(12).to_string(), "conn12");
    }

    #[test]
    fn ids_are_ordered() {
        assert!(SwitchId(1) < SwitchId(2));
        assert_eq!(DeviceId(4).index(), 4);
    }
}
