//! Deterministic hardware telemetry generation.
//!
//! Real fabrics stream counters and sensors; the simulator synthesizes
//! plausible, *reproducible* streams (seeded per entity) so the OFMF
//! telemetry service and its tests have real data to aggregate.

use crate::ids::{DeviceId, LinkId, SwitchId};
use crate::rng::stream;
use crate::topology::Topology;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One telemetry sample from the substrate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// What produced the sample.
    pub source: Source,
    /// Metric name, e.g. `TemperatureCelsius`.
    pub metric: &'static str,
    /// Sampled value.
    pub value: f64,
    /// Sample tick (the sampler's logical clock).
    pub tick: u64,
}

/// Telemetry source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Source {
    /// A switch sensor.
    Switch(SwitchId),
    /// A link counter.
    Link(LinkId),
    /// A device sensor.
    Device(DeviceId),
}

/// Seeded telemetry sampler over a topology.
#[derive(Debug)]
pub struct Sampler {
    seed: u64,
    tick: u64,
}

impl Sampler {
    /// New sampler with the given seed.
    pub fn new(seed: u64) -> Self {
        Sampler { seed, tick: 0 }
    }

    /// Current tick.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Sample every entity once and advance the tick.
    ///
    /// Values are drawn around physically plausible operating points:
    /// switch ASIC temperature ~55 °C, link utilization 0–100 % of nominal
    /// bandwidth, device power draw by kind. Unhealthy entities report
    /// degenerate values (0 utilization, elevated temperature), which is how
    /// threshold-based alerting in the telemetry service gets exercised.
    pub fn sample_all(&mut self, topo: &Topology) -> Vec<Sample> {
        let t = self.tick;
        self.tick += 1;
        let mut out = Vec::with_capacity(topo.switches.len() + topo.links.len() + topo.devices.len());
        for (i, sw) in topo.switches.iter().enumerate() {
            let mut rng = stream(self.seed, "switch-temp", (i as u64) << 32 | t);
            let base = if sw.healthy { 55.0 } else { 88.0 };
            out.push(Sample {
                source: Source::Switch(SwitchId(i as u32)),
                metric: "TemperatureCelsius",
                value: base + rng.gen_range(-3.0..3.0),
                tick: t,
            });
        }
        for (i, link) in topo.links.iter().enumerate() {
            let mut rng = stream(self.seed, "link-util", (i as u64) << 32 | t);
            let util = if link.healthy { rng.gen_range(0.0..1.0) } else { 0.0 };
            out.push(Sample {
                source: Source::Link(LinkId(i as u32)),
                metric: "RxBandwidthGbps",
                value: util * link.bandwidth_gbps,
                tick: t,
            });
        }
        for (i, dev) in topo.devices.iter().enumerate() {
            let mut rng = stream(self.seed, "dev-power", (i as u64) << 32 | t);
            let nominal = match &dev.kind {
                crate::device::DeviceKind::ComputeNode { cores, .. } => 3.0 * f64::from(*cores),
                crate::device::DeviceKind::Gpu { .. } => 300.0,
                crate::device::DeviceKind::MemoryAppliance { .. } => 120.0,
                crate::device::DeviceKind::NvmeSubsystem { .. } => 80.0,
            };
            let value = if dev.healthy {
                nominal * rng.gen_range(0.55..1.0)
            } else {
                0.0
            };
            out.push(Sample {
                source: Source::Device(DeviceId(i as u32)),
                metric: "PowerConsumedWatts",
                value,
                tick: t,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{presets, TopologyBuilder};

    fn topo() -> Topology {
        let mut d = presets::compute_nodes(2, 8, 16);
        d.extend(presets::gpus(1, "A100", 40));
        TopologyBuilder::new().star(d)
    }

    #[test]
    fn sampling_is_reproducible() {
        let t = topo();
        let a = Sampler::new(11).sample_all(&t);
        let b = Sampler::new(11).sample_all(&t);
        assert_eq!(a, b);
        let c = Sampler::new(12).sample_all(&t);
        assert_ne!(a, c);
    }

    #[test]
    fn unhealthy_entities_report_degenerate_values() {
        let mut t = topo();
        t.links[0].healthy = false;
        t.switches[0].healthy = false;
        let samples = Sampler::new(1).sample_all(&t);
        let link0 = samples.iter().find(|s| s.source == Source::Link(LinkId(0))).unwrap();
        assert_eq!(link0.value, 0.0);
        let sw0 = samples
            .iter()
            .find(|s| s.source == Source::Switch(SwitchId(0)))
            .unwrap();
        assert!(sw0.value > 80.0, "failed switch runs hot: {}", sw0.value);
    }

    #[test]
    fn ticks_advance() {
        let t = topo();
        let mut s = Sampler::new(5);
        let a = s.sample_all(&t);
        let b = s.sample_all(&t);
        assert_eq!(a[0].tick, 0);
        assert_eq!(b[0].tick, 1);
        assert_ne!(a[0].value, b[0].value, "per-tick streams differ");
    }
}
